"""Setup shim: metadata lives in pyproject.toml.

Kept so that the package installs in environments whose pip/setuptools/wheel
combination cannot build editable wheels (PEP 660) offline.
"""
from setuptools import setup

setup()
