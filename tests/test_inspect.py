"""Tests for the schedule inspection helpers (summaries, description, Gantt)."""

import numpy as np
import pytest

from repro.baselines.hdagg import HDaggScheduler
from repro.graphs.dag import ComputationalDAG
from repro.model.inspect import (
    describe_schedule,
    schedule_to_text_gantt,
    summarize_supersteps,
)
from repro.model.machine import BspMachine
from repro.model.schedule import BspSchedule


@pytest.fixture
def two_step_schedule():
    dag = ComputationalDAG(3, [(0, 2), (1, 2)], work=[2, 3, 4], comm=[2, 1, 1])
    machine = BspMachine(P=2, g=3, l=5)
    return BspSchedule(dag, machine, np.array([0, 1, 1]), np.array([0, 0, 1]))


class TestSummaries:
    def test_superstep_summaries(self, two_step_schedule):
        summaries = summarize_supersteps(two_step_schedule)
        assert len(summaries) == 2
        first, second = summaries
        assert first.work_per_processor == {0: 2.0, 1: 3.0}
        assert first.work_cost == 3.0
        assert first.comm_cost == 2.0
        assert first.num_transfers == 1
        assert first.busiest_processor == 1
        assert second.nodes_per_processor == {1: 1}
        assert second.num_transfers == 0

    def test_summary_counts_match_dag(self, layered_dag, machine4):
        sched = HDaggScheduler().schedule(layered_dag, machine4)
        summaries = summarize_supersteps(sched)
        total_nodes = sum(sum(s.nodes_per_processor.values()) for s in summaries)
        assert total_nodes == layered_dag.n


class TestDescription:
    def test_describe_contains_cost_and_supersteps(self, two_step_schedule):
        text = describe_schedule(two_step_schedule, name="demo")
        assert "demo" in text
        assert "superstep 0" in text and "superstep 1" in text
        assert "total cost" in text
        # Total must match the cost function.
        assert f"{two_step_schedule.cost():.1f}" in text

    def test_describe_skips_empty_supersteps(self, machine2):
        dag = ComputationalDAG(2, [(0, 1)])
        sched = BspSchedule(dag, machine2, np.array([0, 0]), np.array([0, 4]))
        text = describe_schedule(sched)
        assert "superstep 2" not in text  # empty supersteps are not listed


class TestGantt:
    def test_gantt_has_one_row_per_processor(self, two_step_schedule):
        text = schedule_to_text_gantt(two_step_schedule)
        lines = text.splitlines()
        assert len(lines) == 1 + two_step_schedule.machine.P
        assert lines[1].startswith("p0")

    def test_bottleneck_processor_marked(self, two_step_schedule):
        text = schedule_to_text_gantt(two_step_schedule)
        p1_row = [l for l in text.splitlines() if l.startswith("p1")][0]
        assert "#" in p1_row  # p1 carries the maximum work in both supersteps

    def test_empty_schedule(self, machine2):
        dag = ComputationalDAG(0, [])
        assert "empty" in schedule_to_text_gantt(BspSchedule.trivial(dag, machine2))
