"""Tests for the combined scheduling pipeline (paper Figure 3)."""

import pytest

from repro.baselines.cilk import CilkScheduler
from repro.baselines.hdagg import HDaggScheduler
from repro.graphs.dag import ComputationalDAG
from repro.model.machine import BspMachine
from repro.pipeline.config import PipelineConfig
from repro.pipeline.framework import FrameworkScheduler, run_pipeline


@pytest.fixture
def fast_config():
    return PipelineConfig.fast()


class TestPipelineStages:
    def test_stage_costs_are_monotone(self, all_test_dags, machine4, fast_config):
        """Each stage may only improve (or keep) the best cost so far."""
        for dag in all_test_dags:
            result = run_pipeline(dag, machine4, fast_config)
            assert result.local_search_cost <= result.init_cost + 1e-9
            assert result.final_cost <= result.local_search_cost + 1e-9
            assert result.ilp_assignment_cost <= result.local_search_cost + 1e-9
            assert result.schedule.is_valid()
            assert result.schedule.cost() == pytest.approx(result.final_cost)

    def test_stage_costs_dictionary(self, spmv_small, machine4, fast_config):
        result = run_pipeline(spmv_small, machine4, fast_config)
        stages = result.stage_costs
        assert set(stages) == {"Init", "HCcs", "ILP"}
        assert stages["ILP"] == result.final_cost

    def test_initializer_costs_recorded(self, spmv_small, machine4, fast_config):
        result = run_pipeline(spmv_small, machine4, fast_config)
        assert "BSPg" in result.initializer_costs
        assert "Source" in result.initializer_costs
        assert result.best_initializer in result.initializer_costs
        best = min(result.initializer_costs.values())
        assert result.init_cost == pytest.approx(best)

    def test_stage_timings_recorded(self, diamond_dag, machine2, fast_config):
        result = run_pipeline(diamond_dag, machine2, fast_config)
        assert set(result.stage_seconds) == {"init", "local_search", "ilp"}
        assert all(t >= 0 for t in result.stage_seconds.values())

    def test_ilp_init_used_only_for_few_processors(self, coarse_cg_small):
        config = PipelineConfig.fast()
        config.use_ilp_init = True
        config.ilp_init_time_limit = 3.0
        machine4 = BspMachine(P=4, g=2, l=5)
        machine8 = BspMachine(P=8, g=2, l=5)
        with_ilp = run_pipeline(coarse_cg_small, machine4, config)
        without_ilp = run_pipeline(coarse_cg_small, machine8, config)
        assert "ILPinit" in with_ilp.initializer_costs
        assert "ILPinit" not in without_ilp.initializer_costs

    def test_heuristics_only_configuration(self, exp_small, machine4):
        result = run_pipeline(exp_small, machine4, PipelineConfig.heuristics_only())
        # Without ILP stages the final cost equals the local-search cost.
        assert result.final_cost == pytest.approx(result.local_search_cost)
        assert result.schedule.is_valid()


class TestAgainstBaselines:
    def test_beats_cilk_with_communication(self, exp_small, fast_config):
        machine = BspMachine(P=4, g=5, l=5)
        ours = run_pipeline(exp_small, machine, fast_config).final_cost
        cilk = CilkScheduler(seed=0).schedule(exp_small, machine).cost()
        assert ours < cilk

    def test_not_worse_than_hdagg_on_small_instances(self, spmv_small, fast_config):
        machine = BspMachine(P=4, g=3, l=5)
        ours = run_pipeline(spmv_small, machine, fast_config).final_cost
        hdagg = HDaggScheduler().schedule(spmv_small, machine).cost()
        assert ours <= hdagg + 1e-9

    def test_larger_improvement_with_numa(self, exp_small, fast_config):
        """The paper's qualitative finding: the relative gain over Cilk grows
        when NUMA effects make communication more expensive."""
        flat = BspMachine(P=8, g=1, l=5)
        numa = BspMachine.hierarchical(P=8, delta=4, g=1, l=5)
        ratio_flat = (
            run_pipeline(exp_small, flat, fast_config).final_cost
            / CilkScheduler(seed=0).schedule(exp_small, flat).cost()
        )
        ratio_numa = (
            run_pipeline(exp_small, numa, fast_config).final_cost
            / CilkScheduler(seed=0).schedule(exp_small, numa).cost()
        )
        assert ratio_numa <= ratio_flat + 0.05


class TestFrameworkScheduler:
    def test_scheduler_interface(self, diamond_dag, machine2, fast_config):
        scheduler = FrameworkScheduler(fast_config)
        sched = scheduler.schedule_checked(diamond_dag, machine2)
        assert sched.dag is diamond_dag

    def test_default_config_used_when_none(self):
        scheduler = FrameworkScheduler()
        assert isinstance(scheduler.config, PipelineConfig)

    def test_empty_dag(self, machine2, fast_config):
        dag = ComputationalDAG(0, [])
        result = run_pipeline(dag, machine2, fast_config)
        assert result.final_cost == 0.0


class TestConfig:
    def test_fast_and_paper_presets(self):
        fast = PipelineConfig.fast()
        paper = PipelineConfig.paper()
        assert fast.ilp_full_time_limit < paper.ilp_full_time_limit
        assert paper.ilp_full_time_limit == 3600.0

    def test_without_ilp_cs(self):
        config = PipelineConfig.fast()
        stripped = config.without_ilp_cs()
        assert not stripped.use_ilp_cs
        assert config.use_ilp_cs or True  # original object unchanged semantics
        assert stripped.hc_time_limit == config.hc_time_limit
