"""Tests for the BSP ILP formulations: full, window (partial), commsched, init."""

import numpy as np
import pytest

from repro.baselines.hdagg import HDaggScheduler
from repro.baselines.trivial import LevelRoundRobinScheduler
from repro.graphs.coarse import coarse_pagerank
from repro.graphs.dag import ComputationalDAG
from repro.heuristics.bspg import BspGreedyScheduler
from repro.ilp.commsched import CommScheduleIlpImprover, solve_comm_schedule_ilp
from repro.ilp.formulation import build_bsp_ilp, estimate_variable_count
from repro.ilp.full import IlpFullScheduler, solve_full_ilp
from repro.ilp.init import IlpInitScheduler, topological_batches
from repro.ilp.partial import PartialIlpImprover, superstep_windows
from repro.model.machine import BspMachine
from repro.model.schedule import BspSchedule


class TestFormulationBuilder:
    def test_variable_count_estimate(self):
        assert estimate_variable_count(10, 3, 4) == 10 * 3 * 16

    def test_full_formulation_size(self, diamond_dag, machine2):
        form = build_bsp_ilp(diamond_dag, machine2, s_first=0, s_last=2)
        # comp + pres: 2 * n * P * S; comm: n * P * (P-1) * S; plus aux vars.
        assert form.model.num_variables >= 2 * 4 * 2 * 3 + 4 * 2 * 1 * 3
        assert form.model.num_constraints > 0

    def test_requires_base_assignment_for_subset(self, diamond_dag, machine2):
        with pytest.raises(ValueError):
            build_bsp_ilp(diamond_dag, machine2, free_nodes=[0, 1], s_first=0, s_last=1)

    def test_empty_window_rejected(self, diamond_dag, machine2):
        with pytest.raises(ValueError):
            build_bsp_ilp(diamond_dag, machine2, s_first=3, s_last=2)

    def test_extraction_requires_solution(self, diamond_dag, machine2):
        from repro.ilp.solver import SolverResult, SolverStatus

        form = build_bsp_ilp(diamond_dag, machine2, s_first=0, s_last=1)
        with pytest.raises(ValueError):
            form.extract_assignment(SolverResult(SolverStatus.INFEASIBLE, None, None))


class TestFullIlp:
    def test_chain_is_kept_sequential(self, machine2):
        """With communication cost, the optimal schedule of a chain is the
        trivial sequential one: total work + one latency."""
        dag = ComputationalDAG(4, [(0, 1), (1, 2), (2, 3)], work=[2, 2, 2, 2], comm=[5, 5, 5, 5])
        sched = solve_full_ilp(dag, machine2, max_supersteps=2, time_limit=20)
        assert sched is not None and sched.is_valid()
        assert sched.cost() == pytest.approx(8 + machine2.l)

    def test_independent_nodes_are_parallelized(self, machine2):
        dag = ComputationalDAG(4, [], work=[3, 3, 3, 3], comm=[1, 1, 1, 1])
        sched = solve_full_ilp(dag, machine2, max_supersteps=1, time_limit=20)
        assert sched is not None and sched.is_valid()
        # Two processors, perfectly split: work cost 6 plus one latency.
        assert sched.cost() == pytest.approx(6 + machine2.l)

    def test_not_worse_than_heuristic_on_tiny_instance(self, machine2):
        dag = coarse_pagerank(2)
        heuristic = BspGreedyScheduler().schedule(dag, machine2)
        sched = solve_full_ilp(dag, machine2, heuristic.num_supersteps, time_limit=20)
        assert sched is not None and sched.is_valid()
        assert sched.cost() <= heuristic.cost() + 1e-9

    def test_scheduler_wrapper_falls_back_when_too_large(self, spmv_small, machine4):
        scheduler = IlpFullScheduler(max_variables=10, time_limit=5)
        sched = scheduler.schedule(spmv_small, machine4)
        assert sched.is_valid()  # falls back to the initializer's schedule

    def test_scheduler_wrapper_applicability(self, diamond_dag, machine2):
        scheduler = IlpFullScheduler(max_variables=10_000)
        assert scheduler.applicable(diamond_dag, machine2, 3)
        assert not scheduler.applicable(diamond_dag, machine2, 10_000)


class TestCommScheduleIlp:
    def test_no_transfers_case(self, chain_dag, machine2):
        sched = BspSchedule.trivial(chain_dag, machine2)
        improved = solve_comm_schedule_ilp(sched, time_limit=5)
        assert improved is not None
        assert improved.cost() == pytest.approx(sched.cost())

    def test_matches_or_beats_lazy_schedule(self, all_test_dags, machine4):
        for dag in all_test_dags:
            sched = HDaggScheduler().schedule(dag, machine4)
            improved = solve_comm_schedule_ilp(sched, time_limit=10)
            assert improved is not None
            assert improved.is_valid()
            assert improved.cost() <= sched.cost() + 1e-9
            assert np.array_equal(improved.proc, sched.proc)

    def test_spreads_bottleneck_transfers(self):
        # Same instance as the HCcs test: the lazy schedule pays h-relations
        # 5 + 8 = 13; the optimal communication schedule pays 5 + 4 = 9 by
        # hiding one transfer under the phase-0 bottleneck.
        dag = ComputationalDAG(
            5, [(0, 3), (1, 3), (2, 4)], work=[1, 1, 1, 1, 1], comm=[4, 4, 5, 1, 1]
        )
        machine = BspMachine(P=3, g=2, l=1)
        sched = BspSchedule(
            dag, machine, np.array([0, 1, 0, 2, 1]), np.array([0, 0, 0, 2, 1])
        )
        improved = solve_comm_schedule_ilp(sched, time_limit=10)
        assert improved is not None and improved.is_valid()
        assert float(improved.cost_breakdown().comm_per_step.sum()) == pytest.approx(9.0)

    def test_improver_never_worse(self, exp_small, numa_machine):
        sched = HDaggScheduler().schedule(exp_small, numa_machine)
        improved = CommScheduleIlpImprover(time_limit=10).improve(sched)
        assert improved.is_valid()
        assert improved.cost() <= sched.cost() + 1e-9


class TestPartialIlp:
    def test_window_split_covers_all_supersteps(self, spmv_small, machine4):
        sched = LevelRoundRobinScheduler().schedule(spmv_small, machine4)
        windows = superstep_windows(sched, machine4.P, max_variables=2000)
        covered = sorted(s for (a, b) in windows for s in range(a, b + 1))
        assert covered == list(range(sched.num_supersteps))

    def test_windows_respect_size_limit_when_possible(self, spmv_small, machine4):
        sched = LevelRoundRobinScheduler().schedule(spmv_small, machine4)
        windows = superstep_windows(sched, machine4.P, max_variables=2000)
        nodes_per_step = np.bincount(sched.step.astype(int), minlength=sched.num_supersteps)
        for (a, b) in windows:
            if b > a:  # multi-superstep windows must obey the estimate
                nodes = int(nodes_per_step[a : b + 1].sum())
                assert estimate_variable_count(nodes, b - a + 1, machine4.P) <= 2000

    def test_improver_never_worse_and_valid(self, coarse_cg_small, machine2):
        initial = LevelRoundRobinScheduler().schedule(coarse_cg_small, machine2)
        improver = PartialIlpImprover(max_variables=1200, time_limit_per_window=5)
        improved = improver.improve(initial)
        assert improved.is_valid()
        assert improved.cost() <= initial.cost() + 1e-9

    def test_improves_a_poor_initial_schedule(self, machine2):
        # Independent heavy nodes spread across many supersteps: the window
        # ILP should pack them into fewer supersteps and balance the work.
        dag = ComputationalDAG(6, [], work=[4] * 6, comm=[1] * 6)
        bad = BspSchedule(dag, machine2, np.zeros(6, int), np.arange(6))
        improver = PartialIlpImprover(max_variables=3000, time_limit_per_window=10)
        improved = improver.improve(bad)
        assert improved.is_valid()
        assert improved.cost() < bad.cost()


class TestIlpInit:
    def test_batches_cover_all_nodes_in_topological_order(self, spmv_small, machine4):
        batches = topological_batches(spmv_small, machine4.P, max_variables=800)
        flat = [v for batch in batches for v in batch]
        assert sorted(flat) == list(range(spmv_small.n))
        position = {v: i for i, v in enumerate(flat)}
        for (u, v) in spmv_small.edges:
            assert position[u] < position[v]

    def test_schedule_is_valid(self, coarse_cg_small, machine2):
        scheduler = IlpInitScheduler(max_variables=600, time_limit_per_batch=5)
        sched = scheduler.schedule_checked(coarse_cg_small, machine2)
        assert sched.num_supersteps >= 1

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            IlpInitScheduler(supersteps_per_batch=0)

    def test_empty_dag(self, machine2):
        dag = ComputationalDAG(0, [])
        sched = IlpInitScheduler().schedule(dag, machine2)
        assert sched.is_valid()
