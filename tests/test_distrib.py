"""The pull-based distributed batch runner.

Contract under test (ISSUE 9 tentpole b):

* ``enqueue`` serializes requests into ``pending/`` envelopes; a claim is a
  single atomic ``os.rename`` into ``claimed/`` — exactly one racing worker
  wins,
* a worker answers every claim with byte-for-byte the result ``repro batch``
  would have produced (scheduler failures are *answered* invalid results,
  machinery failures are retried and dead-lettered after ``max_attempts``),
* ``solve_many(queue_dir=...)`` fans a batch out through the queue and
  returns results identical to the in-process path,
* crash recovery: stuck claims can be requeued and answered exactly once.

Multiprocess workers are module-level functions so they survive any
multiprocessing start method.
"""

import json
import multiprocessing

import pytest

from repro.api import solve_many
from repro.cli import main as cli_main
from repro.distrib import (
    DEFAULT_MAX_ATTEMPTS,
    DirectoryQueue,
    Envelope,
    QueueError,
    run_worker,
    solve_envelope,
)
from repro.spec import DagSpec, MachineSpec, ProblemSpec, SolveRequest


def request_for(seed: int, scheduler: str = "etf") -> SolveRequest:
    return SolveRequest(
        spec=ProblemSpec(
            dag=DagSpec.generator("spmv", n=8, q=0.3, seed=seed),
            machine=MachineSpec(P=2, g=2, l=3),
        ),
        scheduler=scheduler,
    )


def _drain(queue_dir: str) -> dict:
    """Module-level worker entry point for multiprocessing."""
    stats = run_worker(queue_dir)
    return {
        "solved": stats.solved,
        "invalid": stats.invalid,
        "answered": stats.answered,
        "dead_lettered": stats.dead_lettered,
    }


class TestQueueMechanics:
    def test_enqueue_creates_layout_and_pending_envelopes(self, tmp_path):
        queue = DirectoryQueue(tmp_path / "q")
        ids = queue.enqueue([request_for(0), request_for(1)], manifest="batch")
        assert len(ids) == 2 and len(set(ids)) == 2
        assert queue.pending_ids() == sorted(ids)
        assert queue.counts() == {"pending": 2, "claimed": 0, "results": 0, "failed": 0}
        assert queue.read_manifest("batch") == ids
        payload = json.loads((queue.pending_dir / f"{ids[0]}.json").read_text())
        assert payload["id"] == ids[0]
        assert payload["attempts"] == 0
        assert SolveRequest.from_dict(payload["request"]) == request_for(0)

    def test_ids_preserve_request_order(self, tmp_path):
        queue = DirectoryQueue(tmp_path / "q")
        ids = queue.enqueue([request_for(seed) for seed in range(12)])
        assert ids == sorted(ids), "sorted claim order must equal request order"

    def test_claim_is_exclusive(self, tmp_path):
        queue = DirectoryQueue(tmp_path / "q")
        (task_id,) = queue.enqueue([request_for(0)])
        first = queue.claim(task_id)
        assert first is not None and first.id == task_id
        assert queue.claim(task_id) is None, "second claimant must lose"
        assert queue.pending_ids() == []
        assert queue.counts()["claimed"] == 1

    def test_complete_commits_result_before_releasing_claim(self, tmp_path):
        queue = DirectoryQueue(tmp_path / "q")
        (task_id,) = queue.enqueue([request_for(0)])
        envelope = queue.claim(task_id)
        result = solve_envelope(envelope)
        queue.complete(envelope, result)
        assert queue.counts() == {"pending": 0, "claimed": 0, "results": 1, "failed": 0}
        loaded = queue.load_result(task_id)
        assert loaded is not None
        assert loaded.to_json() == result.to_json()

    def test_corrupt_envelope_is_dead_lettered_not_wedged(self, tmp_path):
        queue = DirectoryQueue(tmp_path / "q")
        queue.ensure_layout()
        (queue.pending_dir / "poison.json").write_text("{not json")
        assert queue.claim("poison") is None
        assert queue.counts()["failed"] == 1
        assert "unreadable envelope" in queue.load_failure("poison")
        # The poisoned file no longer blocks claim_next for real work.
        queue.enqueue([request_for(0)])
        assert queue.claim_next() is not None

    def test_retry_bumps_attempts_then_dead_letters(self, tmp_path):
        queue = DirectoryQueue(tmp_path / "q")
        (task_id,) = queue.enqueue([request_for(0)])
        envelope = queue.claim(task_id)
        assert queue.retry_or_fail(envelope, "boom", max_attempts=2) is True
        assert queue.counts()["pending"] == 1 and queue.counts()["claimed"] == 0
        retried = queue.claim(task_id)
        assert retried is not None and retried.attempts == 1
        assert queue.retry_or_fail(retried, "boom again", max_attempts=2) is False
        assert queue.counts() == {"pending": 0, "claimed": 0, "results": 0, "failed": 1}
        assert "boom again" in queue.load_failure(task_id)

    def test_recover_claimed_requeues_stuck_tasks(self, tmp_path):
        queue = DirectoryQueue(tmp_path / "q")
        ids = queue.enqueue([request_for(0), request_for(1)])
        assert queue.claim(ids[0]) is not None  # claimant "crashes" here
        recovered = queue.recover_claimed()
        assert recovered == [ids[0]]
        assert queue.pending_ids() == sorted(ids)
        stats = run_worker(queue.root)
        assert stats.answered == 2 and stats.dead_lettered == 0


class TestWorker:
    def test_worker_drains_queue_and_matches_solve_many(self, tmp_path):
        requests = [request_for(seed) for seed in range(4)]
        queue = DirectoryQueue(tmp_path / "q")
        ids = queue.enqueue(requests)
        stats = run_worker(queue.root)
        assert stats.answered == 4
        assert stats.solved == 4 and stats.invalid == 0
        assert queue.counts() == {"pending": 0, "claimed": 0, "results": 4, "failed": 0}
        direct = solve_many(requests)
        for task_id, expected in zip(ids, direct):
            assert queue.load_result(task_id).to_json() == expected.to_json()

    def test_scheduler_failure_is_answered_invalid_not_retried(self, tmp_path):
        queue = DirectoryQueue(tmp_path / "q")
        (task_id,) = queue.enqueue([request_for(0, scheduler="no-such-scheduler")])
        stats = run_worker(queue.root)
        assert stats.invalid == 1 and stats.dead_lettered == 0 and stats.retried == 0
        answered = queue.load_result(task_id)
        assert answered is not None and not answered.valid
        (expected,) = solve_many(
            [request_for(0, scheduler="no-such-scheduler")], tolerant=True
        )
        assert answered.to_json() == expected.to_json()

    def test_machinery_failure_retries_then_dead_letters(self, tmp_path):
        queue = DirectoryQueue(tmp_path / "q")
        (task_id,) = queue.enqueue([request_for(0)])

        def exploding_solver(envelope: Envelope) -> object:
            raise RuntimeError("worker machinery exploded")

        stats = run_worker(queue.root, solver=exploding_solver, max_attempts=2)
        assert stats.retried == 1
        assert stats.dead_lettered == 1
        assert stats.answered == 0
        assert "machinery exploded" in queue.load_failure(task_id)
        assert queue.counts()["pending"] == 0 and queue.counts()["claimed"] == 0

    def test_default_max_attempts_is_three(self, tmp_path):
        queue = DirectoryQueue(tmp_path / "q")
        queue.enqueue([request_for(0)])

        def exploding_solver(envelope: Envelope) -> object:
            raise RuntimeError("boom")

        stats = run_worker(queue.root, solver=exploding_solver)
        assert DEFAULT_MAX_ATTEMPTS == 3
        assert stats.retried == 2 and stats.dead_lettered == 1

    def test_max_tasks_bounds_the_drain(self, tmp_path):
        queue = DirectoryQueue(tmp_path / "q")
        queue.enqueue([request_for(seed) for seed in range(3)])
        stats = run_worker(queue.root, max_tasks=2)
        assert stats.answered == 2
        assert queue.counts()["pending"] == 1

    def test_concurrent_workers_answer_each_task_exactly_once(self, tmp_path):
        requests = [request_for(seed) for seed in range(8)]
        queue = DirectoryQueue(tmp_path / "q")
        ids = queue.enqueue(requests)
        with multiprocessing.Pool(3) as pool:
            stats = [
                r.get(timeout=300)
                for r in [
                    pool.apply_async(_drain, (str(queue.root),)) for _ in range(3)
                ]
            ]
        # Exactly-once: the per-worker answer counts sum to the batch size.
        assert sum(s["answered"] for s in stats) == len(requests)
        assert sum(s["dead_lettered"] for s in stats) == 0
        assert queue.counts() == {"pending": 0, "claimed": 0, "results": 8, "failed": 0}
        direct = solve_many(requests)
        for task_id, expected in zip(ids, direct):
            assert queue.load_result(task_id).to_json() == expected.to_json()


class TestSolveManyQueued:
    def test_queue_dir_results_identical_to_direct(self, tmp_path):
        requests = [request_for(seed) for seed in range(4)]
        queued = solve_many(requests, queue_dir=tmp_path / "q", queue_timeout=120)
        direct = solve_many(requests)
        assert [r.to_json() for r in queued] == [r.to_json() for r in direct]

    def test_queue_dir_tolerant_matches_direct_tolerant(self, tmp_path):
        requests = [request_for(0), request_for(1, scheduler="no-such-scheduler")]
        queued = solve_many(
            requests, tolerant=True, queue_dir=tmp_path / "q", queue_timeout=120
        )
        direct = solve_many(requests, tolerant=True)
        assert [r.to_json() for r in queued] == [r.to_json() for r in direct]
        assert queued[0].valid and not queued[1].valid

    def test_queue_dir_strict_raises_on_invalid(self, tmp_path):
        with pytest.raises(RuntimeError):
            solve_many(
                [request_for(0, scheduler="no-such-scheduler")],
                queue_dir=tmp_path / "q",
                queue_timeout=120,
            )

    def test_queue_dir_rejects_checkpointing(self, tmp_path):
        with pytest.raises(ValueError, match="queue_dir"):
            solve_many(
                [request_for(0)],
                queue_dir=tmp_path / "q",
                checkpoint=tmp_path / "ckpt.jsonl",
            )

    def test_dead_letter_raises_queue_error_in_strict_mode(self, tmp_path, monkeypatch):
        import repro.distrib.worker as worker_mod

        def exploding_solver(envelope: Envelope) -> object:
            raise RuntimeError("host lost")

        monkeypatch.setattr(worker_mod, "solve_envelope", exploding_solver)
        with pytest.raises(QueueError, match="dead-lettered.*host lost"):
            solve_many([request_for(0)], queue_dir=tmp_path / "q", queue_timeout=120)

    def test_dead_letter_maps_to_invalid_result_in_tolerant_mode(
        self, tmp_path, monkeypatch
    ):
        import repro.distrib.worker as worker_mod

        def exploding_solver(envelope: Envelope) -> object:
            raise RuntimeError("host lost")

        monkeypatch.setattr(worker_mod, "solve_envelope", exploding_solver)
        (result,) = solve_many(
            [request_for(0)], tolerant=True, queue_dir=tmp_path / "q", queue_timeout=120
        )
        assert not result.valid
        assert "host lost" in (result.scheduler_description or "")


class TestDistribCli:
    def test_enqueue_worker_collect_round_trip_matches_batch(self, tmp_path, capsys):
        requests = [request_for(seed) for seed in range(3)]
        requests_file = tmp_path / "requests.jsonl"
        requests_file.write_text(
            "".join(json.dumps(r.to_dict()) + "\n" for r in requests)
        )
        batch_out = tmp_path / "batch.jsonl"
        assert cli_main(["batch", str(requests_file), "--out", str(batch_out)]) == 0
        queue_dir = tmp_path / "q"
        assert (
            cli_main(
                [
                    "enqueue",
                    str(requests_file),
                    "--queue",
                    str(queue_dir),
                    "--manifest",
                    "m1",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert cli_main(["worker", str(queue_dir)]) == 0
        collected = tmp_path / "collected.jsonl"
        assert (
            cli_main(["collect", str(queue_dir), "m1", "--out", str(collected)]) == 0
        )
        assert collected.read_bytes() == batch_out.read_bytes()

    def test_worker_exit_code_reflects_dead_letters(self, tmp_path, capsys):
        queue = DirectoryQueue(tmp_path / "q")
        queue.ensure_layout()
        (queue.pending_dir / "poison.json").write_text("{not json")
        assert cli_main(["worker", str(queue.root)]) == 1

    def test_collect_fails_on_missing_results(self, tmp_path, capsys):
        queue = DirectoryQueue(tmp_path / "q")
        queue.enqueue([request_for(0)], manifest="m1")
        with pytest.raises(SystemExit, match="unanswered"):
            cli_main(
                ["collect", str(queue.root), "m1", "--out", str(tmp_path / "out.jsonl")]
            )
