"""Unit tests for the BSP machine model and its NUMA extension."""

import numpy as np
import pytest

from repro.model.machine import BspMachine, MachineValidationError


class TestUniformMachine:
    def test_default_numa_matrix(self):
        m = BspMachine(P=3, g=2, l=5)
        assert m.is_uniform
        assert m.coefficient(0, 0) == 0.0
        assert m.coefficient(0, 1) == 1.0
        assert m.numa.shape == (3, 3)

    def test_uniform_constructor(self):
        m = BspMachine.uniform(4, g=3, l=7)
        assert m.P == 4 and m.g == 3 and m.l == 7
        assert m.is_uniform

    def test_single_processor(self):
        m = BspMachine(P=1)
        assert m.average_coefficient() == 0.0
        assert m.is_uniform

    def test_invalid_parameters(self):
        with pytest.raises(MachineValidationError):
            BspMachine(P=0)
        with pytest.raises(MachineValidationError):
            BspMachine(P=2, g=-1)
        with pytest.raises(MachineValidationError):
            BspMachine(P=2, l=-0.5)


class TestNumaMatrixValidation:
    def test_wrong_shape_rejected(self):
        with pytest.raises(MachineValidationError):
            BspMachine(P=3, numa=np.ones((2, 2)))

    def test_nonzero_diagonal_rejected(self):
        numa = np.ones((2, 2))
        with pytest.raises(MachineValidationError):
            BspMachine(P=2, numa=numa)

    def test_negative_coefficient_rejected(self):
        numa = np.array([[0.0, -1.0], [1.0, 0.0]])
        with pytest.raises(MachineValidationError):
            BspMachine(P=2, numa=numa)

    def test_explicit_uniform_matrix_detected(self):
        numa = np.ones((3, 3))
        np.fill_diagonal(numa, 0.0)
        assert BspMachine(P=3, numa=numa).is_uniform

    def test_non_uniform_detected(self):
        numa = np.array([[0.0, 2.0], [2.0, 0.0]])
        assert not BspMachine(P=2, numa=numa).is_uniform


class TestHierarchicalMachine:
    def test_paper_example_p8_delta3(self):
        """The paper's worked example: P=8, delta=3 gives lambda 1 / 3 / 9."""
        m = BspMachine.hierarchical(P=8, delta=3)
        assert m.coefficient(0, 1) == 1.0
        assert m.coefficient(0, 2) == 3.0
        assert m.coefficient(0, 3) == 3.0
        for p in (4, 5, 6, 7):
            assert m.coefficient(0, p) == 9.0

    def test_p16_top_level_coefficient(self):
        """lambda_{1,16} = delta^(log2 P - 1) = 27 for delta=3, P=16 (paper 7.3)."""
        m = BspMachine.hierarchical(P=16, delta=3)
        assert m.coefficient(0, 15) == 27.0
        assert m.max_coefficient() == 27.0

    def test_symmetry(self):
        m = BspMachine.hierarchical(P=8, delta=2)
        assert np.allclose(m.numa, m.numa.T)

    def test_delta_one_is_uniform(self):
        m = BspMachine.hierarchical(P=4, delta=1)
        assert m.is_uniform

    def test_requires_power_of_two(self):
        with pytest.raises(MachineValidationError):
            BspMachine.hierarchical(P=6, delta=2)

    def test_requires_positive_delta(self):
        with pytest.raises(MachineValidationError):
            BspMachine.hierarchical(P=4, delta=0)


class TestGroupMachine:
    def test_two_groups(self):
        m = BspMachine.from_groups([2, 2], intra=1.0, inter=5.0)
        assert m.P == 4
        assert m.coefficient(0, 1) == 1.0
        assert m.coefficient(0, 2) == 5.0
        assert m.coefficient(2, 3) == 1.0

    def test_rejects_empty_group(self):
        with pytest.raises(MachineValidationError):
            BspMachine.from_groups([2, 0])


class TestQueries:
    def test_average_coefficient_uniform(self):
        assert BspMachine(P=4).average_coefficient() == pytest.approx(1.0)

    def test_average_coefficient_hierarchical(self):
        m = BspMachine.hierarchical(P=4, delta=2)
        # Coefficients from any processor: 1 (sibling), 2, 2 -> mean 5/3.
        assert m.average_coefficient() == pytest.approx(5.0 / 3.0)

    def test_with_parameters(self):
        m = BspMachine.hierarchical(P=4, delta=2, g=1, l=5)
        m2 = m.with_parameters(g=7)
        assert m2.g == 7 and m2.l == 5 and m2.P == 4
        assert np.array_equal(m2.numa, m.numa)

    def test_describe_mentions_kind(self):
        assert "uniform" in BspMachine(P=2).describe()
        assert "NUMA" in BspMachine.hierarchical(P=4, delta=2).describe()
