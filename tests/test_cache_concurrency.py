"""Concurrent access to one SolutionCache directory.

The serve daemon's workers, parallel batch runners and any number of other
processes may share a single cache directory.  The atomic-write contract
(temp file + ``os.replace``) promises that under arbitrary write/read
contention:

* a reader never observes a torn payload — every committed ``*.json`` file
  is complete, valid JSON at all times,
* a warm hit is byte-identical to the originally stored result,
* concurrent writers of the *same* key converge on one intact entry.

These tests hammer a shared directory from several processes and verify
exactly that.  Workers are module-level functions so they survive any
multiprocessing start method.
"""

import json
import multiprocessing
import threading

from repro.api import solve, to_solve_result
from repro.experiments.runner import WorkItem, execute_work_item_tolerant
from repro.portfolio.cache import CACHE_FORMAT_VERSION, SolutionCache
from repro.portfolio.features import instance_signature
from repro.spec import DagSpec, MachineSpec, ProblemSpec, SolveRequest

KEYS = 4  # distinct (instance, scheduler) keys the processes fight over
ROUNDS = 25


def request_for(seed: int) -> SolveRequest:
    return SolveRequest(
        spec=ProblemSpec(
            dag=DagSpec.generator("spmv", n=8, q=0.3, seed=seed),
            machine=MachineSpec(P=2, g=2, l=3),
        ),
        scheduler="etf",
    )


def solved_entry(seed: int):
    """(signature, spec, result, schedule) of one deterministic solve."""
    item = WorkItem.from_request(request_for(seed), keep_schedule=True)
    outcome = execute_work_item_tolerant(item)
    assert outcome.valid and outcome.schedule is not None
    return (
        instance_signature(item.dag, item.machine),
        item.scheduler,
        to_solve_result(item, outcome),
        outcome.schedule,
    )


def _writer_reader_storm(root: str, worker_seed: int) -> dict:
    """One process: interleave puts and gets over all shared keys."""
    cache = SolutionCache(root, max_memory_entries=2)  # tiny LRU: force disk reads
    entries = [solved_entry(seed) for seed in range(KEYS)]
    expected = {signature: result.to_json() for signature, _, result, _ in entries}
    observed = {"hits": 0, "misses": 0, "mismatches": 0}
    for round_no in range(ROUNDS):
        signature, spec, result, schedule = entries[(round_no + worker_seed) % KEYS]
        cache.put(signature, spec, None, result, schedule)
        for signature, spec, result, _ in entries:
            entry = cache.get(signature, spec, None)
            if entry is None:
                observed["misses"] += 1
            else:
                observed["hits"] += 1
                if entry.result is None or entry.result.to_json() != expected[signature]:
                    observed["mismatches"] += 1
    return observed


BUDGET_KEYS = 6  # more keys than the byte budget can hold at once


def _budget_writer_storm(root: str, worker_seed: int, budget: int) -> dict:
    """One process: hammer a byte-bounded cache, recording hit fidelity."""
    cache = SolutionCache(root, max_memory_entries=2, max_disk_bytes=budget)
    entries = [solved_entry(seed) for seed in range(BUDGET_KEYS)]
    expected = {signature: result.to_json() for signature, _, result, _ in entries}
    observed = {"hits": 0, "mismatches": 0, "evictions": 0}
    for round_no in range(ROUNDS):
        signature, spec, result, schedule = entries[
            (round_no + worker_seed) % BUDGET_KEYS
        ]
        cache.put(signature, spec, None, result, schedule)
        probe_sig, probe_spec, _, _ = entries[
            (round_no * 3 + worker_seed) % BUDGET_KEYS
        ]
        entry = cache.get(probe_sig, probe_spec, None)
        if entry is not None:
            observed["hits"] += 1
            if entry.result is None or entry.result.to_json() != expected[probe_sig]:
                observed["mismatches"] += 1
    observed["evictions"] = cache.evictions
    return observed


def _raw_file_scanner(root: str, _seed: int) -> dict:
    """One process: raw-read every committed entry file, flag torn JSON.

    Scans while the writer storm runs: polls until it has observed entries
    (the writers need a moment to solve their instances first), then keeps
    re-reading for a fixed number of passes looking for partial writes.
    """
    import time

    cache = SolutionCache(root)
    torn = 0
    scanned = 0
    deadline = time.monotonic() + 60.0
    passes_after_first_entry = 0
    while passes_after_first_entry < ROUNDS * 4 and time.monotonic() < deadline:
        saw_entry = False
        for shard in sorted(p for p in cache.root.glob("*") if p.is_dir()):
            for path in shard.glob("*.json"):
                if path.name.startswith(".tmp-"):
                    continue
                try:
                    payload = json.loads(path.read_text())
                except FileNotFoundError:
                    continue  # replaced mid-scan; os.replace keeps it atomic
                except json.JSONDecodeError:
                    torn += 1
                    continue
                saw_entry = True
                scanned += 1
                if payload.get("format") != CACHE_FORMAT_VERSION:
                    torn += 1
        if saw_entry:
            passes_after_first_entry += 1
        else:
            time.sleep(0.01)
    return {"torn": torn, "scanned": scanned}


class TestConcurrentCacheAccess:
    def test_multiprocess_storm_no_torn_payloads(self, tmp_path):
        root = str(tmp_path / "cache")
        with multiprocessing.Pool(4) as pool:
            writers = [
                pool.apply_async(_writer_reader_storm, (root, seed)) for seed in range(3)
            ]
            scanner = pool.apply_async(_raw_file_scanner, (root, 0))
            writer_stats = [w.get(timeout=300) for w in writers]
            scan_stats = scanner.get(timeout=300)
        assert scan_stats["torn"] == 0, "a reader observed a partially written entry"
        assert scan_stats["scanned"] > 0, "the scanner must have seen committed entries"
        for stats in writer_stats:
            assert stats["mismatches"] == 0, "a warm hit diverged from the stored result"
            assert stats["hits"] > 0
        # The storm converges on exactly one intact entry per key.
        cache = SolutionCache(root)
        assert cache.disk_stats()["entries"] == KEYS
        assert not list(cache.root.glob("*/.tmp-*")), "no temp files may survive"

    def test_warm_hits_byte_identical_after_contention(self, tmp_path):
        root = str(tmp_path / "cache")
        with multiprocessing.Pool(3) as pool:
            for result in [
                pool.apply_async(_writer_reader_storm, (root, seed)) for seed in range(3)
            ]:
                result.get(timeout=300)
        cache = SolutionCache(root)
        for seed in range(KEYS):
            signature, spec, result, _ = solved_entry(seed)
            entry = cache.get(signature, spec, None)
            assert entry is not None, "every fought-over key must end up cached"
            assert entry.result is not None
            assert entry.result.to_json() == result.to_json()
            assert entry.result.to_json() == solve(request_for(seed)).to_json()
            assert not entry.schedule.validation_errors()

    def test_eviction_storm_respects_byte_budget(self, tmp_path):
        """Writer storm against a byte budget: no torn entries, the budget
        holds after a final evict, and every surviving warm hit is still
        byte-identical to the originally stored result."""
        # Size the budget from a real entry so roughly 3 of the 6 keys fit.
        signature, spec, result, schedule = solved_entry(0)
        probe = SolutionCache(str(tmp_path / "probe"))
        entry_bytes = probe.put(signature, spec, None, result, schedule).stat().st_size
        budget = int(entry_bytes * 3.5)
        root = str(tmp_path / "cache")
        with multiprocessing.Pool(4) as pool:
            writers = [
                pool.apply_async(_budget_writer_storm, (root, seed, budget))
                for seed in range(3)
            ]
            scanner = pool.apply_async(_raw_file_scanner, (root, 0))
            writer_stats = [w.get(timeout=300) for w in writers]
            scan_stats = scanner.get(timeout=300)
        assert scan_stats["torn"] == 0, "a reader observed a partially written entry"
        for stats in writer_stats:
            assert stats["mismatches"] == 0, "a warm hit diverged from the stored result"
            assert stats["evictions"] > 0, "the byte budget must have forced evictions"
        # Concurrent evictors may transiently overshoot (each recomputes from
        # its own scan); a final single-process evict must converge on budget.
        cache = SolutionCache(root, max_disk_bytes=budget)
        cache.evict()
        disk = cache.disk_stats()
        assert 0 < disk["bytes"] <= budget
        assert disk["entries"] >= 1
        assert not list(cache.root.glob("*/.tmp-*")), "no temp files may survive"
        # Every survivor still serves the exact bytes that were stored.
        served = 0
        for seed in range(BUDGET_KEYS):
            signature, spec, result, _ = solved_entry(seed)
            entry = cache.get(signature, spec, None)
            if entry is not None:
                assert entry.result is not None
                assert entry.result.to_json() == result.to_json()
                served += 1
        assert served == disk["entries"]

    def test_threaded_storm_shares_one_lru(self, tmp_path):
        """Thread-level contention (the daemon's worker pool shape)."""
        cache = SolutionCache(tmp_path / "cache", max_memory_entries=8)
        entries = [solved_entry(seed) for seed in range(KEYS)]
        failures = []

        def storm(worker_seed: int) -> None:
            try:
                for round_no in range(ROUNDS):
                    signature, spec, result, schedule = entries[
                        (round_no + worker_seed) % KEYS
                    ]
                    cache.put(signature, spec, None, result, schedule)
                    entry = cache.get(signature, spec, None)
                    if entry is None or entry.result is None:
                        failures.append("miss directly after put")
                    elif entry.result.to_json() != result.to_json():
                        failures.append("hit diverged from stored result")
            except Exception as exc:  # pragma: no cover - surfaced via failures
                failures.append(repr(exc))

        threads = [threading.Thread(target=storm, args=(k,)) for k in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, failures[:5]
        assert cache.disk_stats()["entries"] == KEYS
