"""Tests for the hyperDAG file format and DAG <-> hyperDAG conversion."""

import pytest

from repro.graphs.dag import ComputationalDAG, DagValidationError
from repro.graphs.fine import spmv_dag
from repro.graphs.hyperdag import (
    dag_to_hyperdag,
    dumps_hyperdag,
    hyperdag_to_dag,
    loads_hyperdag,
    read_hyperdag,
    write_hyperdag,
)


class TestConversion:
    def test_one_hyperedge_per_non_sink(self, diamond_dag):
        hyperedges = dag_to_hyperdag(diamond_dag)
        non_sinks = [v for v in diamond_dag.nodes() if diamond_dag.out_degree(v) > 0]
        assert len(hyperedges) == len(non_sinks)
        for he in hyperedges:
            src = he[0]
            assert sorted(he[1:]) == sorted(diamond_dag.children(src))

    def test_hyperdag_to_dag_round_trip(self, diamond_dag):
        hyperedges = dag_to_hyperdag(diamond_dag)
        back = hyperdag_to_dag(diamond_dag.n, hyperedges, diamond_dag.work, diamond_dag.comm)
        assert back == diamond_dag

    def test_empty_hyperedges_skipped(self):
        dag = hyperdag_to_dag(3, [[], [0, 1], [1, 2]])
        assert dag.num_edges == 2


class TestTextFormat:
    def test_round_trip_diamond(self, diamond_dag):
        text = dumps_hyperdag(diamond_dag, comment="diamond example")
        back = loads_hyperdag(text)
        assert back == diamond_dag

    def test_round_trip_generated_dag(self):
        dag = spmv_dag(7, q=0.3, seed=6)
        assert loads_hyperdag(dumps_hyperdag(dag)) == dag

    def test_comments_are_ignored(self, diamond_dag):
        text = "% a comment\n%% another\n" + dumps_hyperdag(diamond_dag)
        assert loads_hyperdag(text) == diamond_dag

    def test_file_round_trip(self, tmp_path, diamond_dag):
        path = tmp_path / "diamond.hdag"
        write_hyperdag(diamond_dag, path)
        back = read_hyperdag(path)
        assert back == diamond_dag
        assert back.name == "diamond"  # name taken from the file stem

    def test_isolated_nodes_survive_round_trip(self):
        dag = ComputationalDAG(4, [(0, 1)], work=[1, 2, 3, 4], comm=[4, 3, 2, 1])
        back = loads_hyperdag(dumps_hyperdag(dag))
        assert back == dag


class TestErrorHandling:
    def test_empty_file_rejected(self):
        with pytest.raises(DagValidationError):
            loads_hyperdag("% only comments\n")

    def test_malformed_header_rejected(self):
        with pytest.raises(DagValidationError):
            loads_hyperdag("1 2\n0 0\n")

    def test_truncated_file_rejected(self, diamond_dag):
        text = dumps_hyperdag(diamond_dag)
        truncated = "\n".join(text.splitlines()[:-3])
        with pytest.raises(DagValidationError):
            loads_hyperdag(truncated)

    def test_out_of_range_pin_rejected(self):
        text = "1 2 2\n5 0\n0 1\n0 1 1\n1 1 1\n"
        with pytest.raises(DagValidationError):
            loads_hyperdag(text)

    def test_malformed_weight_line_rejected(self):
        text = "1 2 2\n0 0\n0 1\n0 1\n1 1 1\n"
        with pytest.raises(DagValidationError):
            loads_hyperdag(text)
