"""Tests for the memory-constrained scheduling subsystem.

Covers the model extension (per-node memory weights, per-processor bounds),
schedule validation, the memory-aware greedy baseline and repair pass, the
local-search move filter, the multilevel path, and the acceptance criterion
that a memory-bounded solve is reachable from all four entry points
(registry spec string, ProblemSpec JSON, ``repro.api.solve``, CLI) with
``solve_many(jobs=2)`` byte-identical to serial execution.
"""

import io
import json

import numpy as np
import pytest

from repro import api
from repro.baselines.list_schedulers import BlEstScheduler
from repro.baselines.memory import MemoryAwareGreedyScheduler, repair_memory
from repro.graphs.dag import ComputationalDAG
from repro.graphs.fine import spmv_dag
from repro.heuristics.bspg import BspGreedyScheduler
from repro.localsearch.state import LocalSearchState
from repro.model.machine import BspMachine, MachineValidationError
from repro.model.schedule import BspSchedule, ScheduleValidationError
from repro.registry import make_scheduler, scheduler_info
from repro.scheduler import SchedulingError
from repro.spec import DagSpec, MachineSpec, ProblemSpec, SolveRequest, SpecError


def tight_instance(P: int = 2, seed: int = 3):
    """A DAG plus a bound so tight that single-processor schedules violate it."""
    dag = spmv_dag(7, q=0.3, seed=seed)
    bound = float(np.ceil(dag.total_memory() / P) * 1.3)
    machine = BspMachine(P=P, g=2, l=3, memory_bound=bound)
    return dag, machine, bound


class TestMachineMemoryBound:
    def test_scalar_broadcasts(self):
        machine = BspMachine(P=3, memory_bound=10)
        assert machine.has_memory_bounds
        assert machine.memory_bounds.tolist() == [10.0, 10.0, 10.0]

    def test_per_processor_bounds(self):
        machine = BspMachine(P=2, memory_bound=[4, 8])
        assert machine.memory_bounds.tolist() == [4.0, 8.0]

    def test_wrong_length_rejected(self):
        with pytest.raises(MachineValidationError):
            BspMachine(P=2, memory_bound=[4, 8, 16])

    def test_negative_bound_rejected(self):
        with pytest.raises(MachineValidationError):
            BspMachine(P=2, memory_bound=-1)

    def test_zero_and_non_finite_bounds_rejected(self):
        # Strictly positive + finite, so 0 in flat exports means "unbounded".
        for bad in (0, float("nan"), float("inf")):
            with pytest.raises(MachineValidationError):
                BspMachine(P=2, memory_bound=bad)

    def test_with_and_without_memory_bound(self):
        machine = BspMachine(P=2, g=2, l=3)
        bounded = machine.with_memory_bound(6)
        assert bounded.has_memory_bounds and not machine.has_memory_bounds
        assert not bounded.without_memory_bound().has_memory_bounds
        assert bounded.g == machine.g and bounded.l == machine.l

    def test_with_parameters_keeps_bound(self):
        bounded = BspMachine(P=2, memory_bound=6).with_parameters(g=9)
        assert bounded.memory_bounds.tolist() == [6.0, 6.0]

    def test_describe_mentions_bound(self):
        assert "mem<=6" in BspMachine(P=2, memory_bound=6).describe()


class TestScheduleValidation:
    def test_validate_rejects_memory_overflow(self):
        dag = ComputationalDAG(4, [(0, 1), (1, 2), (2, 3)], memory=[3, 3, 3, 3])
        machine = BspMachine(P=2, g=1, l=1, memory_bound=6)
        overloaded = BspSchedule.trivial(dag, machine)
        errors = overloaded.validation_errors()
        assert any("memory bound" in error for error in errors)
        with pytest.raises(ScheduleValidationError, match="memory bound"):
            overloaded.validate()

    def test_balanced_schedule_passes(self):
        dag = ComputationalDAG(4, [], memory=[3, 3, 3, 3])
        machine = BspMachine(P=2, g=1, l=1, memory_bound=6)
        schedule = BspSchedule(dag, machine, np.array([0, 0, 1, 1]), np.zeros(4, dtype=int))
        assert schedule.is_valid()
        assert schedule.memory_usage().tolist() == [6.0, 6.0]

    def test_schedule_checked_enforces_bound(self):
        dag, machine, _ = tight_instance()
        from repro.baselines.trivial import TrivialScheduler

        with pytest.raises(SchedulingError, match="memory bound"):
            TrivialScheduler().schedule_checked(dag, machine)


class TestMemoryAwareGreedy:
    def test_feasible_where_unconstrained_variant_violates(self):
        # A chain offers no parallelism, so the unconstrained greedy
        # heuristics keep it on a single processor — which a per-processor
        # memory bound of half the total forbids.
        n = 10
        dag = ComputationalDAG(n, [(i, i + 1) for i in range(n - 1)], name="chain")
        machine = BspMachine(P=2, g=1, l=1, memory_bound=n // 2 + 1)
        for unaware in (BspGreedyScheduler(), BlEstScheduler()):
            unconstrained = unaware.schedule(dag, machine.without_memory_bound())
            usage = np.bincount(
                unconstrained.proc,
                weights=np.asarray(dag.memory, float),
                minlength=machine.P,
            )
            assert np.any(usage > machine.memory_bounds), unaware.name
        schedule = MemoryAwareGreedyScheduler().schedule_checked(dag, machine)
        assert np.all(schedule.memory_usage() <= machine.memory_bounds + 1e-9)

    def test_balance_policy_also_feasible(self):
        dag, machine, _ = tight_instance(seed=5)
        schedule = MemoryAwareGreedyScheduler(policy="balance").schedule_checked(dag, machine)
        assert schedule.is_valid()

    def test_explicit_bound_overrides_machine(self):
        dag, _, bound = tight_instance()
        machine = BspMachine(P=2, g=2, l=3)  # unbounded machine
        schedule = MemoryAwareGreedyScheduler(memory_bound=bound).schedule_checked(dag, machine)
        assert schedule.machine.has_memory_bounds

    def test_without_bound_behaves_like_list_scheduler(self):
        dag = spmv_dag(6, q=0.3, seed=1)
        machine = BspMachine(P=2, g=2, l=3)
        mem = MemoryAwareGreedyScheduler().schedule_checked(dag, machine)
        ref = BlEstScheduler().schedule_checked(dag, machine)
        assert mem.cost() == pytest.approx(ref.cost())

    def test_infeasible_instance_fails_loudly(self):
        dag = ComputationalDAG(2, [(0, 1)], memory=[5, 5])
        machine = BspMachine(P=2, g=1, l=1, memory_bound=4)
        with pytest.raises(SchedulingError, match="memory"):
            MemoryAwareGreedyScheduler().schedule(dag, machine)

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            MemoryAwareGreedyScheduler(policy="nope")


class TestRepairMemory:
    def test_repair_produces_valid_schedule(self):
        dag, machine, _ = tight_instance()
        violating = BspSchedule.trivial(dag, machine)
        assert not violating.is_valid()
        repaired = repair_memory(violating)
        assert repaired.is_valid()

    def test_repair_is_noop_without_bounds(self):
        dag = spmv_dag(5, q=0.3, seed=1)
        schedule = BspSchedule.trivial(dag, BspMachine(P=2, g=1, l=1))
        assert repair_memory(schedule) is schedule

    def test_unrepairable_overflow_raises(self):
        dag = ComputationalDAG(2, [], memory=[5, 5])
        machine = BspMachine(P=1, g=1, l=1, memory_bound=4)
        with pytest.raises(SchedulingError):
            repair_memory(BspSchedule.trivial(dag, machine))

    def test_repair_swaps_when_no_single_relocation_fits(self):
        # bounds [10, 10], proc0 = {6, 6} (overflows), proc1 = {4, 4}: no
        # single node of proc0 fits into proc1's slack of 2, but swapping a
        # 6 with a 4 yields the feasible {6, 4} / {6, 4} split.
        dag = ComputationalDAG(4, [], memory=[6, 6, 4, 4])
        machine = BspMachine(P=2, g=1, l=1, memory_bound=10)
        stuck = BspSchedule(
            dag, machine, np.array([0, 0, 1, 1]), np.zeros(4, dtype=int)
        )
        repaired = repair_memory(stuck)
        assert repaired.is_valid()
        assert sorted(repaired.memory_usage().tolist()) == [10.0, 10.0]

    def test_improver_falls_back_to_greedy_when_repair_gives_up(self):
        # Chain through the two heavy nodes so bspg piles them together and
        # a local repair may fail; the improver must still return a feasible
        # schedule via the greedy fallback rather than raising.
        dag = ComputationalDAG(4, [(0, 1)], memory=[6, 6, 4, 4])
        machine = BspMachine(P=2, g=1, l=1, memory_bound=10)
        schedule = make_scheduler("hc(max_moves=50)").schedule_checked(dag, machine)
        assert np.all(schedule.memory_usage() <= machine.memory_bounds + 1e-9)


class TestLocalSearchMemoryFilter:
    def test_candidate_moves_masked_by_bound(self):
        # Two independent nodes, each of memory 3, bound 3: neither node may
        # ever join the other's processor.
        dag = ComputationalDAG(2, [], memory=[3, 3])
        machine = BspMachine(P=2, g=1, l=1, memory_bound=3)
        schedule = BspSchedule(dag, machine, np.array([0, 1]), np.array([0, 0]))
        state = LocalSearchState(schedule)
        for v in range(2):
            for (_, p, _) in state.candidate_moves(v):
                assert p == int(schedule.proc[v])
        assert not state.is_move_valid(0, 1, 0)
        assert not state.is_move_valid(1, 0, 0)

    def test_unbounded_machine_not_filtered(self):
        dag = ComputationalDAG(2, [], memory=[3, 3])
        machine = BspMachine(P=2, g=1, l=1)
        state = LocalSearchState(BspSchedule(dag, machine, np.array([0, 1]), np.array([0, 0])))
        assert state.is_move_valid(0, 1, 0)

    def test_applied_moves_maintain_memory_accounting(self):
        dag, machine, _ = tight_instance()
        initial = MemoryAwareGreedyScheduler().schedule(dag, machine)
        state = LocalSearchState(initial)
        applied = 0
        for v in range(dag.n):
            for move in state.candidate_moves(v):
                state.apply_move(*move)
                applied += 1
                break
            if applied >= 5:
                break
        usage = state.current_schedule().memory_usage()
        assert np.allclose(usage, state.mem_used)
        assert np.all(usage <= machine.memory_bounds + 1e-9)

    def test_hc_stays_feasible_from_infeasible_init(self):
        dag, machine, _ = tight_instance()
        schedule = make_scheduler("hc(max_moves=100)").schedule_checked(dag, machine)
        assert np.all(schedule.memory_usage() <= machine.memory_bounds + 1e-9)

    def test_sa_stays_feasible(self):
        dag, machine, _ = tight_instance(seed=7)
        schedule = make_scheduler(
            "sa(steps=150, seed=1, init=greedy-mem)"
        ).schedule_checked(dag, machine)
        assert np.all(schedule.memory_usage() <= machine.memory_bounds + 1e-9)


class TestMultilevelMemory:
    def test_multilevel_config_spec_string(self):
        scheduler = make_scheduler("multilevel(memory_bound=12)")
        assert scheduler.config.memory_bound == 12

    def test_multilevel_respects_bound(self):
        dag, machine, _ = tight_instance(seed=11)
        schedule = make_scheduler("multilevel").schedule_checked(dag, machine)
        assert np.all(schedule.memory_usage() <= machine.memory_bounds + 1e-9)

    def test_multilevel_bound_via_config_on_unbounded_machine(self):
        dag, _, bound = tight_instance(seed=11)
        machine = BspMachine(P=2, g=2, l=3)
        schedule = make_scheduler(f"multilevel(memory_bound={bound})").schedule_checked(
            dag, machine
        )
        assert schedule.machine.has_memory_bounds
        assert np.all(schedule.memory_usage() <= schedule.machine.memory_bounds + 1e-9)


class TestSpecAndApiEntryPoints:
    def make_problem(self):
        dag, machine, bound = tight_instance()
        return ProblemSpec.from_instance(dag, machine), bound

    def test_machine_spec_round_trip(self):
        spec, bound = self.make_problem()
        assert spec.machine.memory_bound == bound
        rebuilt = ProblemSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.build_machine().memory_bounds.tolist() == [bound, bound]

    def test_per_processor_bound_round_trip(self):
        spec = MachineSpec(P=2, memory_bound=(8.0, 16.0))
        rebuilt = MachineSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.build().memory_bounds.tolist() == [8.0, 16.0]

    def test_mismatched_bound_length_rejected(self):
        with pytest.raises(SpecError):
            MachineSpec(P=2, memory_bound=(1.0, 2.0, 3.0))

    def test_spec_rejects_non_finite_and_non_positive_bounds(self):
        for bad in (0, -3, float("nan"), float("inf")):
            with pytest.raises(SpecError):
                MachineSpec(P=2, memory_bound=bad)
        with pytest.raises(SpecError):
            MachineSpec(P=2, memory_bound=(4.0, float("nan")))

    def test_dag_spec_keeps_memory_weights(self):
        dag = ComputationalDAG(3, [(0, 1)], work=[1, 1, 1], memory=[4, 5, 6])
        spec = DagSpec.from_dag(dag)
        assert spec.memory == (4, 5, 6)
        assert list(spec.build().memory) == [4, 5, 6]
        # Default memory weights stay implicit to keep inline specs compact.
        assert DagSpec.from_dag(ComputationalDAG(2, [(0, 1)])).memory is None

    def test_api_solve_memory_bounded(self):
        spec, _ = self.make_problem()
        result = api.solve(SolveRequest(spec=spec, scheduler="greedy-mem"))
        assert result.valid
        assert result.machine.memory_bound is not None

    def test_api_solve_rejects_unaware_scheduler_on_tight_instance(self):
        spec, _ = self.make_problem()
        with pytest.raises(SchedulingError, match="memory bound"):
            api.solve(SolveRequest(spec=spec, scheduler="trivial"))

    def test_solve_many_jobs2_byte_identical_for_new_schedulers(self):
        spec, bound = self.make_problem()
        requests = [
            SolveRequest(spec=spec, scheduler=s)
            for s in (
                "greedy-mem",
                "greedy-mem(policy=balance)",
                f"hc(init=greedy-mem, max_moves=100, memory_bound={bound})",
            )
        ]
        serial = io.StringIO()
        api.write_results([api.solve(r) for r in requests], serial)
        parallel = io.StringIO()
        api.write_results(api.solve_many(requests, jobs=2), parallel)
        assert serial.getvalue() == parallel.getvalue()

    def test_registry_metadata(self):
        info = scheduler_info("greedy-mem")
        assert info.deterministic
        assert "memory" in info.description.lower()
        assert scheduler_info("hc").accepts("memory_bound")
        assert scheduler_info("multilevel").accepts("memory_bound")


class TestCliEntryPoint:
    def test_schedule_with_memory_bound_flag(self, capsys):
        from repro.cli import main

        code = main(
            [
                "schedule",
                "--kind",
                "spmv",
                "--size",
                "6",
                "-P",
                "2",
                "-g",
                "2",
                "-l",
                "3",
                "--memory-bound",
                "1000",
                "--schedulers",
                "greedy-mem,hc(init=greedy-mem, max_moves=50)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "greedy-mem" in out

    def test_tight_bound_via_spec_file(self, tmp_path, capsys):
        from repro.cli import main

        dag, machine, _ = tight_instance()
        request = SolveRequest(
            spec=ProblemSpec.from_instance(dag, machine), scheduler="greedy-mem"
        )
        path = tmp_path / "request.json"
        path.write_text(request.to_json())
        assert main(["schedule", "--spec", str(path)]) == 0
        assert "schedule" in capsys.readouterr().out
