"""Size-bounded eviction of the on-disk SolutionCache tier.

Covers the eviction contract (budgets enforced on put and via
:meth:`SolutionCache.evict`, LRU ordering derived from the per-shard access
journals, journal compaction, dry runs, the ``repro cache-gc`` subcommand)
and the ``disk_stats`` stray-directory regression.
"""

import json

import pytest

from repro.api import to_solve_result
from repro.cli import main as cli_main
from repro.experiments.runner import WorkItem, execute_work_item_tolerant
from repro.portfolio.cache import JOURNAL_NAME, SolutionCache
from repro.portfolio.features import instance_signature
from repro.spec import DagSpec, MachineSpec, ProblemSpec, SolveRequest


@pytest.fixture(scope="module")
def solved():
    """One deterministic solved instance: (signature, result, schedule)."""
    request = SolveRequest(
        spec=ProblemSpec(
            dag=DagSpec.generator("spmv", n=8, q=0.3, seed=5),
            machine=MachineSpec(P=2, g=2, l=3),
        ),
        scheduler="etf",
    )
    item = WorkItem.from_request(request, keep_schedule=True)
    outcome = execute_work_item_tolerant(item)
    assert outcome.valid and outcome.schedule is not None
    return (
        instance_signature(item.dag, item.machine),
        to_solve_result(item, outcome),
        outcome.schedule,
    )


def fill(cache, solved, specs, signature=None):
    """Store one entry per scheduler-spec string (distinct keys, one shard)."""
    sig, result, schedule = solved
    sig = signature or sig
    for spec in specs:
        cache.put(sig, spec, None, result, schedule)
    return sig


class TestDiskStats:
    def test_stray_directories_do_not_count_as_shards(self, tmp_path, solved):
        """Regression: ``shards`` counted every subdirectory, committed
        entries or not, so editor droppings inflated ``repro cache-stats``."""
        cache = SolutionCache(tmp_path / "cache")
        fill(cache, solved, ["etf"])
        (cache.root / "stray").mkdir()  # empty non-shard directory
        noise = cache.root / "zz"
        noise.mkdir()
        (noise / "README.txt").write_text("not a cache entry")
        stats = cache.disk_stats()
        assert stats == {"entries": 1, "bytes": stats["bytes"], "shards": 1}
        assert stats["bytes"] > 0

    def test_journal_files_are_not_entries(self, tmp_path, solved):
        cache = SolutionCache(tmp_path / "cache")
        sig = fill(cache, solved, ["a", "b"])
        assert (cache.root / sig[:2] / JOURNAL_NAME).exists()
        assert cache.disk_stats()["entries"] == 2


class TestEviction:
    def test_put_enforces_entry_budget(self, tmp_path, solved):
        cache = SolutionCache(tmp_path / "cache", max_disk_entries=3)
        fill(cache, solved, [f"s{k}" for k in range(6)])
        assert cache.disk_stats()["entries"] <= 3
        assert cache.evictions >= 3
        # The newest entries survive; the oldest are gone.  Read through a
        # fresh instance so hits must come from disk, not the memory LRU.
        sig, result, _ = solved
        fresh = SolutionCache(tmp_path / "cache", max_memory_entries=0)
        assert fresh.get(sig, "s5", None) is not None
        assert fresh.get(sig, "s0", None) is None

    def test_put_enforces_byte_budget(self, tmp_path, solved):
        probe = SolutionCache(tmp_path / "probe")
        sig, result, schedule = solved
        entry_bytes = probe.put(sig, "probe", None, result, schedule).stat().st_size
        budget = int(entry_bytes * 2.5)
        cache = SolutionCache(tmp_path / "cache", max_disk_bytes=budget)
        fill(cache, solved, [f"s{k}" for k in range(5)])
        stats = cache.disk_stats()
        assert stats["bytes"] <= budget
        assert 1 <= stats["entries"] <= 2

    def test_byte_budget_always_admits_the_newest_entry(self, tmp_path, solved):
        cache = SolutionCache(tmp_path / "cache", max_disk_bytes=1)
        sig = fill(cache, solved, ["only"])
        assert cache.disk_stats()["entries"] == 1
        fresh = SolutionCache(tmp_path / "cache", max_memory_entries=0)
        assert fresh.get(sig, "only", None) is not None

    def test_journal_access_keeps_hot_entries(self, tmp_path, solved):
        """A disk read refreshes an entry's LRU position: the oldest-stored
        but recently-read entry outlives a younger never-read one."""
        sig, result, schedule = solved
        cache = SolutionCache(tmp_path / "cache", max_memory_entries=0)
        fill(cache, solved, ["a", "b", "c"])
        assert cache.get(sig, "a", None) is not None  # refresh "a" on disk
        cache.max_disk_entries = 3
        cache.put(sig, "d", None, result, schedule)  # over budget: evict one
        fresh = SolutionCache(tmp_path / "cache", max_memory_entries=0)
        assert fresh.get(sig, "a", None) is not None, "recently read must survive"
        assert fresh.get(sig, "b", None) is None, "coldest entry must be evicted"
        assert fresh.get(sig, "d", None) is not None

    def test_surviving_entries_serve_identical_bytes(self, tmp_path, solved):
        sig, result, _ = solved
        cache = SolutionCache(tmp_path / "cache", max_disk_entries=2)
        fill(cache, solved, [f"s{k}" for k in range(5)])
        fresh = SolutionCache(tmp_path / "cache", max_memory_entries=0)
        survivors = [
            spec for spec in (f"s{k}" for k in range(5))
            if fresh.get(sig, spec, None) is not None
        ]
        assert survivors, "the budget keeps at least the newest entries"
        for spec in survivors:
            entry = fresh.get(sig, spec, None)
            assert entry is not None and entry.result is not None
            assert entry.result.to_json() == result.to_json()

    def test_evict_dry_run_deletes_nothing(self, tmp_path, solved):
        cache = SolutionCache(tmp_path / "cache")
        fill(cache, solved, [f"s{k}" for k in range(4)])
        report = cache.evict(max_entries=1, dry_run=True)
        assert report["evicted_entries"] == 3
        assert report["remaining_entries"] == 1
        assert cache.disk_stats()["entries"] == 4, "dry run must not delete"
        assert cache.evictions == 0

    def test_evict_report_is_consistent(self, tmp_path, solved):
        cache = SolutionCache(tmp_path / "cache")
        fill(cache, solved, [f"s{k}" for k in range(4)])
        before = cache.disk_stats()
        report = cache.evict(max_entries=2)
        assert report["scanned_entries"] == 4
        assert report["scanned_bytes"] == before["bytes"]
        assert report["evicted_entries"] == 2
        assert report["remaining_entries"] == 2
        after = cache.disk_stats()
        assert after["entries"] == 2
        assert after["bytes"] == report["remaining_bytes"]
        assert cache.stats()["evictions"] == 2

    def test_unbounded_cache_never_evicts(self, tmp_path, solved):
        cache = SolutionCache(tmp_path / "cache")
        fill(cache, solved, [f"s{k}" for k in range(6)])
        assert cache.disk_stats()["entries"] == 6
        assert cache.evictions == 0

    def test_env_knobs_bound_the_cache(self, tmp_path, solved, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "2")
        cache = SolutionCache(tmp_path / "cache")
        assert cache.max_disk_entries == 2
        fill(cache, solved, [f"s{k}" for k in range(4)])
        assert cache.disk_stats()["entries"] <= 2

    def test_multiple_shards_evict_coldest_globally(self, tmp_path, solved):
        sig, result, schedule = solved
        other_sig = ("00" if sig[:2] != "00" else "ff") + sig[2:]
        cache = SolutionCache(tmp_path / "cache")
        cache.put(sig, "old", None, result, schedule)
        cache.put(other_sig, "new", None, result, schedule)
        report = cache.evict(max_entries=1)
        assert report["remaining_entries"] == 1
        fresh = SolutionCache(tmp_path / "cache", max_memory_entries=0)
        assert fresh.get(other_sig, "new", None) is not None
        assert fresh.get(sig, "old", None) is None


class TestJournal:
    def test_journal_compaction_bounds_the_file(self, tmp_path, solved, monkeypatch):
        import repro.portfolio.cache as cache_mod

        monkeypatch.setattr(cache_mod, "JOURNAL_COMPACT_BYTES", 400)
        cache = SolutionCache(tmp_path / "cache", max_memory_entries=0)
        sig = fill(cache, solved, ["a", "b"])
        for _ in range(40):  # disk reads append; compaction keeps it bounded
            cache.get(sig, "a", None)
            cache.get(sig, "b", None)
        journal = cache.root / sig[:2] / JOURNAL_NAME
        assert journal.stat().st_size <= 400 + 2 * 65
        lines = [line for line in journal.read_text().splitlines() if line]
        assert len(set(lines)) <= 2

    def test_compaction_drops_evicted_keys(self, tmp_path, solved):
        cache = SolutionCache(tmp_path / "cache")
        sig = fill(cache, solved, ["a", "b", "c"])
        cache.evict(max_entries=1)
        journal = cache.root / sig[:2] / JOURNAL_NAME
        lines = set(journal.read_text().splitlines())
        live = {p.stem for p in (cache.root / sig[:2]).glob("*.json")}
        assert lines <= live
        assert len(live) == 1

    def test_missing_journal_still_evicts_deterministically(self, tmp_path, solved):
        sig, result, schedule = solved
        cache = SolutionCache(tmp_path / "cache")
        fill(cache, solved, ["a", "b", "c"])
        (cache.root / sig[:2] / JOURNAL_NAME).unlink()
        report = cache.evict(max_entries=1)
        assert report["remaining_entries"] == 1
        # No access order left: ties break on the key, so two runs of the
        # same eviction agree on the survivor.
        survivors = sorted(p.stem for p in (cache.root / sig[:2]).glob("*.json"))
        assert len(survivors) == 1


class TestCacheGcCli:
    def test_cache_gc_enforces_budget(self, tmp_path, solved, capsys):
        cache = SolutionCache(tmp_path / "cache")
        fill(cache, solved, [f"s{k}" for k in range(4)])
        rc = cli_main(
            ["cache-gc", "--cache-dir", str(cache.root), "--max-entries", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "evicted 3 entries" in out
        assert SolutionCache(cache.root).disk_stats()["entries"] == 1

    def test_cache_gc_dry_run(self, tmp_path, solved, capsys):
        cache = SolutionCache(tmp_path / "cache")
        fill(cache, solved, ["a", "b"])
        rc = cli_main(
            [
                "cache-gc",
                "--cache-dir",
                str(cache.root),
                "--max-entries",
                "1",
                "--dry-run",
            ]
        )
        assert rc == 0
        assert "dry run" in capsys.readouterr().out
        assert SolutionCache(cache.root).disk_stats()["entries"] == 2

    def test_cache_gc_without_directory_fails(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit, match="no cache directory"):
            cli_main(["cache-gc"])

    def test_cache_stats_reports_eviction_counter(self, tmp_path, solved, capsys):
        cache = SolutionCache(tmp_path / "cache")
        fill(cache, solved, ["a"])
        rc = cli_main(["cache-stats", "--cache-dir", str(cache.root)])
        assert rc == 0
        assert "evictions" in capsys.readouterr().out


class TestEvictedEntryPayloads:
    def test_survivor_files_are_intact_json(self, tmp_path, solved):
        cache = SolutionCache(tmp_path / "cache", max_disk_entries=2)
        fill(cache, solved, [f"s{k}" for k in range(5)])
        for path in sorted(cache.root.glob("*/*.json")):
            payload = json.loads(path.read_text())
            assert payload["key"] == path.stem
