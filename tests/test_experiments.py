"""Tests for the experiment harness: reporting, datasets, runner, tables."""


import pytest

from repro.experiments import tables as paper_tables
from repro.experiments.datasets import build_dataset, build_training_set, dataset_range, fit_fine_grained
from repro.experiments.report import Table, format_percent, geometric_mean, improvement
from repro.experiments.runner import run_experiment, run_instance, stage_ratio_summary
from repro.graphs.fine import spmv_dag
from repro.model.machine import BspMachine
from repro.pipeline.config import MultilevelConfig, PipelineConfig


class TestReport:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_improvement(self):
        assert improvement([0.5, 0.5]) == pytest.approx(0.5)
        assert improvement([1.0]) == pytest.approx(0.0)

    def test_format_percent(self):
        assert format_percent(0.24) == "24%"
        assert format_percent(0.123, digits=1) == "12.3%"

    def test_table_rendering(self):
        table = Table("Demo", ["a", "b"])
        table.add_row(1, "x")
        table.add_row(22, "yy")
        table.add_note("a note")
        text = table.to_text()
        assert "Demo" in text and "22" in text and "note" in text
        md = table.to_markdown()
        assert md.count("|") > 4

    def test_table_rejects_wrong_row_length(self):
        table = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)


class TestDatasets:
    def test_dataset_range_lookup(self):
        assert dataset_range("tiny", "paper") == (40, 80)
        assert dataset_range("huge", "reduced")[0] > dataset_range("large", "reduced")[0]
        with pytest.raises(ValueError):
            dataset_range("tiny", "gigantic")
        with pytest.raises(ValueError):
            dataset_range("colossal")

    def test_fit_fine_grained_hits_target(self):
        for kind in ("spmv", "exp", "cg", "knn"):
            dag = fit_fine_grained(kind, 120, seed=1)
            assert 120 * 0.4 <= dag.n <= 120 * 2.5

    def test_fit_rejects_tiny_target(self):
        with pytest.raises(ValueError):
            fit_fine_grained("spmv", 2)

    def test_build_smoke_dataset(self):
        dags = build_dataset("tiny", scale="smoke", max_instances=5)
        assert 0 < len(dags) <= 5
        lo, hi = dataset_range("tiny", "smoke")
        for dag in dags:
            assert dag.n <= hi * 3  # fitting tolerance keeps sizes in the ballpark
            assert dag.is_edge_contractable is not None  # it is a ComputationalDAG

    def test_build_training_set(self):
        dags = build_training_set(scale="smoke")
        assert len(dags) == 10
        assert any("spmv" in d.name for d in dags)
        sizes = [d.n for d in dags]
        assert max(sizes) > min(sizes)


class TestRunner:
    @pytest.fixture(scope="class")
    def small_instances(self):
        return [spmv_dag(5, q=0.3, seed=1), spmv_dag(6, q=0.3, seed=2)]

    @pytest.fixture(scope="class")
    def fast_config(self):
        return PipelineConfig.fast()

    def test_run_instance_records_all_labels(self, small_instances, fast_config):
        machine = BspMachine(P=2, g=2, l=3)
        result = run_instance(small_instances[0], machine, pipeline_config=fast_config)
        for label in ("Cilk", "HDagg", "BL-EST", "ETF", "Trivial", "Init", "HCcs", "ILP"):
            assert label in result.costs
            assert result.costs[label] > 0
        assert result.ratio("ILP", "Cilk") <= 1.5

    def test_baselines_only_mode(self, small_instances):
        machine = BspMachine(P=2, g=2, l=3)
        result = run_instance(small_instances[0], machine, baselines_only=True)
        assert "ILP" not in result.costs and "Cilk" in result.costs

    def test_experiment_aggregation(self, small_instances, fast_config):
        machine = BspMachine(P=2, g=2, l=3)
        experiment = run_experiment(small_instances, machine, pipeline_config=fast_config)
        assert len(experiment.instances) == 2
        ratio = experiment.mean_ratio("ILP", "Cilk")
        assert 0 < ratio <= 1.2
        assert experiment.improvement("ILP", "Cilk") == pytest.approx(1 - ratio)
        summary = stage_ratio_summary(experiment, "Cilk", ["Cilk", "ILP"])
        assert summary["Cilk"] == pytest.approx(1.0)

    def test_multilevel_labels_present_when_requested(self, small_instances, fast_config):
        machine = BspMachine.hierarchical(P=4, delta=2, g=1, l=3)
        ml = MultilevelConfig(
            coarsening_ratios=(0.3,), min_coarse_nodes=4, hc_moves_per_refinement=10,
            base_pipeline=fast_config,
        )
        result = run_instance(
            small_instances[0], machine, pipeline_config=fast_config, multilevel_config=ml
        )
        assert "ML" in result.costs and "ML@0.3" in result.costs


class TestPaperTables:
    """Smoke tests of the table generators on minimal inputs."""

    @pytest.fixture(scope="class")
    def tiny_datasets(self):
        return {"tiny": [spmv_dag(5, q=0.3, seed=3)]}

    @pytest.fixture(scope="class")
    def fast_config(self):
        return PipelineConfig.fast()

    def test_table1_and_figure5_share_grid(self, tiny_datasets, fast_config):
        t_left, t_right, grid = paper_tables.make_table1_no_numa(
            tiny_datasets, P_values=(2,), g_values=(1,), latency=3, config=fast_config
        )
        assert len(t_left.rows) == 1 and len(t_right.rows) == 1
        fig5, _ = paper_tables.make_figure5_stage_ratios(
            tiny_datasets, P_values=(2,), g_values=(1,), latency=3, config=fast_config, grid=grid
        )
        assert fig5.rows[0][1] == "1.000"  # Cilk normalized to itself

    def test_table9_latency(self, tiny_datasets, fast_config):
        table = paper_tables.make_table9_latency(
            tiny_datasets["tiny"], latencies=(2, 5), P=2, g=1, config=fast_config
        )
        assert len(table.rows) == 2

    def test_table11_and_figure7(self, tiny_datasets):
        config = PipelineConfig.heuristics_only()
        table, grid = paper_tables.make_table11_huge(
            tiny_datasets["tiny"], P_values=(2,), g_values=(1,), latency=3, config=config
        )
        fig = paper_tables.make_figure7_huge_stages(
            tiny_datasets["tiny"], P_values=(2,), g_values=(1,), latency=3, config=config, grid=grid
        )
        assert len(table.rows) == 1 and len(fig.rows) == 1
