"""Tests for the CCR-based adaptive scheduler (framework vs multilevel)."""

import pytest

from repro.graphs.dag import ComputationalDAG
from repro.graphs.fine import exp_dag
from repro.model.machine import BspMachine
from repro.pipeline.adaptive import AdaptiveScheduler
from repro.pipeline.config import MultilevelConfig, PipelineConfig


@pytest.fixture
def adaptive():
    fast = PipelineConfig.fast()
    return AdaptiveScheduler(
        pipeline_config=fast,
        multilevel_config=MultilevelConfig(
            coarsening_ratios=(0.3,), min_coarse_nodes=6, hc_moves_per_refinement=10,
            base_pipeline=fast,
        ),
        ccr_threshold=8.0,
        margin=0.25,
    )


class TestDispatchLogic:
    def test_low_ccr_uses_base_only(self, adaptive):
        use_base, use_ml = adaptive._strategies(1.0)
        assert use_base and not use_ml

    def test_high_ccr_uses_multilevel_only(self, adaptive):
        use_base, use_ml = adaptive._strategies(100.0)
        assert use_ml and not use_base

    def test_band_runs_both(self, adaptive):
        use_base, use_ml = adaptive._strategies(8.0)
        assert use_base and use_ml

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveScheduler(ccr_threshold=0)
        with pytest.raises(ValueError):
            AdaptiveScheduler(margin=-0.1)


class TestEndToEnd:
    def test_cheap_communication_instance(self, adaptive, spmv_small):
        machine = BspMachine(P=4, g=1, l=2)
        schedule = adaptive.schedule_checked(spmv_small, machine)
        decision = adaptive.last_decision
        assert decision is not None
        assert decision.used_base and not decision.used_multilevel
        assert schedule.cost() == pytest.approx(decision.base_cost)

    def test_communication_dominated_instance(self, adaptive):
        dag = exp_dag(6, k=2, q=0.3, seed=5)
        machine = BspMachine.hierarchical(P=16, delta=4, g=4, l=5)
        schedule = adaptive.schedule_checked(dag, machine)
        decision = adaptive.last_decision
        assert decision.used_multilevel
        assert schedule.cost() == pytest.approx(min(
            c for c in (decision.base_cost, decision.multilevel_cost) if c is not None
        ))

    def test_tiny_dag_falls_back_to_base(self, adaptive, machine4):
        dag = ComputationalDAG(3, [(0, 1), (1, 2)], comm=[50, 50, 50])
        adaptive.schedule_checked(dag, machine4)
        assert adaptive.last_decision.used_base
        assert not adaptive.last_decision.used_multilevel
