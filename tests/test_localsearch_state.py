"""Tests for the incremental local-search state (cost maintenance, moves)."""

import numpy as np
import pytest

from repro.baselines.hdagg import HDaggScheduler
from repro.baselines.trivial import LevelRoundRobinScheduler
from repro.graphs.dag import ComputationalDAG
from repro.localsearch.state import LocalSearchState
from repro.model.schedule import BspSchedule


def make_state(dag, machine, scheduler=None):
    scheduler = scheduler or LevelRoundRobinScheduler()
    return LocalSearchState(scheduler.schedule(dag, machine))


class TestInitialState:
    def test_initial_cost_matches_exact_evaluation(self, all_test_dags, machine4):
        for dag in all_test_dags:
            state = make_state(dag, machine4)
            assert state.total_cost == pytest.approx(state.recompute_cost())

    def test_initial_cost_matches_with_numa(self, layered_dag, numa_machine):
        state = make_state(layered_dag, numa_machine)
        assert state.total_cost == pytest.approx(state.recompute_cost())


class TestMoveValidity:
    def test_no_op_move_is_invalid(self, diamond_dag, machine4):
        state = make_state(diamond_dag, machine4)
        v = 0
        assert not state.is_move_valid(v, int(state.proc[v]), int(state.step[v]))

    def test_negative_superstep_invalid(self, diamond_dag, machine4):
        state = make_state(diamond_dag, machine4)
        assert not state.is_move_valid(0, 0, -1)

    def test_out_of_range_processor_invalid(self, diamond_dag, machine4):
        state = make_state(diamond_dag, machine4)
        assert not state.is_move_valid(0, machine4.P, 0)

    def test_cannot_move_before_cross_processor_parent(self, machine2):
        dag = ComputationalDAG(2, [(0, 1)])
        sched = BspSchedule(dag, machine2, np.array([0, 1]), np.array([0, 1]))
        state = LocalSearchState(sched)
        # Moving node 1 into superstep 0 on processor 1 would require the
        # value of 0 to arrive without any communication phase in between.
        assert not state.is_move_valid(1, 1, 0)
        # Moving it onto processor 0 in superstep 0 is fine (same processor).
        assert state.is_move_valid(1, 0, 0)

    def test_cannot_move_after_successor(self, machine2):
        dag = ComputationalDAG(2, [(0, 1)])
        sched = BspSchedule(dag, machine2, np.array([0, 0]), np.array([0, 0]))
        state = LocalSearchState(sched)
        assert not state.is_move_valid(0, 1, 1)  # child on other proc at step 0

    def test_candidate_moves_are_all_valid(self, layered_dag, machine4):
        state = make_state(layered_dag, machine4)
        for v in range(layered_dag.n):
            for (node, p, s) in state.candidate_moves(v):
                assert node == v
                assert state.is_move_valid(node, p, s)


class TestIncrementalCost:
    def test_apply_move_matches_exact_recomputation(self, layered_dag, machine4):
        state = make_state(layered_dag, machine4)
        rng = np.random.default_rng(1)
        applied = 0
        for _ in range(200):
            v = int(rng.integers(layered_dag.n))
            moves = state.candidate_moves(v)
            if not moves:
                continue
            _, p, s = moves[int(rng.integers(len(moves)))]
            state.apply_move(v, p, s)
            applied += 1
            assert state.total_cost == pytest.approx(state.recompute_cost()), (
                f"incremental cost diverged after move {applied}"
            )
        assert applied > 20

    def test_apply_move_matches_exact_recomputation_numa(self, spmv_small, numa_machine):
        state = make_state(spmv_small, numa_machine, HDaggScheduler())
        rng = np.random.default_rng(7)
        for _ in range(100):
            v = int(rng.integers(spmv_small.n))
            moves = state.candidate_moves(v)
            if not moves:
                continue
            _, p, s = moves[int(rng.integers(len(moves)))]
            state.apply_move(v, p, s)
        assert state.total_cost == pytest.approx(state.recompute_cost())

    def test_apply_and_revert_restores_cost(self, fork_join_dag, machine4):
        state = make_state(fork_join_dag, machine4)
        before = state.total_cost
        for v in range(fork_join_dag.n):
            moves = state.candidate_moves(v)
            if not moves:
                continue
            _, p, s = moves[0]
            old_p, old_s = int(state.proc[v]), int(state.step[v])
            state.apply_move(v, p, s)
            state.apply_move(v, old_p, old_s)
            assert state.total_cost == pytest.approx(before)

    def test_evaluate_move_leaves_state_unchanged(self, diamond_dag, machine4):
        state = make_state(diamond_dag, machine4)
        snapshot_proc = state.proc.copy()
        snapshot_step = state.step.copy()
        before = state.total_cost
        for v in range(diamond_dag.n):
            for (_, p, s) in state.candidate_moves(v):
                state.evaluate_move(v, p, s)
        assert state.total_cost == pytest.approx(before)
        assert np.array_equal(state.proc, snapshot_proc)
        assert np.array_equal(state.step, snapshot_step)

    def test_move_into_new_superstep_grows_capacity(self, chain_dag, machine2):
        sched = BspSchedule(chain_dag, machine2, np.zeros(5, int), np.zeros(5, int))
        state = LocalSearchState(sched)
        last = 4  # the chain's sink
        target_step = state.S + 2  # beyond current capacity
        state._ensure_capacity(target_step)
        assert state.S > target_step

    def test_to_schedule_is_valid_and_costs_match(self, layered_dag, machine4):
        state = make_state(layered_dag, machine4)
        rng = np.random.default_rng(3)
        for _ in range(50):
            v = int(rng.integers(layered_dag.n))
            moves = state.candidate_moves(v)
            if moves:
                _, p, s = moves[int(rng.integers(len(moves)))]
                state.apply_move(v, p, s)
        uncompacted = state.current_schedule()
        assert uncompacted.is_valid()
        assert uncompacted.cost() == pytest.approx(state.total_cost)
        compacted = state.to_schedule()
        assert compacted.is_valid()
        # Removing empty supersteps can only help (latency term shrinks).
        assert compacted.cost() <= state.total_cost + 1e-9
