"""Tests for the MILP solver backends (HiGHS and branch-and-bound)."""

import pytest

from repro.ilp.bnb import solve_branch_and_bound
from repro.ilp.model import IlpModel
from repro.ilp.solver import SolverStatus, solve, solve_with_highs


def knapsack_model():
    """max 5x + 4y + 3z s.t. 2x + 3y + z <= 5 over binaries -> optimum 9 (x=y=1)."""
    m = IlpModel("knapsack")
    x = m.add_binary("x")
    y = m.add_binary("y")
    z = m.add_binary("z")
    m.add_le({x: 2.0, y: 3.0, z: 1.0}, 5.0)
    # Minimization form: negate the profits.
    m.set_objective({x: -5.0, y: -4.0, z: -3.0})
    return m, (x, y, z)


def infeasible_model():
    m = IlpModel("infeasible")
    x = m.add_binary("x")
    m.add_ge({x: 1.0}, 2.0)
    return m


def fractional_lp_model():
    """A model whose LP relaxation is fractional, forcing actual branching."""
    m = IlpModel("frac")
    x = m.add_variable("x", 0, 10, integer=True)
    y = m.add_variable("y", 0, 10, integer=True)
    m.add_le({x: 2.0, y: 2.0}, 7.0)
    m.set_objective({x: -1.0, y: -1.0})
    return m


class TestHighsBackend:
    def test_knapsack_optimum(self):
        model, (x, y, z) = knapsack_model()
        result = solve_with_highs(model)
        assert result.status == SolverStatus.OPTIMAL
        assert result.objective == pytest.approx(-9.0)
        # The selected items must satisfy the capacity and reach profit 9.
        profit = 5 * result.value(x) + 4 * result.value(y) + 3 * result.value(z)
        weight = 2 * result.value(x) + 3 * result.value(y) + 1 * result.value(z)
        assert profit == pytest.approx(9.0)
        assert weight <= 5.0 + 1e-9

    def test_infeasible_detected(self):
        result = solve_with_highs(infeasible_model())
        assert result.status == SolverStatus.INFEASIBLE
        assert not result.has_solution
        with pytest.raises(ValueError):
            result.value(0)

    def test_objective_constant_included(self):
        model, _ = knapsack_model()
        model.objective_constant = 100.0
        result = solve_with_highs(model)
        assert result.objective == pytest.approx(91.0)


class TestBranchAndBoundBackend:
    def test_matches_highs_on_knapsack(self):
        model, _ = knapsack_model()
        bnb = solve_branch_and_bound(model)
        highs = solve_with_highs(model)
        assert bnb.status in (SolverStatus.OPTIMAL, SolverStatus.FEASIBLE)
        assert bnb.objective == pytest.approx(highs.objective)

    def test_branches_on_fractional_relaxation(self):
        result = solve_branch_and_bound(fractional_lp_model())
        assert result.has_solution
        # Integer optimum: x + y = 3 (e.g. 3.5 rounded down).
        assert result.objective == pytest.approx(-3.0)

    def test_infeasible(self):
        result = solve_branch_and_bound(infeasible_model())
        assert result.status == SolverStatus.INFEASIBLE

    def test_respects_node_limit(self):
        result = solve_branch_and_bound(fractional_lp_model(), max_nodes=0)
        assert result.status in (SolverStatus.NO_SOLUTION, SolverStatus.FEASIBLE, SolverStatus.OPTIMAL)


class TestDispatcher:
    def test_backend_selection(self):
        model, _ = knapsack_model()
        assert solve(model, backend="highs").objective == pytest.approx(-9.0)
        assert solve(model, backend="bnb").objective == pytest.approx(-9.0)

    def test_unknown_backend_rejected(self):
        model, _ = knapsack_model()
        with pytest.raises(ValueError):
            solve(model, backend="gurobi")
