"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.cli import build_parser, main
from repro.graphs.fine import spmv_dag
from repro.graphs.hyperdag import read_hyperdag, write_hyperdag


@pytest.fixture
def hyperdag_file(tmp_path):
    path = tmp_path / "example.hdag"
    write_hyperdag(spmv_dag(6, q=0.3, seed=4), path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_schedule_defaults(self):
        args = build_parser().parse_args(["schedule", "--kind", "spmv"])
        assert args.processors == 4 and args.scheduler == "framework"

    def test_generate_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--kind", "spmv"])


class TestGenerateAndInfo:
    def test_generate_writes_readable_hyperdag(self, tmp_path, capsys):
        out = tmp_path / "generated.hdag"
        code = main(["generate", "--kind", "spmv", "--size", "6", "--seed", "1", "--out", str(out)])
        assert code == 0
        dag = read_hyperdag(out)
        assert dag.n > 0
        assert "nodes" in capsys.readouterr().out

    def test_generate_coarse_kind(self, tmp_path):
        out = tmp_path / "cg.hdag"
        assert main(["generate", "--kind", "pagerank", "--iterations", "4", "--out", str(out)]) == 0
        assert read_hyperdag(out).n > 10

    def test_generate_unknown_kind(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--kind", "fft", "--out", str(tmp_path / "x.hdag")])

    def test_info_prints_statistics(self, hyperdag_file, capsys):
        assert main(["info", str(hyperdag_file)]) == 0
        out = capsys.readouterr().out
        assert "depth" in out and "total_work" in out


class TestScheduleCommand:
    def test_schedule_from_file_with_comparison(self, hyperdag_file, capsys, tmp_path):
        out_csv = tmp_path / "assignment.csv"
        code = main(
            [
                "schedule",
                str(hyperdag_file),
                "-P", "2", "-g", "2", "-l", "3",
                "--scheduler", "hdagg",
                "--compare", "cilk", "trivial",
                "--gantt",
                "--out", str(out_csv),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "hdagg schedule" in output
        assert "comparison" in output and "cilk" in output
        lines = out_csv.read_text().strip().splitlines()
        assert lines[0] == "node,processor,superstep"
        assert len(lines) == read_hyperdag(hyperdag_file).n + 1

    def test_schedule_generated_numa_instance(self, capsys):
        code = main(
            [
                "schedule",
                "--kind", "cg", "--size", "5", "--iterations", "1",
                "-P", "4", "--delta", "2",
                "--scheduler", "source",
            ]
        )
        assert code == 0
        assert "total cost" in capsys.readouterr().out

    def test_schedule_requires_input(self):
        with pytest.raises(SystemExit):
            main(["schedule", "-P", "2"])

    def test_unknown_scheduler_rejected(self, hyperdag_file):
        with pytest.raises(ValueError):
            main(["schedule", str(hyperdag_file), "--scheduler", "magic"])


class TestReproCommand:
    def test_list_targets(self, capsys):
        assert main(["repro", "--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig7" in out

    def test_no_target_prints_listing(self, capsys):
        assert main(["repro"]) == 0
        assert "pick a target" in capsys.readouterr().out

    def test_unknown_target_exits_with_message(self):
        with pytest.raises(SystemExit, match="unknown repro target"):
            main(["repro", "table99"])

    def test_runs_a_target_with_jobs(self, capsys):
        # fig7 is heuristics-only (no ILP), so this stays fast at smoke scale.
        assert main(["repro", "fig7", "--jobs", "2", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out and "|" in out


class TestSchedulersFlag:
    def test_schedulers_overrides_scheduler_and_compare(self, capsys):
        code = main([
            "schedule", "--kind", "spmv", "--size", "5", "-P", "2",
            "--scheduler", "framework", "--compare", "etf",
            "--schedulers", "cilk,hdagg",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cilk schedule" in out and "hdagg" in out
        assert "framework" not in out and "etf" not in out

    def test_schedulers_with_parallel_jobs(self, capsys):
        code = main([
            "schedule", "--kind", "spmv", "--size", "5", "-P", "2",
            "--schedulers", "cilk,hdagg", "--jobs", "2",
        ])
        assert code == 0
        assert "comparison" in capsys.readouterr().out

    def test_empty_schedulers_rejected(self):
        with pytest.raises(SystemExit, match="at least one scheduler"):
            main(["schedule", "--kind", "spmv", "--size", "5", "--schedulers", ",,"])
