"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.cli import build_parser, main
from repro.graphs.fine import spmv_dag
from repro.graphs.hyperdag import read_hyperdag, write_hyperdag


@pytest.fixture
def hyperdag_file(tmp_path):
    path = tmp_path / "example.hdag"
    write_hyperdag(spmv_dag(6, q=0.3, seed=4), path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_schedule_defaults(self):
        args = build_parser().parse_args(["schedule", "--kind", "spmv"])
        assert args.processors == 4 and args.scheduler == "framework"

    def test_generate_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--kind", "spmv"])


class TestGenerateAndInfo:
    def test_generate_writes_readable_hyperdag(self, tmp_path, capsys):
        out = tmp_path / "generated.hdag"
        code = main(["generate", "--kind", "spmv", "--size", "6", "--seed", "1", "--out", str(out)])
        assert code == 0
        dag = read_hyperdag(out)
        assert dag.n > 0
        assert "nodes" in capsys.readouterr().out

    def test_generate_coarse_kind(self, tmp_path):
        out = tmp_path / "cg.hdag"
        assert main(["generate", "--kind", "pagerank", "--iterations", "4", "--out", str(out)]) == 0
        assert read_hyperdag(out).n > 10

    def test_generate_unknown_kind(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--kind", "fft", "--out", str(tmp_path / "x.hdag")])

    def test_info_prints_statistics(self, hyperdag_file, capsys):
        assert main(["info", str(hyperdag_file)]) == 0
        out = capsys.readouterr().out
        assert "depth" in out and "total_work" in out


class TestScheduleCommand:
    def test_schedule_from_file_with_comparison(self, hyperdag_file, capsys, tmp_path):
        out_csv = tmp_path / "assignment.csv"
        code = main(
            [
                "schedule",
                str(hyperdag_file),
                "-P", "2", "-g", "2", "-l", "3",
                "--scheduler", "hdagg",
                "--compare", "cilk", "trivial",
                "--gantt",
                "--out", str(out_csv),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "hdagg schedule" in output
        assert "comparison" in output and "cilk" in output
        lines = out_csv.read_text().strip().splitlines()
        assert lines[0] == "node,processor,superstep"
        assert len(lines) == read_hyperdag(hyperdag_file).n + 1

    def test_schedule_generated_numa_instance(self, capsys):
        code = main(
            [
                "schedule",
                "--kind", "cg", "--size", "5", "--iterations", "1",
                "-P", "4", "--delta", "2",
                "--scheduler", "source",
            ]
        )
        assert code == 0
        assert "total cost" in capsys.readouterr().out

    def test_schedule_requires_input(self):
        with pytest.raises(SystemExit):
            main(["schedule", "-P", "2"])

    def test_unknown_scheduler_rejected(self, hyperdag_file):
        with pytest.raises(ValueError):
            main(["schedule", str(hyperdag_file), "--scheduler", "magic"])


class TestReproCommand:
    def test_list_targets(self, capsys):
        assert main(["repro", "--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig7" in out

    def test_no_target_prints_listing(self, capsys):
        assert main(["repro"]) == 0
        assert "pick a target" in capsys.readouterr().out

    def test_unknown_target_exits_with_message(self):
        with pytest.raises(SystemExit, match="unknown repro target"):
            main(["repro", "table99"])

    def test_runs_a_target_with_jobs(self, capsys):
        # fig7 is heuristics-only (no ILP), so this stays fast at smoke scale.
        assert main(["repro", "fig7", "--jobs", "2", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out and "|" in out


class TestSpecAndBatch:
    @pytest.fixture
    def spmv_spec(self):
        from repro.spec import DagSpec, MachineSpec, ProblemSpec

        return ProblemSpec(
            dag=DagSpec.generator("spmv", n=6, q=0.3, seed=4),
            machine=MachineSpec(P=2, g=2, l=3),
        )

    def test_schedule_from_problem_spec_file(self, spmv_spec, tmp_path, capsys):
        spec_file = tmp_path / "problem.json"
        spec_file.write_text(spmv_spec.to_json())
        assert main(["schedule", "--spec", str(spec_file), "--scheduler", "hdagg"]) == 0
        assert "hdagg schedule" in capsys.readouterr().out

    def test_schedule_from_solve_request_file(self, spmv_spec, tmp_path, capsys):
        from repro.spec import SolveRequest

        spec_file = tmp_path / "request.json"
        spec_file.write_text(SolveRequest(spec=spmv_spec, scheduler="trivial").to_json())
        assert main(["schedule", "--spec", str(spec_file)]) == 0
        assert "trivial schedule" in capsys.readouterr().out

    def test_schedule_spec_request_keeps_seed_and_budget(self, spmv_spec, tmp_path, capsys):
        # The request's seed/time_budget canonicalize into the scheduler spec
        # exactly as in the batch facade — they must not be dropped.
        from repro.spec import SolveRequest

        spec_file = tmp_path / "request.json"
        spec_file.write_text(
            SolveRequest(spec=spmv_spec, scheduler="sa(steps=10)", seed=9).to_json()
        )
        assert main(["schedule", "--spec", str(spec_file)]) == 0
        assert "sa(seed=9, steps=10) schedule" in capsys.readouterr().out

    def test_schedule_rejects_malformed_spec_file(self, tmp_path):
        spec_file = tmp_path / "broken.json"
        spec_file.write_text("{not json")
        with pytest.raises(SystemExit, match="cannot read spec file"):
            main(["schedule", "--spec", str(spec_file)])

    def test_batch_runs_requests_and_writes_results(self, spmv_spec, tmp_path, capsys):
        from repro.spec import SolveRequest

        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            "".join(
                SolveRequest(spec=spmv_spec, scheduler=s).to_json() + "\n"
                for s in ("cilk", "hdagg")
            )
        )
        assert main(["batch", str(requests), "--jobs", "2"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert len(lines) == 2
        assert '"scheduler": "cilk"' in lines[0]
        assert '"total_cost"' in lines[1]

    def test_batch_empty_file_rejected(self, tmp_path):
        requests = tmp_path / "empty.jsonl"
        requests.write_text("\n")
        with pytest.raises(SystemExit, match="no solve requests"):
            main(["batch", str(requests)])

    def test_schedulers_flag_accepts_parameterized_specs(self, spmv_spec, tmp_path, capsys):
        spec_file = tmp_path / "problem.json"
        spec_file.write_text(spmv_spec.to_json())
        code = main([
            "schedule", "--spec", str(spec_file),
            "--schedulers", "hc(max_moves=10, init=source),cilk",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "hc(max_moves=10, init=source) schedule" in out and "cilk" in out


class TestSchedulersFlag:
    def test_schedulers_overrides_scheduler_and_compare(self, capsys):
        code = main([
            "schedule", "--kind", "spmv", "--size", "5", "-P", "2",
            "--scheduler", "framework", "--compare", "etf",
            "--schedulers", "cilk,hdagg",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cilk schedule" in out and "hdagg" in out
        assert "framework" not in out and "etf" not in out

    def test_schedulers_with_parallel_jobs(self, capsys):
        code = main([
            "schedule", "--kind", "spmv", "--size", "5", "-P", "2",
            "--schedulers", "cilk,hdagg", "--jobs", "2",
        ])
        assert code == 0
        assert "comparison" in capsys.readouterr().out

    def test_empty_schedulers_rejected(self):
        with pytest.raises(SystemExit, match="at least one scheduler"):
            main(["schedule", "--kind", "spmv", "--size", "5", "--schedulers", ",,"])
