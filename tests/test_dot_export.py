"""Tests for the Graphviz DOT export of DAGs and schedules."""


from repro.baselines.hdagg import HDaggScheduler
from repro.graphs.dot import dag_to_dot, schedule_to_dot


class TestDagToDot:
    def test_contains_all_nodes_and_edges(self, diamond_dag):
        dot = dag_to_dot(diamond_dag)
        assert dot.startswith('digraph "diamond"')
        for v in diamond_dag.nodes():
            assert f"{v} [label=" in dot
        for (u, v) in diamond_dag.edges:
            assert f"{u} -> {v};" in dot
        assert dot.rstrip().endswith("}")

    def test_weights_in_labels(self, diamond_dag):
        dot = dag_to_dot(diamond_dag, show_weights=True)
        assert "w=2" in dot and "c=2" in dot
        plain = dag_to_dot(diamond_dag, show_weights=False)
        assert "w=" not in plain

    def test_custom_graph_name(self, chain_dag):
        assert 'digraph "my-dag"' in dag_to_dot(chain_dag, graph_name="my-dag")


class TestScheduleToDot:
    def test_clusters_per_superstep_and_processor_colors(self, layered_dag, machine4):
        sched = HDaggScheduler().schedule(layered_dag, machine4)
        dot = schedule_to_dot(sched)
        for s in range(sched.num_supersteps):
            if sched.nodes_in_superstep(s):
                assert f"cluster_step_{s}" in dot
        assert "fillcolor=" in dot
        # Every node appears exactly once as a declaration.
        for v in layered_dag.nodes():
            assert dot.count(f"    {v} [label=") == 1

    def test_cross_processor_edges_are_dashed(self, machine2):
        import numpy as np

        from repro.graphs.dag import ComputationalDAG
        from repro.model.schedule import BspSchedule

        dag = ComputationalDAG(3, [(0, 1), (1, 2)])
        sched = BspSchedule(dag, machine2, np.array([0, 0, 1]), np.array([0, 0, 1]))
        dot = schedule_to_dot(sched)
        assert "0 -> 1 [style=solid];" in dot
        assert "1 -> 2 [style=dashed];" in dot
