"""Property-based equivalence of the incremental local-search state.

The array-native :class:`~repro.localsearch.state.LocalSearchState` maintains
the schedule cost incrementally (dense min-step/count tables plus superstep
matrices).  These tests drive it with random valid move sequences on random
DAGs and assert, after *every* move and after reverts, that the running
``total_cost`` equals a fresh, from-scratch :func:`repro.model.cost.evaluate`
of the materialized schedule — i.e. the incremental kernel and the reference
cost function can never drift apart.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.trivial import LevelRoundRobinScheduler
from repro.graphs.dag import ComputationalDAG
from repro.localsearch.state import LocalSearchState
from repro.model.cost import evaluate
from repro.model.machine import BspMachine


@st.composite
def random_dags(draw, max_nodes: int = 16):
    """Random DAG with edges oriented along the node order."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    edges = []
    for v in range(1, n):
        num_parents = draw(st.integers(min_value=0, max_value=min(3, v)))
        parents = draw(
            st.lists(st.integers(min_value=0, max_value=v - 1),
                     min_size=num_parents, max_size=num_parents, unique=True)
        )
        edges.extend((u, v) for u in parents)
    work = draw(st.lists(st.integers(min_value=1, max_value=5), min_size=n, max_size=n))
    comm = draw(st.lists(st.integers(min_value=1, max_value=4), min_size=n, max_size=n))
    return ComputationalDAG(n, edges, work, comm, name="hypothesis")


@st.composite
def machines(draw):
    P = draw(st.sampled_from([1, 2, 4]))
    g = draw(st.sampled_from([0.0, 1.0, 3.0]))
    latency = draw(st.sampled_from([0.0, 5.0]))
    if draw(st.booleans()) and P >= 2:
        return BspMachine.hierarchical(P=P, delta=draw(st.sampled_from([2.0, 3.0])),
                                       g=g, l=latency)
    return BspMachine(P=P, g=g, l=latency)


def _exact_cost(state: LocalSearchState) -> float:
    """From-scratch evaluation of the state's current layout."""
    return float(evaluate(state.current_schedule()).total)


class TestStateMatchesEvaluate:
    @settings(max_examples=40, deadline=None)
    @given(dag=random_dags(), machine=machines(), data=st.data())
    def test_random_move_sequences(self, dag, machine, data):
        """total_cost == evaluate(...) after every applied move."""
        schedule = LevelRoundRobinScheduler().schedule(dag, machine)
        state = LocalSearchState(schedule)
        assert state.total_cost == pytest.approx(_exact_cost(state))

        num_moves = data.draw(st.integers(min_value=1, max_value=25), label="num_moves")
        for _ in range(num_moves):
            v = data.draw(st.integers(min_value=0, max_value=dag.n - 1), label="node")
            moves = state.candidate_moves(v)
            if not moves:
                continue
            choice = data.draw(st.integers(min_value=0, max_value=len(moves) - 1),
                               label="move")
            _, p, s = moves[choice]
            # The batched probe must predict exactly the cost the move produces.
            predicted = state.total_cost + float(state.move_deltas(v, moves)[choice])
            applied = state.apply_move(v, p, s)
            assert applied == pytest.approx(predicted)
            assert state.total_cost == pytest.approx(_exact_cost(state))

    @settings(max_examples=25, deadline=None)
    @given(dag=random_dags(), machine=machines(), data=st.data())
    def test_reverts_restore_cost(self, dag, machine, data):
        """Applying a move and its inverse restores the exact cost."""
        schedule = LevelRoundRobinScheduler().schedule(dag, machine)
        state = LocalSearchState(schedule)
        for _ in range(data.draw(st.integers(min_value=1, max_value=12), label="rounds")):
            v = data.draw(st.integers(min_value=0, max_value=dag.n - 1), label="node")
            moves = state.candidate_moves(v)
            if not moves:
                continue
            before = state.total_cost
            old_p, old_s = int(state.proc[v]), int(state.step[v])
            _, p, s = moves[data.draw(st.integers(min_value=0, max_value=len(moves) - 1),
                                      label="move")]
            state.apply_move(v, p, s)
            state.apply_move(v, old_p, old_s)
            assert state.total_cost == pytest.approx(before)
            assert state.total_cost == pytest.approx(_exact_cost(state))

    def test_invalid_probe_does_not_corrupt_state(self):
        """A precondition-violating probe raises but leaves the state intact."""
        dag = ComputationalDAG(2, [(0, 1)], name="pair")
        machine = BspMachine(P=2, g=1, l=1)
        from repro.model.schedule import BspSchedule

        state = LocalSearchState(
            BspSchedule(dag, machine, np.array([0, 1]), np.array([0, 1]))
        )
        before = state.total_cost
        succ_before = [row[:] for row in state.succ_min]
        # Moving node 1 to step 0 on processor 1 is invalid (its parent is on
        # the other processor); the probe must fail without side effects.
        with pytest.raises(Exception):
            state.move_deltas(1, [(1, 1, 0)])
        assert state.total_cost == before
        assert int(state.step[1]) == 1
        assert state.succ_min == succ_before
        assert state.total_cost == pytest.approx(_exact_cost(state))

    @settings(max_examples=25, deadline=None)
    @given(dag=random_dags(), machine=machines())
    def test_probing_leaves_state_untouched(self, dag, machine):
        """move_deltas must not change positions, tables or cost."""
        schedule = LevelRoundRobinScheduler().schedule(dag, machine)
        state = LocalSearchState(schedule)
        proc_before = state.proc.copy()
        step_before = state.step.copy()
        cost_before = state.total_cost
        succ_min_before = [row[:] for row in state.succ_min]
        for v in range(dag.n):
            moves = state.candidate_moves(v)
            if moves:
                state.move_deltas(v, moves)
        assert np.array_equal(state.proc, proc_before)
        assert np.array_equal(state.step, step_before)
        assert state.total_cost == cost_before
        assert state.succ_min == succ_min_before
