"""Tests for the Scheduler base class contract."""

import numpy as np
import pytest

from repro.graphs.dag import ComputationalDAG
from repro.model.schedule import BspSchedule
from repro.scheduler import Scheduler, SchedulingError


class BrokenScheduler(Scheduler):
    """Deliberately returns an invalid schedule (cross-processor edge within
    one superstep) to exercise the checked wrapper."""

    name = "Broken"

    def schedule(self, dag, machine):
        proc = np.arange(dag.n) % machine.P
        step = np.zeros(dag.n, dtype=np.int64)
        return BspSchedule(dag, machine, proc, step)


class IdentityScheduler(Scheduler):
    name = "Identity"

    def schedule(self, dag, machine):
        return BspSchedule.trivial(dag, machine)


class TestSchedulerContract:
    def test_abstract_base_cannot_be_instantiated(self):
        with pytest.raises(TypeError):
            Scheduler()

    def test_schedule_checked_passes_valid_schedules_through(self, diamond_dag, machine2):
        sched = IdentityScheduler().schedule_checked(diamond_dag, machine2)
        assert sched.is_valid()

    def test_schedule_checked_raises_on_invalid_schedule(self, machine2):
        dag = ComputationalDAG(4, [(0, 1), (1, 2), (2, 3)])
        with pytest.raises(SchedulingError) as excinfo:
            BrokenScheduler().schedule_checked(dag, machine2)
        assert "Broken" in str(excinfo.value)

    def test_repr_contains_name(self):
        assert "Identity" in repr(IdentityScheduler())
