"""Tests for the registry-driven parallel experiment engine."""

import json

import pytest

from repro.experiments.persistence import (
    CheckpointWriter,
    experiment_to_dict,
    read_checkpoint,
)
from repro.experiments.runner import (
    BASELINE_LABELS,
    ParallelRunner,
    WorkItem,
    WorkItemResult,
    execute_work_item,
    run_experiment,
    run_instance,
    schedule_many,
    set_default_jobs,
)
from repro.graphs.fine import spmv_dag
from repro.model.machine import BspMachine
from repro.pipeline.config import PipelineConfig
from repro.registry import TABLE_LABELS, registry_name_for_label, scheduler_for_label
from repro.scheduler import SchedulingError


@pytest.fixture(scope="module")
def dags():
    return [spmv_dag(5, q=0.3, seed=1), spmv_dag(6, q=0.3, seed=2)]


@pytest.fixture(scope="module")
def machine():
    return BspMachine(P=2, g=2, l=3)


@pytest.fixture(scope="module")
def fast_config():
    return PipelineConfig.fast()


class TestLabelRegistry:
    def test_baseline_labels_come_from_registry(self):
        assert BASELINE_LABELS == tuple(TABLE_LABELS)

    def test_every_label_resolves(self, dags, machine):
        for label in TABLE_LABELS:
            scheduler = scheduler_for_label(label)
            assert scheduler.name == label
            assert scheduler.schedule_checked(dags[0], machine).is_valid()

    def test_unknown_label_raises(self):
        with pytest.raises(ValueError, match="unknown table label"):
            registry_name_for_label("NoSuchBaseline")


class TestWorkItems:
    def test_baseline_item_records_checked_cost(self, dags, machine):
        item = WorkItem(index=0, instance=0, dag=dags[0], machine=machine,
                        scheduler="cilk", label="Cilk")
        result = execute_work_item(item)
        assert set(result.costs) == {"Cilk"}
        assert result.costs["Cilk"] > 0

    def test_invalid_scheduler_name_fails_loudly(self, dags, machine):
        item = WorkItem(index=0, instance=0, dag=dags[0], machine=machine,
                        scheduler="no-such-scheduler")
        with pytest.raises(ValueError, match="unknown scheduler"):
            execute_work_item(item)

    def test_checkpoint_record_roundtrip(self):
        result = WorkItemResult(index=3, instance=1, costs={"Cilk": 12.0},
                                best_initializer="BSPg",
                                initializer_costs={"BSPg": 13.0})
        restored = WorkItemResult.from_record(
            json.loads(json.dumps(result.as_record()))
        )
        assert restored == result


class TestParallelRunner:
    def test_serial_engine_matches_run_instance(self, dags, machine, fast_config):
        engine = ParallelRunner(1).run_experiment(
            dags, machine, pipeline_config=fast_config
        )
        by_hand = [
            run_instance(dag, machine, pipeline_config=fast_config) for dag in dags
        ]
        assert len(engine.instances) == len(by_hand)
        for got, want in zip(engine.instances, by_hand):
            assert got.costs == want.costs
            assert got.best_initializer == want.best_initializer

    def test_parallel_jobs_are_byte_identical(self, dags, machine, fast_config):
        serial = run_experiment(dags, machine, pipeline_config=fast_config, jobs=1)
        parallel = run_experiment(dags, machine, pipeline_config=fast_config, jobs=2)
        assert json.dumps(experiment_to_dict(serial), sort_keys=True) == json.dumps(
            experiment_to_dict(parallel), sort_keys=True
        )

    def test_default_jobs_override(self, dags, machine):
        set_default_jobs(2)
        try:
            runner = ParallelRunner()
            assert runner.jobs == 2
        finally:
            set_default_jobs(None)
        assert ParallelRunner().jobs >= 1

    def test_checkpoint_and_resume(self, dags, machine, fast_config, tmp_path):
        checkpoint = tmp_path / "run.jsonl"
        first = run_experiment(
            dags, machine, pipeline_config=fast_config, jobs=1,
            checkpoint=str(checkpoint),
        )
        records = read_checkpoint(checkpoint)
        assert records, "checkpoint must be written incrementally"
        assert all({"item", "instance", "costs"} <= set(r) for r in records)
        # Resuming re-runs nothing and reproduces the identical experiment.
        resumed = run_experiment(
            dags, machine, pipeline_config=fast_config, jobs=1,
            checkpoint=str(checkpoint), resume=True,
        )
        assert experiment_to_dict(first) == experiment_to_dict(resumed)
        # No new records beyond a full run's worth were appended.
        assert len(read_checkpoint(checkpoint)) == len(records)

    def test_checkpoint_writer_appends(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        with CheckpointWriter(path) as writer:
            writer.append({"item": 0, "instance": 0, "costs": {}})
        with CheckpointWriter(path) as writer:
            writer.append({"item": 1, "instance": 0, "costs": {}})
        assert [r["item"] for r in read_checkpoint(path)] == [0, 1]

    def test_resume_ignores_foreign_checkpoint(self, dags, machine, tmp_path):
        """A checkpoint from a different run must not leak stale results."""
        checkpoint = tmp_path / "run.jsonl"
        run_experiment([dags[0]], machine, baselines_only=True, jobs=1,
                       checkpoint=str(checkpoint))
        # Same file, different dataset: every record's dag identity mismatches,
        # so all items re-run and the result reflects the new dataset.
        other = spmv_dag(7, q=0.3, seed=9)
        resumed = run_experiment([other], machine, baselines_only=True, jobs=1,
                                 checkpoint=str(checkpoint), resume=True)
        fresh = run_experiment([other], machine, baselines_only=True, jobs=1)
        assert resumed.instances[0].costs == fresh.instances[0].costs
        assert resumed.instances[0].dag_name == other.name

    def test_resume_ignores_checkpoint_from_other_machine(self, dags, machine, tmp_path):
        """Same dags, different machine: records must not be reused."""
        checkpoint = tmp_path / "run.jsonl"
        run_experiment([dags[0]], machine, baselines_only=True, jobs=1,
                       checkpoint=str(checkpoint))
        other_machine = BspMachine(P=4, g=10, l=50)
        resumed = run_experiment([dags[0]], other_machine, baselines_only=True,
                                 jobs=1, checkpoint=str(checkpoint), resume=True)
        fresh = run_experiment([dags[0]], other_machine, baselines_only=True, jobs=1)
        assert resumed.instances[0].costs == fresh.instances[0].costs

    def test_resume_distinguishes_same_shape_different_weights(self, machine, tmp_path):
        """Two DAGs sharing name/n/edges but not weights must not share records."""
        from repro.graphs.dag import ComputationalDAG

        edges = [(0, 1), (0, 2), (1, 3), (2, 3)]
        light = ComputationalDAG(4, edges, work=[1] * 4, comm=[1] * 4, name="same")
        heavy = ComputationalDAG(4, edges, work=[9] * 4, comm=[9] * 4, name="same")
        checkpoint = tmp_path / "run.jsonl"
        run_experiment([light], machine, baselines_only=True, jobs=1,
                       checkpoint=str(checkpoint))
        resumed = run_experiment([heavy], machine, baselines_only=True, jobs=1,
                                 checkpoint=str(checkpoint), resume=True)
        fresh = run_experiment([heavy], machine, baselines_only=True, jobs=1)
        assert resumed.instances[0].costs == fresh.instances[0].costs

    def test_resume_survives_truncated_trailing_record(self, dags, machine, tmp_path):
        """A crash mid-append leaves a partial line; resume must still work."""
        checkpoint = tmp_path / "run.jsonl"
        first = run_experiment([dags[0]], machine, baselines_only=True, jobs=1,
                               checkpoint=str(checkpoint))
        with open(checkpoint, "a") as handle:
            handle.write('{"item": 99, "instance": 0, "costs": {"Cil')  # killed mid-write
        resumed = run_experiment([dags[0]], machine, baselines_only=True, jobs=1,
                                 checkpoint=str(checkpoint), resume=True)
        assert resumed.instances[0].costs == first.instances[0].costs

    def test_fresh_run_truncates_old_checkpoint(self, dags, machine, tmp_path):
        checkpoint = tmp_path / "run.jsonl"
        run_experiment(dags, machine, baselines_only=True, jobs=1,
                       checkpoint=str(checkpoint))
        first = len(read_checkpoint(checkpoint))
        # Without resume the file is rewritten, not appended to.
        run_experiment(dags, machine, baselines_only=True, jobs=1,
                       checkpoint=str(checkpoint))
        assert len(read_checkpoint(checkpoint)) == first


class TestScheduleMany:
    def test_results_in_request_order(self, dags, machine):
        names = ["hdagg", "cilk", "bspg"]
        results = schedule_many(dags[0], machine, names)
        assert [name for name, _ in results] == names
        for _, schedule in results:
            assert schedule.is_valid()

    def test_parallel_matches_serial(self, dags, machine):
        names = ["cilk", "hdagg"]
        serial = schedule_many(dags[0], machine, names, jobs=1)
        parallel = schedule_many(dags[0], machine, names, jobs=2)
        for (_, a), (_, b) in zip(serial, parallel):
            assert float(a.cost()) == float(b.cost())
            assert (a.proc == b.proc).all() and (a.step == b.step).all()

    def test_invalid_schedule_fails_loudly(self, dags, machine, monkeypatch):
        import repro.baselines.cilk as cilk_mod

        def bad_schedule(self, dag, machine):
            from repro.model.schedule import BspSchedule
            import numpy as np

            # Every node in superstep 0 on different processors: cross-processor
            # edges then have no communication phase available -> invalid.
            proc = np.arange(dag.n) % machine.P
            return BspSchedule(dag, machine, proc, np.zeros(dag.n, dtype=np.int64))

        monkeypatch.setattr(cilk_mod.CilkScheduler, "schedule", bad_schedule)
        with pytest.raises(SchedulingError):
            run_instance(dags[0], machine, baselines_only=True)
