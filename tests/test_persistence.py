"""Tests for JSON persistence of schedules and experiment results."""

import numpy as np
import pytest

from repro.baselines.hdagg import HDaggScheduler
from repro.experiments.persistence import (
    experiment_from_dict,
    experiment_to_dict,
    load_experiment,
    save_experiment,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.experiments.runner import run_experiment
from repro.graphs.fine import spmv_dag
from repro.localsearch.comm_hill_climbing import comm_hill_climb
from repro.model.machine import BspMachine
from repro.pipeline.config import PipelineConfig


class TestSchedulePersistence:
    def test_round_trip_lazy_schedule(self, layered_dag, machine4):
        sched = HDaggScheduler().schedule(layered_dag, machine4)
        restored = schedule_from_dict(schedule_to_dict(sched))
        assert restored.dag == sched.dag
        assert np.array_equal(restored.proc, sched.proc)
        assert np.array_equal(restored.step, sched.step)
        assert restored.comm is None
        assert restored.cost() == pytest.approx(sched.cost())

    def test_round_trip_explicit_comm_schedule(self, layered_dag, machine4):
        sched = comm_hill_climb(HDaggScheduler().schedule(layered_dag, machine4)).schedule
        restored = schedule_from_dict(schedule_to_dict(sched))
        assert restored.comm == sched.comm
        assert restored.cost() == pytest.approx(sched.cost())

    def test_round_trip_numa_machine(self, diamond_dag, numa_machine):
        sched = HDaggScheduler().schedule(diamond_dag, numa_machine)
        restored = schedule_from_dict(schedule_to_dict(sched))
        assert np.array_equal(restored.machine.numa, numa_machine.numa)
        assert restored.cost() == pytest.approx(sched.cost())

    def test_dict_is_json_serializable(self, diamond_dag, machine2):
        import json

        sched = HDaggScheduler().schedule(diamond_dag, machine2)
        json.dumps(schedule_to_dict(sched))  # must not raise


class TestExperimentPersistence:
    @pytest.fixture(scope="class")
    def experiment(self):
        dags = [spmv_dag(5, q=0.3, seed=1)]
        machine = BspMachine(P=2, g=2, l=3)
        return run_experiment(dags, machine, pipeline_config=PipelineConfig.fast())

    def test_round_trip_preserves_aggregates(self, experiment):
        restored = experiment_from_dict(experiment_to_dict(experiment))
        assert len(restored.instances) == len(experiment.instances)
        assert restored.mean_ratio("ILP", "Cilk") == pytest.approx(
            experiment.mean_ratio("ILP", "Cilk")
        )
        assert restored.instances[0].best_initializer == experiment.instances[0].best_initializer

    def test_file_round_trip(self, experiment, tmp_path):
        path = tmp_path / "experiment.json"
        save_experiment(experiment, path)
        restored = load_experiment(path)
        assert restored.labels() == experiment.labels()
