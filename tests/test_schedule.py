"""Unit tests for BspSchedule: validity, lazy communication, normalization."""

import numpy as np
import pytest

from repro.graphs.dag import ComputationalDAG
from repro.model.comm import CommSchedule
from repro.model.machine import BspMachine
from repro.model.schedule import (
    BspSchedule,
    ScheduleValidationError,
    legalize_superstep_assignment,
)


class TestTrivialSchedule:
    def test_trivial_is_valid(self, diamond_dag, machine4):
        sched = BspSchedule.trivial(diamond_dag, machine4)
        assert sched.is_valid()
        assert sched.num_supersteps == 1
        assert len(sched.lazy_comm_schedule()) == 0

    def test_empty_dag(self, machine2):
        dag = ComputationalDAG(0, [])
        sched = BspSchedule.trivial(dag, machine2)
        assert sched.is_valid()
        assert sched.num_supersteps == 0
        assert sched.cost() == 0.0


class TestValidity:
    def test_same_processor_ordering(self, chain_dag, machine2):
        # Whole chain on one processor in one superstep: valid.
        sched = BspSchedule(chain_dag, machine2, np.zeros(5, int), np.zeros(5, int))
        assert sched.is_valid()
        # Predecessor in a *later* superstep: invalid.
        bad = BspSchedule(chain_dag, machine2, np.zeros(5, int), np.array([1, 0, 0, 0, 0]))
        assert not bad.is_valid()
        assert any("tau" in e for e in bad.validation_errors())

    def test_cross_processor_requires_earlier_superstep(self, machine2):
        dag = ComputationalDAG(2, [(0, 1)])
        # Same superstep on different processors: no communication phase in
        # between, hence invalid.
        bad = BspSchedule(dag, machine2, np.array([0, 1]), np.array([0, 0]))
        assert not bad.is_valid()
        good = BspSchedule(dag, machine2, np.array([0, 1]), np.array([0, 1]))
        assert good.is_valid()

    def test_out_of_range_processor(self, diamond_dag, machine2):
        sched = BspSchedule(diamond_dag, machine2, np.array([0, 1, 5, 0]), np.zeros(4, int))
        assert not sched.is_valid()

    def test_negative_superstep(self, diamond_dag, machine2):
        sched = BspSchedule(diamond_dag, machine2, np.zeros(4, int), np.array([0, -1, 0, 0]))
        assert not sched.is_valid()

    def test_explicit_comm_schedule_validity(self, machine2):
        dag = ComputationalDAG(2, [(0, 1)], comm=[2, 1])
        proc = np.array([0, 1])
        step = np.array([0, 1])
        # Correct explicit schedule: send in phase 0.
        comm = CommSchedule({(0, 0, 1, 0)})
        assert BspSchedule(dag, machine2, proc, step, comm).is_valid()
        # Too late: sending in phase 1 does not help node 1 in superstep 1.
        late = CommSchedule({(0, 0, 1, 1)})
        assert not BspSchedule(dag, machine2, proc, step, late).is_valid()
        # Sending from a processor that never has the value.
        wrong_src = CommSchedule({(0, 1, 1, 0)})
        assert not BspSchedule(dag, machine2, proc, step, wrong_src).is_valid()

    def test_relayed_communication_is_valid(self):
        """A value may be forwarded by a processor that received it earlier."""
        machine = BspMachine(P=3, g=1, l=1)
        dag = ComputationalDAG(2, [(0, 1)])
        proc = np.array([0, 2])
        step = np.array([0, 3])
        comm = CommSchedule({(0, 0, 1, 0), (0, 1, 2, 1)})
        assert BspSchedule(dag, machine, proc, step, comm).is_valid()
        # Relaying in the same superstep it was received is not allowed.
        same_step = CommSchedule({(0, 0, 1, 1), (0, 1, 2, 1)})
        assert not BspSchedule(dag, machine, proc, step, same_step).is_valid()

    def test_validate_raises(self, machine2):
        dag = ComputationalDAG(2, [(0, 1)])
        bad = BspSchedule(dag, machine2, np.array([0, 1]), np.array([0, 0]))
        with pytest.raises(ScheduleValidationError):
            bad.validate()

    def test_wrong_array_length_rejected(self, diamond_dag, machine2):
        with pytest.raises(ScheduleValidationError):
            BspSchedule(diamond_dag, machine2, np.zeros(3, int), np.zeros(4, int))


class TestLazyCommunication:
    def test_required_transfers_deadlines(self, machine2):
        # Node 0 on processor 0; consumers on processor 1 in supersteps 1 and 3.
        dag = ComputationalDAG(3, [(0, 1), (0, 2)])
        proc = np.array([0, 1, 1])
        step = np.array([0, 1, 3])
        sched = BspSchedule(dag, machine2, proc, step)
        transfers = sched.required_transfers()
        assert transfers == {(0, 1): 1}

    def test_lazy_comm_sends_in_last_phase(self, machine2):
        dag = ComputationalDAG(2, [(0, 1)])
        sched = BspSchedule(dag, machine2, np.array([0, 1]), np.array([0, 4]))
        lazy = sched.lazy_comm_schedule()
        assert (0, 0, 1, 3) in lazy
        assert len(lazy) == 1

    def test_with_lazy_comm_round_trip(self, diamond_dag, machine2):
        proc = np.array([0, 0, 1, 0])
        step = np.array([0, 1, 1, 2])
        sched = BspSchedule(diamond_dag, machine2, proc, step)
        explicit = sched.with_lazy_comm()
        assert explicit.comm is not None
        assert explicit.is_valid()
        assert explicit.cost() == pytest.approx(sched.cost())
        assert explicit.without_comm().comm is None

    def test_no_transfer_for_same_processor(self, chain_dag, machine2):
        sched = BspSchedule(chain_dag, machine2, np.zeros(5, int), np.arange(5))
        assert sched.required_transfers() == {}


class TestNormalization:
    def test_normalized_removes_empty_supersteps(self, machine2):
        dag = ComputationalDAG(2, [(0, 1)])
        sched = BspSchedule(dag, machine2, np.array([0, 1]), np.array([0, 5]))
        norm = sched.normalized()
        assert norm.num_supersteps == 2
        assert norm.is_valid()
        # Cost must not increase by compaction (latency can only shrink).
        assert norm.cost() <= sched.cost()

    def test_normalized_preserves_explicit_comm(self, machine2):
        dag = ComputationalDAG(2, [(0, 1)], comm=[3, 1])
        comm = CommSchedule({(0, 0, 1, 2)})
        sched = BspSchedule(dag, machine2, np.array([0, 1]), np.array([0, 4]), comm)
        norm = sched.normalized()
        assert norm.is_valid()
        assert len(norm.comm) == 1

    def test_copy_is_deep_for_assignment(self, diamond_dag, machine2):
        sched = BspSchedule.trivial(diamond_dag, machine2)
        clone = sched.copy()
        clone.proc[0] = 1
        assert sched.proc[0] == 0


class TestHelpers:
    def test_nodes_in_superstep_and_on_processor(self, diamond_dag, machine2):
        proc = np.array([0, 1, 0, 1])
        step = np.array([0, 1, 1, 2])
        sched = BspSchedule(diamond_dag, machine2, proc, step)
        assert sched.nodes_in_superstep(1) == [1, 2]
        assert sched.nodes_on_processor(1) == [1, 3]
        assert sched.assignment(3) == (1, 2)

    def test_legalize_superstep_assignment(self, machine2):
        dag = ComputationalDAG(3, [(0, 1), (1, 2)])
        proc = np.array([0, 1, 0])
        step = np.array([0, 0, 0])
        fixed = legalize_superstep_assignment(dag, proc, step)
        sched = BspSchedule(dag, machine2, proc, fixed)
        assert sched.is_valid()
        # Cross-processor edges force strictly increasing supersteps.
        assert fixed[1] >= 1 and fixed[2] >= 2

    def test_legalize_is_idempotent(self, layered_dag, machine4):
        rng = np.random.default_rng(0)
        proc = rng.integers(0, machine4.P, layered_dag.n)
        step = np.zeros(layered_dag.n, dtype=int)
        once = legalize_superstep_assignment(layered_dag, proc, step)
        twice = legalize_superstep_assignment(layered_dag, proc, once)
        assert np.array_equal(once, twice)
        assert BspSchedule(layered_dag, machine4, proc, once).is_valid()
