"""Tests for the scheduler registry."""

import pytest

from repro.model.machine import BspMachine
from repro.registry import (
    TABLE_LABELS,
    available_schedulers,
    make_scheduler,
    parse_scheduler_spec,
    register_scheduler,
    registry_name_for_label,
    scheduler_for_label,
    scheduler_info,
    split_scheduler_list,
)
from repro.scheduler import Scheduler


class TestRegistry:
    def test_available_schedulers_sorted_and_complete(self):
        names = available_schedulers()
        assert names == sorted(names)
        for expected in ("cilk", "hdagg", "etf", "bl-est", "bspg", "source", "framework", "multilevel"):
            assert expected in names

    def test_every_builder_returns_a_scheduler(self):
        for name in available_schedulers():
            scheduler = make_scheduler(name)
            assert isinstance(scheduler, Scheduler), name
            assert scheduler.name

    def test_lookup_is_case_insensitive(self):
        assert type(make_scheduler("HDagg")) is type(make_scheduler("hdagg"))

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(ValueError) as excinfo:
            make_scheduler("heft")
        assert "cilk" in str(excinfo.value)

    def test_factories_produce_fresh_instances(self):
        a = make_scheduler("framework")
        b = make_scheduler("framework")
        assert a is not b

    @pytest.mark.parametrize(
        "name", ["cilk", "hdagg", "bspg", "source", "level-rr", "trivial", "hc", "hccs", "sa"]
    )
    def test_cheap_schedulers_run_end_to_end(self, name, diamond_dag):
        machine = BspMachine(P=2, g=1, l=1)
        schedule = make_scheduler(name).schedule_checked(diamond_dag, machine)
        assert schedule.cost() > 0


class TestSpecStrings:
    def test_parse_plain_name(self):
        assert parse_scheduler_spec("CILK") == ("cilk", {})

    def test_parse_values(self):
        name, kwargs = parse_scheduler_spec(
            "x(a=1, b=2.5, c=true, d=false, e=none, f=hello, g='quo ted', h=[1, 2])"
        )
        assert name == "x"
        assert kwargs == {
            "a": 1, "b": 2.5, "c": True, "d": False, "e": None,
            "f": "hello", "g": "quo ted", "h": (1, 2),
        }

    def test_parameterized_construction(self):
        scheduler = make_scheduler("hdagg(aggregation_factor=3.5)")
        assert scheduler.aggregation_factor == 3.5

    def test_duplicate_argument_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_scheduler_spec("cilk(seed=1, seed=2)")

    def test_malformed_spec_rejected(self):
        for bad in ("", "a b", "cilk(seed)", "cilk(=3)", "cilk(seed=1"):
            with pytest.raises(ValueError):
                make_scheduler(bad)

    def test_nested_spec_values_stack_improvers(self, diamond_dag):
        scheduler = make_scheduler("hc(max_moves=5, init=hccs(max_moves=3, init=source))")
        assert scheduler.init == "hccs(max_moves=3, init=source)"
        machine = BspMachine(P=2, g=1, l=1)
        assert scheduler.schedule_checked(diamond_dag, machine).cost() > 0

    def test_split_scheduler_list_respects_parens(self):
        parts = split_scheduler_list("hc(max_moves=5, init=source),cilk, sa(steps=3)")
        assert parts == ["hc(max_moves=5, init=source)", "cilk", "sa(steps=3)"]

    def test_scheduler_info_metadata(self):
        info = scheduler_info("cilk")
        assert info.deterministic and not info.numa_aware
        assert "seed" in info.parameters

    def test_register_scheduler_decorator_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_scheduler("cilk")
            def _dup():  # pragma: no cover - never called
                raise AssertionError


class TestTableLabels:
    def test_label_lookup_is_case_insensitive(self):
        assert registry_name_for_label("Cilk") == "cilk"
        assert registry_name_for_label("CILK") == "cilk"
        assert registry_name_for_label("bl-est") == "bl-est"
        assert registry_name_for_label(" hdagg ") == "hdagg"

    def test_every_table_label_resolves_and_builds(self):
        for label in TABLE_LABELS:
            assert isinstance(scheduler_for_label(label.upper()), Scheduler)

    def test_unknown_label_raises(self):
        with pytest.raises(ValueError, match="unknown table label"):
            registry_name_for_label("Framework")
