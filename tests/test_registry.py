"""Tests for the scheduler registry."""

import pytest

from repro.model.machine import BspMachine
from repro.registry import SCHEDULER_BUILDERS, available_schedulers, make_scheduler
from repro.scheduler import Scheduler


class TestRegistry:
    def test_available_schedulers_sorted_and_complete(self):
        names = available_schedulers()
        assert names == sorted(names)
        for expected in ("cilk", "hdagg", "etf", "bl-est", "bspg", "source", "framework", "multilevel"):
            assert expected in names

    def test_every_builder_returns_a_scheduler(self):
        for name in available_schedulers():
            scheduler = make_scheduler(name)
            assert isinstance(scheduler, Scheduler), name
            assert scheduler.name

    def test_lookup_is_case_insensitive(self):
        assert type(make_scheduler("HDagg")) is type(make_scheduler("hdagg"))

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(ValueError) as excinfo:
            make_scheduler("heft")
        assert "cilk" in str(excinfo.value)

    def test_factories_produce_fresh_instances(self):
        a = make_scheduler("framework")
        b = make_scheduler("framework")
        assert a is not b

    @pytest.mark.parametrize("name", ["cilk", "hdagg", "bspg", "source", "level-rr", "trivial"])
    def test_cheap_schedulers_run_end_to_end(self, name, diamond_dag):
        machine = BspMachine(P=2, g=1, l=1)
        schedule = make_scheduler(name).schedule_checked(diamond_dag, machine)
        assert schedule.cost() > 0
