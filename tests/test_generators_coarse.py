"""Tests for the coarse-grained (operator-level) DAG generators."""

import numpy as np
import pytest

from repro.graphs.coarse import (
    COARSE_GRAINED_GENERATORS,
    coarse_bicgstab,
    coarse_conjugate_gradient,
    coarse_khop,
    coarse_kmeans,
    coarse_label_propagation,
    coarse_pagerank,
    generate_coarse_grained,
)


class TestWeightRules:
    @pytest.mark.parametrize("kind", sorted(COARSE_GRAINED_GENERATORS))
    def test_paper_weight_rules(self, kind):
        dag = generate_coarse_grained(kind, iterations=3) if kind != "kmeans" else coarse_kmeans(3)
        assert np.all(dag.comm == 1)
        for v in dag.nodes():
            indeg = dag.in_degree(v)
            expected = 1 if indeg == 0 else max(1, indeg - 1)
            assert dag.work[v] == expected

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            generate_coarse_grained("fft")


class TestSizeScaling:
    @pytest.mark.parametrize(
        "builder",
        [
            coarse_conjugate_gradient,
            coarse_bicgstab,
            coarse_pagerank,
            coarse_label_propagation,
            coarse_khop,
        ],
        ids=lambda b: b.__name__,
    )
    def test_nodes_grow_linearly_with_iterations(self, builder):
        sizes = [builder(it).n for it in (1, 2, 3, 4)]
        increments = [b - a for a, b in zip(sizes, sizes[1:])]
        assert len(set(increments)) == 1  # constant per-iteration footprint
        assert increments[0] > 0

    def test_invalid_iterations_rejected(self):
        for builder in (coarse_conjugate_gradient, coarse_pagerank, coarse_khop):
            with pytest.raises(ValueError):
                builder(0)


class TestStructure:
    def test_cg_depth_grows_with_iterations(self):
        assert coarse_conjugate_gradient(4).depth() > coarse_conjugate_gradient(1).depth()

    def test_iterative_methods_have_single_weak_component(self):
        for dag in (coarse_conjugate_gradient(3), coarse_pagerank(3), coarse_bicgstab(2)):
            assert len(dag.weakly_connected_components()) == 1

    def test_kmeans_scales_with_clusters(self):
        few = coarse_kmeans(2, clusters=2)
        many = coarse_kmeans(2, clusters=6)
        assert many.n > few.n

    def test_matrix_node_is_reused(self):
        """The input matrix A is a single node feeding every iteration."""
        dag = coarse_pagerank(4)
        # Node 0 is A; it must have one successor per iteration plus degree-1 helper.
        assert dag.out_degree(0) >= 4

    def test_names_are_descriptive(self):
        assert "cg" in coarse_conjugate_gradient(2).name
        assert "pagerank" in coarse_pagerank(2).name
