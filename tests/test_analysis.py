"""Tests for DAG statistics and the communication-to-computation ratio."""

import pytest

from repro.graphs.analysis import (
    communication_to_computation_ratio,
    dag_statistics,
)
from repro.graphs.dag import ComputationalDAG
from repro.model.machine import BspMachine


class TestDagStatistics:
    def test_diamond_statistics(self, diamond_dag):
        stats = dag_statistics(diamond_dag)
        assert stats.num_nodes == 4
        assert stats.num_edges == 4
        assert stats.num_sources == 1
        assert stats.num_sinks == 1
        assert stats.depth == 3
        assert stats.max_width == 2
        assert stats.total_work == 8
        assert stats.total_comm == 5
        assert stats.critical_path_work == 7
        assert stats.ccr == pytest.approx(5 / 8)
        assert stats.max_in_degree == 2

    def test_as_dict_round_trip(self, chain_dag):
        stats = dag_statistics(chain_dag).as_dict()
        assert stats["n"] == 5
        assert stats["depth"] == 5
        assert stats["max_width"] == 1

    def test_empty_dag(self):
        stats = dag_statistics(ComputationalDAG(0, []))
        assert stats.num_nodes == 0
        assert stats.depth == 0
        assert stats.ccr == 0.0


class TestCcr:
    def test_plain_ratio(self):
        dag = ComputationalDAG(2, [(0, 1)], work=[2, 2], comm=[4, 4])
        assert communication_to_computation_ratio(dag) == pytest.approx(2.0)

    def test_machine_scales_ratio(self):
        dag = ComputationalDAG(2, [(0, 1)], work=[2, 2], comm=[4, 4])
        machine = BspMachine.hierarchical(P=4, delta=2, g=3, l=0)
        scaled = communication_to_computation_ratio(dag, machine)
        plain = communication_to_computation_ratio(dag)
        assert scaled == pytest.approx(plain * 3 * machine.average_coefficient())

    def test_single_processor_machine_does_not_zero_out(self):
        dag = ComputationalDAG(2, [(0, 1)], work=[1, 1], comm=[1, 1])
        machine = BspMachine(P=1, g=2, l=0)
        assert communication_to_computation_ratio(dag, machine) > 0

    def test_zero_work_dag(self):
        dag = ComputationalDAG(2, [(0, 1)], work=[0, 0], comm=[1, 1])
        assert communication_to_computation_ratio(dag) == 0.0
