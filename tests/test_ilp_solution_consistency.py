"""Cross-checks between the ILP formulations and the exact cost model.

The formulations optimize an *objective estimate* built from their own
variables; these tests verify that (i) solver solutions actually satisfy the
generated constraints, (ii) the extracted schedules are valid under the
independent validity checker, and (iii) for the full formulation the ILP
objective is an upper bound on the true cost of the extracted schedule (the
extracted schedule uses the lazy communication schedule, which can only be
cheaper than what the ILP accounted for).
"""

import pytest

from repro.graphs.coarse import coarse_pagerank
from repro.graphs.dag import ComputationalDAG
from repro.heuristics.bspg import BspGreedyScheduler
from repro.ilp.formulation import build_bsp_ilp
from repro.ilp.solver import solve
from repro.model.machine import BspMachine


@pytest.fixture(scope="module")
def small_instance():
    dag = coarse_pagerank(2)
    machine = BspMachine(P=2, g=2, l=3)
    return dag, machine


class TestSolutionConsistency:
    def test_solution_satisfies_all_constraints(self, small_instance):
        dag, machine = small_instance
        form = build_bsp_ilp(dag, machine, s_first=0, s_last=3)
        result = solve(form.model, time_limit=20)
        assert result.has_solution
        assert form.model.constraint_violations(result.values) == []

    def test_extracted_schedule_is_valid_and_objective_meaningful(self, small_instance):
        dag, machine = small_instance
        form = build_bsp_ilp(dag, machine, s_first=0, s_last=3)
        result = solve(form.model, time_limit=20)
        schedule = form.extract_schedule(result)
        assert schedule.is_valid()
        # The objective includes the full work term, so it is at least the
        # work lower bound of any schedule (total work / P).
        assert result.objective >= dag.total_work() / machine.P - 1e-6
        # And the schedule realizes exactly the per-superstep work the ILP
        # accounted for (the W variables are tight at the optimum).
        assert schedule.cost_breakdown().work_cost <= result.objective + 1e-6

    def test_window_solution_respects_fixed_boundary(self, small_instance):
        dag, machine = small_instance
        base = BspGreedyScheduler().schedule(dag, machine)
        S = base.num_supersteps
        if S < 2:
            pytest.skip("instance collapsed to a single superstep")
        s1 = S - 1
        free = [v for v in range(dag.n) if base.step[v] >= s1]
        form = build_bsp_ilp(
            dag,
            machine,
            free_nodes=free,
            s_first=s1,
            s_last=S - 1,
            base_proc=base.proc,
            base_step=base.step,
        )
        result = solve(form.model, time_limit=20)
        assert result.has_solution
        proc, step = form.extract_assignment(result)
        # Fixed nodes keep their assignment; free nodes stay in the window.
        for v in range(dag.n):
            if v in set(free):
                assert s1 <= step[v] <= S - 1
            else:
                assert proc[v] == base.proc[v] and step[v] == base.step[v]

    def test_binary_variables_take_binary_values(self, small_instance):
        dag, machine = small_instance
        form = build_bsp_ilp(dag, machine, s_first=0, s_last=2)
        result = solve(form.model, time_limit=20)
        assert result.has_solution
        for idx in form.comp.values():
            value = result.value(idx)
            assert abs(value - round(value)) < 1e-5

    def test_infeasible_window_detected(self):
        """A window too small for a forced cross-processor chain is infeasible.

        Two nodes connected by an edge whose endpoints are pinned to
        different processors by their other neighbours cannot both live in a
        single superstep window of size one... construct directly: free node
        with a successor fixed in the same superstep on another processor.
        """
        dag = ComputationalDAG(2, [(0, 1)])
        machine = BspMachine(P=2, g=1, l=1)
        import numpy as np

        base_proc = np.array([0, 1])
        base_step = np.array([0, 0])
        form = build_bsp_ilp(
            dag,
            machine,
            free_nodes=[1],
            s_first=0,
            s_last=0,
            base_proc=base_proc,
            base_step=base_step,
        )
        result = solve(form.model, time_limit=10)
        # Node 1 must be computed in superstep 0 but its predecessor on the
        # other processor cannot deliver the value that early unless node 1
        # sits on processor 0 — which is allowed, so the ILP must place it
        # there rather than report infeasibility.
        assert result.has_solution
        proc, step = form.extract_assignment(result)
        assert proc[1] == 0
