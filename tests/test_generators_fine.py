"""Tests for the fine-grained DAG generators (spmv, exp, cg, kNN)."""

import numpy as np
import pytest

from repro.graphs.fine import (
    FINE_GRAINED_GENERATORS,
    cg_dag,
    exp_dag,
    generate_fine_grained,
    knn_dag,
    spmv_dag,
)
from repro.graphs.random import banded_pattern


class TestWeightRules:
    @pytest.mark.parametrize("kind", sorted(FINE_GRAINED_GENERATORS))
    def test_paper_weight_rules(self, kind):
        """Sources have work 1; internal nodes have work max(1, indeg - 1);
        every node has communication weight 1 (paper Appendix B.2)."""
        dag = generate_fine_grained(kind, n=6, q=0.3, seed=2)
        assert np.all(dag.comm == 1)
        for v in dag.nodes():
            indeg = dag.in_degree(v)
            if indeg == 0:
                assert dag.work[v] == 1
            else:
                assert dag.work[v] == max(1, indeg - 1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            generate_fine_grained("lu", n=4)


class TestSpmv:
    def test_depth_is_three_levels(self):
        """spmv DAGs are shallow: input -> product -> row sum (paper B.3)."""
        dag = spmv_dag(10, q=0.3, seed=1)
        assert dag.depth() == 3

    def test_structure_matches_pattern(self):
        # Banded pattern with bandwidth 0 = diagonal matrix: one product and
        # one sum per row, plus n matrix entries and n vector entries.
        pattern = banded_pattern(4, bandwidth=0)
        dag = spmv_dag(4, pattern=pattern)
        assert dag.n == 4 + 4 + 4 + 4
        assert dag.depth() == 3

    def test_deterministic_with_seed(self):
        a = spmv_dag(8, q=0.25, seed=42)
        b = spmv_dag(8, q=0.25, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = spmv_dag(8, q=0.25, seed=1)
        b = spmv_dag(8, q=0.25, seed=2)
        assert a.n != b.n or a != b


class TestExp:
    def test_depth_grows_with_iterations(self):
        shallow = exp_dag(6, k=1, q=0.3, seed=3)
        deep = exp_dag(6, k=4, q=0.3, seed=3)
        assert deep.depth() > shallow.depth()
        assert deep.n > shallow.n

    def test_matrix_entries_are_reused_across_iterations(self):
        pattern = banded_pattern(4, bandwidth=1)
        one = exp_dag(4, k=1, pattern=pattern)
        two = exp_dag(4, k=2, pattern=pattern)
        nnz = sum(len(row) for row in pattern)
        # The second iteration adds products and sums but no new A entries.
        added = two.n - one.n
        per_iteration_nodes = nnz + 4  # products + row sums
        assert added == per_iteration_nodes

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            exp_dag(4, k=0)


class TestKnn:
    def test_sparsity_propagates_from_single_source(self):
        """kNN starts from a single nonzero, so the first iteration touches
        only the rows adjacent to the source column."""
        pattern = banded_pattern(6, bandwidth=1)
        dag = knn_dag(6, k=1, pattern=pattern, source_index=0)
        # Much smaller than the dense exp DAG with the same pattern.
        dense = exp_dag(6, k=1, pattern=pattern)
        assert dag.n < dense.n

    def test_is_connected(self):
        dag = knn_dag(8, k=3, q=0.3, seed=4)
        assert len(dag.weakly_connected_components()) == 1

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            knn_dag(4, k=0)


class TestCg:
    def test_contains_expected_per_iteration_structure(self):
        pattern = banded_pattern(5, bandwidth=1)
        one = cg_dag(5, k=1, pattern=pattern)
        two = cg_dag(5, k=2, pattern=pattern)
        three = cg_dag(5, k=3, pattern=pattern)
        # Every CG iteration adds the same number of nodes (the recurrences
        # have a fixed per-iteration footprint for a fixed pattern).
        assert three.n - two.n == two.n - one.n
        assert two.depth() > one.depth()

    def test_single_sink_free_structure_is_acyclic_and_connected_enough(self):
        dag = cg_dag(6, k=2, q=0.3, seed=9)
        assert dag.n > 50
        assert dag.num_edges > dag.n  # reductions create high in-degree nodes

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            cg_dag(4, k=0)
