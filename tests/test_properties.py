"""Property-based tests (hypothesis) for core invariants.

These tests generate random DAGs, machines and schedules and check the
invariants every component of the framework relies on:

* every scheduler produces a valid BSP schedule on any DAG/machine,
* schedule costs respect the trivial lower bounds of the model,
* the incremental local-search cost always matches the exact cost function,
* hill climbing is monotone,
* coarsening preserves acyclicity and total weights,
* the hyperDAG text format round-trips.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.cilk import CilkScheduler
from repro.baselines.hdagg import HDaggScheduler
from repro.baselines.list_schedulers import BlEstScheduler, EtfScheduler
from repro.baselines.trivial import LevelRoundRobinScheduler
from repro.graphs.dag import ComputationalDAG
from repro.graphs.hyperdag import dumps_hyperdag, loads_hyperdag
from repro.heuristics.bspg import BspGreedyScheduler
from repro.heuristics.source import SourceScheduler
from repro.localsearch.hill_climbing import hill_climb
from repro.localsearch.state import LocalSearchState
from repro.model.machine import BspMachine
from repro.model.schedule import BspSchedule, legalize_superstep_assignment
from repro.multilevel.coarsen import coarsen_dag

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def random_dags(draw, max_nodes: int = 18):
    """Random DAG with edges oriented along the node order."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    edges = []
    for v in range(1, n):
        # Each node picks a random subset of earlier nodes as parents.
        num_parents = draw(st.integers(min_value=0, max_value=min(3, v)))
        parents = draw(
            st.lists(st.integers(min_value=0, max_value=v - 1), min_size=num_parents,
                     max_size=num_parents, unique=True)
        )
        edges.extend((u, v) for u in parents)
    work = draw(st.lists(st.integers(min_value=1, max_value=5), min_size=n, max_size=n))
    comm = draw(st.lists(st.integers(min_value=1, max_value=4), min_size=n, max_size=n))
    return ComputationalDAG(n, edges, work, comm, name="hypothesis")


@st.composite
def machines(draw):
    P = draw(st.sampled_from([1, 2, 4, 8]))
    g = draw(st.sampled_from([0.0, 1.0, 3.0, 5.0]))
    latency = draw(st.sampled_from([0.0, 1.0, 5.0]))
    use_numa = draw(st.booleans())
    if use_numa and P >= 2:
        delta = draw(st.sampled_from([2.0, 3.0]))
        return BspMachine.hierarchical(P=P, delta=delta, g=g, l=latency)
    return BspMachine(P=P, g=g, l=latency)


SCHEDULERS = [
    CilkScheduler(seed=0),
    BlEstScheduler(),
    EtfScheduler(),
    HDaggScheduler(),
    BspGreedyScheduler(),
    SourceScheduler(),
    LevelRoundRobinScheduler(),
]


# ----------------------------------------------------------------------
# Scheduler validity and cost lower bounds
# ----------------------------------------------------------------------
class TestSchedulerProperties:
    @settings(max_examples=25, deadline=None)
    @given(dag=random_dags(), machine=machines())
    def test_all_schedulers_produce_valid_schedules(self, dag, machine):
        for scheduler in SCHEDULERS:
            sched = scheduler.schedule(dag, machine)
            assert sched.is_valid(), f"{scheduler.name} invalid on n={dag.n}, P={machine.P}"

    @settings(max_examples=25, deadline=None)
    @given(dag=random_dags(), machine=machines())
    def test_cost_respects_lower_bounds(self, dag, machine):
        """Any valid schedule costs at least the critical-path work, at least
        the average work per processor, and at least one latency charge."""
        for scheduler in (HDaggScheduler(), BspGreedyScheduler()):
            cost = scheduler.schedule(dag, machine).cost()
            assert cost + 1e-9 >= dag.critical_path_work()
            assert cost + 1e-9 >= dag.total_work() / machine.P
            if dag.n > 0:
                assert cost + 1e-9 >= machine.l

    @settings(max_examples=20, deadline=None)
    @given(dag=random_dags(), machine=machines())
    def test_lazy_comm_matches_implicit_cost(self, dag, machine):
        sched = BspGreedyScheduler().schedule(dag, machine)
        explicit = sched.with_lazy_comm()
        assert explicit.cost() == pytest.approx(sched.cost())


# ----------------------------------------------------------------------
# Local search invariants
# ----------------------------------------------------------------------
class TestLocalSearchProperties:
    @settings(max_examples=20, deadline=None)
    @given(dag=random_dags(max_nodes=14), machine=machines(), data=st.data())
    def test_incremental_cost_matches_exact(self, dag, machine, data):
        state = LocalSearchState(LevelRoundRobinScheduler().schedule(dag, machine))
        for _ in range(15):
            v = data.draw(st.integers(min_value=0, max_value=dag.n - 1))
            moves = state.candidate_moves(v)
            if not moves:
                continue
            _, p, s = moves[data.draw(st.integers(min_value=0, max_value=len(moves) - 1))]
            state.apply_move(v, p, s)
        assert state.total_cost == pytest.approx(state.recompute_cost())
        assert state.to_schedule().is_valid()

    @settings(max_examples=20, deadline=None)
    @given(dag=random_dags(max_nodes=14), machine=machines())
    def test_hill_climbing_is_monotone_and_valid(self, dag, machine):
        initial = LevelRoundRobinScheduler().schedule(dag, machine)
        result = hill_climb(initial, max_passes=3)
        assert result.final_cost <= initial.cost() + 1e-9
        assert result.schedule.is_valid()

    @settings(max_examples=20, deadline=None)
    @given(dag=random_dags(), machine=machines())
    def test_legalization_produces_valid_schedules(self, dag, machine):
        rng = np.random.default_rng(0)
        proc = rng.integers(0, machine.P, dag.n)
        step = np.zeros(dag.n, dtype=np.int64)
        legal = legalize_superstep_assignment(dag, proc, step)
        assert BspSchedule(dag, machine, proc, legal).is_valid()
        assert np.array_equal(legal, legalize_superstep_assignment(dag, proc, legal))


# ----------------------------------------------------------------------
# Coarsening and serialization invariants
# ----------------------------------------------------------------------
class TestStructuralProperties:
    @settings(max_examples=20, deadline=None)
    @given(dag=random_dags())
    def test_coarsening_preserves_weights_and_acyclicity(self, dag):
        target = max(1, dag.n // 2)
        seq = coarsen_dag(dag, target)
        coarse, mapping = seq.coarse_dag_after(seq.num_contractions)
        assert coarse.total_work() == dag.total_work()
        assert coarse.total_comm() == dag.total_comm()
        assert coarse.n == dag.n - seq.num_contractions
        assert len(mapping) == dag.n
        # Quotient edges must come from original edges between distinct clusters.
        for (cu, cv) in coarse.edges:
            assert cu != cv

    @settings(max_examples=25, deadline=None)
    @given(dag=random_dags())
    def test_hyperdag_round_trip(self, dag):
        assert loads_hyperdag(dumps_hyperdag(dag)) == dag

    @settings(max_examples=25, deadline=None)
    @given(dag=random_dags())
    def test_topological_order_is_consistent(self, dag):
        order = dag.topological_order()
        pos = {v: i for i, v in enumerate(order)}
        for (u, v) in dag.edges:
            assert pos[u] < pos[v]
        levels = dag.node_levels()
        for (u, v) in dag.edges:
            assert levels[u] < levels[v]
