"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graphs.coarse import coarse_conjugate_gradient
from repro.graphs.dag import ComputationalDAG
from repro.graphs.fine import exp_dag, spmv_dag
from repro.graphs.random import random_layered_dag
from repro.model.machine import BspMachine


@pytest.fixture
def diamond_dag() -> ComputationalDAG:
    """The classic 4-node diamond: 0 -> {1, 2} -> 3."""
    return ComputationalDAG(
        4,
        [(0, 1), (0, 2), (1, 3), (2, 3)],
        work=[2, 3, 1, 2],
        comm=[1, 2, 1, 1],
        name="diamond",
    )


@pytest.fixture
def chain_dag() -> ComputationalDAG:
    """A 5-node chain 0 -> 1 -> 2 -> 3 -> 4."""
    return ComputationalDAG(5, [(i, i + 1) for i in range(4)], name="chain")


@pytest.fixture
def fork_join_dag() -> ComputationalDAG:
    """A fork-join DAG: one source fanning out to 6 parallel nodes and one sink."""
    edges = [(0, i) for i in range(1, 7)] + [(i, 7) for i in range(1, 7)]
    return ComputationalDAG(8, edges, work=[1, 2, 2, 2, 2, 2, 2, 1], comm=[3, 1, 1, 1, 1, 1, 1, 1], name="forkjoin")


@pytest.fixture
def layered_dag() -> ComputationalDAG:
    """A small random layered DAG (deterministic seed)."""
    return random_layered_dag(5, 6, edge_prob=0.4, seed=7, name="layered-test")


@pytest.fixture
def spmv_small() -> ComputationalDAG:
    """A small fine-grained spmv DAG (~60 nodes)."""
    return spmv_dag(8, q=0.3, seed=3)


@pytest.fixture
def exp_small() -> ComputationalDAG:
    """A small fine-grained iterated-spmv DAG."""
    return exp_dag(6, k=2, q=0.3, seed=5)


@pytest.fixture
def coarse_cg_small() -> ComputationalDAG:
    """A small coarse-grained conjugate-gradient DAG."""
    return coarse_conjugate_gradient(3)


@pytest.fixture
def machine2() -> BspMachine:
    """Two uniform processors, moderate communication cost."""
    return BspMachine(P=2, g=2, l=3)


@pytest.fixture
def machine4() -> BspMachine:
    """Four uniform processors with the paper's default latency."""
    return BspMachine(P=4, g=3, l=5)


@pytest.fixture
def numa_machine() -> BspMachine:
    """Eight processors in a binary NUMA hierarchy with delta = 3."""
    return BspMachine.hierarchical(P=8, delta=3, g=1, l=5)


@pytest.fixture
def all_test_dags(diamond_dag, chain_dag, fork_join_dag, layered_dag, spmv_small, coarse_cg_small):
    """A battery of structurally different DAGs used by scheduler tests."""
    return [diamond_dag, chain_dag, fork_join_dag, layered_dag, spmv_small, coarse_cg_small]
