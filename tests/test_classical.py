"""Unit tests for classical (time-based) schedules and BSP conversion."""

import numpy as np
import pytest

from repro.graphs.dag import ComputationalDAG
from repro.model.classical import ClassicalSchedule, classical_to_bsp


class TestClassicalSchedule:
    def test_finish_and_makespan(self, diamond_dag, machine2):
        proc = np.array([0, 0, 1, 0])
        start = np.array([0.0, 2.0, 2.0, 5.0])
        sched = ClassicalSchedule(diamond_dag, machine2, proc, start)
        assert sched.finish[0] == 2.0
        assert sched.finish[3] == 7.0
        assert sched.makespan == 7.0

    def test_empty_dag_makespan(self, machine2):
        dag = ComputationalDAG(0, [])
        sched = ClassicalSchedule(dag, machine2, np.zeros(0, int), np.zeros(0))
        assert sched.makespan == 0.0

    def test_execution_order_breaks_ties_topologically(self, machine2):
        dag = ComputationalDAG(3, [(0, 1), (0, 2)])
        sched = ClassicalSchedule(dag, machine2, np.zeros(3, int), np.array([0.0, 1.0, 1.0]))
        order = sched.execution_order()
        assert order[0] == 0
        assert set(order[1:]) == {1, 2}

    def test_processor_exclusivity_check(self, machine2):
        dag = ComputationalDAG(2, [], work=[3, 3])
        overlapping = ClassicalSchedule(dag, machine2, np.array([0, 0]), np.array([0.0, 1.0]))
        assert overlapping.validate_processor_exclusivity()
        disjoint = ClassicalSchedule(dag, machine2, np.array([0, 0]), np.array([0.0, 3.0]))
        assert not disjoint.validate_processor_exclusivity()

    def test_wrong_length_rejected(self, diamond_dag, machine2):
        with pytest.raises(ValueError):
            ClassicalSchedule(diamond_dag, machine2, np.zeros(3, int), np.zeros(4))


class TestConversionToBsp:
    def test_single_processor_collapses_to_one_superstep(self, chain_dag, machine2):
        proc = np.zeros(5, dtype=int)
        start = np.arange(5, dtype=float)
        bsp = classical_to_bsp(ClassicalSchedule(chain_dag, machine2, proc, start))
        assert bsp.is_valid()
        assert bsp.num_supersteps == 1

    def test_cross_processor_dependency_inserts_barrier(self, machine2):
        dag = ComputationalDAG(2, [(0, 1)], work=[1, 1])
        classical = ClassicalSchedule(dag, machine2, np.array([0, 1]), np.array([0.0, 1.0]))
        bsp = classical_to_bsp(classical)
        assert bsp.is_valid()
        assert bsp.step[1] > bsp.step[0]

    def test_conversion_preserves_processor_assignment(self, diamond_dag, machine2):
        proc = np.array([0, 1, 0, 1])
        start = np.array([0.0, 2.0, 2.0, 5.0])
        bsp = classical_to_bsp(ClassicalSchedule(diamond_dag, machine2, proc, start))
        assert np.array_equal(bsp.proc, proc)
        assert bsp.is_valid()

    def test_conversion_of_parallel_independent_work(self, machine4):
        # Independent nodes on distinct processors need no barriers at all.
        dag = ComputationalDAG(4, [], work=[2, 2, 2, 2])
        classical = ClassicalSchedule(dag, machine4, np.arange(4), np.zeros(4))
        bsp = classical_to_bsp(classical)
        assert bsp.is_valid()
        assert bsp.num_supersteps == 1

    def test_conversion_always_valid_on_list_schedules(self, all_test_dags, machine4):
        from repro.baselines.list_schedulers import list_schedule

        for dag in all_test_dags:
            for policy in ("bl-est", "etf"):
                classical = list_schedule(dag, machine4, policy=policy)
                assert not classical.validate_processor_exclusivity()
                bsp = classical_to_bsp(classical)
                assert bsp.is_valid(), f"{policy} conversion invalid on {dag.name}"
