"""Vectorized list schedulers match the reference loop, schedule for schedule.

:func:`repro.baselines.list_schedulers.list_schedule` batches the EST inner
loop into dense numpy tables; the policy semantics (selection keys, tie
breaks, memory feasibility, failure behaviour) must be exactly those of the
straight-line reference implementation
(:func:`~repro.baselines.list_schedulers._list_schedule_reference`).  These
tests compare the two on random DAGs and machines — uniform, NUMA and
memory-bounded — and require identical processor assignments and start
times, or the same :class:`~repro.scheduler.SchedulingError` outcome.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines.list_schedulers import _list_schedule_reference, list_schedule
from repro.graphs.dag import ComputationalDAG
from repro.model.machine import BspMachine
from repro.scheduler import SchedulingError


@st.composite
def random_dags(draw, max_nodes: int = 14):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    edges = []
    for v in range(1, n):
        num_parents = draw(st.integers(min_value=0, max_value=min(3, v)))
        parents = draw(
            st.lists(st.integers(min_value=0, max_value=v - 1),
                     min_size=num_parents, max_size=num_parents, unique=True)
        )
        edges.extend((u, v) for u in parents)
    work = draw(st.lists(st.integers(min_value=1, max_value=5), min_size=n, max_size=n))
    comm = draw(st.lists(st.integers(min_value=0, max_value=4), min_size=n, max_size=n))
    memory = draw(st.lists(st.integers(min_value=1, max_value=4), min_size=n, max_size=n))
    return ComputationalDAG(n, edges, work, comm, memory=memory, name="hypothesis")


@st.composite
def machines(draw, dag):
    P = draw(st.sampled_from([1, 2, 4]))
    g = draw(st.sampled_from([0.0, 1.0, 3.0]))
    latency = draw(st.sampled_from([0.0, 5.0]))
    numa = None
    if P >= 2 and draw(st.booleans()):
        offsets = draw(
            st.lists(st.sampled_from([0.0, 0.5, 2.0]), min_size=P * P, max_size=P * P)
        )
        numa = 1.0 + np.array(offsets, dtype=np.float64).reshape(P, P)
        np.fill_diagonal(numa, 0.0)
    bound = None
    if draw(st.booleans()):
        total = float(np.sum(dag.memory))
        # From comfortably feasible down to likely-infeasible.
        scale = draw(st.sampled_from([2.0, 1.0, 0.6, 0.3]))
        bound = max(total / P * scale, 0.5)
    return BspMachine(P=P, g=g, l=latency, numa=numa, memory_bound=bound)


def _run(impl, dag, machine, policy, respect_memory, prefer_memory_balance):
    try:
        out = impl(
            dag,
            machine,
            policy,
            respect_memory=respect_memory,
            prefer_memory_balance=prefer_memory_balance,
        )
        return out, None
    except SchedulingError:
        return None, SchedulingError


class TestVectorizedMatchesReference:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_identical_schedules(self, data):
        dag = data.draw(random_dags(), label="dag")
        machine = data.draw(machines(dag), label="machine")
        policy = data.draw(st.sampled_from(["bl-est", "etf"]), label="policy")
        respect_memory = data.draw(st.booleans(), label="respect_memory")
        prefer_memory_balance = data.draw(st.booleans(), label="prefer_memory_balance")

        ref, ref_err = _run(
            _list_schedule_reference, dag, machine, policy,
            respect_memory, prefer_memory_balance,
        )
        vec, vec_err = _run(
            list_schedule, dag, machine, policy,
            respect_memory, prefer_memory_balance,
        )
        assert ref_err == vec_err
        if ref_err is None:
            assert np.array_equal(ref.proc, vec.proc)
            assert np.array_equal(ref.start, vec.start)

    def test_empty_dag(self):
        dag = ComputationalDAG(0, [], [], [], name="empty")
        machine = BspMachine(P=2, g=1, l=1)
        for policy in ("bl-est", "etf"):
            out = list_schedule(dag, machine, policy)
            assert out.proc.size == 0 and out.start.size == 0
