"""Acceptance round trips of the declarative solve API (ISSUE 2).

Three guarantees, verified end to end:

* every scheduler in ``available_schedulers()`` is constructible from a
  spec string, and every spec string canonicalizes to a stable fixed point;
* parameterized spec strings (framework, multilevel, local-search entries)
  parse back to an equivalent configuration;
* ``api.solve_many(jobs=2)`` and ``python -m repro batch --jobs 2`` produce
  byte-identical results to a serial ``api.solve`` loop on deterministic
  schedulers.
"""

import pytest

from repro import api
from repro.cli import main
from repro.registry import (
    available_schedulers,
    canonical_scheduler_spec,
    format_scheduler_spec,
    make_scheduler,
    parse_scheduler_spec,
    scheduler_info,
)
from repro.scheduler import Scheduler
from repro.spec import DagSpec, MachineSpec, ProblemSpec, SolveRequest


@pytest.fixture
def spmv_spec() -> ProblemSpec:
    return ProblemSpec(
        dag=DagSpec.generator("spmv", n=6, q=0.3, seed=4),
        machine=MachineSpec(P=2, g=2, l=3),
    )


#: Deterministic schedulers cheap enough to batch in tests (spec strings,
#: including one parameterized form each for a framework entry, a multilevel
#: entry and the local-search entries).
DETERMINISTIC_SPECS = [
    "cilk",
    "cilk(seed=3)",
    "hdagg(aggregation_factor=3.0)",
    "bl-est",
    "etf",
    "trivial",
    "level-rr",
    "bspg(idle_fraction=0.25)",
    "source",
    "hc(max_moves=50, init=source)",
    "hccs(max_moves=20)",
    "sa(steps=40, seed=7)",
]


class TestEverySchedulerConstructible:
    def test_every_registered_name_is_a_valid_spec(self):
        for name in available_schedulers():
            scheduler = make_scheduler(name)
            assert isinstance(scheduler, Scheduler), name

    def test_every_registered_name_has_metadata(self):
        for name in available_schedulers():
            info = scheduler_info(name)
            assert info.description, name
            assert isinstance(info.deterministic, bool)
            assert isinstance(info.numa_aware, bool)

    def test_canonical_spec_is_a_fixed_point(self):
        specs = DETERMINISTIC_SPECS + [
            "framework(fast=true, hc_max_moves=10)",
            "multilevel(min_coarse_nodes=16, coarsening_ratios=[0.3, 0.15])",
        ]
        for spec in specs:
            canonical = canonical_scheduler_spec(spec)
            assert canonical_scheduler_spec(canonical) == canonical, spec
            name, kwargs = parse_scheduler_spec(canonical)
            assert format_scheduler_spec(name, kwargs) == canonical, spec


class TestParameterizedFormsParseBack:
    """Parameterized spec strings reproduce an equivalent configuration."""

    def test_framework_parameterized(self):
        scheduler = make_scheduler(
            "framework(fast=true, use_ilp_full=false, hc_max_moves=25, hc_time_limit=1.5)"
        )
        config = scheduler.config
        assert config.use_ilp_full is False
        assert config.hc_max_moves == 25
        assert config.hc_time_limit == 1.5
        # fast preset knobs survive under the overrides
        assert config.use_ilp_init is False

    def test_framework_preset(self):
        heur = make_scheduler("framework(preset=heuristics)").config
        assert not (heur.use_ilp_full or heur.use_ilp_partial or heur.use_ilp_cs)

    def test_multilevel_parameterized(self):
        scheduler = make_scheduler(
            "multilevel(coarsening_ratios=[0.4, 0.2], min_coarse_nodes=12, hc_max_moves=30)"
        )
        config = scheduler.config
        assert config.coarsening_ratios == (0.4, 0.2)
        assert config.min_coarse_nodes == 12
        # pipeline knobs fall through to the base pipeline
        assert config.base_pipeline.hc_max_moves == 30

    def test_local_search_parameterized(self):
        hc = make_scheduler("hc(variant=best, max_moves=7, init=source)")
        assert (hc.variant, hc.max_moves, hc.init) == ("best", 7, "source")
        sa = make_scheduler("sa(steps=11, cooling=0.9, seed=5)")
        assert (sa.steps, sa.cooling, sa.seed) == (11, 0.9, 5)
        hccs = make_scheduler("hccs(max_moves=3)")
        assert hccs.max_moves == 3

    def test_equivalent_spec_strings_build_equal_configs(self):
        a = make_scheduler("framework(hc_max_moves=10, use_ilp_full=false)").config
        b = make_scheduler("framework(use_ilp_full=false, hc_max_moves=10)").config
        assert a == b

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            make_scheduler("cilk(voltage=9)")

    def test_unknown_pipeline_knob_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            make_scheduler("framework(warp_speed=true)")
        from repro.pipeline.config import PipelineConfig

        with pytest.raises(ValueError, match="unknown pipeline option"):
            PipelineConfig().with_overrides(warp_speed=True)


class TestBatchByteIdentity:
    """jobs=2 batches are byte-identical to serial solve loops."""

    def _requests(self, spec: ProblemSpec):
        return [SolveRequest(spec=spec, scheduler=s) for s in DETERMINISTIC_SPECS]

    def test_solve_many_matches_serial_solve_loop(self, spmv_spec):
        requests = self._requests(spmv_spec)
        serial = [api.solve(r).to_json() for r in requests]
        parallel = [r.to_json() for r in api.solve_many(requests, jobs=2)]
        assert serial == parallel

    def test_cli_batch_matches_serial_solve_loop(self, spmv_spec, tmp_path):
        requests = self._requests(spmv_spec)
        requests_file = tmp_path / "requests.jsonl"
        requests_file.write_text("".join(r.to_json() + "\n" for r in requests))
        out_serial = tmp_path / "serial.jsonl"
        out_parallel = tmp_path / "parallel.jsonl"
        assert main(["batch", str(requests_file), "--out", str(out_serial)]) == 0
        assert main(
            ["batch", str(requests_file), "--jobs", "2", "--out", str(out_parallel)]
        ) == 0
        assert out_serial.read_bytes() == out_parallel.read_bytes()
        expected = "".join(api.solve(r).to_json() + "\n" for r in requests)
        assert out_serial.read_text() == expected

    def test_cli_batch_resume_is_byte_identical(self, spmv_spec, tmp_path):
        requests = self._requests(spmv_spec)[:4]
        requests_file = tmp_path / "requests.jsonl"
        requests_file.write_text("".join(r.to_json() + "\n" for r in requests))
        checkpoint = tmp_path / "ck.jsonl"
        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        assert main(
            ["batch", str(requests_file), "--checkpoint", str(checkpoint), "--out", str(first)]
        ) == 0
        assert main(
            [
                "batch", str(requests_file), "--jobs", "2",
                "--checkpoint", str(checkpoint), "--resume", "--out", str(second),
            ]
        ) == 0
        assert first.read_bytes() == second.read_bytes()
