"""Unit tests for the initialization heuristics BSPg and Source."""

import numpy as np
import pytest

from repro.baselines.cilk import CilkScheduler
from repro.graphs.dag import ComputationalDAG
from repro.heuristics.bspg import BspGreedyScheduler
from repro.heuristics.source import SourceScheduler
from repro.model.machine import BspMachine

HEURISTICS = [BspGreedyScheduler(), SourceScheduler()]


class TestHeuristicValidity:
    @pytest.mark.parametrize("scheduler", HEURISTICS, ids=lambda s: s.name)
    def test_valid_on_battery(self, scheduler, all_test_dags, machine4):
        for dag in all_test_dags:
            scheduler.schedule_checked(dag, machine4)

    @pytest.mark.parametrize("scheduler", HEURISTICS, ids=lambda s: s.name)
    def test_valid_with_numa(self, scheduler, spmv_small, numa_machine):
        scheduler.schedule_checked(spmv_small, numa_machine)

    @pytest.mark.parametrize("scheduler", HEURISTICS, ids=lambda s: s.name)
    def test_single_processor(self, scheduler, layered_dag):
        machine = BspMachine(P=1, g=1, l=1)
        sched = scheduler.schedule_checked(layered_dag, machine)
        assert set(sched.proc.tolist()) == {0}

    @pytest.mark.parametrize("scheduler", HEURISTICS, ids=lambda s: s.name)
    def test_empty_dag(self, scheduler, machine2):
        dag = ComputationalDAG(0, [])
        sched = scheduler.schedule(dag, machine2)
        assert sched.is_valid()

    @pytest.mark.parametrize("scheduler", HEURISTICS, ids=lambda s: s.name)
    def test_every_node_assigned_exactly_once(self, scheduler, exp_small, machine4):
        sched = scheduler.schedule(exp_small, machine4)
        assert np.all(sched.proc >= 0) and np.all(sched.proc < machine4.P)
        assert np.all(sched.step >= 0)


class TestBspGreedy:
    def test_parallelizes_independent_work(self, machine4):
        dag = ComputationalDAG(8, [], work=[3] * 8)
        sched = BspGreedyScheduler().schedule_checked(dag, machine4)
        # Work should be spread: one superstep, max per-processor work 6.
        assert sched.cost_breakdown().work_cost <= 6 + 1e-9
        assert sched.num_supersteps == 1

    def test_keeps_chain_on_one_processor(self, chain_dag, machine4):
        sched = BspGreedyScheduler().schedule_checked(chain_dag, machine4)
        # A chain can never use more than one processor without paying
        # communication; BSPg keeps it local (it may still split supersteps —
        # per the paper's Algorithm 1 the phase closes once half the
        # processors are idle — but it must never communicate).
        assert len(set(sched.proc.tolist())) == 1
        assert sched.cost_breakdown().comm_cost == 0.0
        # The subsequent hill-climbing stage compacts superfluous supersteps
        # (it may stop on a plateau, but it must strictly reduce the latency
        # overhead of the one-node-per-superstep schedule).
        from repro.localsearch.hill_climbing import hill_climb

        improved = hill_climb(sched).schedule
        assert improved.cost() < sched.cost()
        assert improved.num_supersteps < sched.num_supersteps

    def test_idle_fraction_validation(self):
        with pytest.raises(ValueError):
            BspGreedyScheduler(idle_fraction=0.0)
        with pytest.raises(ValueError):
            BspGreedyScheduler(idle_fraction=1.5)

    def test_competitive_with_cilk_under_communication(self, exp_small):
        machine = BspMachine(P=4, g=5, l=5)
        bspg_cost = BspGreedyScheduler().schedule(exp_small, machine).cost()
        cilk_cost = CilkScheduler(seed=0).schedule(exp_small, machine).cost()
        assert bspg_cost <= cilk_cost


class TestSource:
    def test_one_superstep_per_layer_at_most(self, machine4):
        # A 3-level DAG: Source uses at most ~depth supersteps (successor
        # pulling can only reduce the count).
        dag = ComputationalDAG(9, [(0, 3), (1, 4), (2, 5), (3, 6), (4, 7), (5, 8)])
        sched = SourceScheduler().schedule_checked(dag, machine4)
        assert sched.num_supersteps <= 3

    def test_initial_clustering_groups_siblings(self, machine4):
        # Two sources sharing a successor should land on the same processor.
        dag = ComputationalDAG(3, [(0, 2), (1, 2)])
        sched = SourceScheduler().schedule_checked(dag, machine4)
        assert sched.proc[0] == sched.proc[1]

    def test_pulls_in_single_parent_successors(self, machine4):
        # 0 -> 1 -> 2 chain: everything can be pulled into superstep 0.
        dag = ComputationalDAG(2, [(0, 1)])
        sched = SourceScheduler().schedule_checked(dag, machine4)
        assert sched.num_supersteps == 1

    def test_round_robin_balances_sources(self, machine4):
        dag = ComputationalDAG(8, [], work=[5, 4, 3, 2, 5, 4, 3, 2])
        sched = SourceScheduler().schedule_checked(dag, machine4)
        assert len(set(sched.proc.tolist())) == machine4.P

    def test_good_on_shallow_spmv(self, spmv_small, machine4):
        """The paper observes that Source is particularly effective on the
        shallow spmv DAGs; at least it must beat the trivial sequential cost."""
        from repro.baselines.trivial import TrivialScheduler

        source_cost = SourceScheduler().schedule(spmv_small, machine4).cost()
        trivial_cost = TrivialScheduler().schedule(spmv_small, machine4).cost()
        assert source_cost < trivial_cost
