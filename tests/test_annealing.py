"""Tests for the simulated annealing local search extension."""

import pytest

from repro.baselines.trivial import LevelRoundRobinScheduler
from repro.graphs.dag import ComputationalDAG
from repro.localsearch.annealing import SimulatedAnnealingImprover, simulated_annealing
from repro.localsearch.hill_climbing import hill_climb
from repro.model.schedule import BspSchedule


class TestSimulatedAnnealing:
    def test_never_worse_than_start(self, all_test_dags, machine4):
        for dag in all_test_dags:
            initial = LevelRoundRobinScheduler().schedule(dag, machine4)
            result = simulated_annealing(initial, steps=300, seed=1)
            assert result.final_cost <= initial.cost() + 1e-9
            assert result.schedule.is_valid()

    def test_improves_bad_schedule(self, machine4):
        import numpy as np

        dag = ComputationalDAG(8, [], work=[4] * 8)
        bad = BspSchedule(dag, machine4, np.zeros(8, int), np.arange(8))
        result = simulated_annealing(bad, steps=1500, seed=0)
        assert result.final_cost < bad.cost()
        assert result.moves_accepted > 0

    def test_deterministic_with_seed(self, layered_dag, machine4):
        initial = LevelRoundRobinScheduler().schedule(layered_dag, machine4)
        a = simulated_annealing(initial, steps=400, seed=7)
        b = simulated_annealing(initial, steps=400, seed=7)
        assert a.final_cost == pytest.approx(b.final_cost)

    def test_escapes_hill_climbing_plateau(self, machine4):
        """The chain-compaction plateau that stops HC (see the heuristics
        tests) can be crossed by annealing given enough steps."""
        import numpy as np

        dag = ComputationalDAG(5, [(i, i + 1) for i in range(4)])
        spread = BspSchedule(dag, machine4, np.zeros(5, int), np.arange(5))
        hc_cost = hill_climb(spread).final_cost
        sa_cost = simulated_annealing(spread, steps=4000, seed=3).final_cost
        assert sa_cost <= hc_cost + 1e-9

    def test_parameter_validation(self, diamond_dag, machine2):
        initial = BspSchedule.trivial(diamond_dag, machine2)
        with pytest.raises(ValueError):
            simulated_annealing(initial, cooling=0.0)
        with pytest.raises(ValueError):
            simulated_annealing(initial, steps=-1)

    def test_zero_steps_is_identity(self, diamond_dag, machine2):
        initial = BspSchedule.trivial(diamond_dag, machine2)
        result = simulated_annealing(initial, steps=0)
        assert result.final_cost == pytest.approx(initial.cost())
        assert result.moves_evaluated == 0

    def test_improver_wrapper(self, layered_dag, machine4):
        initial = LevelRoundRobinScheduler().schedule(layered_dag, machine4)
        improved = SimulatedAnnealingImprover(steps=300, seed=2).improve(initial)
        assert improved.is_valid()
        assert improved.cost() <= initial.cost() + 1e-9

    def test_empty_dag(self, machine2):
        dag = ComputationalDAG(0, [])
        result = simulated_annealing(BspSchedule.trivial(dag, machine2), steps=10)
        assert result.final_cost == 0.0
