"""Tests for random sparsity patterns and random DAG generators."""

import pytest

from repro.graphs.random import (
    banded_pattern,
    erdos_renyi_dag,
    random_layered_dag,
    random_sparse_pattern,
)


class TestSparsePatterns:
    def test_shape_and_bounds(self):
        rows = random_sparse_pattern(10, 0.3, seed=0)
        assert len(rows) == 10
        for i, row in enumerate(rows):
            assert all(0 <= j < 10 for j in row)
            assert row == sorted(row)
            assert i in row  # diagonal forced nonzero

    def test_density_roughly_matches_q(self):
        rows = random_sparse_pattern(60, 0.2, seed=1, ensure_nonempty_rows=False)
        nnz = sum(len(r) for r in rows)
        density = nnz / (60 * 60)
        assert 0.1 < density < 0.3

    def test_deterministic_with_seed(self):
        assert random_sparse_pattern(8, 0.4, seed=5) == random_sparse_pattern(8, 0.4, seed=5)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            random_sparse_pattern(5, 1.5)

    def test_banded_pattern(self):
        rows = banded_pattern(5, bandwidth=1)
        assert rows[0] == [0, 1]
        assert rows[2] == [1, 2, 3]
        assert rows[4] == [3, 4]
        with pytest.raises(ValueError):
            banded_pattern(3, bandwidth=-1)


class TestLayeredDag:
    def test_structure(self):
        dag = random_layered_dag(4, 5, edge_prob=0.5, seed=3)
        assert dag.n == 20
        assert dag.depth() == 4
        # Every non-first-layer node has at least one parent.
        for v in range(5, 20):
            assert dag.in_degree(v) >= 1

    def test_weights_in_range(self):
        dag = random_layered_dag(3, 4, seed=0, work_range=(2, 5), comm_range=(1, 2))
        assert dag.work.min() >= 2 and dag.work.max() <= 5
        assert dag.comm.min() >= 1 and dag.comm.max() <= 2

    def test_deterministic(self):
        assert random_layered_dag(3, 3, seed=9) == random_layered_dag(3, 3, seed=9)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            random_layered_dag(0, 3)


class TestErdosRenyiDag:
    def test_acyclic_by_construction(self):
        dag = erdos_renyi_dag(30, 0.2, seed=4)
        order = dag.topological_order()
        assert len(order) == 30

    def test_edge_orientation_follows_node_order(self):
        dag = erdos_renyi_dag(20, 0.3, seed=2)
        for (u, v) in dag.edges:
            assert u < v

    def test_empty_graph(self):
        dag = erdos_renyi_dag(0)
        assert dag.n == 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            erdos_renyi_dag(-1)
