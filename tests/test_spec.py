"""Tests for the declarative spec types (repro.spec)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.fine import spmv_dag
from repro.model.machine import BspMachine
from repro.spec import (
    DagSpec,
    MachineSpec,
    ProblemSpec,
    SolveRequest,
    SolveResult,
    SpecError,
)


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
machine_specs = st.one_of(
    st.builds(
        MachineSpec,
        P=st.integers(1, 16),
        g=st.floats(0, 10, allow_nan=False),
        l=st.floats(0, 20, allow_nan=False),
    ),
    st.builds(
        MachineSpec,
        P=st.sampled_from([2, 4, 8]),
        g=st.floats(0, 10, allow_nan=False),
        l=st.floats(0, 20, allow_nan=False),
        delta=st.floats(1, 5, allow_nan=False),
    ),
    st.builds(
        MachineSpec,
        P=st.just(4),
        groups=st.just((2, 2)),
        intra=st.floats(0.5, 2, allow_nan=False),
        inter=st.floats(2, 8, allow_nan=False),
    ),
)

generator_dag_specs = st.builds(
    lambda kind, n, q, seed: DagSpec.generator(kind, n=n, q=q, seed=seed),
    kind=st.sampled_from(["spmv", "exp", "cg", "knn"]),
    n=st.integers(2, 12),
    q=st.floats(0.05, 0.9, allow_nan=False),
    seed=st.integers(0, 1000),
)

dag_specs = st.one_of(
    generator_dag_specs,
    st.just(DagSpec.hyperdag("some/file.hdag")),
    st.just(DagSpec.from_dag(spmv_dag(5, q=0.4, seed=11))),
)


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
class TestRoundTrips:
    @given(machine_specs)
    @settings(max_examples=60, deadline=None)
    def test_machine_spec_json_identity(self, spec):
        assert MachineSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    @given(dag_specs)
    @settings(max_examples=60, deadline=None)
    def test_dag_spec_json_identity(self, spec):
        assert DagSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    @given(dag_specs, machine_specs)
    @settings(max_examples=40, deadline=None)
    def test_problem_spec_json_identity(self, dag, machine):
        spec = ProblemSpec(dag=dag, machine=machine)
        assert ProblemSpec.from_json(spec.to_json()) == spec

    @given(
        dag_specs,
        machine_specs,
        st.sampled_from(["framework", "cilk", "hc(max_moves=5)", "sa(steps=10, seed=3)"]),
        st.one_of(st.none(), st.integers(0, 99)),
        st.one_of(st.none(), st.floats(0.1, 60, allow_nan=False)),
    )
    @settings(max_examples=40, deadline=None)
    def test_solve_request_json_identity(self, dag, machine, scheduler, seed, budget):
        request = SolveRequest(
            spec=ProblemSpec(dag=dag, machine=machine),
            scheduler=scheduler,
            seed=seed,
            time_budget=budget,
        )
        assert SolveRequest.from_json(request.to_json()) == request

    def test_solve_result_json_identity(self):
        result = SolveResult(
            scheduler="cilk",
            dag_name="spmv_n8",
            num_nodes=66,
            machine=MachineSpec(P=2, g=2, l=3),
            total_cost=77.0,
            work_cost=39.0,
            comm_cost=26.0,
            latency_cost=12.0,
            num_supersteps=4,
            wall_seconds=0.25,
            scheduler_description="Cilk",
        )
        # Timing excluded by default: deterministic wire format.
        assert "wall_seconds" not in result.to_dict()
        restored = SolveResult.from_json(result.to_json(timing=True))
        assert restored == result
        untimed = SolveResult.from_json(result.to_json())
        assert untimed.total_cost == result.total_cost
        assert untimed.wall_seconds == 0.0


# ----------------------------------------------------------------------
# Building instances
# ----------------------------------------------------------------------
class TestBuild:
    def test_generator_spec_builds_named_dag(self):
        dag = DagSpec.generator("spmv", n=6, q=0.3, seed=4).build()
        assert dag.n > 0 and "spmv" in dag.name

    def test_inline_spec_round_trips_dag_structure(self):
        original = spmv_dag(6, q=0.3, seed=4)
        rebuilt = DagSpec.from_dag(original).build()
        assert rebuilt.n == original.n
        assert rebuilt.edges == original.edges
        assert rebuilt.name == original.name

    def test_hyperdag_spec_reads_file(self, tmp_path):
        from repro.graphs.hyperdag import write_hyperdag

        path = tmp_path / "x.hdag"
        original = spmv_dag(5, q=0.4, seed=0)
        write_hyperdag(original, path)
        rebuilt = DagSpec.hyperdag(path).build()
        assert rebuilt.n == original.n

    def test_machine_spec_delta_builds_hierarchy(self):
        machine = MachineSpec(P=8, g=1, l=5, delta=3).build()
        assert not machine.is_uniform
        assert machine.coefficient(0, 7) == 9.0

    def test_machine_spec_explicit_numa_round_trip(self):
        original = BspMachine.hierarchical(P=4, delta=2, g=1, l=5)
        spec = MachineSpec.from_machine(original)
        rebuilt = spec.build()
        assert (rebuilt.numa == original.numa).all()

    def test_problem_spec_from_instance(self):
        dag = spmv_dag(5, q=0.4, seed=1)
        machine = BspMachine(P=2, g=1, l=2)
        spec = ProblemSpec.from_instance(dag, machine)
        assert spec.build_dag().edges == dag.edges
        assert spec.build_machine().P == 2


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_unknown_source_rejected(self):
        with pytest.raises(SpecError):
            DagSpec(source="magic")

    def test_generator_requires_kind(self):
        with pytest.raises(SpecError):
            DagSpec(source="generator")

    def test_hyperdag_requires_path(self):
        with pytest.raises(SpecError):
            DagSpec(source="hyperdag")

    def test_unknown_generator_kind_fails_at_build(self):
        with pytest.raises(SpecError, match="unknown generator kind"):
            DagSpec.generator("fft", n=4).build()

    def test_nonpositive_processors_rejected(self):
        with pytest.raises(SpecError):
            MachineSpec(P=0)

    def test_conflicting_numa_descriptions_rejected(self):
        with pytest.raises(SpecError, match="conflicting NUMA"):
            MachineSpec(P=4, delta=2, groups=(2, 2))

    def test_empty_scheduler_rejected(self):
        spec = ProblemSpec(dag=DagSpec.generator("spmv", n=4), machine=MachineSpec(P=2))
        with pytest.raises(SpecError):
            SolveRequest(spec=spec, scheduler="  ")

    def test_request_missing_spec_section(self):
        with pytest.raises(SpecError, match="missing the 'spec'"):
            SolveRequest.from_dict({"scheduler": "cilk"})
