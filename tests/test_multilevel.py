"""Tests for the multilevel scheduler: coarsening, projection, refinement."""

import numpy as np
import pytest

from repro.baselines.hdagg import HDaggScheduler
from repro.graphs.fine import exp_dag
from repro.model.machine import BspMachine
from repro.multilevel.coarsen import (
    CoarseningSequence,
    coarse_dag_from_partition,
    coarsen_dag,
)
from repro.multilevel.refine import RefinementConfig, project_schedule, uncoarsen_and_refine
from repro.multilevel.scheduler import MultilevelScheduler, multilevel_schedule
from repro.pipeline.config import MultilevelConfig, PipelineConfig


class TestCoarsening:
    def test_reaches_target_size(self, spmv_small):
        target = max(8, spmv_small.n // 3)
        seq = coarsen_dag(spmv_small, target)
        coarse, mapping = seq.coarse_dag_after(seq.num_contractions)
        assert coarse.n <= max(target, spmv_small.n)
        assert coarse.n >= 1
        assert len(mapping) == spmv_small.n

    def test_each_contraction_reduces_by_one(self, layered_dag):
        seq = coarsen_dag(layered_dag, layered_dag.n - 5)
        assert seq.num_contractions == 5
        coarse, _ = seq.coarse_dag_after(5)
        assert coarse.n == layered_dag.n - 5

    def test_coarse_dag_preserves_total_weights(self, exp_small):
        seq = coarsen_dag(exp_small, max(4, exp_small.n // 4))
        coarse, _ = seq.coarse_dag_after(seq.num_contractions)
        assert coarse.total_work() == exp_small.total_work()
        assert coarse.total_comm() == exp_small.total_comm()

    def test_intermediate_levels_are_dags(self, layered_dag):
        seq = coarsen_dag(layered_dag, max(4, layered_dag.n // 3))
        for k in range(0, seq.num_contractions + 1, 3):
            coarse, _ = seq.coarse_dag_after(k)  # constructor checks acyclicity
            assert coarse.n == layered_dag.n - k

    def test_partition_prefix_is_consistent(self, layered_dag):
        seq = coarsen_dag(layered_dag, max(4, layered_dag.n // 2))
        early = seq.partition_after(2)
        late = seq.partition_after(seq.num_contractions)
        # The late partition must be a coarsening of the early one: nodes
        # sharing an early cluster also share a late cluster.
        for u in range(layered_dag.n):
            for v in range(u + 1, layered_dag.n):
                if early[u] == early[v]:
                    assert late[u] == late[v]

    def test_partition_after_out_of_range(self, diamond_dag):
        seq = coarsen_dag(diamond_dag, 2)
        with pytest.raises(ValueError):
            seq.partition_after(seq.num_contractions + 1)

    def test_invalid_target_rejected(self, diamond_dag):
        with pytest.raises(ValueError):
            coarsen_dag(diamond_dag, 0)

    def test_chain_coarsens_fully(self, chain_dag):
        seq = coarsen_dag(chain_dag, 1)
        coarse, _ = seq.coarse_dag_after(seq.num_contractions)
        assert coarse.n == 1
        assert coarse.total_work() == chain_dag.total_work()

    def test_coarse_dag_from_partition_identity(self, diamond_dag):
        identity = np.arange(diamond_dag.n)
        coarse, mapping = coarse_dag_from_partition(diamond_dag, identity)
        assert coarse.n == diamond_dag.n
        assert coarse.num_edges == diamond_dag.num_edges
        assert np.array_equal(mapping, identity)


class TestProjectionAndRefinement:
    def test_projection_is_valid(self, exp_small, machine4):
        seq = coarsen_dag(exp_small, max(6, exp_small.n // 3))
        total = seq.num_contractions
        coarse, _ = seq.coarse_dag_after(total)
        coarse_schedule = HDaggScheduler().schedule(coarse, machine4)
        finer_steps = max(0, total - 7)
        projected = project_schedule(seq, machine4, coarse_schedule, total, finer_steps)
        assert projected.is_valid()
        assert projected.dag.n == exp_small.n - finer_steps

    def test_projection_rejects_wrong_order(self, exp_small, machine4):
        seq = coarsen_dag(exp_small, max(6, exp_small.n // 3))
        coarse, _ = seq.coarse_dag_after(seq.num_contractions)
        coarse_schedule = HDaggScheduler().schedule(coarse, machine4)
        with pytest.raises(ValueError):
            project_schedule(seq, machine4, coarse_schedule, 0, seq.num_contractions)

    def test_uncoarsen_and_refine_returns_original_dag_schedule(self, exp_small, machine4):
        seq = coarsen_dag(exp_small, max(6, exp_small.n // 3))
        coarse, _ = seq.coarse_dag_after(seq.num_contractions)
        coarse_schedule = HDaggScheduler().schedule(coarse, machine4)
        refined = uncoarsen_and_refine(
            seq,
            machine4,
            coarse_schedule,
            config=RefinementConfig(refine_interval=5, hc_moves_per_refinement=20),
        )
        assert refined.dag is exp_small
        assert refined.is_valid()

    def test_refinement_with_no_contractions(self, diamond_dag, machine2):
        seq = CoarseningSequence(dag=diamond_dag)
        schedule = HDaggScheduler().schedule(diamond_dag, machine2)
        refined = uncoarsen_and_refine(seq, machine2, schedule)
        assert refined.is_valid()
        assert refined.dag is diamond_dag


class TestMultilevelScheduler:
    @pytest.fixture
    def ml_config(self):
        return MultilevelConfig(
            coarsening_ratios=(0.3,),
            min_coarse_nodes=6,
            hc_moves_per_refinement=20,
            base_pipeline=PipelineConfig.fast(),
        )

    def test_produces_valid_schedule(self, exp_small, numa_machine, ml_config):
        sched, per_ratio = multilevel_schedule(exp_small, numa_machine, ml_config)
        assert sched.is_valid()
        assert set(per_ratio) == {0.3}
        # The returned schedule is the best of the per-ratio runs and the
        # trivial (fully coarsened) limit, so it can only be cheaper.
        assert sched.cost() <= per_ratio[0.3] + 1e-9

    def test_beats_trivial_in_communication_heavy_setting(self, numa_machine, ml_config):
        """The defining property of the multilevel scheduler (paper 7.3): in
        communication-dominated settings it beats the trivial sequential
        schedule, where single-node methods often do not."""
        from repro.baselines.trivial import TrivialScheduler

        dag = exp_dag(7, k=3, q=0.35, seed=11)
        heavy = BspMachine.hierarchical(P=8, delta=4, g=2, l=5)
        ml_cost = MultilevelScheduler(ml_config).schedule(dag, heavy).cost()
        trivial_cost = TrivialScheduler().schedule(dag, heavy).cost()
        assert ml_cost <= trivial_cost

    def test_scheduler_interface(self, exp_small, machine4, ml_config):
        scheduler = MultilevelScheduler(ml_config)
        assert scheduler.name == "ML"
        sched = scheduler.schedule_checked(exp_small, machine4)
        assert sched.dag is exp_small

    def test_best_of_two_ratios_selected(self, exp_small, numa_machine):
        config = MultilevelConfig(
            coarsening_ratios=(0.3, 0.15),
            min_coarse_nodes=6,
            hc_moves_per_refinement=10,
            base_pipeline=PipelineConfig.fast(),
        )
        sched, per_ratio = multilevel_schedule(exp_small, numa_machine, config)
        assert len(per_ratio) == 2
        assert sched.cost() <= min(per_ratio.values()) + 1e-9
