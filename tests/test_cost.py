"""Unit tests for the BSP+NUMA cost function (hand-checked examples)."""

import numpy as np
import pytest

from repro.graphs.dag import ComputationalDAG
from repro.model.comm import CommSchedule
from repro.model.cost import evaluate, superstep_matrices
from repro.model.machine import BspMachine
from repro.model.schedule import BspSchedule


def make_two_step_schedule():
    """Two processors, two supersteps, one value crossing processors.

    Superstep 0: node 0 (w=2) on p0, node 1 (w=3) on p1; node 0's output
    (c=2) is sent to p1 in phase 0.  Superstep 1: node 2 (w=4) on p1.
    """
    dag = ComputationalDAG(3, [(0, 2), (1, 2)], work=[2, 3, 4], comm=[2, 1, 1])
    machine = BspMachine(P=2, g=3, l=5)
    proc = np.array([0, 1, 1])
    step = np.array([0, 0, 1])
    return BspSchedule(dag, machine, proc, step)


class TestHandComputedCosts:
    def test_two_step_example(self):
        sched = make_two_step_schedule()
        breakdown = evaluate(sched)
        # Superstep 0: work max(2, 3) = 3; comm h-relation = 2 (send by p0 = recv by p1).
        # Superstep 1: work 4; no communication.
        assert breakdown.work_per_step.tolist() == [3.0, 4.0]
        assert breakdown.comm_per_step.tolist() == [2.0, 0.0]
        assert breakdown.work_cost == 7.0
        assert breakdown.comm_cost == 3 * 2.0
        assert breakdown.latency_cost == 2 * 5.0
        assert breakdown.total == 7.0 + 6.0 + 10.0
        assert sched.cost() == breakdown.total

    def test_trivial_schedule_cost_is_total_work_plus_latency(self, diamond_dag):
        machine = BspMachine(P=4, g=3, l=5)
        sched = BspSchedule.trivial(diamond_dag, machine)
        assert sched.cost() == diamond_dag.total_work() + 5.0

    def test_h_relation_takes_max_of_send_and_receive(self):
        # p0 sends two values (3 units in total) to p1 and p2 respectively;
        # the h-relation is dominated by p0's send volume.
        dag = ComputationalDAG(5, [(0, 3), (1, 4)], work=[1, 1, 1, 1, 1], comm=[2, 1, 1, 1, 1])
        machine = BspMachine(P=3, g=1, l=0)
        proc = np.array([0, 0, 1, 1, 2])
        step = np.array([0, 0, 0, 1, 1])
        sched = BspSchedule(dag, machine, proc, step)
        breakdown = evaluate(sched)
        # Phase 0: p0 sends c(0)=2 to p1 and c(1)=1 to p2 -> send(p0)=3,
        # recv(p1)=2, recv(p2)=1 -> h-relation 3.
        assert breakdown.comm_per_step[0] == 3.0

    def test_latency_counts_only_occurring_supersteps(self):
        dag = ComputationalDAG(2, [(0, 1)], work=[1, 1], comm=[1, 1])
        machine = BspMachine(P=2, g=1, l=10)
        # Node 1 placed far in the future: intermediate supersteps are empty
        # except the one containing the lazy communication.
        sched = BspSchedule(dag, machine, np.array([0, 1]), np.array([0, 5]))
        breakdown = evaluate(sched)
        # Occurring supersteps: 0 (work), 4 (communication), 5 (work) -> 3.
        assert breakdown.num_supersteps == 3
        assert breakdown.latency_cost == 30.0

    def test_zero_latency_machine(self):
        sched = make_two_step_schedule()
        sched.machine = BspMachine(P=2, g=3, l=0)
        assert evaluate(sched).latency_cost == 0.0


class TestNumaWeighting:
    def test_numa_coefficient_scales_communication(self):
        dag = ComputationalDAG(2, [(0, 1)], work=[1, 1], comm=[4, 1])
        numa_machine = BspMachine.hierarchical(P=8, delta=3, g=1, l=0)
        # Cheap pair (0 -> 1, lambda = 1).
        cheap = BspSchedule(dag, numa_machine, np.array([0, 1]), np.array([0, 1]))
        # Expensive pair (0 -> 4, lambda = 9).
        costly = BspSchedule(dag, numa_machine, np.array([0, 4]), np.array([0, 1]))
        assert evaluate(cheap).comm_cost == 4.0
        assert evaluate(costly).comm_cost == 36.0

    def test_uniform_equals_default_bsp(self):
        dag = ComputationalDAG(2, [(0, 1)], comm=[5, 1])
        uniform = BspMachine(P=4, g=2, l=0)
        sched = BspSchedule(dag, uniform, np.array([0, 3]), np.array([0, 1]))
        assert evaluate(sched).comm_cost == 2 * 5.0


class TestExplicitCommSchedules:
    def test_explicit_comm_changes_phase_load(self):
        dag = ComputationalDAG(3, [(0, 2), (1, 2)], work=[1, 1, 1], comm=[3, 3, 1])
        machine = BspMachine(P=3, g=1, l=0)
        proc = np.array([0, 1, 2])
        step = np.array([0, 0, 2])
        lazy = BspSchedule(dag, machine, proc, step)
        # Lazy: both values arrive in phase 1 -> recv(p2) = 6 in one phase.
        assert evaluate(lazy).comm_cost == 6.0
        # Spreading them over phases 0 and 1 halves the bottleneck.
        spread = CommSchedule({(0, 0, 2, 0), (1, 1, 2, 1)})
        explicit = BspSchedule(dag, machine, proc, step, spread)
        assert explicit.is_valid()
        assert evaluate(explicit).comm_cost == 6.0  # 3 + 3 over two phases
        assert max(evaluate(explicit).comm_per_step) == 3.0

    def test_self_send_entries_are_ignored(self):
        dag = ComputationalDAG(2, [(0, 1)], comm=[2, 1])
        machine = BspMachine(P=2, g=1, l=0)
        comm = CommSchedule({(0, 0, 0, 0), (0, 0, 1, 0)})
        sched = BspSchedule(dag, machine, np.array([0, 1]), np.array([0, 1]), comm)
        assert evaluate(sched).comm_cost == 2.0


class TestMatrices:
    def test_superstep_matrices_shapes(self):
        sched = make_two_step_schedule()
        work, send, recv = superstep_matrices(sched)
        assert work.shape == (2, 2)
        assert send.shape == (2, 2)
        assert work[0, 0] == 2.0 and work[0, 1] == 3.0 and work[1, 1] == 4.0
        assert send[0, 0] == 2.0 and recv[0, 1] == 2.0

    def test_breakdown_is_consistent(self, layered_dag, machine4):
        from repro.baselines.hdagg import HDaggScheduler

        sched = HDaggScheduler().schedule(layered_dag, machine4)
        b = sched.cost_breakdown()
        assert b.total == pytest.approx(b.work_cost + b.comm_cost + b.latency_cost)
        assert b.work_cost == pytest.approx(float(b.work_per_step.sum()))
        assert b.comm_cost == pytest.approx(machine4.g * float(b.comm_per_step.sum()))

    def test_empty_dag_costs_zero(self, machine2):
        dag = ComputationalDAG(0, [])
        assert evaluate(BspSchedule.trivial(dag, machine2)).total == 0.0
