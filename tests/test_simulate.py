"""Tests for the BSP timeline simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.hdagg import HDaggScheduler
from repro.baselines.trivial import LevelRoundRobinScheduler
from repro.graphs.dag import ComputationalDAG
from repro.model.cost import evaluate
from repro.model.machine import BspMachine
from repro.model.schedule import BspSchedule
from repro.model.simulate import simulate_timeline


class TestTimelineStructure:
    def test_makespan_equals_total_cost(self, all_test_dags, machine4):
        for dag in all_test_dags:
            sched = HDaggScheduler().schedule(dag, machine4)
            timeline = simulate_timeline(sched)
            assert timeline.makespan == pytest.approx(sched.cost())

    def test_makespan_equals_cost_with_numa(self, exp_small, numa_machine):
        sched = HDaggScheduler().schedule(exp_small, numa_machine)
        assert simulate_timeline(sched).makespan == pytest.approx(sched.cost())

    def test_every_node_executed_exactly_once(self, layered_dag, machine4):
        sched = HDaggScheduler().schedule(layered_dag, machine4)
        timeline = simulate_timeline(sched)
        executed = sorted(e.node for e in timeline.executions)
        assert executed == list(range(layered_dag.n))

    def test_execution_duration_equals_work(self, diamond_dag, machine2):
        sched = BspSchedule.trivial(diamond_dag, machine2)
        timeline = simulate_timeline(sched)
        for execution in timeline.executions:
            assert execution.end - execution.start == pytest.approx(
                float(diamond_dag.work[execution.node])
            )

    def test_no_overlap_on_a_processor(self, layered_dag, machine4):
        sched = HDaggScheduler().schedule(layered_dag, machine4)
        timeline = simulate_timeline(sched)
        for p in range(machine4.P):
            executions = timeline.executions_on(p)
            for a, b in zip(executions, executions[1:]):
                assert a.end <= b.start + 1e-9

    def test_phases_are_contiguous_and_ordered(self, fork_join_dag, machine4):
        sched = HDaggScheduler().schedule(fork_join_dag, machine4)
        timeline = simulate_timeline(sched)
        phases = timeline.phases
        for a, b in zip(phases, phases[1:]):
            assert b.start == pytest.approx(a.end)
        assert phases[-1].end == pytest.approx(timeline.makespan)

    def test_phase_kinds(self, machine2):
        dag = ComputationalDAG(2, [(0, 1)], work=[2, 2], comm=[3, 1])
        sched = BspSchedule(dag, machine2, np.array([0, 1]), np.array([0, 1]))
        timeline = simulate_timeline(sched)
        kinds = [(p.superstep, p.kind) for p in timeline.phases]
        assert (0, "compute") in kinds
        assert (0, "communicate") in kinds
        assert (1, "compute") in kinds
        # The latency term is charged once per occurring superstep.
        assert sum(1 for _, k in kinds if k == "latency") == 2

    def test_empty_schedule(self, machine2):
        dag = ComputationalDAG(0, [])
        timeline = simulate_timeline(BspSchedule.trivial(dag, machine2))
        assert timeline.makespan == 0.0
        assert timeline.phases == [] and timeline.executions == []

    def test_nodes_respect_topological_order_within_processor(self, chain_dag, machine2):
        sched = BspSchedule.trivial(chain_dag, machine2)
        timeline = simulate_timeline(sched)
        ordered = timeline.executions_on(0)
        assert [e.node for e in ordered] == list(chain_dag.topological_order())


# ----------------------------------------------------------------------
# Property test of the docstring invariant: the makespan of the expanded
# timeline equals the schedule's total cost, for any valid schedule on any
# machine (uniform or NUMA), including empty and single-superstep ones.
# ----------------------------------------------------------------------
@st.composite
def _random_dags(draw, max_nodes: int = 14):
    n = draw(st.integers(min_value=0, max_value=max_nodes))
    edges = []
    for v in range(1, n):
        num_parents = draw(st.integers(min_value=0, max_value=min(3, v)))
        parents = draw(
            st.lists(
                st.integers(min_value=0, max_value=v - 1),
                min_size=num_parents,
                max_size=num_parents,
                unique=True,
            )
        )
        edges.extend((u, v) for u in parents)
    work = draw(st.lists(st.integers(min_value=0, max_value=5), min_size=n, max_size=n))
    comm = draw(st.lists(st.integers(min_value=0, max_value=4), min_size=n, max_size=n))
    return ComputationalDAG(n, edges, work, comm, name="hypothesis")


@st.composite
def _machines(draw):
    P = draw(st.sampled_from([1, 2, 4, 8]))
    g = draw(st.sampled_from([0.0, 1.0, 3.0]))
    latency = draw(st.sampled_from([0.0, 1.0, 5.0]))
    if draw(st.booleans()) and P >= 2:
        delta = draw(st.sampled_from([2.0, 3.0]))
        return BspMachine.hierarchical(P=P, delta=delta, g=g, l=latency)
    return BspMachine(P=P, g=g, l=latency)


class TestMakespanInvariantProperty:
    @settings(max_examples=60, deadline=None)
    @given(dag=_random_dags(), machine=_machines())
    def test_makespan_equals_total_cost_multi_superstep(self, dag, machine):
        schedule = LevelRoundRobinScheduler().schedule(dag, machine)
        assert schedule.is_valid()
        timeline = simulate_timeline(schedule)
        assert timeline.makespan == pytest.approx(evaluate(schedule).total)

    @settings(max_examples=60, deadline=None)
    @given(dag=_random_dags(), machine=_machines())
    def test_makespan_equals_total_cost_single_superstep(self, dag, machine):
        schedule = BspSchedule.trivial(dag, machine)
        timeline = simulate_timeline(schedule)
        assert timeline.makespan == pytest.approx(evaluate(schedule).total)
        assert schedule.num_supersteps <= 1

    @settings(max_examples=25, deadline=None)
    @given(machine=_machines())
    def test_empty_schedule_has_zero_makespan(self, machine):
        dag = ComputationalDAG(0, [])
        schedule = BspSchedule.trivial(dag, machine)
        assert simulate_timeline(schedule).makespan == 0.0
        assert evaluate(schedule).total == 0.0
