"""Tests for the BSP timeline simulator."""

import numpy as np
import pytest

from repro.baselines.hdagg import HDaggScheduler
from repro.graphs.dag import ComputationalDAG
from repro.model.machine import BspMachine
from repro.model.schedule import BspSchedule
from repro.model.simulate import simulate_timeline


class TestTimelineStructure:
    def test_makespan_equals_total_cost(self, all_test_dags, machine4):
        for dag in all_test_dags:
            sched = HDaggScheduler().schedule(dag, machine4)
            timeline = simulate_timeline(sched)
            assert timeline.makespan == pytest.approx(sched.cost())

    def test_makespan_equals_cost_with_numa(self, exp_small, numa_machine):
        sched = HDaggScheduler().schedule(exp_small, numa_machine)
        assert simulate_timeline(sched).makespan == pytest.approx(sched.cost())

    def test_every_node_executed_exactly_once(self, layered_dag, machine4):
        sched = HDaggScheduler().schedule(layered_dag, machine4)
        timeline = simulate_timeline(sched)
        executed = sorted(e.node for e in timeline.executions)
        assert executed == list(range(layered_dag.n))

    def test_execution_duration_equals_work(self, diamond_dag, machine2):
        sched = BspSchedule.trivial(diamond_dag, machine2)
        timeline = simulate_timeline(sched)
        for execution in timeline.executions:
            assert execution.end - execution.start == pytest.approx(
                float(diamond_dag.work[execution.node])
            )

    def test_no_overlap_on_a_processor(self, layered_dag, machine4):
        sched = HDaggScheduler().schedule(layered_dag, machine4)
        timeline = simulate_timeline(sched)
        for p in range(machine4.P):
            executions = timeline.executions_on(p)
            for a, b in zip(executions, executions[1:]):
                assert a.end <= b.start + 1e-9

    def test_phases_are_contiguous_and_ordered(self, fork_join_dag, machine4):
        sched = HDaggScheduler().schedule(fork_join_dag, machine4)
        timeline = simulate_timeline(sched)
        phases = timeline.phases
        for a, b in zip(phases, phases[1:]):
            assert b.start == pytest.approx(a.end)
        assert phases[-1].end == pytest.approx(timeline.makespan)

    def test_phase_kinds(self, machine2):
        dag = ComputationalDAG(2, [(0, 1)], work=[2, 2], comm=[3, 1])
        sched = BspSchedule(dag, machine2, np.array([0, 1]), np.array([0, 1]))
        timeline = simulate_timeline(sched)
        kinds = [(p.superstep, p.kind) for p in timeline.phases]
        assert (0, "compute") in kinds
        assert (0, "communicate") in kinds
        assert (1, "compute") in kinds
        # The latency term is charged once per occurring superstep.
        assert sum(1 for _, k in kinds if k == "latency") == 2

    def test_empty_schedule(self, machine2):
        dag = ComputationalDAG(0, [])
        timeline = simulate_timeline(BspSchedule.trivial(dag, machine2))
        assert timeline.makespan == 0.0
        assert timeline.phases == [] and timeline.executions == []

    def test_nodes_respect_topological_order_within_processor(self, chain_dag, machine2):
        sched = BspSchedule.trivial(chain_dag, machine2)
        timeline = simulate_timeline(sched)
        ordered = timeline.executions_on(0)
        assert [e.node for e in ordered] == list(chain_dag.topological_order())
