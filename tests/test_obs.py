"""Tests for the observability layer (repro.obs): tracing + metrics.

The load-bearing guarantees:

* tracing must never perturb results — solves are byte-identical with the
  tracer installed and without it, and the disabled path allocates nothing
  (one shared no-op span singleton);
* every emitted trace satisfies the ``repro-trace/1`` contract checked by
  ``validate_trace`` (header first, unique ids, resolving parents,
  contained child intervals) — including traces of arbitrary random
  nesting structure (hypothesis);
* instruments are individually thread-safe and the histogram window is
  bounded;
* the pieces compose end to end: ``--trace`` on the CLI produces a file
  ``repro trace-view`` accepts, and a live daemon answers the ``metrics``
  wire op with scrape-able Prometheus text.
"""

import doctest
import io
import json
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro import api
from repro.baselines.trivial import LevelRoundRobinScheduler
from repro.localsearch.annealing import simulated_annealing
from repro.localsearch.comm_hill_climbing import comm_hill_climb
from repro.localsearch.hill_climbing import hill_climb
from repro.obs import trace as trace_mod
from repro.obs.metrics import (
    DEFAULT_WINDOW,
    Counter,
    Gauge,
    Histogram,
    Metrics,
    percentiles,
    render_prometheus,
)
from repro.obs.trace import (
    NOOP_SPAN,
    TRACE_SCHEMA,
    Tracer,
    read_trace,
    tracing,
    validate_trace,
)
from repro.obs.traceview import render_trace_summary, summarize_trace
from repro.spec import DagSpec, MachineSpec, ProblemSpec, SolveRequest


@pytest.fixture(autouse=True)
def no_leaked_tracer():
    """Every test starts and ends with tracing disabled."""
    trace_mod.uninstall()
    yield
    trace_mod.uninstall()


def solve_request(seed: int = 0, scheduler: str = "hc") -> SolveRequest:
    return SolveRequest(
        spec=ProblemSpec(
            dag=DagSpec.generator("spmv", n=7, q=0.3, seed=seed),
            machine=MachineSpec(P=2, g=2, l=3),
        ),
        scheduler=scheduler,
        seed=3,
    )


def write_and_read(tracer: Tracer):
    buffer = io.StringIO()
    tracer.write(buffer)
    return read_trace(io.StringIO(buffer.getvalue()))


# ----------------------------------------------------------------------
# Metrics primitives
# ----------------------------------------------------------------------
class TestInstruments:
    def test_counter_inc_and_negative_undo(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        counter.inc(-1)  # the serve pool's lost-respond-race undo
        assert counter.value == 5

    def test_gauge_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7

    def test_histogram_window_is_bounded(self):
        hist = Histogram("h", window=8)
        for k in range(100):
            hist.observe(float(k))
        assert hist.values() == [float(k) for k in range(92, 100)]
        assert hist.count == 100  # lifetime count is not window-bounded
        assert hist.sum == sum(range(100))
        assert hist.recent(3) == [97.0, 98.0, 99.0]

    def test_histogram_default_window_matches_pool_history(self):
        assert Histogram("h").window == DEFAULT_WINDOW == 2048

    def test_histogram_rejects_empty_window(self):
        with pytest.raises(ValueError):
            Histogram("h", window=0)

    def test_percentiles_is_the_pool_function(self):
        # serve/pool.py re-exports the moved function; one nearest-rank
        # implementation serves both the stats endpoint and the registry.
        from repro.serve.pool import percentiles as pool_percentiles

        assert pool_percentiles is percentiles
        assert percentiles([]) == {"p50": 0.0, "p90": 0.0, "p99": 0.0}
        values = [float(k) for k in range(1, 101)]
        assert percentiles(values) == {"p50": 50.0, "p90": 90.0, "p99": 99.0}

    def test_instruments_are_thread_safe(self):
        counter = Counter("c")
        hist = Histogram("h", window=64)
        threads = [
            threading.Thread(
                target=lambda: [(counter.inc(), hist.observe(1.0)) for _ in range(500)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8 * 500
        assert hist.count == 8 * 500
        assert len(hist.values()) == 64


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        metrics = Metrics()
        assert metrics.counter("a") is metrics.counter("a")
        assert metrics.histogram("h") is metrics.histogram("h")

    def test_kind_clash_raises(self):
        metrics = Metrics()
        metrics.counter("a")
        with pytest.raises(ValueError):
            metrics.gauge("a")
        with pytest.raises(ValueError):
            metrics.histogram("a")

    def test_labels_distinguish_instruments(self):
        metrics = Metrics()
        ok = metrics.counter("errors", labels={"code": "ok"})
        bad = metrics.counter("errors", labels={"code": "bad"})
        assert ok is not bad
        ok.inc()
        assert bad.value == 0

    def test_registry_concurrent_get_or_create(self):
        metrics = Metrics()
        seen = []

        def worker():
            c = metrics.counter("shared")
            seen.append(c)
            for _ in range(200):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(c) for c in seen}) == 1
        assert metrics.counter("shared").value == 8 * 200

    def test_prometheus_rendering(self):
        metrics = Metrics()
        metrics.counter("repro_test_total", help="a counter").inc(3)
        metrics.counter("repro_errors_total", labels={"code": "oops"}).inc()
        metrics.gauge("repro_depth").set(2)
        hist = metrics.histogram("repro_latency_seconds", window=16)
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        text = metrics.to_prometheus()
        assert "# HELP repro_test_total a counter\n# TYPE repro_test_total counter" in text
        assert "repro_test_total 3" in text
        assert 'repro_errors_total{code="oops"} 1' in text
        assert "# TYPE repro_depth gauge" in text
        assert "# TYPE repro_latency_seconds summary" in text
        assert 'repro_latency_seconds{quantile="0.5"} 2.0' in text
        assert "repro_latency_seconds_sum 10.0" in text
        assert "repro_latency_seconds_count 4" in text
        assert text.endswith("\n")

    def test_shared_name_renders_one_family_header(self):
        a = Counter("family_total", help="fam", labels={"k": "a"})
        b = Counter("family_total", labels={"k": "b"})
        text = render_prometheus([a, b])
        assert text.count("# HELP family_total") == 1
        assert text.count("# TYPE family_total") == 1


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestDisabledTracer:
    def test_span_returns_shared_noop_singleton(self):
        # The disabled path must not allocate: every call yields the one
        # module-level no-op object.
        assert trace_mod.span("a") is trace_mod.span("b") is NOOP_SPAN
        assert not trace_mod.enabled()
        assert trace_mod.active() is None

    def test_noop_span_supports_full_surface(self):
        with trace_mod.span("a") as span:
            assert span.annotate(k=1) is span
            assert span.event("e", x=2) is span

    def test_module_hooks_are_noops_when_disabled(self):
        trace_mod.annotate(k=1)
        trace_mod.event("e")


class TestEnabledTracer:
    def test_nesting_parent_child_ids(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("sibling"):
                pass
        records = {r["name"]: r for r in tracer.records()}
        assert records["root"]["parent_id" if False else "parent"] is None
        assert records["child"]["parent"] == records["root"]["id"]
        assert records["grandchild"]["parent"] == records["child"]["id"]
        assert records["sibling"]["parent"] == records["root"]["id"]

    def test_threads_nest_independently(self):
        tracer = Tracer()

        def worker(name):
            with tracer.span(name):
                with tracer.span(f"{name}-inner"):
                    pass

        with tracer.span("main-root"):
            threads = [
                threading.Thread(target=worker, args=(f"t{k}",), name=f"T{k}")
                for k in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        by_name = {r["name"]: r for r in tracer.records()}
        for k in range(4):
            # Worker roots are parentless (fresh thread => fresh stack) and
            # their inner spans nest under them, not under main-root.
            assert by_name[f"t{k}"]["parent"] is None
            assert by_name[f"t{k}-inner"]["parent"] == by_name[f"t{k}"]["id"]
            assert by_name[f"t{k}-inner"]["thread"] == f"T{k}"

    def test_exception_unwinds_and_records_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        by_name = {r["name"]: r for r in tracer.records()}
        assert by_name["inner"]["attrs"]["error"] == "RuntimeError"
        assert by_name["root"]["attrs"]["error"] == "RuntimeError"
        assert tracer.current() is None  # the stack fully unwound

    def test_tracing_contextmanager_restores_previous(self):
        outer = Tracer()
        trace_mod.install(outer)
        with tracing("root") as inner:
            assert trace_mod.active() is inner
        assert trace_mod.active() is outer

    def test_write_is_deterministic_and_ordered(self, tmp_path):
        tracer = Tracer()
        with tracer.span("root", k=1):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        first = io.StringIO()
        second = io.StringIO()
        assert tracer.write(first) == 3
        assert tracer.write(second) == 3
        assert first.getvalue() == second.getvalue()
        lines = first.getvalue().splitlines()
        header = json.loads(lines[0])
        assert header == {"schema": TRACE_SCHEMA, "type": "header"}
        ids = [json.loads(line)["id"] for line in lines[1:]]
        assert ids == sorted(ids)
        path = tmp_path / "trace.jsonl"
        tracer.write(path)
        assert path.read_text() == first.getvalue()


class TestTraceValidation:
    def test_round_trip_validates(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child") as span:
                span.event("sample", cost=1.0)
        records = write_and_read(tracer)
        assert validate_trace(records) == []

    def test_empty_and_headerless_traces_rejected(self):
        assert validate_trace([]) == ["empty trace (no header line)"]
        problems = validate_trace([{"type": "span"}])
        assert any("header" in p for p in problems)

    def test_structural_problems_detected(self):
        header = {"schema": TRACE_SCHEMA, "type": "header"}

        def span(id, parent=None, t0=0.0, t1=1.0, thread="MainThread", events=()):
            return {
                "type": "span", "id": id, "parent": parent, "name": f"s{id}",
                "thread": thread, "t0": t0, "t1": t1, "attrs": {},
                "events": list(events),
            }

        assert any(
            "duplicate span id" in p
            for p in validate_trace([header, span(1), span(1)])
        )
        assert any(
            "unknown parent" in p
            for p in validate_trace([header, span(2, parent=1)])
        )
        assert any(
            "ends before it starts" in p
            for p in validate_trace([header, span(1, t0=2.0, t1=1.0)])
        )
        assert any(
            "timestamped outside" in p
            for p in validate_trace(
                [header, span(1, events=[{"name": "e", "t": 5.0}])]
            )
        )
        assert any(
            "not contained" in p
            for p in validate_trace(
                [header, span(1, t0=0.0, t1=1.0), span(2, parent=1, t0=0.5, t1=2.0)]
            )
        )

    @settings(max_examples=40, deadline=None)
    @given(
        tree=st.recursive(
            st.just([]), lambda children: st.lists(children, max_size=3), max_leaves=12
        )
    )
    def test_random_nesting_is_always_well_formed(self, tree):
        tracer = Tracer()

        def run(subtrees):
            for index, subtree in enumerate(subtrees):
                with tracer.span(f"s{index}") as span:
                    span.event("tick", depth=index)
                    run(subtree)

        with tracer.span("root"):
            run(tree)
        records = write_and_read(tracer)
        assert validate_trace(records) == []


# ----------------------------------------------------------------------
# Tracing must never perturb results
# ----------------------------------------------------------------------
class TestByteIdentity:
    @pytest.mark.parametrize("scheduler", ["hc", "sa", "multilevel"])
    def test_solve_results_identical_with_and_without_tracing(self, scheduler):
        baseline = api.solve(solve_request(scheduler=scheduler))
        with tracing("solve") as tracer:
            traced = api.solve(solve_request(scheduler=scheduler))
        untraced_again = api.solve(solve_request(scheduler=scheduler))
        assert traced.to_json() == baseline.to_json()
        assert untraced_again.to_json() == baseline.to_json()
        assert len(tracer.records()) > 0  # the traced run did record spans

    def test_no_timing_keys_in_deterministic_dict(self):
        with tracing("solve"):
            result = api.solve(solve_request())
        payload = result.to_dict()
        assert "wall_seconds" not in payload
        assert not any("time" in key or "_s" == key[-2:] for key in payload)

    def test_hill_climb_deterministic_under_tracing(self, layered_dag, machine4):
        initial = LevelRoundRobinScheduler().schedule(layered_dag, machine4)
        bare = hill_climb(initial, max_passes=4)
        with tracing("hc"):
            traced = hill_climb(initial, max_passes=4)
        assert traced.final_cost == bare.final_cost
        assert traced.moves_applied == bare.moves_applied
        assert (traced.schedule.proc == bare.schedule.proc).all()
        assert (traced.schedule.step == bare.schedule.step).all()

    def test_annealing_rng_stream_unaffected(self, layered_dag, machine4):
        initial = LevelRoundRobinScheduler().schedule(layered_dag, machine4)
        bare = simulated_annealing(initial, steps=200, seed=11)
        with tracing("sa"):
            traced = simulated_annealing(initial, steps=200, seed=11)
        assert traced.final_cost == bare.final_cost
        assert traced.moves_evaluated == bare.moves_evaluated
        assert traced.moves_accepted == bare.moves_accepted


# ----------------------------------------------------------------------
# Convergence telemetry
# ----------------------------------------------------------------------
class TestConvergenceTelemetry:
    def test_hill_climb_records_passes_and_final_cost(self, layered_dag, machine4):
        initial = LevelRoundRobinScheduler().schedule(layered_dag, machine4)
        with tracing() as tracer:
            result = hill_climb(initial, max_passes=4)
        [span] = [r for r in tracer.records() if r["name"] == "hill_climb"]
        assert span["attrs"]["final_cost"] == result.final_cost
        assert span["attrs"]["initial_cost"] == result.initial_cost
        assert span["attrs"]["moves"] == result.moves_applied
        passes = [e for e in span["events"] if e["name"] == "pass"]
        assert len(passes) == span["attrs"]["passes"]
        costs = [e["cost"] for e in passes]
        assert costs == sorted(costs, reverse=True)  # HC is monotone

    def test_comm_hill_climb_reports_engine_transactions(self, layered_dag, machine4):
        initial = LevelRoundRobinScheduler().schedule(layered_dag, machine4)
        with tracing() as tracer:
            comm_hill_climb(initial, max_moves=50)
        [span] = [r for r in tracer.records() if r["name"] == "comm_hill_climb"]
        assert span["attrs"]["engine_transactions"] >= 0
        for event in span["events"]:
            assert event["name"] == "pass"
            assert "h_cost" in event

    def test_annealing_samples_improvements(self, layered_dag, machine4):
        initial = LevelRoundRobinScheduler().schedule(layered_dag, machine4)
        with tracing() as tracer:
            result = simulated_annealing(initial, steps=500, seed=0)
        [span] = [r for r in tracer.records() if r["name"] == "simulated_annealing"]
        assert span["attrs"]["evaluated"] == result.moves_evaluated
        improvements = [e for e in span["events"] if e["name"] == "improvement"]
        costs = [e["cost"] for e in improvements]
        assert costs == sorted(costs, reverse=True)  # best-seen only improves


# ----------------------------------------------------------------------
# trace-view summarizer
# ----------------------------------------------------------------------
class TestTraceView:
    def traced_solve(self):
        with tracing("schedule") as tracer:
            api.solve(solve_request(scheduler="multilevel"))
        return write_and_read(tracer)

    def test_summary_aggregates_stages(self):
        records = self.traced_solve()
        assert validate_trace(records) == []
        summary = summarize_trace(records)
        assert summary["spans"] == len(records) - 1
        stages = summary["stages"]
        for expected in ("schedule", "solve", "multilevel", "pipeline", "hill_climb"):
            assert expected in stages, f"missing stage {expected}: {sorted(stages)}"
        for stage in stages.values():
            assert 0.0 <= stage["self_s"] <= stage["total_s"] + 1e-9
        # Total time of the root stage bounds the wall clock estimate.
        assert summary["wall_s"] == pytest.approx(stages["schedule"]["total_s"], rel=1e-6)

    def test_render_mentions_breakdown_and_slowest(self):
        text = render_trace_summary(self.traced_solve(), top=3)
        assert "per-stage breakdown" in text
        assert "slowest 3 span(s):" in text
        assert "schedule" in text

    def test_cache_attribution_counts_events_and_attrs(self):
        header = {"schema": TRACE_SCHEMA, "type": "header"}
        spans = [
            {
                "type": "span", "id": 1, "parent": None, "name": "a",
                "thread": "T", "t0": 0.0, "t1": 1.0,
                "attrs": {"cached": True},
                "events": [{"name": "cache", "t": 0.5, "hit": False}],
            },
        ]
        summary = summarize_trace([header] + spans)
        assert summary["cache_hits"] == 1
        assert summary["cache_misses"] == 1


# ----------------------------------------------------------------------
# End-to-end: serve metrics op, worker stats, CLI
# ----------------------------------------------------------------------
class TestServeMetricsOp:
    def test_daemon_answers_metrics_in_prometheus_format(self, tmp_path):
        from repro.serve.client import connect
        from repro.serve.server import ServeConfig, SolveServer

        config = ServeConfig(port=0, jobs=1, cache_dir=str(tmp_path / "cache"))
        with SolveServer(config) as server:
            with connect(server.address) as client:
                client.solve(solve_request(scheduler="hdagg"))
                text = client.metrics()
        assert "# TYPE repro_serve_requests_received_total counter" in text
        assert "repro_serve_requests_received_total 1" in text
        assert "repro_serve_requests_served_total 1" in text
        assert "# TYPE repro_serve_request_latency_seconds summary" in text
        assert "repro_serve_request_latency_seconds_count 1" in text
        assert "repro_cache_misses_total 1" in text
        assert "repro_serve_uptime_seconds" in text

    def test_metrics_cli_scrapes_a_live_daemon(self, tmp_path, capsys):
        from repro.cli import main
        from repro.serve.server import ServeConfig, SolveServer

        with SolveServer(ServeConfig(port=0, jobs=1, cache_dir="")) as server:
            host, port = server.address
            assert main(["metrics", "--addr", f"{host}:{port}"]) == 0
        out = capsys.readouterr().out
        assert "repro_serve_requests_received_total 0" in out


class TestWorkerStatsMetrics:
    def test_notes_drive_counters_and_errors(self):
        from repro.distrib.worker import WorkerStats

        stats = WorkerStats()
        stats.note_scan()
        stats.note_solved()
        stats.note_invalid()
        stats.note_retried("E1")
        stats.note_dead_lettered("E2")
        stats.note_dead_lettered(count=2)
        assert (stats.scans, stats.solved, stats.invalid) == (1, 1, 1)
        assert stats.answered == 2
        assert stats.retried == 1
        assert stats.dead_lettered == 3
        assert stats.errors == ["E1", "E2"]
        text = stats.metrics.to_prometheus()
        assert "repro_worker_solved_total 1" in text
        assert "repro_worker_dead_lettered_total 3" in text


class TestCliTracing:
    def test_schedule_trace_round_trips_through_trace_view(self, tmp_path, capsys):
        from repro.cli import main

        trace_file = tmp_path / "trace.jsonl"
        code = main([
            "schedule", "--kind", "spmv", "--size", "6", "--seed", "2",
            "-P", "2", "--scheduler", "hdagg", "--trace", str(trace_file),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert f"wrote trace of" in captured.err
        records = read_trace(trace_file)
        assert validate_trace(records) == []
        names = {r["name"] for r in records if r.get("type") == "span"}
        assert {"schedule", "solve"} <= names
        assert main(["trace-view", str(trace_file)]) == 0
        assert "per-stage breakdown" in capsys.readouterr().out

    def test_schedule_output_bytes_identical_with_tracing(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["schedule", "--kind", "spmv", "--size", "6",
                "-P", "2", "--scheduler", "hdagg"]
        assert main(argv) == 0
        bare = capsys.readouterr().out
        assert main(argv + ["--trace", str(tmp_path / "t.jsonl")]) == 0
        traced = capsys.readouterr()
        assert traced.out == bare  # stdout untouched; the note goes to stderr

    def test_trace_view_rejects_garbage(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span"}\n')
        assert main(["trace-view", str(bad)]) == 1
        assert "invalid trace" in capsys.readouterr().err


def test_cli_docstring_subcommand_inventory_doctest():
    """The docstring's subcommand listing is enforced by its doctest."""
    import repro.cli

    results = doctest.testmod(repro.cli)
    assert results.attempted >= 2
    assert results.failed == 0
