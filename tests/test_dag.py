"""Unit tests for the ComputationalDAG data structure."""

import pytest

from repro.graphs.dag import ComputationalDAG, DagValidationError


class TestConstruction:
    def test_basic_properties(self, diamond_dag):
        assert diamond_dag.n == 4
        assert diamond_dag.num_edges == 4
        assert diamond_dag.total_work() == 8
        assert diamond_dag.total_comm() == 5
        assert len(diamond_dag) == 4

    def test_default_weights_are_one(self):
        dag = ComputationalDAG(3, [(0, 1), (1, 2)])
        assert list(dag.work) == [1, 1, 1]
        assert list(dag.comm) == [1, 1, 1]

    def test_duplicate_edges_are_deduplicated(self):
        dag = ComputationalDAG(2, [(0, 1), (0, 1), (0, 1)])
        assert dag.num_edges == 1

    def test_empty_dag(self):
        dag = ComputationalDAG(0, [])
        assert dag.n == 0
        assert dag.depth() == 0
        assert dag.topological_order() == []

    def test_rejects_self_loop(self):
        with pytest.raises(DagValidationError):
            ComputationalDAG(2, [(0, 0)])

    def test_rejects_cycle(self):
        with pytest.raises(DagValidationError):
            ComputationalDAG(3, [(0, 1), (1, 2), (2, 0)])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(DagValidationError):
            ComputationalDAG(2, [(0, 5)])

    def test_rejects_negative_weights(self):
        with pytest.raises(DagValidationError):
            ComputationalDAG(2, [(0, 1)], work=[-1, 1])

    def test_rejects_wrong_weight_length(self):
        with pytest.raises(DagValidationError):
            ComputationalDAG(3, [(0, 1)], work=[1, 1])

    def test_rejects_negative_node_count(self):
        with pytest.raises(DagValidationError):
            ComputationalDAG(-1, [])


class TestAdjacency:
    def test_children_and_parents(self, diamond_dag):
        assert sorted(diamond_dag.children(0)) == [1, 2]
        assert sorted(diamond_dag.parents(3)) == [1, 2]
        assert diamond_dag.parents(0) == []
        assert diamond_dag.children(3) == []

    def test_degrees(self, diamond_dag):
        assert diamond_dag.out_degree(0) == 2
        assert diamond_dag.in_degree(3) == 2
        assert diamond_dag.in_degree(0) == 0

    def test_sources_and_sinks(self, diamond_dag, fork_join_dag):
        assert diamond_dag.sources() == [0]
        assert diamond_dag.sinks() == [3]
        assert fork_join_dag.sources() == [0]
        assert fork_join_dag.sinks() == [7]

    def test_has_edge(self, diamond_dag):
        assert diamond_dag.has_edge(0, 1)
        assert not diamond_dag.has_edge(1, 0)
        assert not diamond_dag.has_edge(0, 3)


class TestOrderings:
    def test_topological_order_respects_edges(self, layered_dag):
        order = layered_dag.topological_order()
        pos = {v: i for i, v in enumerate(order)}
        assert sorted(order) == list(range(layered_dag.n))
        for (u, v) in layered_dag.edges:
            assert pos[u] < pos[v]

    def test_levels_of_chain(self, chain_dag):
        assert list(chain_dag.node_levels()) == [0, 1, 2, 3, 4]
        assert chain_dag.depth() == 5

    def test_level_sets_partition_nodes(self, layered_dag):
        sets = layered_dag.level_sets()
        flat = [v for s in sets for v in s]
        assert sorted(flat) == list(range(layered_dag.n))

    def test_bottom_level_diamond(self, diamond_dag):
        # bottom level = max work on a path starting at the node (incl. itself)
        bl = diamond_dag.bottom_level()
        assert bl[3] == 2
        assert bl[1] == 3 + 2
        assert bl[2] == 1 + 2
        assert bl[0] == 2 + 3 + 2

    def test_top_level_diamond(self, diamond_dag):
        tl = diamond_dag.top_level()
        assert tl[0] == 0
        assert tl[1] == 2
        assert tl[3] == 2 + 3

    def test_critical_path_work(self, diamond_dag, chain_dag):
        assert diamond_dag.critical_path_work() == 7
        assert chain_dag.critical_path_work() == 5


class TestReachability:
    def test_ancestors_descendants(self, diamond_dag):
        assert diamond_dag.ancestors(3) == {0, 1, 2}
        assert diamond_dag.descendants(0) == {1, 2, 3}
        assert diamond_dag.ancestors(0) == set()
        assert diamond_dag.descendants(3) == set()

    def test_has_path(self, diamond_dag):
        assert diamond_dag.has_path(0, 3)
        assert not diamond_dag.has_path(3, 0)
        assert not diamond_dag.has_path(1, 2)
        assert diamond_dag.has_path(1, 1)

    def test_has_path_skip_direct_edge(self):
        # 0 -> 1 with an alternative path 0 -> 2 -> 1
        dag = ComputationalDAG(3, [(0, 1), (0, 2), (2, 1)])
        assert dag.has_path(0, 1, skip_direct_edge=True)
        dag2 = ComputationalDAG(2, [(0, 1)])
        assert not dag2.has_path(0, 1, skip_direct_edge=True)


class TestDerivedGraphs:
    def test_subgraph(self, diamond_dag):
        sub, mapping = diamond_dag.subgraph([0, 1, 3])
        assert sub.n == 3
        assert (mapping[0], mapping[1]) in [tuple(e) for e in sub.edges]
        assert (mapping[1], mapping[3]) in [tuple(e) for e in sub.edges]
        # Edge through removed node 2 must not appear.
        assert sub.num_edges == 2
        assert sub.work[mapping[1]] == diamond_dag.work[1]

    def test_largest_weakly_connected_component(self):
        # Two components: a 3-chain and an isolated pair.
        dag = ComputationalDAG(5, [(0, 1), (1, 2), (3, 4)])
        comp, mapping = dag.largest_weakly_connected_component()
        assert comp.n == 3
        assert set(mapping) == {0, 1, 2}

    def test_weakly_connected_components(self):
        dag = ComputationalDAG(5, [(0, 1), (3, 4)])
        comps = dag.weakly_connected_components()
        sizes = sorted(len(c) for c in comps)
        assert sizes == [1, 2, 2]

    def test_reversed_dag(self, diamond_dag):
        rev = diamond_dag.reversed_dag()
        assert rev.has_edge(1, 0)
        assert rev.has_edge(3, 2)
        assert rev.n == diamond_dag.n
        assert list(rev.work) == list(diamond_dag.work)

    def test_relabeled_roundtrip(self, diamond_dag):
        order = [3, 2, 1, 0]
        relabeled = diamond_dag.relabeled(order)
        assert relabeled.n == diamond_dag.n
        assert relabeled.num_edges == diamond_dag.num_edges
        # Node 3 of the original becomes node 0; it had work 2.
        assert relabeled.work[0] == diamond_dag.work[3]

    def test_relabeled_rejects_non_permutation(self, diamond_dag):
        with pytest.raises(DagValidationError):
            diamond_dag.relabeled([0, 0, 1, 2])

    def test_networkx_roundtrip(self, diamond_dag):
        g = diamond_dag.to_networkx()
        back = ComputationalDAG.from_networkx(g)
        assert back == diamond_dag


class TestContraction:
    def test_contract_edge_merges_weights(self, diamond_dag):
        contracted, mapping = diamond_dag.contract_edge(0, 1)
        assert contracted.n == 3
        merged = mapping[0]
        assert mapping[1] == merged
        assert contracted.work[merged] == diamond_dag.work[0] + diamond_dag.work[1]
        assert contracted.comm[merged] == diamond_dag.comm[0] + diamond_dag.comm[1]

    def test_contract_edge_requires_edge(self, diamond_dag):
        with pytest.raises(DagValidationError):
            diamond_dag.contract_edge(1, 2)

    def test_is_edge_contractable(self):
        # 0 -> 1 plus path 0 -> 2 -> 1: contracting (0, 1) would create a cycle.
        dag = ComputationalDAG(3, [(0, 1), (0, 2), (2, 1)])
        assert not dag.is_edge_contractable(0, 1)
        assert dag.is_edge_contractable(0, 2)
        assert dag.is_edge_contractable(2, 1)

    def test_contraction_keeps_dag_acyclic(self, layered_dag):
        dag = layered_dag
        for (u, v) in list(dag.edges):
            if dag.is_edge_contractable(u, v):
                contracted, _ = dag.contract_edge(u, v)
                # Constructor validates acyclicity; reaching here is the assertion.
                assert contracted.n == dag.n - 1
                break
        else:
            pytest.fail("no contractable edge found in the layered DAG")


class TestEquality:
    def test_equality_and_inequality(self, diamond_dag):
        clone = ComputationalDAG(4, list(diamond_dag.edges), diamond_dag.work, diamond_dag.comm)
        assert clone == diamond_dag
        other = ComputationalDAG(4, list(diamond_dag.edges), [1, 1, 1, 1], diamond_dag.comm)
        assert other != diamond_dag
        assert diamond_dag != "not a dag"


class TestMemoryWeights:
    def test_memory_defaults_to_work(self):
        dag = ComputationalDAG(3, [(0, 1)], work=[2, 3, 4])
        assert list(dag.memory) == [2, 3, 4]
        assert dag.total_memory() == 9

    def test_explicit_memory_round_trips_through_derived_graphs(self):
        dag = ComputationalDAG(
            4, [(0, 1), (1, 2), (2, 3)], work=[1, 1, 1, 1], memory=[5, 1, 2, 3]
        )
        sub, mapping = dag.subgraph([1, 2, 3])
        assert list(sub.memory) == [1, 2, 3]
        assert list(dag.reversed_dag().memory) == [5, 1, 2, 3]
        assert list(dag.relabeled([3, 2, 1, 0]).memory) == [3, 2, 1, 5]

    def test_contraction_sums_memory(self):
        dag = ComputationalDAG(3, [(0, 1), (1, 2)], memory=[4, 2, 1])
        contracted, mapping = dag.contract_edge(0, 1)
        assert list(contracted.memory) == [6, 1]

    def test_negative_memory_rejected(self):
        with pytest.raises(DagValidationError):
            ComputationalDAG(2, [(0, 1)], memory=[1, -1])

    def test_memory_participates_in_equality(self):
        a = ComputationalDAG(2, [(0, 1)], work=[1, 1], memory=[1, 1])
        b = ComputationalDAG(2, [(0, 1)], work=[1, 1], memory=[2, 1])
        assert a != b

    def test_networkx_round_trip_keeps_memory(self):
        pytest.importorskip("networkx")
        dag = ComputationalDAG(3, [(0, 1), (1, 2)], work=[1, 2, 3], memory=[7, 8, 9])
        assert list(ComputationalDAG.from_networkx(dag.to_networkx()).memory) == [7, 8, 9]


class TestCacheHandling:
    """The topological order and CSR arrays are cached.  The structure is
    documented immutable; the one supported mutation — replacing ``edges`` —
    rebuilds adjacency, caches and validity eagerly through ``__setattr__``,
    and a future helper mutating the adjacency in place must call
    ``_invalidate()``."""

    def test_invalidate_clears_caches(self, diamond_dag):
        diamond_dag.topological_order()
        _ = diamond_dag.succ_indptr
        diamond_dag._invalidate()
        assert diamond_dag._topo_cache is None
        assert diamond_dag._csr_cache is None

    def test_replaced_edge_list_does_not_serve_stale_structure(self):
        dag = ComputationalDAG(3, [(0, 1)])
        assert dag.succ_indices.tolist() == [1]  # populate the CSR cache
        order = dag.topological_order()          # and the topo cache
        dag.edges = [(0, 1), (1, 2)]
        # Everything structural reflects the replacement: CSR, adjacency
        # lists, degrees and the topological order.
        assert dag.num_edges == 2
        assert dag.succ_indices.tolist() == [1, 2]
        assert dag.pred_indices.tolist() == [0, 1]
        assert dag.children(1) == [2]
        assert dag.parents(2) == [1]
        assert dag.topological_order() == [0, 1, 2]

    def test_replacement_revalidates_acyclicity_and_range(self):
        dag = ComputationalDAG(2, [(0, 1)])
        with pytest.raises(DagValidationError):
            dag.edges = [(0, 1), (1, 0)]  # cycle
        dag2 = ComputationalDAG(2, [(0, 1)])
        with pytest.raises(DagValidationError):
            dag2.edges = [(0, 5)]  # out of range

    def test_rejected_replacement_leaves_structure_unchanged(self):
        dag = ComputationalDAG(3, [(0, 1)])
        for bad in ([(0, 1), (1, 2), (2, 0)], [(0, 7)]):
            with pytest.raises(DagValidationError):
                dag.edges = bad
            # The rejected edge set must not be partially committed.
            assert dag.edges == ((0, 1),)
            assert dag.children(0) == [1] and dag.children(1) == []
            order = dag.topological_order()
            assert sorted(order) == [0, 1, 2]
            assert order.index(0) < order.index(1)

    def test_replacement_normalizes_to_sorted_deduped_tuple(self):
        dag = ComputationalDAG(3, [(0, 1)])
        dag.edges = [(1, 2), (0, 1), (1, 2)]
        assert dag.edges == ((0, 1), (1, 2))
        assert isinstance(dag.edges, tuple)

    def test_unchanged_edges_keep_the_cache_object(self, diamond_dag):
        first = diamond_dag.succ_indptr
        second = diamond_dag.succ_indptr
        assert first is second

    def test_in_place_edge_mutation_is_impossible(self, diamond_dag):
        # Edges are a tuple precisely so that in-place mutation (which no
        # replacement hook could observe) cannot happen.
        with pytest.raises((TypeError, AttributeError)):
            diamond_dag.edges[0] = (0, 3)
        with pytest.raises((TypeError, AttributeError)):
            diamond_dag.edges.append((0, 3))
