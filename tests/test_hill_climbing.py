"""Tests for the HC hill-climbing local search."""

import numpy as np
import pytest

from repro.baselines.cilk import CilkScheduler
from repro.baselines.trivial import LevelRoundRobinScheduler
from repro.graphs.dag import ComputationalDAG
from repro.localsearch.hill_climbing import HillClimbingImprover, hill_climb
from repro.model.schedule import BspSchedule


class TestHillClimbBasics:
    def test_never_increases_cost(self, all_test_dags, machine4):
        for dag in all_test_dags:
            initial = LevelRoundRobinScheduler().schedule(dag, machine4)
            result = hill_climb(initial, max_passes=5)
            assert result.final_cost <= result.initial_cost + 1e-9
            assert result.schedule.is_valid()

    def test_improves_obviously_bad_schedule(self, machine4):
        """A round-robin schedule of independent heavy nodes over many
        supersteps is clearly improvable (latency + imbalance)."""
        dag = ComputationalDAG(8, [], work=[4] * 8)
        proc = np.zeros(8, dtype=int)
        step = np.arange(8)
        bad = BspSchedule(dag, machine4, proc, step)
        result = hill_climb(bad)
        assert result.final_cost < bad.cost()
        assert result.moves_applied > 0

    def test_reaches_local_optimum_flag(self, diamond_dag, machine2):
        initial = LevelRoundRobinScheduler().schedule(diamond_dag, machine2)
        result = hill_climb(initial)
        assert result.reached_local_optimum
        # Running HC again from the optimum applies no further move.
        again = hill_climb(result.schedule)
        assert again.moves_applied == 0

    def test_move_budget_is_respected(self, layered_dag, machine4):
        initial = LevelRoundRobinScheduler().schedule(layered_dag, machine4)
        result = hill_climb(initial, max_moves=3)
        assert result.moves_applied <= 3

    def test_invalid_variant_rejected(self, diamond_dag, machine2):
        initial = BspSchedule.trivial(diamond_dag, machine2)
        with pytest.raises(ValueError):
            hill_climb(initial, variant="steepest")

    def test_improvement_property(self, layered_dag, machine4):
        initial = LevelRoundRobinScheduler().schedule(layered_dag, machine4)
        result = hill_climb(initial, max_passes=5)
        assert 0.0 <= result.improvement < 1.0


class TestVariants:
    def test_best_variant_also_monotone(self, layered_dag, machine4):
        initial = LevelRoundRobinScheduler().schedule(layered_dag, machine4)
        result = hill_climb(initial, variant="best", max_passes=3)
        assert result.final_cost <= result.initial_cost + 1e-9
        assert result.schedule.is_valid()

    def test_first_and_best_reach_similar_quality(self, spmv_small, machine4):
        """The paper found neither variant clearly superior; both must land
        within a reasonable factor of each other on a small instance."""
        initial = CilkScheduler(seed=0).schedule(spmv_small, machine4)
        first = hill_climb(initial, variant="first", max_passes=20).final_cost
        best = hill_climb(initial, variant="best", max_passes=20).final_cost
        assert first <= 1.5 * best
        assert best <= 1.5 * first


class TestImproverWrapper:
    def test_improver_returns_valid_not_worse(self, exp_small, machine4):
        initial = CilkScheduler(seed=0).schedule(exp_small, machine4)
        improver = HillClimbingImprover(max_passes=5)
        improved = improver.improve(initial)
        assert improved.is_valid()
        assert improved.cost() <= initial.cost() + 1e-9

    def test_time_limit_zero_applies_no_moves(self, layered_dag, machine4):
        initial = LevelRoundRobinScheduler().schedule(layered_dag, machine4)
        result = hill_climb(initial, time_limit=0.0)
        assert result.moves_applied == 0
        assert result.final_cost == pytest.approx(initial.cost())

    def test_numa_hill_climbing(self, exp_small, numa_machine):
        initial = CilkScheduler(seed=0).schedule(exp_small, numa_machine)
        result = hill_climb(initial, max_passes=5)
        assert result.schedule.is_valid()
        assert result.final_cost <= result.initial_cost + 1e-9
