"""Tests for the ``repro check`` static-analysis suite.

Every rule gets at least one true-positive fixture and one clean negative,
written to a temporary tree with the path shape the rule scopes by (the
lock-discipline rule only looks inside ``serve/`` and ``obs/``, the
protocol rule only inside ``serve/``).  On top of
the per-rule fixtures: pragma suppression, the baseline round-trip, the CLI
surface, and a self-check asserting the shipped tree is clean under its own
gate.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.checks.core import (
    BaselineError,
    Finding,
    load_baseline,
    write_baseline,
)
from repro.checks.rules import ALL_RULES, rule_registry
from repro.checks.rules.determinism import DeterminismRule
from repro.checks.rules.frozen_spec import FrozenSpecMutationRule
from repro.checks.rules.lock_discipline import LockDisciplineRule
from repro.checks.rules.protocol_contract import ProtocolContractRule
from repro.checks.rules.registry_contract import RegistryContractRule
from repro.checks.runner import all_rules, collect_files, main, run_checks

REPO_ROOT = Path(__file__).resolve().parents[1]


def check(tmp_path, rule, files):
    """Write ``files`` (relpath -> source) under ``tmp_path`` and run ``rule``."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_checks([tmp_path], rules=[rule])


def rules_fired(report):
    return [finding.rule for finding in report.findings]


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
class TestDeterminismRule:
    def test_flags_unseeded_rng_and_set_iteration(self, tmp_path):
        report = check(tmp_path, DeterminismRule(), {
            "engine.py": """
                import random
                import numpy as np

                def draw():
                    rng = np.random.default_rng()
                    x = np.random.rand(3)
                    y = random.random()
                    return rng, x, y

                def walk(items):
                    return [v for v in set(items)]
            """,
        })
        messages = " ".join(f.message for f in report.findings)
        assert rules_fired(report) == ["determinism"] * 4
        assert "unseeded" in messages
        assert "global numpy RNG" in messages
        assert "global stdlib RNG" in messages
        assert "set(...)" in messages

    def test_flags_wall_clock_and_listdir(self, tmp_path):
        report = check(tmp_path, DeterminismRule(), {
            "engine.py": """
                import os
                import time

                def budget_left(deadline):
                    return deadline - time.time()

                def scan(root):
                    for name in os.listdir(root):
                        print(name)
            """,
        })
        assert len(report.findings) == 2
        assert any("time.time" in f.message for f in report.findings)
        assert any("os.listdir" in f.message for f in report.findings)

    def test_seeded_and_sorted_are_clean(self, tmp_path):
        report = check(tmp_path, DeterminismRule(), {
            "engine.py": """
                import random
                import numpy as np

                def draw(seed):
                    rng = np.random.default_rng(seed)
                    local = random.Random(seed)
                    return rng.random(), local.random()

                def walk(items):
                    return [v for v in sorted(set(items))]
            """,
        })
        assert report.findings == []
        assert report.ok

    def test_harness_modules_may_time_and_iterate_sets(self, tmp_path):
        report = check(tmp_path, DeterminismRule(), {
            "benchmarks/bench_thing.py": """
                import time

                def measure(fn):
                    t0 = time.time()
                    fn()
                    return time.time() - t0

                def spread(items):
                    return [v for v in set(items)]
            """,
        })
        assert report.findings == []


# ----------------------------------------------------------------------
# lock-discipline
# ----------------------------------------------------------------------
POOL_FIXTURE = """
    import threading

    class Pool:
        def __init__(self):
            self._lock = threading.Lock()
            self.completed = 0

        def start(self):
            t = threading.Thread(target=self._worker)
            t.start()

        def _worker(self):
            {worker_body}

        def note_done(self):
            with self._lock:
                self.completed += 1
"""


OBS_FIXTURE = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self._value = 0

        def inc(self):
            {inc_body}

        def reset(self):
            with self._lock:
                self._value = 0
"""


class TestLockDisciplineRule:
    def test_unguarded_shared_counter_fires(self, tmp_path):
        report = check(tmp_path, LockDisciplineRule(), {
            "serve/pool.py": POOL_FIXTURE.format(worker_body="self.completed += 1"),
        })
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.rule == "lock-discipline"
        assert "Pool.completed" in finding.message
        assert "_worker" in finding.message

    def test_guarded_mutations_are_clean(self, tmp_path):
        guarded = "with self._lock:\n                self.completed += 1"
        report = check(tmp_path, LockDisciplineRule(), {
            "serve/pool.py": POOL_FIXTURE.format(worker_body=guarded),
        })
        assert report.findings == []

    def test_only_serve_modules_are_in_scope(self, tmp_path):
        report = check(tmp_path, LockDisciplineRule(), {
            "other/pool.py": POOL_FIXTURE.format(worker_body="self.completed += 1"),
        })
        assert report.findings == []

    def test_single_method_mutation_is_clean(self, tmp_path):
        report = check(tmp_path, LockDisciplineRule(), {
            "serve/pool.py": POOL_FIXTURE.format(worker_body="pass"),
        })
        # note_done is now the only mutator of `completed`: below threshold.
        assert report.findings == []

    def test_obs_lock_constructing_class_fires_unguarded(self, tmp_path):
        report = check(tmp_path, LockDisciplineRule(), {
            "obs/metrics.py": OBS_FIXTURE.format(inc_body="self._value += 1"),
        })
        assert len(report.findings) == 1
        assert "Counter._value" in report.findings[0].message

    def test_obs_guarded_mutations_are_clean(self, tmp_path):
        guarded = "with self._lock:\n                self._value += 1"
        report = check(tmp_path, LockDisciplineRule(), {
            "obs/metrics.py": OBS_FIXTURE.format(inc_body=guarded),
        })
        assert report.findings == []

    def test_obs_class_without_a_lock_is_out_of_scope(self, tmp_path):
        # No Lock() construction => the class never declared itself shared.
        report = check(tmp_path, LockDisciplineRule(), {
            "obs/metrics.py": """
                class Plain:
                    def __init__(self):
                        self.value = 0

                    def inc(self):
                        self.value += 1

                    def reset(self):
                        self.value = 0
            """,
        })
        assert report.findings == []

    def test_reverting_a_real_obs_guard_fires(self, tmp_path):
        """Stripping one guard from the real obs/metrics.py must fire."""
        source = (REPO_ROOT / "src" / "repro" / "obs" / "metrics.py").read_text()
        needle = "with self._lock:\n            self._value -= amount"
        assert needle in source, "expected guard missing from obs/metrics.py"
        broken = source.replace(needle, "self._value -= amount", 1)
        report = check(tmp_path, LockDisciplineRule(), {"obs/metrics.py": broken})
        assert any(
            f.rule == "lock-discipline" and "_value" in f.message
            for f in report.findings
        )
        clean = check(tmp_path / "clean", LockDisciplineRule(), {"obs/metrics.py": source})
        assert clean.findings == []

    def test_reverting_a_real_pool_guard_fires(self, tmp_path):
        """Stripping one `with self._lock:` guard from the real serve/pool.py
        must produce a lock-discipline finding (the ISSUE acceptance check)."""
        source = (REPO_ROOT / "src" / "repro" / "serve" / "pool.py").read_text()
        needle = "with self._lock:\n            self._accepting = False"
        assert needle in source, "expected guard missing from serve/pool.py"
        broken = source.replace(needle, "self._accepting = False", 1)
        assert broken != source
        report = check(tmp_path, LockDisciplineRule(), {"serve/pool.py": broken})
        assert any(
            f.rule == "lock-discipline" and "_accepting" in f.message
            for f in report.findings
        )
        # And the shipped source itself is clean.
        clean = check(tmp_path / "clean", LockDisciplineRule(), {"serve/pool.py": source})
        assert clean.findings == []


# ----------------------------------------------------------------------
# registry-contract
# ----------------------------------------------------------------------
class TestRegistryContractRule:
    def test_parameter_mismatch_fires_both_directions(self, tmp_path):
        report = check(tmp_path, RegistryContractRule(), {
            "factories.py": """
                @register_scheduler("foo", parameters=("alpha", "ghost"))
                def make_foo(alpha=1, beta=2):
                    return object()
            """,
        })
        messages = [f.message for f in report.findings]
        assert len(messages) == 2
        assert any("'beta' is missing" in m for m in messages)
        assert any("'ghost' is not an argument" in m for m in messages)

    def test_var_kwargs_requires_explicit_parameters(self, tmp_path):
        report = check(tmp_path, RegistryContractRule(), {
            "factories.py": """
                @register_scheduler("bar")
                def make_bar(**overrides):
                    return object()
            """,
        })
        assert len(report.findings) == 1
        assert "declare parameters= explicitly" in report.findings[0].message

    def test_wall_clock_default_must_not_claim_deterministic(self, tmp_path):
        report = check(tmp_path, RegistryContractRule(), {
            "factories.py": """
                @register_scheduler("ilp", parameters=("time_limit",))
                def make_ilp(time_limit=5.0):
                    return object()
            """,
        })
        assert len(report.findings) == 1
        assert "deterministic=False" in report.findings[0].message

    def test_consistent_registration_is_clean(self, tmp_path):
        report = check(tmp_path, RegistryContractRule(), {
            "factories.py": """
                PARAMS = ("alpha", "beta")

                @register_scheduler("foo", parameters=PARAMS)
                def make_foo(alpha=1, beta=2):
                    return object()

                @register_scheduler("ilp", parameters=("time_limit",),
                                    deterministic=False)
                def make_ilp(time_limit=5.0):
                    return object()
            """,
        })
        assert report.findings == []


# ----------------------------------------------------------------------
# frozen-spec-mutation
# ----------------------------------------------------------------------
class TestFrozenSpecMutationRule:
    def test_attribute_store_and_setattr_fire(self, tmp_path):
        report = check(tmp_path, FrozenSpecMutationRule(), {
            "tweak.py": """
                def tweak(request: "SolveRequest"):
                    spec = MachineSpec(P=2, g=1, l=1)
                    spec.P = 4
                    object.__setattr__(request, "scheduler", "hc")
                    return spec
            """,
        })
        messages = [f.message for f in report.findings]
        assert len(messages) == 2
        assert any("'spec'" in m and "immutable" in m for m in messages)
        assert any("__setattr__" in m and "'request'" in m for m in messages)

    def test_building_new_instances_is_clean(self, tmp_path):
        report = check(tmp_path, FrozenSpecMutationRule(), {
            "tweak.py": """
                import dataclasses

                def widen(spec: "MachineSpec"):
                    wider = dataclasses.replace(spec, P=spec.P * 2)
                    other = MachineSpec(P=spec.P, g=spec.g, l=spec.l)
                    return wider, other
            """,
        })
        assert report.findings == []

    def test_defining_module_is_exempt(self, tmp_path):
        report = check(tmp_path, FrozenSpecMutationRule(), {
            "repro/spec.py": """
                def __post_init__(self):
                    spec = MachineSpec(P=2, g=1, l=1)
                    object.__setattr__(spec, "P", 4)
            """,
        })
        assert report.findings == []


# ----------------------------------------------------------------------
# protocol-contract
# ----------------------------------------------------------------------
PROTOCOL_OK = """
    E_BAD_REQUEST = "bad-request"
    E_QUEUE_FULL = "queue-full"
    ERROR_CODES = (E_BAD_REQUEST, E_QUEUE_FULL)
"""

HANDLERS_OK = """
    from .protocol import E_BAD_REQUEST, E_QUEUE_FULL, error_response

    def handle(rid, queue):
        if queue.full():
            return error_response(rid, E_QUEUE_FULL, "queue full")
        return error_response(rid, E_BAD_REQUEST, "bad request")
"""


class TestProtocolContractRule:
    def test_consistent_protocol_is_clean(self, tmp_path):
        report = check(tmp_path, ProtocolContractRule(), {
            "serve/protocol.py": PROTOCOL_OK,
            "serve/handlers.py": HANDLERS_OK,
        })
        assert report.findings == []

    def test_unregistered_and_unused_codes_fire(self, tmp_path):
        report = check(tmp_path, ProtocolContractRule(), {
            "serve/protocol.py": """
                E_BAD_REQUEST = "bad-request"
                E_QUEUE_FULL = "queue-full"
                E_ORPHAN = "orphan"
                ERROR_CODES = (E_BAD_REQUEST, E_QUEUE_FULL)
            """,
            "serve/handlers.py": HANDLERS_OK,
        })
        messages = [f.message for f in report.findings]
        assert any("E_ORPHAN is declared but missing from ERROR_CODES" in m
                   for m in messages)
        assert any("E_ORPHAN is never produced or handled" in m for m in messages)

    def test_bad_call_sites_fire(self, tmp_path):
        report = check(tmp_path, ProtocolContractRule(), {
            "serve/protocol.py": PROTOCOL_OK,
            "serve/handlers.py": HANDLERS_OK,
            "serve/worker.py": """
                from . import protocol

                def refuse(ticket, stats):
                    _refuse(ticket, "not-a-code", "nope")
                    stats.note_error(protocol.E_MYSTERY)
            """,
        })
        messages = [f.message for f in report.findings]
        assert any("literal code 'not-a-code'" in m for m in messages)
        assert any("undeclared error code constant E_MYSTERY" in m for m in messages)

    def test_duplicate_wire_values_fire(self, tmp_path):
        report = check(tmp_path, ProtocolContractRule(), {
            "serve/protocol.py": """
                E_BAD_REQUEST = "bad-request"
                E_ALSO_BAD = "bad-request"
                ERROR_CODES = (E_BAD_REQUEST, E_ALSO_BAD)
            """,
            "serve/handlers.py": """
                from .protocol import E_ALSO_BAD, E_BAD_REQUEST, error_response

                def handle(rid):
                    error_response(rid, E_BAD_REQUEST, "x")
                    return error_response(rid, E_ALSO_BAD, "y")
            """,
        })
        assert any("share the wire value 'bad-request'" in f.message
                   for f in report.findings)

    def test_without_protocol_module_rule_is_silent(self, tmp_path):
        report = check(tmp_path, ProtocolContractRule(), {
            "serve/handlers.py": HANDLERS_OK,
        })
        assert report.findings == []


# ----------------------------------------------------------------------
# pragmas
# ----------------------------------------------------------------------
class TestPragmas:
    def test_disable_pragma_suppresses_named_rule(self, tmp_path):
        report = check(tmp_path, DeterminismRule(), {
            "engine.py": """
                import numpy as np

                def draw():
                    return np.random.default_rng()  # repro-check: disable=determinism
            """,
        })
        assert report.findings == []

    def test_disable_all_suppresses_everything(self, tmp_path):
        report = check(tmp_path, DeterminismRule(), {
            "engine.py": """
                import numpy as np

                def draw():
                    return np.random.default_rng()  # repro-check: disable=all
            """,
        })
        assert report.findings == []

    def test_pragma_on_other_line_does_not_suppress(self, tmp_path):
        report = check(tmp_path, DeterminismRule(), {
            "engine.py": """
                import numpy as np

                # repro-check: disable=determinism
                def draw():
                    return np.random.default_rng()
            """,
        })
        assert len(report.findings) == 1

    def test_unrelated_rule_name_does_not_suppress(self, tmp_path):
        report = check(tmp_path, DeterminismRule(), {
            "engine.py": """
                import numpy as np

                def draw():
                    return np.random.default_rng()  # repro-check: disable=lock-discipline
            """,
        })
        assert len(report.findings) == 1


# ----------------------------------------------------------------------
# baseline round-trip
# ----------------------------------------------------------------------
class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = [
            Finding("src/a.py", 3, 1, "determinism", "msg one"),
            Finding("src/b.py", 7, 5, "lock-discipline", "msg two"),
        ]
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        assert load_baseline(path) == {f.key() for f in findings}

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == set()

    def test_malformed_and_wrong_version_raise(self, tmp_path):
        bad_json = tmp_path / "bad.json"
        bad_json.write_text("{not json")
        with pytest.raises(BaselineError):
            load_baseline(bad_json)
        wrong_version = tmp_path / "v99.json"
        wrong_version.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(BaselineError):
            load_baseline(wrong_version)

    def test_baselined_findings_do_not_fail_the_run(self, tmp_path):
        files = {
            "engine.py": """
                import numpy as np

                def draw():
                    return np.random.default_rng()
            """,
        }
        report = check(tmp_path, DeterminismRule(), files)
        assert len(report.findings) == 1 and not report.ok

        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, report.findings)
        again = run_checks(
            [tmp_path],
            rules=[DeterminismRule()],
            baseline=load_baseline(baseline_path),
        )
        assert again.ok
        assert again.findings == []
        assert len(again.baselined) == 1
        assert again.stale_baseline == 0

    def test_stale_entries_are_counted(self, tmp_path):
        (tmp_path / "clean.py").write_text("x = 1\n")
        stale = {("gone.py", "determinism", "old message")}
        report = run_checks([tmp_path], rules=[DeterminismRule()], baseline=stale)
        assert report.ok
        assert report.stale_baseline == 1


# ----------------------------------------------------------------------
# runner / CLI surface
# ----------------------------------------------------------------------
class TestRunnerAndCli:
    def test_collect_files_is_sorted_and_skips_caches(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        pycache = tmp_path / "__pycache__"
        pycache.mkdir()
        (pycache / "a.cpython-311.pyc.py").write_text("x = 1\n")
        names = [Path(rel).name for _, rel in collect_files([tmp_path])]
        assert names == ["a.py", "b.py"]

    def test_every_rule_is_registered(self):
        registry = rule_registry()
        assert len(ALL_RULES) == 5
        expected = {
            "determinism",
            "frozen-spec-mutation",
            "lock-discipline",
            "protocol-contract",
            "registry-contract",
        }
        assert set(registry) == expected
        assert {rule.name for rule in all_rules()} == expected
        for rule in all_rules():
            assert rule.description

    def test_parse_error_fails_the_run(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        report = run_checks([tmp_path], rules=all_rules())
        assert not report.ok
        assert len(report.errors) == 1

    def test_json_report_shape(self, tmp_path):
        files = {
            "engine.py": """
                import numpy as np

                def draw():
                    return np.random.default_rng()
            """,
        }
        report = check(tmp_path, DeterminismRule(), files)
        payload = json.loads(report.render_json())
        assert payload["ok"] is False
        assert payload["checked_files"] == 1
        assert len(payload["findings"]) == 1
        entry = payload["findings"][0]
        assert set(entry) == {"path", "line", "col", "rule", "message"}

    def test_main_exit_codes(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        dirty = tmp_path / "proj"
        dirty.mkdir()
        (dirty / "engine.py").write_text(
            "import numpy as np\n\n\ndef draw():\n    return np.random.default_rng()\n"
        )
        assert main(["proj", "--no-baseline"]) == 1
        capsys.readouterr()
        (dirty / "engine.py").write_text("x = 1\n")
        assert main(["proj", "--no-baseline"]) == 0
        capsys.readouterr()
        assert main(["missing-dir", "--no-baseline"]) == 2

    def test_update_baseline_grandfathers_findings(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        proj = tmp_path / "proj"
        proj.mkdir()
        (proj / "engine.py").write_text(
            "import numpy as np\n\n\ndef draw():\n    return np.random.default_rng()\n"
        )
        baseline = tmp_path / "baseline.json"
        assert main(["proj", "--baseline", str(baseline), "--update-baseline"]) == 0
        capsys.readouterr()
        assert len(load_baseline(baseline)) == 1
        # The grandfathered finding no longer fails the gate.
        assert main(["proj", "--baseline", str(baseline)]) == 0

    def test_rules_selection_and_unknown_rule(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        proj = tmp_path / "proj"
        proj.mkdir()
        (proj / "engine.py").write_text(
            "import numpy as np\n\n\ndef draw():\n    return np.random.default_rng()\n"
        )
        # The offending module is clean under a rule that does not apply.
        assert main(["proj", "--no-baseline", "--rules", "lock-discipline"]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(["proj", "--rules", "no-such-rule"])

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "determinism" in out
        assert "protocol-contract" in out

    def test_repro_cli_check_subcommand(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main as cli_main

        monkeypatch.chdir(tmp_path)
        proj = tmp_path / "proj"
        proj.mkdir()
        (proj / "clean.py").write_text("x = 1\n")
        assert cli_main(["check", "proj", "--no-baseline", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert cli_main(["check", "--list-rules"]) == 0
        assert "determinism" in capsys.readouterr().out


# ----------------------------------------------------------------------
# self-check: the shipped tree passes its own gate
# ----------------------------------------------------------------------
class TestSelfCheck:
    def test_repo_tree_is_clean(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["src", "tests", "benchmarks"]) == 0
