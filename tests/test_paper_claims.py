"""Integration tests for the paper's headline qualitative claims.

These are deliberately small end-to-end checks (the full quantitative
regeneration lives in the benchmark harness): the framework beats the
baselines under the realistic cost model, and its advantage grows when the
model becomes more realistic (higher communication cost, NUMA effects).
"""

import pytest

from repro.baselines.cilk import CilkScheduler
from repro.baselines.hdagg import HDaggScheduler
from repro.graphs.fine import exp_dag
from repro.model.machine import BspMachine
from repro.pipeline.config import PipelineConfig
from repro.pipeline.framework import run_pipeline


@pytest.fixture(scope="module")
def workload():
    return exp_dag(7, k=2, q=0.3, seed=21)


@pytest.fixture(scope="module")
def config():
    return PipelineConfig.heuristics_only()


def improvement_vs_cilk(dag, machine, config):
    ours = run_pipeline(dag, machine, config).final_cost
    cilk = CilkScheduler(seed=0).schedule(dag, machine).cost()
    return 1.0 - ours / cilk


class TestHeadlineClaims:
    def test_framework_beats_both_baselines(self, workload, config):
        machine = BspMachine(P=4, g=5, l=5)
        ours = run_pipeline(workload, machine, config).final_cost
        assert ours < CilkScheduler(seed=0).schedule(workload, machine).cost()
        assert ours < HDaggScheduler().schedule(workload, machine).cost()

    def test_improvement_grows_with_communication_cost(self, workload, config):
        machine_low = BspMachine(P=4, g=1, l=5)
        machine_high = BspMachine(P=4, g=5, l=5)
        low = improvement_vs_cilk(workload, machine_low, config)
        high = improvement_vs_cilk(workload, machine_high, config)
        assert high >= low - 0.02  # the gap widens (small tolerance for noise)
        assert high > 0

    def test_improvement_grows_with_numa_factor(self, workload, config):
        mild = BspMachine.hierarchical(P=8, delta=2, g=1, l=5)
        harsh = BspMachine.hierarchical(P=8, delta=4, g=1, l=5)
        assert improvement_vs_cilk(workload, harsh, config) >= (
            improvement_vs_cilk(workload, mild, config) - 0.02
        )

    def test_numa_improvement_exceeds_uniform_improvement(self, workload, config):
        uniform = BspMachine(P=8, g=1, l=5)
        numa = BspMachine.hierarchical(P=8, delta=4, g=1, l=5)
        assert improvement_vs_cilk(workload, numa, config) >= (
            improvement_vs_cilk(workload, uniform, config) - 0.02
        )
