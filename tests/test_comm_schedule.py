"""Unit tests for the CommSchedule container."""

import pytest

from repro.model.comm import CommSchedule


class TestCommSchedule:
    def test_add_and_contains(self):
        comm = CommSchedule()
        comm.add(3, 0, 1, 2)
        assert (3, 0, 1, 2) in comm
        assert len(comm) == 1

    def test_add_is_idempotent(self):
        comm = CommSchedule()
        comm.add(1, 0, 1, 0)
        comm.add(1, 0, 1, 0)
        assert len(comm) == 1

    def test_remove_and_discard(self):
        comm = CommSchedule()
        comm.add(1, 0, 1, 0)
        comm.remove(1, 0, 1, 0)
        assert len(comm) == 0
        with pytest.raises(KeyError):
            comm.remove(1, 0, 1, 0)
        comm.discard(1, 0, 1, 0)  # no error

    def test_max_step(self):
        comm = CommSchedule()
        assert comm.max_step() == -1
        comm.add(0, 0, 1, 4)
        comm.add(1, 1, 0, 2)
        assert comm.max_step() == 4

    def test_by_step_groups_entries(self):
        comm = CommSchedule()
        comm.add(0, 0, 1, 1)
        comm.add(2, 1, 0, 1)
        comm.add(1, 0, 1, 3)
        grouped = comm.by_step()
        assert set(grouped) == {1, 3}
        assert len(grouped[1]) == 2

    def test_entries_for_node_and_targets(self):
        comm = CommSchedule()
        comm.add(5, 0, 1, 0)
        comm.add(5, 0, 2, 1)
        comm.add(6, 1, 0, 0)
        assert len(comm.entries_for_node(5)) == 2
        assert comm.targets_of(5) == {1, 2}

    def test_copy_is_independent(self):
        comm = CommSchedule()
        comm.add(0, 0, 1, 0)
        clone = comm.copy()
        clone.add(1, 0, 1, 0)
        assert len(comm) == 1 and len(clone) == 2

    def test_equality(self):
        a = CommSchedule({(0, 0, 1, 0)})
        b = CommSchedule()
        b.add(0, 0, 1, 0)
        assert a == b
        b.add(1, 0, 1, 0)
        assert a != b

    def test_initial_entries_are_normalized_to_int_tuples(self):
        comm = CommSchedule({(0.0, 1.0, 2.0, 3.0)})
        assert (0, 1, 2, 3) in comm
