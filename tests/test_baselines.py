"""Unit tests for the baseline schedulers (Cilk, BL-EST, ETF, HDagg, trivial)."""

import numpy as np
import pytest

from repro.baselines.cilk import CilkScheduler, simulate_work_stealing
from repro.baselines.hdagg import HDaggScheduler
from repro.baselines.list_schedulers import BlEstScheduler, EtfScheduler, list_schedule
from repro.baselines.trivial import LevelRoundRobinScheduler, TrivialScheduler
from repro.graphs.dag import ComputationalDAG
from repro.model.machine import BspMachine

ALL_BASELINES = [
    CilkScheduler(seed=0),
    BlEstScheduler(),
    EtfScheduler(),
    HDaggScheduler(),
    TrivialScheduler(),
    LevelRoundRobinScheduler(),
]


class TestAllBaselinesValidity:
    @pytest.mark.parametrize("scheduler", ALL_BASELINES, ids=lambda s: s.name)
    def test_valid_on_battery(self, scheduler, all_test_dags, machine4):
        for dag in all_test_dags:
            sched = scheduler.schedule_checked(dag, machine4)
            assert sched.dag is dag
            assert len(sched.proc) == dag.n

    @pytest.mark.parametrize("scheduler", ALL_BASELINES, ids=lambda s: s.name)
    def test_valid_with_numa_machine(self, scheduler, layered_dag, numa_machine):
        sched = scheduler.schedule_checked(layered_dag, numa_machine)
        assert sched.is_valid()

    @pytest.mark.parametrize("scheduler", ALL_BASELINES, ids=lambda s: s.name)
    def test_single_processor_machine(self, scheduler, diamond_dag):
        machine = BspMachine(P=1, g=2, l=3)
        sched = scheduler.schedule_checked(diamond_dag, machine)
        assert sched.cost() >= diamond_dag.total_work()

    @pytest.mark.parametrize("scheduler", ALL_BASELINES, ids=lambda s: s.name)
    def test_empty_dag(self, scheduler, machine2):
        dag = ComputationalDAG(0, [])
        sched = scheduler.schedule(dag, machine2)
        assert sched.is_valid()


class TestCilk:
    def test_deterministic_with_seed(self, layered_dag, machine4):
        a = CilkScheduler(seed=42).schedule(layered_dag, machine4)
        b = CilkScheduler(seed=42).schedule(layered_dag, machine4)
        assert np.array_equal(a.proc, b.proc) and np.array_equal(a.step, b.step)

    def test_no_idle_processor_while_work_exists(self, fork_join_dag):
        """With 2 processors and 6 independent middle nodes, stealing must
        spread the work (makespan well below the sequential one)."""
        machine = BspMachine(P=2, g=1, l=1)
        classical = simulate_work_stealing(fork_join_dag, machine, seed=1)
        assert classical.makespan < fork_join_dag.total_work()
        assert not classical.validate_processor_exclusivity()

    def test_respects_precedence_in_time(self, layered_dag, machine4):
        classical = simulate_work_stealing(layered_dag, machine4, seed=0)
        finish = classical.finish
        for (u, v) in layered_dag.edges:
            assert classical.start[v] >= finish[u] - 1e-9

    def test_all_nodes_scheduled_exactly_once(self, spmv_small, machine4):
        classical = simulate_work_stealing(spmv_small, machine4, seed=3)
        assert len(classical.start) == spmv_small.n
        assert not classical.validate_processor_exclusivity()


class TestListSchedulers:
    def test_rejects_unknown_policy(self, diamond_dag, machine2):
        with pytest.raises(ValueError):
            list_schedule(diamond_dag, machine2, policy="nope")

    def test_etf_respects_communication_delay(self):
        """With huge communication cost ETF keeps a chain on one processor."""
        dag = ComputationalDAG(4, [(0, 1), (1, 2), (2, 3)], work=[1, 1, 1, 1], comm=[100, 100, 100, 100])
        machine = BspMachine(P=4, g=10, l=0)
        classical = list_schedule(dag, machine, policy="etf")
        assert len(set(classical.proc.tolist())) == 1

    def test_blest_prioritizes_critical_path(self):
        # Node 1 has a much longer outgoing path than node 2, so BL-EST
        # schedules it first even though both are ready.
        dag = ComputationalDAG(
            5, [(0, 1), (0, 2), (1, 3), (3, 4)], work=[1, 1, 1, 5, 5], comm=[1, 1, 1, 1, 1]
        )
        machine = BspMachine(P=1, g=1, l=0)
        classical = list_schedule(dag, machine, policy="bl-est")
        assert classical.start[1] < classical.start[2]

    def test_parallel_speedup_on_independent_work(self, machine4):
        dag = ComputationalDAG(8, [], work=[3] * 8)
        for policy in ("bl-est", "etf"):
            classical = list_schedule(dag, machine4, policy=policy)
            assert classical.makespan == pytest.approx(6.0)

    def test_numa_machine_uses_average_coefficient(self, numa_machine):
        """The baselines run (and stay valid) on NUMA machines even though
        they only use the average coefficient internally."""
        dag = ComputationalDAG(6, [(0, 2), (1, 2), (2, 3), (2, 4), (4, 5)], comm=[2] * 6)
        for scheduler in (BlEstScheduler(), EtfScheduler()):
            sched = scheduler.schedule_checked(dag, numa_machine)
            assert sched.cost() > 0


class TestHDagg:
    def test_produces_few_supersteps_on_wide_dag(self, machine4):
        # 3 levels of 8 independent nodes each: HDagg should not need more
        # supersteps than levels.
        edges = []
        for layer in range(1, 3):
            for i in range(8):
                edges.append(((layer - 1) * 8 + i, layer * 8 + i))
        dag = ComputationalDAG(24, edges)
        sched = HDaggScheduler().schedule_checked(dag, machine4)
        assert sched.num_supersteps <= 3

    def test_balances_work_within_superstep(self, machine4):
        dag = ComputationalDAG(8, [], work=[2] * 8)
        sched = HDaggScheduler().schedule_checked(dag, machine4)
        breakdown = sched.cost_breakdown()
        # Perfectly balanceable: the work cost must be close to 4 (= 16 / 4).
        assert breakdown.work_cost <= 8

    def test_aggregates_thin_wavefronts(self, chain_dag, machine4):
        sched = HDaggScheduler(aggregation_factor=10).schedule_checked(chain_dag, machine4)
        assert sched.num_supersteps == 1  # the whole chain fits one superstep

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            HDaggScheduler(aggregation_factor=0)
        with pytest.raises(ValueError):
            HDaggScheduler(balance_slack=0.5)

    def test_beats_cilk_when_communication_matters(self, exp_small):
        """The paper's premise: HDagg (communication-aware wavefronts) beats
        Cilk under the BSP cost once g is non-trivial."""
        machine = BspMachine(P=4, g=5, l=5)
        cilk_cost = CilkScheduler(seed=0).schedule(exp_small, machine).cost()
        hdagg_cost = HDaggScheduler().schedule(exp_small, machine).cost()
        assert hdagg_cost < cilk_cost


class TestTrivialSchedulers:
    def test_trivial_cost(self, diamond_dag, machine4):
        sched = TrivialScheduler().schedule(diamond_dag, machine4)
        assert sched.cost() == diamond_dag.total_work() + machine4.l

    def test_level_round_robin_uses_all_processors(self, machine4):
        dag = ComputationalDAG(8, [], work=[1] * 8)
        sched = LevelRoundRobinScheduler().schedule_checked(dag, machine4)
        assert set(sched.proc.tolist()) == {0, 1, 2, 3}
