"""Tests for the repro.api facade (solve / solve_many / compare)."""

import pytest

from repro import api
from repro.spec import DagSpec, MachineSpec, ProblemSpec, SolveRequest, SpecError


@pytest.fixture
def spmv_spec() -> ProblemSpec:
    return ProblemSpec(
        dag=DagSpec.generator("spmv", n=6, q=0.3, seed=4),
        machine=MachineSpec(P=2, g=2, l=3),
    )


class TestSolve:
    def test_solve_returns_cost_breakdown(self, spmv_spec):
        result = api.solve(SolveRequest(spec=spmv_spec, scheduler="hdagg"))
        assert result.valid
        assert result.total_cost == pytest.approx(
            result.work_cost + result.comm_cost + result.latency_cost
        )
        assert result.num_supersteps >= 1
        assert result.num_nodes == spmv_spec.build_dag().n
        assert result.wall_seconds >= 0
        assert result.scheduler == "hdagg"
        assert result.deterministic

    def test_solve_parameterized_scheduler(self, spmv_spec):
        base = api.solve(SolveRequest(spec=spmv_spec, scheduler="bspg"))
        improved = api.solve(
            SolveRequest(spec=spmv_spec, scheduler="hc(max_moves=100, init=bspg)")
        )
        assert improved.total_cost <= base.total_cost

    def test_seed_merges_into_scheduler_spec(self, spmv_spec):
        result = api.solve(SolveRequest(spec=spmv_spec, scheduler="cilk", seed=5))
        assert result.scheduler == "cilk(seed=5)"

    def test_time_budget_merges_into_time_limit(self, spmv_spec):
        result = api.solve(
            SolveRequest(spec=spmv_spec, scheduler="hc(max_moves=5)", time_budget=3)
        )
        assert result.scheduler == "hc(max_moves=5, time_limit=3.0)"

    def test_explicit_spec_parameter_wins_over_request_seed(self, spmv_spec):
        result = api.solve(SolveRequest(spec=spmv_spec, scheduler="cilk(seed=1)", seed=9))
        assert result.scheduler == "cilk(seed=1)"

    def test_unknown_scheduler_raises(self, spmv_spec):
        with pytest.raises(ValueError, match="unknown scheduler"):
            api.solve(SolveRequest(spec=spmv_spec, scheduler="magic"))


class TestSolveMany:
    def test_results_in_request_order(self, spmv_spec):
        specs = ["hdagg", "cilk", "trivial"]
        results = api.solve_many(
            [SolveRequest(spec=spmv_spec, scheduler=s) for s in specs]
        )
        assert [r.scheduler for r in results] == specs

    def test_parallel_matches_serial(self, spmv_spec):
        requests = [
            SolveRequest(spec=spmv_spec, scheduler=s)
            for s in ("cilk", "hdagg", "bspg", "source")
        ]
        serial = [api.solve(r).to_dict() for r in requests]
        parallel = [r.to_dict() for r in api.solve_many(requests, jobs=2)]
        assert serial == parallel

    def test_checkpoint_resume_skips_done_work(self, spmv_spec, tmp_path):
        checkpoint = tmp_path / "batch.jsonl"
        requests = [
            SolveRequest(spec=spmv_spec, scheduler=s) for s in ("cilk", "hdagg")
        ]
        first = api.solve_many(requests, checkpoint=checkpoint)
        assert checkpoint.exists()
        resumed = api.solve_many(requests, checkpoint=checkpoint, resume=True)
        assert [r.to_dict() for r in first] == [r.to_dict() for r in resumed]

    def test_resume_from_pre_breakdown_checkpoint_resolves(self, spmv_spec, tmp_path):
        # Records written by the pre-v2 engine carry no breakdown; resume
        # must re-solve those items rather than report zeroed costs.
        import json

        checkpoint = tmp_path / "old.jsonl"
        requests = [SolveRequest(spec=spmv_spec, scheduler="cilk")]
        fresh = api.solve_many(requests, checkpoint=checkpoint)
        stripped = []
        for line in checkpoint.read_text().splitlines():
            record = json.loads(line)
            record.pop("breakdown", None)
            stripped.append(json.dumps(record, sort_keys=True))
        checkpoint.write_text("\n".join(stripped) + "\n")
        resumed = api.solve_many(requests, checkpoint=checkpoint, resume=True)
        assert [r.to_dict() for r in resumed] == [r.to_dict() for r in fresh]
        assert resumed[0].work_cost > 0 and resumed[0].num_supersteps > 0
        # The upgraded record is appended, so the next resume needs no re-solve.
        from repro.experiments.persistence import read_checkpoint

        assert any(r.get("breakdown") for r in read_checkpoint(checkpoint))

    def test_explicit_time_limit_clears_deterministic_flag(self, spmv_spec):
        result = api.solve(
            SolveRequest(spec=spmv_spec, scheduler="hc(max_moves=5, time_limit=30)")
        )
        assert result.deterministic is False
        assert api.solve(SolveRequest(spec=spmv_spec, scheduler="hc(max_moves=5)")).deterministic

    def test_compare_runs_all_schedulers_on_one_problem(self, spmv_spec):
        results = api.compare(spmv_spec, ["cilk", "hdagg"], jobs=2)
        assert len(results) == 2
        assert {r.dag_name for r in results} == {"spmv_n6"}


class TestJsonlHelpers:
    def test_load_requests_round_trip(self, spmv_spec, tmp_path):
        path = tmp_path / "requests.jsonl"
        requests = [
            SolveRequest(spec=spmv_spec, scheduler="cilk"),
            SolveRequest(spec=spmv_spec, scheduler="hc(max_moves=5)", seed=3),
        ]
        path.write_text("".join(r.to_json() + "\n" for r in requests))
        assert api.load_requests(path) == requests

    def test_load_requests_skips_blank_and_comment_lines(self, spmv_spec, tmp_path):
        path = tmp_path / "requests.jsonl"
        request = SolveRequest(spec=spmv_spec, scheduler="cilk")
        path.write_text("# header\n\n" + request.to_json() + "\n")
        assert api.load_requests(path) == [request]

    def test_load_requests_reports_line_numbers(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"scheduler": "cilk"}\n')
        with pytest.raises(SpecError, match=":1:"):
            api.load_requests(path)

    def test_write_results_deterministic_by_default(self, spmv_spec, tmp_path):
        results = api.solve_many(
            [SolveRequest(spec=spmv_spec, scheduler="cilk")] * 2
        )
        out = tmp_path / "results.jsonl"
        api.write_results(results, out)
        lines = out.read_text().splitlines()
        assert len(lines) == 2 and lines[0] == lines[1]
        assert "wall_seconds" not in lines[0]
        api.write_results(results, out, timing=True)
        assert "wall_seconds" in out.read_text()
