"""Tests for the MILP modelling layer."""

import numpy as np
import pytest

from repro.ilp.model import IlpModel


class TestVariables:
    def test_add_variables(self):
        m = IlpModel()
        x = m.add_binary("x")
        y = m.add_continuous("y", lb=1.0, ub=5.0)
        z = m.add_variable("z", lb=0, ub=10, integer=True)
        assert (x, y, z) == (0, 1, 2)
        assert m.num_variables == 3
        assert m.var_integer == [True, False, True]
        assert m.var_ub[0] == 1.0

    def test_invalid_bounds_rejected(self):
        m = IlpModel()
        with pytest.raises(ValueError):
            m.add_variable("bad", lb=2.0, ub=1.0)


class TestConstraints:
    def test_add_constraint_forms(self):
        m = IlpModel()
        x = m.add_continuous("x")
        y = m.add_continuous("y")
        m.add_le({x: 1.0, y: 2.0}, 10.0)
        m.add_ge({x: 1.0}, 1.0)
        m.add_eq({y: 1.0}, 4.0)
        assert m.num_constraints == 3
        assert m.constraints[0].ub == 10.0
        assert m.constraints[1].lb == 1.0
        assert m.constraints[2].lb == m.constraints[2].ub == 4.0

    def test_zero_coefficients_dropped(self):
        m = IlpModel()
        x = m.add_continuous("x")
        m.add_le({x: 0.0}, 1.0)
        assert m.constraints[0].coeffs == {}

    def test_unknown_variable_rejected(self):
        m = IlpModel()
        m.add_continuous("x")
        with pytest.raises(IndexError):
            m.add_le({5: 1.0}, 1.0)

    def test_constraint_violations(self):
        m = IlpModel()
        x = m.add_continuous("x")
        y = m.add_continuous("y")
        m.add_le({x: 1.0, y: 1.0}, 3.0, name="cap")
        assert m.constraint_violations([1.0, 1.0]) == []
        violations = m.constraint_violations([2.0, 2.0])
        assert len(violations) == 1 and "cap" in violations[0]


class TestObjective:
    def test_set_and_accumulate(self):
        m = IlpModel()
        x = m.add_continuous("x")
        y = m.add_continuous("y")
        m.set_objective({x: 2.0}, constant=1.0)
        m.add_objective_term(y, 3.0)
        m.add_objective_term(x, 1.0)
        assert m.objective == {x: 3.0, y: 3.0}
        assert m.objective_value([1.0, 2.0]) == pytest.approx(3 + 6 + 1)

    def test_zero_term_ignored(self):
        m = IlpModel()
        x = m.add_continuous("x")
        m.add_objective_term(x, 0.0)
        assert m.objective == {}


class TestCompilation:
    def test_to_arrays_round_trip(self):
        m = IlpModel()
        x = m.add_binary("x")
        y = m.add_continuous("y", ub=4.0)
        m.add_le({x: 2.0, y: 1.0}, 5.0)
        m.add_ge({y: 1.0}, 1.0)
        m.set_objective({x: -1.0, y: -1.0})
        c, A, c_lb, c_ub, b_lb, b_ub, integrality = m.to_arrays()
        assert c.tolist() == [-1.0, -1.0]
        assert A.shape == (2, 2)
        assert A.toarray()[0].tolist() == [2.0, 1.0]
        assert np.isinf(c_lb[0]) and c_ub[0] == 5.0
        assert c_lb[1] == 1.0 and np.isinf(c_ub[1])
        assert b_ub[0] == 1.0 and b_ub[1] == 4.0
        assert integrality.tolist() == [1, 0]

    def test_empty_model_compiles(self):
        m = IlpModel()
        c, A, *_ = m.to_arrays()
        assert c.shape == (0,)
        assert A.shape == (0, 0)
