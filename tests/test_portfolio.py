"""Tests for the portfolio subsystem: features, rules, racing, caching."""

import json

import numpy as np
import pytest

from repro.graphs.fine import cg_dag, spmv_dag
from repro.model.machine import BspMachine
from repro.portfolio import (
    DEFAULT_RACE_CANDIDATES,
    InstanceFeatures,
    PortfolioScheduler,
    SolutionCache,
    extract_features,
    instance_signature,
    race,
    select_scheduler,
)
from repro.portfolio.cache import CACHE_FORMAT_VERSION, default_cache_dir, set_default_cache_dir
from repro.registry import make_scheduler, parse_scheduler_spec
from repro.scheduler import SchedulingError


@pytest.fixture
def instance():
    dag = spmv_dag(8, q=0.3, seed=3)
    machine = BspMachine(P=4, g=2.0, l=5.0)
    return dag, machine


class TestFeatures:
    def test_feature_vector_matches_instance(self, instance):
        dag, machine = instance
        f = extract_features(dag, machine)
        assert f.num_nodes == dag.n
        assert f.num_edges == dag.num_edges
        assert f.P == 4 and f.g == 2.0 and f.l == 5.0
        assert f.total_work == dag.total_work()
        assert f.numa_uniform is True
        assert f.memory_pressure == 0.0 and f.memory_bound_min == 0.0
        assert f.avg_width == pytest.approx(dag.n / dag.depth())

    def test_features_json_round_trip(self, instance):
        f = extract_features(*instance)
        data = json.loads(json.dumps(f.to_dict()))
        assert InstanceFeatures.from_dict(data) == f

    def test_features_deterministic(self, instance):
        dag, machine = instance
        assert extract_features(dag, machine) == extract_features(dag, machine)

    def test_memory_pressure_against_bound(self, instance):
        dag, machine = instance
        bounded = machine.with_memory_bound(100.0)
        f = extract_features(dag, bounded)
        assert f.memory_bound_min == 100.0
        assert f.memory_pressure == pytest.approx(dag.total_memory() / 400.0)

    def test_numa_summary(self):
        dag = spmv_dag(6, q=0.3, seed=0)
        machine = BspMachine.hierarchical(P=4, delta=3.0, g=1, l=5)
        f = extract_features(dag, machine)
        assert not f.numa_uniform
        assert f.numa_max == 3.0
        assert 1.0 < f.numa_mean < 3.0


class TestSignature:
    def test_signature_stable_and_content_addressed(self, instance):
        dag, machine = instance
        sig = instance_signature(dag, machine)
        assert sig == instance_signature(dag, machine)
        # Any observable difference must change the signature.
        other_machine = BspMachine(P=4, g=3.0, l=5.0)
        assert sig != instance_signature(dag, other_machine)
        other_dag = spmv_dag(8, q=0.3, seed=4)
        assert sig != instance_signature(other_dag, machine)
        assert sig != instance_signature(dag, machine.with_memory_bound(50))

    def test_signature_sensitive_to_weights(self, instance):
        dag, machine = instance
        sig = instance_signature(dag, machine)
        heavier = spmv_dag(8, q=0.3, seed=3)
        heavier.work = np.asarray(heavier.work) * 2
        assert instance_signature(heavier, machine) != sig

    def test_signature_sensitive_to_dtype(self):
        """Regression: arrays with identical bytes but different dtypes must
        not alias (an all-zero int64 and float64 array share a byte pattern,
        but schedulers see different values)."""
        from types import SimpleNamespace

        def fake_instance(weight_dtype):
            dag = SimpleNamespace(
                name="alias",
                n=4,
                edge_sources=np.array([0, 1], dtype=np.int64),
                edge_targets=np.array([1, 2], dtype=np.int64),
                work=np.zeros(4, dtype=weight_dtype),
                comm=np.zeros(4, dtype=np.int64),
                memory=np.zeros(4, dtype=np.int64),
            )
            machine = SimpleNamespace(
                P=2, g=1.0, l=2.0, numa=np.ones((2, 2)), memory_bounds=None
            )
            return dag, machine

        int_dag, int_machine = fake_instance(np.int64)
        float_dag, float_machine = fake_instance(np.float64)
        assert int_dag.work.tobytes() == float_dag.work.tobytes()  # the trap
        assert instance_signature(int_dag, int_machine) != instance_signature(
            float_dag, float_machine
        )
        # Same dtype still hashes stably.
        assert instance_signature(int_dag, int_machine) == instance_signature(
            *fake_instance(np.int64)
        )


class TestRules:
    def test_memory_bounded_instances_get_memory_aware_scheduler(self, instance):
        dag, machine = instance
        f = extract_features(dag, machine.with_memory_bound(1000.0))
        spec, rule = select_scheduler(f)
        assert "greedy-mem" in spec
        assert rule.name.startswith("memory-bounded")

    def test_huge_instances_get_list_scheduler(self, instance):
        f = extract_features(*instance)
        huge = InstanceFeatures.from_dict({**f.to_dict(), "num_nodes": 50_000})
        spec, rule = select_scheduler(huge)
        assert spec == "bl-est" and rule.name == "huge"

    def test_candidate_restriction(self, instance):
        f = extract_features(*instance)
        spec, rule = select_scheduler(f, candidates=["etf", "bl-est"])
        assert spec in ("etf", "bl-est")

    def test_candidate_fallback_when_no_rule_matches(self, instance):
        f = extract_features(*instance)
        spec, rule = select_scheduler(f, candidates=["cilk"])
        assert spec == "cilk" and rule.name == "candidate-fallback"

    def test_every_rule_spec_is_registered(self):
        from repro.portfolio.selector import RULES
        from repro.registry import scheduler_info

        for rule in RULES:
            info = scheduler_info(rule.spec)  # raises on unknown specs
            assert info.deterministic, f"rules must stay deterministic: {rule.name}"


class TestRace:
    def test_race_returns_best_candidate(self, instance):
        dag, machine = instance
        outcome = race(dag, machine, ["trivial", "bl-est", "etf"])
        assert outcome.winner in ("trivial", "bl-est", "etf")
        assert outcome.cost == min(outcome.costs.values())
        schedule = outcome.schedule
        assert schedule.is_valid()
        assert schedule.cost() == outcome.cost

    def test_race_with_budget_eliminates_candidates(self, instance):
        dag, machine = instance
        outcome = race(dag, machine, list(DEFAULT_RACE_CANDIDATES), budget=3.0)
        assert outcome.winner == outcome.elimination_order[-1]
        assert set(outcome.elimination_order) == set(DEFAULT_RACE_CANDIDATES)
        assert outcome.rounds >= 1

    def test_race_tolerates_failing_candidates(self, instance):
        dag, machine = instance
        # Feasible bound (4 * bound > total memory) that the trivial
        # scheduler (everything on one processor) necessarily violates.
        bound = float(dag.total_memory()) / 2.0
        outcome = race(dag, machine.with_memory_bound(bound), ["trivial", "greedy-mem"])
        assert outcome.winner == "greedy-mem"
        assert outcome.costs["trivial"] == float("inf")

    def test_race_all_failing_raises(self, instance):
        dag, machine = instance
        # 4 * 3.0 < total memory: no feasible schedule exists for anyone.
        bounded = machine.with_memory_bound(3.0)
        with pytest.raises(SchedulingError):
            race(dag, bounded, ["cilk", "etf"])

    def test_race_requires_candidates(self, instance):
        with pytest.raises(ValueError):
            race(*instance, [])

    def test_single_candidate_race_honours_budget(self, instance, monkeypatch):
        import repro.portfolio.selector as selector_module

        dag, machine = instance
        captured = []
        original = selector_module._race_candidates_once

        def spy(dag, machine, specs, *, time_limit, jobs):
            captured.append(time_limit)
            return original(dag, machine, specs, time_limit=time_limit, jobs=jobs)

        monkeypatch.setattr(selector_module, "_race_candidates_once", spy)
        outcome = race(dag, machine, ["hc(init=bspg)"], budget=0.5)
        assert outcome.winner == "hc(init=bspg)"
        # The lone candidate must run under the remaining budget, not unbounded.
        assert captured and captured[0] is not None and captured[0] <= 0.5


class TestSolutionCache:
    def test_put_get_round_trip(self, instance, tmp_path):
        dag, machine = instance
        portfolio = PortfolioScheduler(cache=str(tmp_path))
        schedule = portfolio.schedule_checked(dag, machine)
        sig = instance_signature(dag, machine)
        entry = portfolio.cache.get(sig, portfolio.spec_string(), None)
        assert entry is not None
        assert entry.chosen == portfolio.last_chosen
        assert np.array_equal(entry.schedule.proc, schedule.proc)
        assert np.array_equal(entry.schedule.step, schedule.step)
        assert entry.result.total_cost == schedule.cost()

    def test_version_mismatch_is_a_miss(self, instance, tmp_path):
        dag, machine = instance
        portfolio = PortfolioScheduler(cache=str(tmp_path))
        portfolio.schedule_checked(dag, machine)
        sig = instance_signature(dag, machine)
        path = portfolio.cache.entry_path(sig, portfolio.spec_string(), None)
        payload = json.loads(path.read_text())
        payload["format"] = CACHE_FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        fresh = SolutionCache(tmp_path)
        assert fresh.get(sig, portfolio.spec_string(), None) is None
        assert fresh.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SolutionCache(tmp_path)
        path = cache.entry_path("ab" * 32, "portfolio", None)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get("ab" * 32, "portfolio", None) is None

    def test_lru_serves_repeated_hits(self, instance, tmp_path):
        dag, machine = instance
        portfolio = PortfolioScheduler(cache=str(tmp_path))
        portfolio.schedule_checked(dag, machine)
        sig = instance_signature(dag, machine)
        cache = portfolio.cache
        assert cache.get(sig, portfolio.spec_string(), None) is not None
        # Second get must come from the LRU layer even if the file vanishes.
        path = cache.entry_path(sig, portfolio.spec_string(), None)
        path.unlink()
        assert cache.get(sig, portfolio.spec_string(), None) is not None

    def test_seed_and_spec_separate_keys(self, tmp_path):
        cache = SolutionCache(tmp_path)
        sig = "ab" * 32
        assert cache.key(sig, "portfolio", 0) != cache.key(sig, "portfolio", 1)
        assert cache.key(sig, "portfolio", 0) != cache.key(sig, "portfolio(mode=race)", 0)

    def test_default_cache_dir_hook(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        set_default_cache_dir(None)
        assert default_cache_dir() is None
        try:
            set_default_cache_dir(tmp_path)
            assert default_cache_dir() == str(tmp_path)
            portfolio = PortfolioScheduler()
            assert portfolio.cache is not None
            assert str(portfolio.cache.root) == str(tmp_path)
        finally:
            set_default_cache_dir(None)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert default_cache_dir() == str(tmp_path / "env")


class TestPortfolioScheduler:
    def test_rules_mode_schedules_validly(self, instance):
        dag, machine = instance
        portfolio = PortfolioScheduler()
        schedule = portfolio.schedule_checked(dag, machine)
        assert schedule.is_valid()
        assert portfolio.last_chosen is not None
        assert portfolio.last_rule is not None

    def test_memory_bounded_instance_is_feasible(self, instance):
        dag, machine = instance
        bounded = machine.with_memory_bound(float(dag.total_memory()))
        portfolio = PortfolioScheduler()
        schedule = portfolio.schedule_checked(dag, bounded)
        assert schedule.is_valid()
        assert "greedy-mem" in portfolio.last_chosen

    def test_cache_hit_skips_underlying_scheduler(self, instance, tmp_path, monkeypatch):
        dag, machine = instance
        portfolio = PortfolioScheduler(cache=str(tmp_path))
        first = portfolio.schedule_checked(dag, machine)
        import repro.registry as registry

        def explode(spec):
            raise AssertionError(f"cache hit must not build scheduler {spec!r}")

        monkeypatch.setattr(registry, "make_scheduler", explode)
        again = PortfolioScheduler(cache=str(tmp_path))
        second = again.schedule_checked(dag, machine)
        assert again.last_cache_hit
        assert np.array_equal(first.proc, second.proc)
        assert np.array_equal(first.step, second.step)
        assert second.cost() == first.cost()

    def test_race_mode_end_to_end(self, instance):
        dag, machine = instance
        portfolio = PortfolioScheduler(mode="race", candidates=("bl-est", "etf"))
        schedule = portfolio.schedule_checked(dag, machine)
        assert schedule.is_valid()
        assert portfolio.last_race is not None
        assert portfolio.last_chosen in ("bl-est", "etf")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            PortfolioScheduler(mode="magic")

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            PortfolioScheduler(candidates=())
        with pytest.raises(ValueError):
            make_scheduler("portfolio(candidates=[])")

    def test_rules_budget_limits_delegate(self, instance):
        dag, machine = instance
        portfolio = PortfolioScheduler(budget=5.0)
        portfolio.schedule_checked(dag, machine)
        # The budget must reach the delegate as its wall-clock limit.
        assert "time_limit=5.0" in portfolio.last_chosen

    def test_spec_string_canonical_and_cache_independent(self, tmp_path):
        a = PortfolioScheduler(mode="race", budget=1.0, candidates=("etf", "bl-est"))
        b = PortfolioScheduler(
            mode="race", budget=1.0, candidates=("etf", "bl-est"), cache=str(tmp_path)
        )
        assert a.spec_string() == b.spec_string()
        name, kwargs = parse_scheduler_spec(a.spec_string())
        assert name == "portfolio"
        assert kwargs["mode"] == "race" and kwargs["budget"] == 1.0


class TestRegistryIntegration:
    def test_constructible_from_spec_string(self):
        scheduler = make_scheduler("portfolio")
        assert isinstance(scheduler, PortfolioScheduler)
        scheduler = make_scheduler(
            "portfolio(mode=race, budget=1.5, candidates=[bl-est, etf, hc(init=bspg)])"
        )
        assert scheduler.mode == "race"
        assert scheduler.budget == 1.5
        assert scheduler.candidates == ("bl-est", "etf", "hc(init=bspg)")

    def test_cache_parameter_from_spec_string(self, tmp_path):
        scheduler = make_scheduler(f"portfolio(cache='{tmp_path}')")
        assert scheduler.cache is not None
        assert str(scheduler.cache.root) == str(tmp_path)

    def test_time_budget_maps_to_budget(self):
        from repro.registry import canonical_scheduler_spec

        spec = canonical_scheduler_spec("portfolio(mode=race)", time_budget=2.0)
        name, kwargs = parse_scheduler_spec(spec)
        assert kwargs["budget"] == 2.0

    def test_portfolio_on_larger_cg_instance(self):
        dag = cg_dag(6, k=2, q=0.3, seed=1)
        machine = BspMachine.hierarchical(P=4, delta=2.0, g=2, l=5)
        schedule = make_scheduler("portfolio").schedule_checked(dag, machine)
        assert schedule.is_valid()
