"""Property-based equivalence of :class:`IncrementalCostEngine`.

The engine is the shared incremental-cost substrate of hill climbing,
simulated annealing and the communication hill climber.  These tests drive
it with random cell transactions and assert that its running totals always
equal a from-scratch evaluation through the reference kernels in
:mod:`repro.model.cost` — and that the fused block kernel is *bitwise*
interchangeable with the row kernel it shortcuts.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.localsearch.engine import RECV, SEND, WORK, IncrementalCostEngine
from repro.model.cost import superstep_block_costs, superstep_row_costs


@st.composite
def matrices(draw):
    S = draw(st.integers(min_value=1, max_value=6))
    P = draw(st.sampled_from([1, 2, 4]))
    def mat():
        # Quarter-integer grid: all engine arithmetic on these values is
        # exact in binary64, so undo round-trips can be checked bitwise.
        vals = draw(
            st.lists(
                st.integers(min_value=0, max_value=80), min_size=S * P, max_size=S * P
            )
        )
        return np.array(vals, dtype=np.float64).reshape(S, P) / 4.0
    return mat(), mat(), mat()


@st.composite
def engines(draw):
    work, send, recv = draw(matrices())
    g = draw(st.sampled_from([0.0, 1.0, 2.5]))
    l = draw(st.sampled_from([0.0, 4.0]))
    return IncrementalCostEngine(work, send, recv, g, l)


def _reference_total(engine: IncrementalCostEngine) -> float:
    rows = superstep_row_costs(
        engine.work, engine.send, engine.recv, engine.g, engine.l
    )
    return float(rows.sum())


@st.composite
def transactions(draw, engine):
    count = draw(st.integers(min_value=1, max_value=5))
    cells = []
    for _ in range(count):
        mat = draw(st.sampled_from([WORK, SEND, RECV]))
        row = draw(st.integers(min_value=0, max_value=engine.S + 2))
        col = draw(st.integers(min_value=0, max_value=engine.P - 1))
        val = draw(st.sampled_from([-3.0, -1.0, 0.5, 1.0, 4.0]))
        cells.append((mat, row, col, val))
    return cells


class TestEngineMatchesReferenceKernels:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_random_transactions(self, data):
        """Running total tracks the reference kernel through any apply sequence."""
        engine = data.draw(engines(), label="engine")
        assert engine.total_cost == pytest.approx(_reference_total(engine))
        for _ in range(data.draw(st.integers(min_value=1, max_value=10), label="txns")):
            cells = data.draw(transactions(engine), label="cells")
            predicted = engine.total_cost + engine.probe_cells(cells)
            applied = engine.apply_cells(cells)
            # probe_cells promised exactly what apply_cells then delivered.
            assert applied == pytest.approx(predicted)
            assert engine.total_cost == pytest.approx(_reference_total(engine))
            assert engine.total_cost == pytest.approx(engine.recompute_total())

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_undo_round_trip(self, data):
        """undo() restores matrices, per-row costs and the total exactly."""
        engine = data.draw(engines(), label="engine")
        snapshot_mats = engine.mats.copy()
        snapshot_cost = engine.step_cost.copy()
        snapshot_total = engine.total_cost
        depth = data.draw(st.integers(min_value=1, max_value=6), label="depth")
        for _ in range(depth):
            engine.apply_cells(data.draw(transactions(engine), label="cells"))
        for _ in range(depth):
            engine.undo()
        assert np.array_equal(engine.mats[:, : snapshot_mats.shape[1]], snapshot_mats)
        assert engine.step_cost[: snapshot_cost.size] == pytest.approx(snapshot_cost)
        assert engine.total_cost == pytest.approx(snapshot_total)
        assert engine.journal_depth == 0
        with pytest.raises(IndexError):
            engine.undo()

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_block_kernel_bitwise_equals_row_kernel(self, data):
        """superstep_block_costs is bit-for-bit superstep_row_costs, fused."""
        work, send, recv = data.draw(matrices(), label="mats")
        g = data.draw(st.sampled_from([0.0, 1.0, 2.5, 7.0]), label="g")
        l = data.draw(st.sampled_from([0.0, 1.0, 5.0]), label="l")
        blocks = np.stack([work, send, recv])
        fused = superstep_block_costs(blocks, g, l)
        rows = superstep_row_costs(work, send, recv, g, l)
        assert np.array_equal(fused, rows)

    def test_step_cost_list_mirror_stays_in_sync(self):
        engine = IncrementalCostEngine(
            np.ones((2, 2)), np.zeros((2, 2)), np.zeros((2, 2)), 1.0, 1.0
        )
        engine.apply_cells([(SEND, 1, 0, 3.0), (RECV, 4, 1, 2.0)])
        assert engine.step_cost_list == engine.step_cost.tolist()
        engine.undo()
        assert engine.step_cost_list == engine.step_cost.tolist()

    def test_capacity_growth_preserves_totals(self):
        engine = IncrementalCostEngine(
            np.ones((1, 2)), np.zeros((1, 2)), np.zeros((1, 2)), 2.0, 3.0
        )
        before = engine.total_cost
        engine.ensure_capacity(25)
        assert engine.S >= 26
        assert engine.total_cost == before
        assert engine.total_cost == pytest.approx(engine.recompute_total())


class TestNegativeRowValidation:
    """Regression: a negative row must raise, not wrap to the last superstep.

    numpy indexing would silently apply the delta to row ``S - 1`` while
    ``refresh_rows`` filters negatives out — leaving ``total_cost`` stale
    relative to the matrices, the exact desynchronization the incremental
    engine exists to prevent (and ``probe_cells`` raised an incidental
    ``KeyError`` on the same input).
    """

    def _engine(self) -> IncrementalCostEngine:
        return IncrementalCostEngine(
            np.ones((3, 2)), np.zeros((3, 2)), np.zeros((3, 2)), 1.0, 2.0
        )

    def test_apply_cells_rejects_negative_row_and_stays_consistent(self):
        engine = self._engine()
        mats_before = engine.mats.copy()
        total_before = engine.total_cost
        depth_before = engine.journal_depth
        with pytest.raises(ValueError, match="negative superstep row"):
            engine.apply_cells([(WORK, 1, 0, 2.0), (SEND, -1, 0, 5.0)])
        # The failed transaction must leave no trace: no matrix write, no
        # journal entry, totals still equal to a from-scratch recompute.
        assert np.array_equal(engine.mats, mats_before)
        assert engine.total_cost == total_before
        assert engine.journal_depth == depth_before
        assert engine.total_cost == pytest.approx(engine.recompute_total())

    def test_probe_cells_raises_value_error_not_key_error(self):
        engine = self._engine()
        with pytest.raises(ValueError, match="negative superstep row"):
            engine.probe_cells([(RECV, -2, 1, 1.0)])
        # Valid probes still work after the rejected one.
        assert engine.probe_cells([(WORK, 0, 0, 1.0)]) == pytest.approx(1.0)

    def test_undo_unaffected_by_rejected_transaction(self):
        engine = self._engine()
        engine.apply_cells([(WORK, 0, 0, 4.0)])
        with pytest.raises(ValueError):
            engine.apply_cells([(WORK, -1, 0, 1.0)])
        engine.undo()  # undoes the *valid* transaction, nothing else
        assert engine.total_cost == pytest.approx(engine.recompute_total())
        with pytest.raises(IndexError):
            engine.undo()
