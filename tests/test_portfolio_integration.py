"""Acceptance tests: the portfolio reachable from every entry point.

ISSUE 5 acceptance criteria: ``portfolio(...)`` must be constructible from a
spec string, ProblemSpec JSON, ``repro.api.solve`` and the CLI; a warm-cache
re-solve must return a byte-identical :class:`~repro.spec.SolveResult`
without invoking the underlying scheduler; and the rules-mode portfolio must
cost no more than the worst single registered heuristic on every
tiny-dataset instance.
"""

import json

import pytest

from repro import api
from repro.cli import main
from repro.experiments.datasets import build_dataset
from repro.model.machine import BspMachine
from repro.spec import DagSpec, MachineSpec, ProblemSpec, SolveRequest


@pytest.fixture
def problem():
    return ProblemSpec(
        dag=DagSpec.generator("spmv", n=7, q=0.3, seed=2),
        machine=MachineSpec(P=4, g=2, l=5),
    )


class TestEntryPoints:
    def test_solve_request_json_round_trip(self, problem):
        request = SolveRequest(spec=problem, scheduler="portfolio")
        rebuilt = SolveRequest.from_json(request.to_json())
        assert rebuilt.scheduler == "portfolio"
        result = api.solve(rebuilt)
        assert result.valid
        assert result.scheduler == "portfolio"
        assert result.total_cost > 0

    def test_solve_many_with_portfolio(self, problem):
        requests = [
            SolveRequest(spec=problem, scheduler="portfolio"),
            SolveRequest(spec=problem, scheduler="cilk"),
        ]
        results = api.solve_many(requests)
        assert all(r.valid for r in results)
        serial = [api.solve(r) for r in requests]
        assert [r.to_json() for r in results] == [r.to_json() for r in serial]

    def test_cli_schedule_with_portfolio_and_cache(self, problem, tmp_path, capsys):
        spec_file = tmp_path / "problem.json"
        spec_file.write_text(problem.to_json())
        code = main(
            [
                "schedule",
                "--spec", str(spec_file),
                "--scheduler", "portfolio",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        assert "portfolio schedule" in capsys.readouterr().out
        # The run populated the cache through the default-cache-dir hook.
        assert any((tmp_path / "cache").rglob("*.json"))

    def test_cli_portfolio_explain(self, problem, tmp_path, capsys):
        spec_file = tmp_path / "problem.json"
        spec_file.write_text(problem.to_json())
        assert main(["portfolio-explain", "--spec", str(spec_file)]) == 0
        out = capsys.readouterr().out
        assert "signature" in out
        assert "num_nodes" in out and "effective_ccr" in out
        assert "scheduler :" in out and "rule" in out

    def test_cli_list_schedulers(self, capsys):
        assert main(["list-schedulers"]) == 0
        out = capsys.readouterr().out
        assert "portfolio" in out and "multilevel" in out
        assert "det" in out and "parameters:" in out

    def test_cli_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_sweep_portfolio_column(self, problem):
        from repro.experiments.sweep import sweep

        dag = problem.build_dag()
        records = sweep(
            {"tiny": [dag]},
            [MachineSpec(P=4, g=2, l=5)],
            baseline="cilk",
            scheduler_specs=["cilk", "portfolio"],
        )
        algorithms = {r.algorithm for r in records}
        assert "portfolio" in algorithms and "cilk" in algorithms
        portfolio_records = [r for r in records if r.algorithm == "portfolio"]
        assert all(r.cost > 0 and r.ratio_to_baseline > 0 for r in portfolio_records)


class TestWarmCacheAcceptance:
    def test_warm_resolve_is_byte_identical_without_rescheduling(
        self, problem, tmp_path, monkeypatch
    ):
        cache_dir = tmp_path / "cache"
        request = SolveRequest(
            spec=problem, scheduler=f"portfolio(cache='{cache_dir}')"
        )
        cold = api.solve(request)
        assert cold.valid

        # Any attempt to build or run an underlying scheduler now fails the
        # test: the warm solve must come entirely from the cache.
        import repro.portfolio.selector as selector_module

        def explode(*args, **kwargs):
            raise AssertionError("warm cache re-solve must not select/solve")

        monkeypatch.setattr(selector_module, "race", explode)
        monkeypatch.setattr(selector_module, "select_scheduler", explode)
        warm = api.solve(request)
        assert warm.to_json() == cold.to_json()
        assert json.dumps(warm.to_dict(), sort_keys=True) == json.dumps(
            cold.to_dict(), sort_keys=True
        )

    def test_batch_cli_cache_round_trip(self, problem, tmp_path, capsys):
        requests_file = tmp_path / "requests.jsonl"
        cache_dir = tmp_path / "cache"
        requests_file.write_text(
            SolveRequest(spec=problem, scheduler="portfolio").to_json() + "\n"
        )
        out1 = tmp_path / "first.jsonl"
        out2 = tmp_path / "second.jsonl"
        assert main(["batch", str(requests_file), "--out", str(out1),
                     "--cache-dir", str(cache_dir)]) == 0
        assert main(["batch", str(requests_file), "--out", str(out2),
                     "--cache-dir", str(cache_dir)]) == 0
        assert out1.read_bytes() == out2.read_bytes()


class TestRulesQualityAcceptance:
    def test_rules_never_worse_than_worst_heuristic_on_tiny(self):
        """Portfolio(rules) cost <= the worst registered heuristic, per instance."""
        from repro.registry import make_scheduler

        heuristics = ["cilk", "hdagg", "bl-est", "etf", "bspg", "source", "level-rr"]
        machine = BspMachine(P=4, g=2.0, l=5.0)
        portfolio = make_scheduler("portfolio")
        for dag in build_dataset("tiny", scale="smoke", seed=11, max_instances=6):
            worst = max(
                make_scheduler(h).schedule_checked(dag, machine).cost()
                for h in heuristics
            )
            cost = portfolio.schedule_checked(dag, machine).cost()
            assert cost <= worst, (
                f"portfolio chose {portfolio.last_chosen} on {dag.name}: "
                f"{cost} > worst heuristic {worst}"
            )


class TestBatchExitCode:
    def test_batch_reports_invalid_requests_nonzero(self, tmp_path, capsys):
        good = ProblemSpec(
            dag=DagSpec.generator("spmv", n=6, q=0.3, seed=1),
            machine=MachineSpec(P=2, g=2, l=3),
        )
        # 2 * 3.0 is far below the total memory weight: no scheduler can
        # produce a feasible schedule, so this request must come back invalid.
        bad = ProblemSpec(
            dag=DagSpec.generator("spmv", n=6, q=0.3, seed=1),
            machine=MachineSpec(P=2, g=2, l=3, memory_bound=3.0),
        )
        requests_file = tmp_path / "requests.jsonl"
        requests_file.write_text(
            SolveRequest(spec=good, scheduler="cilk").to_json() + "\n"
            + SolveRequest(spec=bad, scheduler="cilk").to_json() + "\n"
        )
        out = tmp_path / "results.jsonl"
        code = main(["batch", str(requests_file), "--out", str(out)])
        assert code == 1
        captured = capsys.readouterr()
        assert "batch summary: 1/2 ok, 1 invalid" in captured.err
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 2

        def strict(text):
            # Reject Infinity/NaN literals: batch output must be strict JSON.
            def no_const(name):
                raise AssertionError(f"non-compliant JSON constant {name!r} in output")

            return json.loads(text, parse_constant=no_const)

        first, second = strict(lines[0]), strict(lines[1])
        assert first["valid"] is True
        assert second["valid"] is False
        assert second["total_cost"] is None  # infinite cost serializes as null
        from repro.spec import SolveResult

        assert SolveResult.from_json(lines[1]).total_cost == float("inf")

    def test_batch_survives_unknown_scheduler(self, tmp_path, capsys):
        """A request that cannot even be constructed must not sink the batch."""
        good = ProblemSpec(
            dag=DagSpec.generator("spmv", n=6, q=0.3, seed=1),
            machine=MachineSpec(P=2, g=2, l=3),
        )
        requests_file = tmp_path / "requests.jsonl"
        requests_file.write_text(
            SolveRequest(spec=good, scheduler="no-such-scheduler").to_json() + "\n"
            + SolveRequest(spec=good, scheduler="portfolio(mode=rules, candidates=[])").to_json() + "\n"
            + SolveRequest(spec=good, scheduler="cilk").to_json() + "\n"
        )
        out = tmp_path / "results.jsonl"
        code = main(["batch", str(requests_file), "--out", str(out)])
        assert code == 1
        assert "batch summary: 1/3 ok, 2 invalid" in capsys.readouterr().err
        lines = [json.loads(l) for l in out.read_text().strip().splitlines()]
        assert [l["valid"] for l in lines] == [False, False, True]
        assert "no-such-scheduler" in lines[0]["scheduler"]
        assert lines[2]["total_cost"] > 0

    def test_batch_all_valid_exits_zero(self, tmp_path, capsys):
        good = ProblemSpec(
            dag=DagSpec.generator("spmv", n=6, q=0.3, seed=1),
            machine=MachineSpec(P=2, g=2, l=3),
        )
        requests_file = tmp_path / "requests.jsonl"
        requests_file.write_text(
            SolveRequest(spec=good, scheduler="cilk").to_json() + "\n"
        )
        assert main(["batch", str(requests_file)]) == 0
        assert "batch summary: 1/1 ok, 0 invalid" in capsys.readouterr().err


class TestStrictResumeContract:
    def test_strict_resume_reruns_invalid_tolerant_records(self, tmp_path):
        """Resuming a tolerant checkpoint strictly must raise, not return valid=False."""
        from repro.scheduler import SchedulingError

        bad = ProblemSpec(
            dag=DagSpec.generator("spmv", n=6, q=0.3, seed=1),
            machine=MachineSpec(P=2, g=2, l=3, memory_bound=3.0),
        )
        requests = [SolveRequest(spec=bad, scheduler="cilk")]
        checkpoint = tmp_path / "cp.jsonl"
        tolerant = api.solve_many(requests, checkpoint=checkpoint, tolerant=True)
        assert not tolerant[0].valid
        with pytest.raises(SchedulingError):
            api.solve_many(requests, checkpoint=checkpoint, resume=True)


class TestIterCheckpoint:
    def test_iter_checkpoint_streams_records(self, tmp_path):
        from repro.experiments.persistence import (
            CheckpointWriter,
            iter_checkpoint,
            read_checkpoint,
        )

        path = tmp_path / "ckpt.jsonl"
        with CheckpointWriter(path) as writer:
            for k in range(5):
                writer.append({"item": k})
        # Truncated trailing line (simulated crash) is skipped by both.
        with path.open("a") as handle:
            handle.write('{"item": 5, "cost":')
        iterator = iter_checkpoint(path)
        assert next(iterator) == {"item": 0}
        assert list(iterator) == [{"item": k} for k in range(1, 5)]
        assert read_checkpoint(path) == [{"item": k} for k in range(5)]

    def test_resume_uses_streaming_reader(self, tmp_path, monkeypatch):
        """ParallelRunner.execute resumes through iter_checkpoint, not read_checkpoint."""
        import repro.experiments.persistence as persistence
        from repro.experiments.runner import ParallelRunner, WorkItem
        from repro.graphs.fine import spmv_dag

        dag = spmv_dag(5, q=0.3, seed=1)
        machine = BspMachine(P=2, g=1, l=2)
        items = [
            WorkItem(index=0, instance=0, dag=dag, machine=machine, scheduler="cilk")
        ]
        checkpoint = tmp_path / "resume.jsonl"
        ParallelRunner(1, checkpoint=str(checkpoint)).execute(items)

        def no_read(path):
            raise AssertionError("resume must stream via iter_checkpoint")

        monkeypatch.setattr(persistence, "read_checkpoint", no_read)
        results = ParallelRunner(
            1, checkpoint=str(checkpoint), resume=True
        ).execute(items)
        assert results[0].costs
