"""Tests for the parameter-sweep utility and its CSV export."""

import csv
import math

import numpy as np
import pytest

from repro.experiments.sweep import MachineSpec, ratio_to_baseline, records_to_csv, sweep
from repro.graphs.fine import spmv_dag
from repro.model.machine import BspMachine
from repro.pipeline.config import PipelineConfig


@pytest.fixture(scope="module")
def tiny_grid_records():
    datasets = {"tiny": [spmv_dag(5, q=0.3, seed=1)]}
    machines = [MachineSpec(P=2, g=1, l=3), MachineSpec(P=2, g=3, l=3, delta=2.0)]
    return sweep(
        datasets,
        machines,
        pipeline_config=PipelineConfig.fast(),
        baselines_only=True,
    )


class TestMachineSpec:
    def test_uniform_and_numa_builds(self):
        assert MachineSpec(P=4, g=2).build().is_uniform
        numa = MachineSpec(P=4, g=2, delta=3.0).build()
        assert not numa.is_uniform
        assert numa.coefficient(0, 2) == 3.0

    def test_describe_round_trip(self):
        meta = MachineSpec(P=8, g=1, l=5, delta=4.0).describe()
        assert meta == {"P": 8, "g": 1, "l": 5, "delta": 4.0, "memory_bound": 0.0}

    def test_describe_memory_bound(self):
        assert MachineSpec(P=2, memory_bound=16).describe()["memory_bound"] == 16.0
        # Per-processor bounds are summarized by the binding (smallest) one.
        assert MachineSpec(P=2, memory_bound=(8, 16)).describe()["memory_bound"] == 8.0


class TestSweep:
    def test_one_record_per_algorithm_and_machine(self, tiny_grid_records):
        records = tiny_grid_records
        # baselines_only records Cilk, HDagg, BL-EST, ETF and Trivial.
        algorithms = {r.algorithm for r in records}
        assert {"Cilk", "HDagg", "Trivial"} <= algorithms
        machines = {(r.P, r.g, r.delta) for r in records}
        assert len(machines) == 2

    def test_baseline_ratio_is_one_for_baseline(self, tiny_grid_records):
        for record in tiny_grid_records:
            if record.algorithm == "Cilk":
                assert record.ratio_to_baseline == pytest.approx(1.0)
            assert record.cost > 0

    def test_full_pipeline_records_include_stages(self):
        datasets = {"tiny": [spmv_dag(5, q=0.3, seed=2)]}
        records = sweep(
            datasets,
            [MachineSpec(P=2, g=2, l=3)],
            pipeline_config=PipelineConfig.fast(),
            include_list_baselines=False,
        )
        algorithms = {r.algorithm for r in records}
        assert {"Init", "HCcs", "ILP"} <= algorithms
        ours = next(r for r in records if r.algorithm == "ILP")
        assert ours.ratio_to_baseline <= 1.2


class TestBaselineResolution:
    def test_lowercase_baseline_matches_canonical_label(self):
        # PR 2 made registry labels case-insensitive; the sweep must follow.
        datasets = {"tiny": [spmv_dag(5, q=0.3, seed=1)]}
        machines = [MachineSpec(P=2, g=1, l=3)]
        lowered = sweep(datasets, machines, baseline="cilk", baselines_only=True)
        canonical = sweep(datasets, machines, baseline="Cilk", baselines_only=True)
        assert [r.ratio_to_baseline for r in lowered] == [
            r.ratio_to_baseline for r in canonical
        ]
        assert not any(math.isnan(r.ratio_to_baseline) for r in lowered)

    def test_missing_baseline_raises_value_error(self):
        datasets = {"tiny": [spmv_dag(4, q=0.3, seed=1)]}
        with pytest.raises(ValueError, match="not measured"):
            sweep(
                datasets,
                [MachineSpec(P=2, g=1, l=3)],
                baseline="no-such-algorithm",
                baselines_only=True,
            )

    def test_zero_cost_baseline_yields_inf_not_nan(self):
        ratio = ratio_to_baseline({"Free": 0.0, "Paid": 7.5}, "Paid", "free")
        assert ratio == float("inf")
        # An equally free algorithm is on par, not NaN.
        assert ratio_to_baseline({"Free": 0.0, "AlsoFree": 0.0}, "alsofree", "Free") == 1.0

    def test_missing_algorithm_raises(self):
        with pytest.raises(KeyError):
            ratio_to_baseline({"Cilk": 3.0}, "nope", "Cilk")

    def test_instance_result_ratio_is_case_insensitive(self):
        from repro.experiments.runner import run_instance

        result = run_instance(
            spmv_dag(5, q=0.3, seed=1), BspMachine(P=2, g=1, l=3), baselines_only=True
        )
        assert result.ratio("hdagg", "cilk") == pytest.approx(
            result.ratio("HDagg", "Cilk")
        )
        with pytest.raises(KeyError):
            result.ratio("unknown-label")


class TestMemoryBoundGrid:
    def test_memory_dimension_with_scheduler_specs(self):
        dag = spmv_dag(6, q=0.3, seed=2)
        bound = float(np.ceil(dag.total_memory() / 2) * 1.4)
        records = sweep(
            {"tiny": [dag]},
            [
                MachineSpec(P=2, g=1, l=3),
                MachineSpec(P=2, g=1, l=3, memory_bound=bound),
            ],
            baseline="greedy-mem",
            scheduler_specs=["greedy-mem", "hc(init=greedy-mem, max_moves=50)"],
        )
        bounds = {r.memory_bound for r in records}
        assert bounds == {0.0, bound}
        assert {r.algorithm for r in records} == {
            "greedy-mem",
            "hc(init=greedy-mem, max_moves=50)",
        }
        for record in records:
            assert record.cost > 0
            assert not math.isnan(record.ratio_to_baseline)

    def test_memory_bound_column_in_csv(self, tmp_path):
        dag = spmv_dag(5, q=0.3, seed=3)
        records = sweep(
            {"tiny": [dag]},
            [MachineSpec(P=2, g=1, l=3, memory_bound=float(dag.total_memory()))],
            baseline="greedy-mem",
            scheduler_specs=["greedy-mem"],
        )
        path = tmp_path / "mem.csv"
        records_to_csv(records, path)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert all(float(row["memory_bound"]) == dag.total_memory() for row in rows)


class TestCsvExport:
    def test_round_trip(self, tiny_grid_records, tmp_path):
        path = tmp_path / "sweep.csv"
        records_to_csv(tiny_grid_records, path)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(tiny_grid_records)
        assert set(rows[0]) == set(tiny_grid_records[0].as_dict())

    def test_empty_records_still_write_header(self, tmp_path):
        path = tmp_path / "empty.csv"
        records_to_csv([], path)
        header = path.read_text().strip().splitlines()[0]
        assert "algorithm" in header
