"""Tests for the parameter-sweep utility and its CSV export."""

import csv

import pytest

from repro.experiments.sweep import MachineSpec, records_to_csv, sweep
from repro.graphs.fine import spmv_dag
from repro.model.machine import BspMachine
from repro.pipeline.config import PipelineConfig


@pytest.fixture(scope="module")
def tiny_grid_records():
    datasets = {"tiny": [spmv_dag(5, q=0.3, seed=1)]}
    machines = [MachineSpec(P=2, g=1, l=3), MachineSpec(P=2, g=3, l=3, delta=2.0)]
    return sweep(
        datasets,
        machines,
        pipeline_config=PipelineConfig.fast(),
        baselines_only=True,
    )


class TestMachineSpec:
    def test_uniform_and_numa_builds(self):
        assert MachineSpec(P=4, g=2).build().is_uniform
        numa = MachineSpec(P=4, g=2, delta=3.0).build()
        assert not numa.is_uniform
        assert numa.coefficient(0, 2) == 3.0

    def test_describe_round_trip(self):
        meta = MachineSpec(P=8, g=1, l=5, delta=4.0).describe()
        assert meta == {"P": 8, "g": 1, "l": 5, "delta": 4.0}


class TestSweep:
    def test_one_record_per_algorithm_and_machine(self, tiny_grid_records):
        records = tiny_grid_records
        # baselines_only records Cilk, HDagg, BL-EST, ETF and Trivial.
        algorithms = {r.algorithm for r in records}
        assert {"Cilk", "HDagg", "Trivial"} <= algorithms
        machines = {(r.P, r.g, r.delta) for r in records}
        assert len(machines) == 2

    def test_baseline_ratio_is_one_for_baseline(self, tiny_grid_records):
        for record in tiny_grid_records:
            if record.algorithm == "Cilk":
                assert record.ratio_to_baseline == pytest.approx(1.0)
            assert record.cost > 0

    def test_full_pipeline_records_include_stages(self):
        datasets = {"tiny": [spmv_dag(5, q=0.3, seed=2)]}
        records = sweep(
            datasets,
            [MachineSpec(P=2, g=2, l=3)],
            pipeline_config=PipelineConfig.fast(),
            include_list_baselines=False,
        )
        algorithms = {r.algorithm for r in records}
        assert {"Init", "HCcs", "ILP"} <= algorithms
        ours = next(r for r in records if r.algorithm == "ILP")
        assert ours.ratio_to_baseline <= 1.2


class TestCsvExport:
    def test_round_trip(self, tiny_grid_records, tmp_path):
        path = tmp_path / "sweep.csv"
        records_to_csv(tiny_grid_records, path)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(tiny_grid_records)
        assert set(rows[0]) == set(tiny_grid_records[0].as_dict())

    def test_empty_records_still_write_header(self, tmp_path):
        path = tmp_path / "empty.csv"
        records_to_csv([], path)
        header = path.read_text().strip().splitlines()[0]
        assert "algorithm" in header
