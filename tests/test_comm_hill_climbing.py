"""Tests for HCcs: hill climbing on the communication schedule."""

import numpy as np
import pytest

from repro.baselines.hdagg import HDaggScheduler
from repro.graphs.dag import ComputationalDAG
from repro.localsearch.comm_hill_climbing import (
    CommScheduleImprover,
    CommScheduleState,
    comm_hill_climb,
)
from repro.model.machine import BspMachine
from repro.model.schedule import BspSchedule


def spread_example():
    """A communication schedule that the lazy rule handles badly.

    Values 0 (from p0) and 1 (from p1) are both needed by p2 in superstep 2;
    value 2 (from p0, volume 5) is needed by p1 in superstep 1, pinning an
    h-relation of 5 in phase 0.  The lazy schedule sends values 0 and 1 in
    phase 1 (h-relation 8 there, 13 in total); moving value 1's transfer into
    phase 0 hides it under the existing h-relation and drops the total to 9.
    """
    dag = ComputationalDAG(
        5,
        [(0, 3), (1, 3), (2, 4)],
        work=[1, 1, 1, 1, 1],
        comm=[4, 4, 5, 1, 1],
    )
    machine = BspMachine(P=3, g=2, l=1)
    proc = np.array([0, 1, 0, 2, 1])
    step = np.array([0, 0, 0, 2, 1])
    return BspSchedule(dag, machine, proc, step)


class TestCommState:
    def test_initial_cost_matches_lazy_schedule(self, layered_dag, machine4):
        sched = HDaggScheduler().schedule(layered_dag, machine4)
        state = CommScheduleState(sched)
        lazy_comm_sum = float(sched.cost_breakdown().comm_per_step.sum())
        assert state.total_comm_cost() == pytest.approx(lazy_comm_sum)

    def test_move_updates_cost_consistently(self):
        sched = spread_example()
        state = CommScheduleState(sched)
        (u, q) = state.transfers[0]
        lo, hi = state.window[(u, q)]
        if lo < hi:
            state.move(u, q, lo)
            rebuilt = sched.copy()
            rebuilt.comm = state.to_comm_schedule()
            assert rebuilt.is_valid()
            expected = float(rebuilt.cost_breakdown().comm_per_step.sum())
            assert state.total_comm_cost() == pytest.approx(expected)

    def test_windows_are_sound(self, spmv_small, machine4):
        sched = HDaggScheduler().schedule(spmv_small, machine4)
        state = CommScheduleState(sched)
        for (u, q), (lo, hi) in state.window.items():
            assert lo <= hi
            assert lo >= int(sched.step[u])


class TestCommHillClimb:
    def test_never_worse_and_valid(self, all_test_dags, machine4):
        for dag in all_test_dags:
            sched = HDaggScheduler().schedule(dag, machine4)
            result = comm_hill_climb(sched)
            assert result.final_cost <= result.initial_cost + 1e-9
            assert result.schedule.is_valid()
            assert result.schedule.comm is not None

    def test_spreads_conflicting_transfers(self):
        sched = spread_example()
        before = sched.cost()  # lazy: h-relations 5 + 8 = 13
        result = comm_hill_climb(sched)
        assert result.moves_applied >= 1
        assert result.final_cost < before
        # Optimal communication schedule: h-relations 5 + 4 = 9.
        assert float(result.schedule.cost_breakdown().comm_per_step.sum()) == pytest.approx(9.0)

    def test_assignment_is_untouched(self, exp_small, machine4):
        sched = HDaggScheduler().schedule(exp_small, machine4)
        result = comm_hill_climb(sched)
        assert np.array_equal(result.schedule.proc, sched.proc)
        assert np.array_equal(result.schedule.step, sched.step)

    def test_no_transfers_needed(self, chain_dag, machine4):
        sched = BspSchedule.trivial(chain_dag, machine4)
        result = comm_hill_climb(sched)
        assert result.final_cost == pytest.approx(sched.cost())
        assert len(result.schedule.comm) == 0

    def test_max_moves_budget(self, spmv_small, machine4):
        sched = HDaggScheduler().schedule(spmv_small, machine4)
        result = comm_hill_climb(sched, max_moves=2)
        assert result.moves_applied <= 2

    def test_improver_wrapper(self, exp_small, numa_machine):
        sched = HDaggScheduler().schedule(exp_small, numa_machine)
        improved = CommScheduleImprover().improve(sched)
        assert improved.is_valid()
        assert improved.cost() <= sched.cost() + 1e-9

    def test_respects_explicit_starting_gamma(self):
        sched = spread_example().with_lazy_comm()
        result = comm_hill_climb(sched)
        assert result.schedule.is_valid()
        assert result.final_cost <= sched.cost() + 1e-9
