"""Tests for the solve daemon: protocol, worker pool, server, client, CLI.

The server under test runs in-process (ephemeral port, threads), so test
schedulers registered here are visible to its workers.  Coverage:

* wire protocol framing and error-response shapes,
* byte-identity of served results with ``repro.api.solve``,
* warm-cache hits (counters increase, results identical),
* structured backpressure (``queue-full`` + ``retry_after``) and per-request
  timeouts — never a dropped connection,
* graceful drain: everything accepted before shutdown is answered,
* the thin client's retry/reassembly logic and the CLI subcommands.
"""

import io
import json
import socket
import time

import pytest

from repro import api
from repro.cli import main
from repro.registry import available_schedulers, make_scheduler, register_scheduler
from repro.scheduler import Scheduler, SchedulingError
from repro.serve import protocol
from repro.serve.client import (
    ServeError,
    ServiceClient,
    ServiceUnavailable,
    connect,
    parse_address,
)
from repro.serve.pool import Ticket, WorkerPool, percentiles
from repro.serve.server import ServeConfig, SolveServer
from repro.spec import DagSpec, MachineSpec, ProblemSpec, SolveRequest


# ----------------------------------------------------------------------
# Test-only schedulers (registered once; the registry is process-global)
# ----------------------------------------------------------------------
if "test-sleepy" not in available_schedulers():

    @register_scheduler(
        "test-sleepy",
        description="test-only: sleeps, then delegates to etf",
        deterministic=False,
        numa_aware=False,
    )
    def _make_sleepy(delay: float = 0.2) -> Scheduler:
        class Sleepy(Scheduler):
            name = "test-sleepy"

            def schedule(self, dag, machine):
                time.sleep(delay)
                return make_scheduler("etf").schedule(dag, machine)

        return Sleepy()

    @register_scheduler(
        "test-explode",
        description="test-only: always raises SchedulingError",
        deterministic=True,
        numa_aware=False,
    )
    def _make_explode() -> Scheduler:
        class Explode(Scheduler):
            name = "test-explode"

            def schedule(self, dag, machine):
                raise SchedulingError("test scheduler always fails")

        return Explode()


def request_for(seed: int = 0, scheduler: str = "etf", n: int = 8) -> SolveRequest:
    return SolveRequest(
        spec=ProblemSpec(
            dag=DagSpec.generator("spmv", n=n, q=0.3, seed=seed),
            machine=MachineSpec(P=2, g=2, l=3),
        ),
        scheduler=scheduler,
    )


@pytest.fixture
def server(tmp_path):
    config = ServeConfig(port=0, jobs=2, cache_dir=str(tmp_path / "cache"))
    with SolveServer(config) as srv:
        yield srv


@pytest.fixture
def client(server):
    with connect(server.address) as c:
        yield c


class RawConnection:
    """Raw NDJSON socket for tests that need to send malformed lines."""

    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=30.0)
        self.rfile = self.sock.makefile("rb")

    def send_line(self, data: bytes) -> None:
        self.sock.sendall(data)

    def send(self, message) -> None:
        self.send_line(protocol.encode(message))

    def recv(self):
        return protocol.decode(self.rfile.readline())

    def close(self) -> None:
        self.rfile.close()
        self.sock.close()


# ----------------------------------------------------------------------
# Protocol framing
# ----------------------------------------------------------------------
class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = protocol.solve_message({"a": 1}, id=7, timeout=2.5)
        line = protocol.encode(message)
        assert line.endswith(b"\n") and b"\n" not in line[:-1]
        assert protocol.decode(line) == message

    def test_encode_is_deterministic(self):
        a = protocol.encode({"b": 1, "a": 2})
        b = protocol.encode({"a": 2, "b": 1})
        assert a == b  # sorted keys: pipelined framing never depends on dict order

    def test_decode_rejects_garbage(self):
        for bad in (b"", b"   \n", b"not json\n", b"[1, 2]\n", b'"string"\n'):
            with pytest.raises(protocol.ProtocolError):
                protocol.decode(bad)

    def test_decode_rejects_non_utf8(self):
        with pytest.raises(protocol.ProtocolError, match="UTF-8"):
            protocol.decode(b"\xff\xfe{}\n")

    def test_decode_rejects_oversized_line(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_LINE_BYTES", 16)
        with pytest.raises(protocol.ProtocolError, match="exceeds"):
            protocol.decode(b'{"op": "solve", "id": 1, "request": {}}\n')

    def test_read_messages_until_eof(self):
        stream = io.BytesIO(
            protocol.encode({"op": "health", "id": 1})
            + protocol.encode({"op": "stats", "id": 2})
        )
        ops = [m["op"] for m in protocol.read_messages(stream)]
        assert ops == ["health", "stats"]

    def test_error_response_shape(self):
        response = protocol.error_response(
            3, protocol.E_QUEUE_FULL, "full", retry_after=0.25
        )
        assert response == {
            "id": 3,
            "ok": False,
            "error": {"code": "queue-full", "message": "full", "retry_after": 0.25},
        }

    def test_error_response_embeds_result(self):
        response = protocol.error_response(
            1, protocol.E_SCHEDULER, "boom", result={"valid": False}
        )
        assert response["error"]["result"] == {"valid": False}

    def test_queue_full_is_the_only_retryable_code(self):
        assert protocol.RETRYABLE_CODES == {protocol.E_QUEUE_FULL}

    def test_percentiles_nearest_rank(self):
        assert percentiles([]) == {"p50": 0.0, "p90": 0.0, "p99": 0.0}
        values = [float(k) for k in range(1, 101)]
        stats = percentiles(values)
        assert stats["p50"] == 50.0
        assert stats["p90"] == 90.0
        assert stats["p99"] == 99.0


class TestTicket:
    def test_responds_exactly_once(self):
        sent = []
        ticket = Ticket(request_for(), rid=1, send=sent.append)
        assert ticket.respond({"id": 1}) is True
        assert ticket.respond({"id": 1, "late": True}) is False
        assert sent == [{"id": 1}]
        assert ticket.done.is_set()

    def test_submit_before_start_is_refused(self):
        pool = WorkerPool(jobs=1, queue_size=1)
        ticket = Ticket(request_for(), rid=1, send=lambda m: None)
        assert pool.submit(ticket) == "stopped"


# ----------------------------------------------------------------------
# Server basics: health, stats, solving
# ----------------------------------------------------------------------
class TestServerBasics:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["protocol"] == protocol.PROTOCOL
        assert health["workers"] == 2

    def test_stats_shape(self, client):
        stats = client.stats(disk=True)
        assert stats["workers"] == 2
        assert stats["queue_size"] == 64
        assert stats["draining"] is False
        assert set(stats["requests"]) == {"received", "served", "cache_hits", "abandoned"}
        assert {"p50_ms", "p90_ms", "p99_ms", "mean_ms", "count"} <= set(stats["latency"])
        # disk=True folds the on-disk totals into the cache section.
        assert {"hits", "misses", "stores", "entries", "bytes", "shards"} <= set(
            stats["cache"]
        )

    def test_solve_matches_api_bytewise(self, client):
        request = request_for(seed=3)
        served = client.solve(request)
        local = api.solve(request)
        assert served.to_json() == local.to_json()

    def test_solve_many_matches_api_and_preserves_order(self, client):
        requests = [request_for(seed=s, scheduler=spec) for s, spec in
                    enumerate(["etf", "bl-est", "hdagg", "etf"])]
        served = client.solve_many(requests)
        local = api.solve_many(requests)
        assert [r.to_json() for r in served] == [r.to_json() for r in local]

    def test_solve_many_streams_results_via_on_result(self, client):
        requests = [request_for(seed=s) for s in range(5)]
        seen = []
        results = client.solve_many(requests, on_result=lambda k, r: seen.append(k))
        assert sorted(seen) == list(range(5))
        assert len(results) == 5

    def test_warm_cache_serves_repeats(self, server, client):
        requests = [request_for(seed=s) for s in range(3)]
        cold = client.solve_many(requests)
        warm = client.solve_many(requests)
        assert [r.to_json() for r in cold] == [r.to_json() for r in warm]
        stats = client.stats()
        assert stats["requests"]["cache_hits"] >= 3
        assert stats["cache"]["stores"] == 3
        assert stats["cache"]["hits"] >= 3

    def test_nondeterministic_schedulers_are_not_cached(self, client):
        request = request_for(scheduler="test-sleepy(delay=0.01)")
        client.solve(request)
        client.solve(request)
        stats = client.stats()
        assert stats["requests"]["cache_hits"] == 0
        assert stats["cache"]["stores"] == 0

    def test_cache_disabled_with_empty_dir(self):
        with SolveServer(ServeConfig(port=0, jobs=1, cache_dir="")) as srv:
            assert srv.cache is None
            with connect(srv.address) as c:
                c.solve(request_for())
                assert "cache" not in c.stats()


# ----------------------------------------------------------------------
# Structured errors
# ----------------------------------------------------------------------
class TestStructuredErrors:
    def test_unknown_scheduler_is_invalid_spec(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.solve(request_for(scheduler="no-such-scheduler"))
        assert excinfo.value.code == protocol.E_INVALID_SPEC

    def test_scheduler_failure_embeds_invalid_result(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.solve(request_for(scheduler="test-explode"))
        assert excinfo.value.code == protocol.E_SCHEDULER
        assert excinfo.value.result is not None
        assert excinfo.value.result["valid"] is False

    def test_tolerant_solve_many_matches_tolerant_batch(self, client):
        requests = [
            request_for(seed=1),
            request_for(scheduler="test-explode"),
            request_for(seed=2),
        ]
        served = client.solve_many(requests, tolerant=True)
        local = api.solve_many(requests, tolerant=True)
        assert [r.to_json() for r in served] == [r.to_json() for r in local]
        assert [r.valid for r in served] == [True, False, True]

    def test_malformed_line_gets_invalid_request_not_a_hangup(self, server):
        conn = RawConnection(server.address)
        try:
            conn.send_line(b"this is not json\n")
            response = conn.recv()
            assert response["ok"] is False
            assert response["error"]["code"] == protocol.E_INVALID_REQUEST
            assert response["id"] is None
            # The connection survives: a well-formed message still works.
            conn.send(protocol.health_message(id=2))
            assert conn.recv()["ok"] is True
        finally:
            conn.close()

    def test_unknown_op_and_missing_request_object(self, server):
        conn = RawConnection(server.address)
        try:
            conn.send({"op": "dance", "id": 1})
            assert conn.recv()["error"]["code"] == protocol.E_INVALID_REQUEST
            conn.send({"op": "solve", "id": 2})
            assert conn.recv()["error"]["code"] == protocol.E_INVALID_REQUEST
            conn.send({"op": "solve", "id": 3, "request": {"bogus": True}})
            assert conn.recv()["error"]["code"] == protocol.E_INVALID_SPEC
        finally:
            conn.close()

    def test_bad_timeout_is_invalid_request(self, server):
        conn = RawConnection(server.address)
        try:
            message = protocol.solve_message(request_for().to_dict(), id=4)
            message["timeout"] = "soon"
            conn.send(message)
            assert conn.recv()["error"]["code"] == protocol.E_INVALID_REQUEST
        finally:
            conn.close()


# ----------------------------------------------------------------------
# Backpressure and timeouts
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_queue_full_is_a_structured_error_with_retry_hint(self, tmp_path):
        config = ServeConfig(port=0, jobs=1, queue_size=1, cache_dir="")
        with SolveServer(config) as srv:
            conn = RawConnection(srv.address)
            try:
                payload = request_for(scheduler="test-sleepy(delay=0.4)").to_dict()
                for rid in range(6):
                    conn.send(protocol.solve_message(payload, id=rid))
                responses = [conn.recv() for _ in range(6)]
            finally:
                conn.close()
            rejected = [r for r in responses if not r["ok"]]
            accepted = [r for r in responses if r["ok"]]
            assert rejected, "a 1-deep queue with 6 pipelined requests must bounce some"
            for response in rejected:
                assert response["error"]["code"] == protocol.E_QUEUE_FULL
                assert response["error"]["retry_after"] > 0
            assert accepted, "the accepted requests must still be answered"
            stats = srv.stats()
            assert stats["errors"][protocol.E_QUEUE_FULL] == len(rejected)

    def test_client_retries_queue_full_to_completion(self, tmp_path):
        config = ServeConfig(port=0, jobs=1, queue_size=1, cache_dir="")
        with SolveServer(config) as srv:
            requests = [
                request_for(seed=s, scheduler="test-sleepy(delay=0.05)") for s in range(8)
            ]
            with connect(srv.address, retries=10) as c:
                results = c.solve_many(requests)
            assert len(results) == 8
            assert all(r.valid for r in results)

    def test_timeout_is_a_structured_error(self, tmp_path):
        config = ServeConfig(port=0, jobs=1, queue_size=4, cache_dir="")
        with SolveServer(config) as srv:
            with connect(srv.address) as c:
                with pytest.raises(ServeError) as excinfo:
                    c.solve(
                        request_for(scheduler="test-sleepy(delay=2.0)"), timeout=0.1
                    )
                assert excinfo.value.code == protocol.E_TIMEOUT
            assert srv.stats()["errors"][protocol.E_TIMEOUT] == 1

    def test_default_timeout_from_config(self):
        config = ServeConfig(port=0, jobs=1, queue_size=4, cache_dir="", timeout=0.1)
        with SolveServer(config) as srv:
            with connect(srv.address) as c:
                with pytest.raises(ServeError) as excinfo:
                    c.solve(request_for(scheduler="test-sleepy(delay=2.0)"))
                assert excinfo.value.code == protocol.E_TIMEOUT


# ----------------------------------------------------------------------
# Shutdown and drain
# ----------------------------------------------------------------------
class TestShutdownDrain:
    def test_drain_answers_everything_accepted(self, tmp_path):
        config = ServeConfig(port=0, jobs=2, queue_size=16, cache_dir="")
        srv = SolveServer(config)
        srv.start()
        conn = RawConnection(srv.address)
        try:
            payload = request_for(scheduler="test-sleepy(delay=0.2)").to_dict()
            for rid in range(4):
                conn.send(protocol.solve_message(payload, id=rid))
            conn.send(protocol.shutdown_message(id=99, drain=True))
            responses = [conn.recv() for _ in range(5)]
        finally:
            conn.close()
        by_id = {r["id"]: r for r in responses}
        for rid in range(4):
            assert by_id[rid]["ok"] is True, "accepted work must be answered, not dropped"
        assert by_id[99]["ok"] is True
        assert by_id[99]["data"]["drain"] is True

    def test_new_work_during_drain_is_refused(self, server, client):
        server._draining = True
        with pytest.raises(ServeError) as excinfo:
            client.solve(request_for())
        assert excinfo.value.code == protocol.E_SHUTTING_DOWN
        assert client.health()["status"] == "draining"

    def test_close_is_idempotent(self, tmp_path):
        srv = SolveServer(ServeConfig(port=0, jobs=1, cache_dir=""))
        srv.start()
        srv.close()
        srv.close()  # second close must be a no-op, not a hang

    def test_close_without_start_does_not_hang(self):
        srv = SolveServer(ServeConfig(port=0, jobs=1, cache_dir=""))
        srv.close()


# ----------------------------------------------------------------------
# Thin client
# ----------------------------------------------------------------------
class TestClient:
    def test_parse_address(self):
        assert parse_address("127.0.0.1:7464") == ("127.0.0.1", 7464)
        assert parse_address(":7464") == ("127.0.0.1", 7464)
        assert parse_address("7464") == ("127.0.0.1", 7464)
        assert parse_address(("localhost", 80)) == ("localhost", 80)
        with pytest.raises(ValueError, match="bad service address"):
            parse_address("nope")

    def test_unreachable_service_raises_service_unavailable(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        with pytest.raises(ServiceUnavailable):
            connect(("127.0.0.1", free_port), retries=1, backoff=0.01)

    def test_backoff_grows_and_caps(self):
        client = ServiceClient("127.0.0.1:1", backoff=0.1, max_backoff=0.5)
        delays = [client._sleep_for(k) for k in range(5)]
        assert delays == sorted(delays)
        assert delays[-1] == 0.5

    def test_reconnects_after_server_side_reset(self, server):
        with connect(server.address) as c:
            c.solve(request_for())
            c._reset()  # simulate a dropped connection
            assert c.solve(request_for(seed=1)).valid


# ----------------------------------------------------------------------
# CLI: submit and cache-stats against an in-process daemon
# ----------------------------------------------------------------------
class TestCli:
    @pytest.fixture
    def requests_file(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        lines = [
            json.dumps(request_for(seed=s).to_dict()) for s in range(3)
        ]
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_submit_output_matches_batch(self, server, requests_file, tmp_path, capsys):
        addr = "%s:%d" % server.address
        out_submit = tmp_path / "submit.jsonl"
        out_batch = tmp_path / "batch.jsonl"
        assert main(["submit", str(requests_file), "--addr", addr,
                     "--out", str(out_submit)]) == 0
        assert main(["batch", str(requests_file), "--out", str(out_batch)]) == 0
        assert out_submit.read_bytes() == out_batch.read_bytes()

    def test_submit_exit_status_reflects_failures(self, server, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps(request_for(scheduler="test-explode").to_dict()) + "\n"
        )
        addr = "%s:%d" % server.address
        assert main(["submit", str(path), "--addr", addr]) == 1
        captured = capsys.readouterr()
        assert "0/1 ok, 1 invalid" in captured.err

    def test_submit_unreachable_daemon_fails_cleanly(self, requests_file):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        with pytest.raises(SystemExit, match="cannot reach"):
            main(["submit", str(requests_file), "--addr", f"127.0.0.1:{free_port}"])

    def test_cache_stats_against_daemon(self, server, client, requests_file, capsys):
        client.solve_many(api.load_requests(requests_file))
        addr = "%s:%d" % server.address
        assert main(["cache-stats", "--addr", addr]) == 0
        captured = capsys.readouterr()
        assert "stores" in captured.out
        assert "entries" in captured.out

    def test_cache_stats_against_directory(self, server, client, requests_file, capsys):
        client.solve_many(api.load_requests(requests_file))
        assert main(["cache-stats", "--cache-dir", str(server.cache.root)]) == 0
        captured = capsys.readouterr()
        assert "entries      : 3" in captured.out

    def test_cache_stats_without_a_target_errors(self, monkeypatch):
        import repro.portfolio.cache as cache_module

        # Neutralize both halves of the process-wide default (other tests
        # may have called set_default_cache_dir without clearing it).
        monkeypatch.setattr(cache_module, "_DEFAULT_CACHE_DIR", None)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit, match="no cache directory"):
            main(["cache-stats"])
