"""Hypothesis round-trip property tests for schedule / machine persistence.

These serialization paths back the content-addressed solution cache: a
cached schedule must rebuild bit-equal — including memory weights, NUMA
matrices and per-processor memory bounds — or a cache hit would return a
different solution than the original solve.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.persistence import (
    _machine_from_dict,
    _machine_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.graphs.dag import ComputationalDAG
from repro.model.machine import BspMachine
from repro.model.schedule import BspSchedule


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def machines(draw):
    """Uniform, NUMA and memory-bounded machines."""
    P = draw(st.integers(min_value=1, max_value=6))
    g = draw(st.floats(min_value=0.0, max_value=8.0, allow_nan=False))
    l = draw(st.floats(min_value=0.0, max_value=20.0, allow_nan=False))
    numa = None
    if draw(st.booleans()) and P > 1:
        matrix = draw(
            st.lists(
                st.lists(
                    st.floats(min_value=0.25, max_value=9.0, allow_nan=False),
                    min_size=P,
                    max_size=P,
                ),
                min_size=P,
                max_size=P,
            )
        )
        numa = np.asarray(matrix, dtype=float)
        numa = (numa + numa.T) / 2.0  # any non-negative matrix works; keep it tidy
        np.fill_diagonal(numa, 0.0)
    memory_bound = None
    kind = draw(st.sampled_from(["none", "scalar", "per-proc"]))
    if kind == "scalar":
        memory_bound = draw(st.floats(min_value=1.0, max_value=500.0, allow_nan=False))
    elif kind == "per-proc":
        memory_bound = draw(
            st.lists(
                st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
                min_size=P,
                max_size=P,
            )
        )
    return BspMachine(P=P, g=g, l=l, numa=numa, memory_bound=memory_bound)


@st.composite
def dags(draw):
    """Small random DAGs with independent work/comm/memory weights."""
    n = draw(st.integers(min_value=1, max_value=12))
    edges = set()
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                edges.add((u, v))
    work = draw(st.lists(st.integers(min_value=0, max_value=9), min_size=n, max_size=n))
    comm = draw(st.lists(st.integers(min_value=0, max_value=9), min_size=n, max_size=n))
    # Memory defaults to work; sometimes diverge to exercise the round trip.
    memory = None
    if draw(st.booleans()):
        memory = draw(
            st.lists(st.integers(min_value=0, max_value=9), min_size=n, max_size=n)
        )
    return ComputationalDAG(n, sorted(edges), work, comm, name="prop", memory=memory)


@st.composite
def schedules(draw):
    dag = draw(dags())
    machine = draw(machines())
    # A level-per-superstep assignment is always precedence-valid; processor
    # choice is free (the round trip must preserve it either way).
    levels = dag.node_levels()
    proc = draw(
        st.lists(
            st.integers(min_value=0, max_value=machine.P - 1),
            min_size=dag.n,
            max_size=dag.n,
        )
    )
    return BspSchedule(dag, machine, np.asarray(proc, dtype=int), np.asarray(levels, dtype=int))


# ----------------------------------------------------------------------
# Machine round trip
# ----------------------------------------------------------------------
class TestMachineRoundTrip:
    @given(machine=machines())
    @settings(max_examples=60, deadline=None)
    def test_machine_round_trip_is_identity(self, machine):
        rebuilt = _machine_from_dict(_machine_to_dict(machine))
        assert rebuilt.P == machine.P
        assert rebuilt.g == machine.g and rebuilt.l == machine.l
        assert np.array_equal(rebuilt.numa, machine.numa)
        if machine.memory_bounds is None:
            assert rebuilt.memory_bounds is None
        else:
            assert np.array_equal(rebuilt.memory_bounds, machine.memory_bounds)

    @given(machine=machines())
    @settings(max_examples=30, deadline=None)
    def test_machine_dict_is_json_stable(self, machine):
        import json

        once = _machine_to_dict(machine)
        twice = _machine_to_dict(_machine_from_dict(json.loads(json.dumps(once))))
        assert json.dumps(once, sort_keys=True) == json.dumps(twice, sort_keys=True)


# ----------------------------------------------------------------------
# Schedule round trip
# ----------------------------------------------------------------------
class TestScheduleRoundTrip:
    @given(schedule=schedules())
    @settings(max_examples=60, deadline=None)
    def test_schedule_round_trip_is_identity(self, schedule):
        rebuilt = schedule_from_dict(schedule_to_dict(schedule))
        assert rebuilt.dag.n == schedule.dag.n
        assert rebuilt.dag.edges == schedule.dag.edges
        assert np.array_equal(rebuilt.dag.work, schedule.dag.work)
        assert np.array_equal(rebuilt.dag.comm, schedule.dag.comm)
        assert np.array_equal(rebuilt.dag.memory, schedule.dag.memory)
        assert np.array_equal(rebuilt.proc, schedule.proc)
        assert np.array_equal(rebuilt.step, schedule.step)
        assert np.array_equal(rebuilt.machine.numa, schedule.machine.numa)
        if schedule.machine.memory_bounds is None:
            assert rebuilt.machine.memory_bounds is None
        else:
            assert np.array_equal(
                rebuilt.machine.memory_bounds, schedule.machine.memory_bounds
            )

    @given(schedule=schedules())
    @settings(max_examples=40, deadline=None)
    def test_round_trip_preserves_cost_and_validity(self, schedule):
        rebuilt = schedule_from_dict(schedule_to_dict(schedule))
        assert rebuilt.cost() == schedule.cost()
        assert rebuilt.validation_errors() == schedule.validation_errors()

    @given(schedule=schedules())
    @settings(max_examples=30, deadline=None)
    def test_dict_is_json_round_trippable(self, schedule):
        import json

        payload = json.loads(json.dumps(schedule_to_dict(schedule)))
        rebuilt = schedule_from_dict(payload)
        assert rebuilt.cost() == schedule.cost()
