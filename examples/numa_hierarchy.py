#!/usr/bin/env python
"""NUMA-aware scheduling: how the hierarchy changes the best schedule.

The paper's central argument is that realistic machine models — here the BSP
model extended with a binary-tree NUMA hierarchy — change which schedules
are good, and that schedulers which ignore those costs (Cilk, list
schedulers, HDagg) leave large factors on the table.

This example schedules the same iterated sparse matrix-vector multiplication
on machines with increasing NUMA factors (delta = 1, 2, 4) and reports how
the gap between the baselines and the cost-aware framework grows.

Run with:  python examples/numa_hierarchy.py
"""

from repro import BspMachine, PipelineConfig, run_pipeline
from repro.baselines import CilkScheduler, HDaggScheduler
from repro.graphs import exp_dag


def main() -> None:
    dag = exp_dag(8, k=3, q=0.3, seed=7)
    print(f"Workload: {dag.name} ({dag.n} nodes, {dag.num_edges} edges)\n")

    config = PipelineConfig.fast()
    print(f"{'delta':>6} | {'Cilk':>9} | {'HDagg':>9} | {'ours':>9} | {'vs Cilk':>8} | {'vs HDagg':>8}")
    print("-" * 66)
    for delta in (1, 2, 4):
        if delta == 1:
            machine = BspMachine(P=8, g=1, l=5)  # uniform BSP
        else:
            machine = BspMachine.hierarchical(P=8, delta=delta, g=1, l=5)
        cilk = CilkScheduler(seed=0).schedule(dag, machine).cost()
        hdagg = HDaggScheduler().schedule(dag, machine).cost()
        ours = run_pipeline(dag, machine, config).final_cost
        print(
            f"{delta:>6} | {cilk:>9.0f} | {hdagg:>9.0f} | {ours:>9.0f} | "
            f"{100 * (1 - ours / cilk):>7.0f}% | {100 * (1 - ours / hdagg):>7.0f}%"
        )

    print(
        "\nThe improvement over both baselines grows with the NUMA factor: the"
        "\nbaselines place nodes without looking at lambda, so their schedules"
        "\nkeep paying for traffic across the top of the hierarchy."
    )


if __name__ == "__main__":
    main()
