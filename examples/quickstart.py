#!/usr/bin/env python
"""Quickstart: the declarative solve API.

This example walks through the config-first workflow of the library:

1. describe the problem with a :class:`repro.ProblemSpec` — a DAG source
   (here: the fine-grained spmv generator) plus a BSP machine description,
2. solve one :class:`repro.SolveRequest` with the paper's combined
   framework,
3. compare several schedulers on the same problem with ``api.compare`` —
   scheduler spec strings may carry parameters, e.g.
   ``"hc(max_moves=200, init=source)"``,
4. show that the whole request round-trips through JSON (the wire format
   used by ``python -m repro batch``).

Run with:  python examples/quickstart.py
"""

from repro import DagSpec, MachineSpec, ProblemSpec, SolveRequest, compare, solve

def main() -> None:
    # 1. A fine-grained spmv DAG from a random 12x12 sparse matrix, on a
    #    machine with 4 processors, communication cost 3 per unit of data
    #    and a latency of 5 per superstep (the paper's default).
    spec = ProblemSpec(
        dag=DagSpec.generator("spmv", n=12, q=0.25, seed=42),
        machine=MachineSpec(P=4, g=3, l=5),
    )

    # 2. Solve it with the paper's combined framework (fast limits).
    result = solve(SolveRequest(spec=spec, scheduler="framework"))
    print(f"Workload: {result.dag_name}  ({result.num_nodes} nodes)")
    print(
        f"Framework schedule: cost={result.total_cost:.1f} "
        f"(work {result.work_cost:.0f}, comm {result.comm_cost:.0f}, "
        f"latency {result.latency_cost:.0f}, {result.num_supersteps} supersteps)"
    )
    assert result.valid

    # 3. Compare against the classical baselines and a parameterized
    #    local-search scheduler, all through spec strings.
    print("\nComparison (lower is better):")
    schedulers = ["cilk", "bl-est", "etf", "hdagg", "hc(max_moves=200, init=source)"]
    results = compare(spec, schedulers)
    baseline = results[0].total_cost
    for entry in results:
        rel = entry.total_cost / baseline if baseline else float("nan")
        print(f"  {entry.scheduler:<32} cost={entry.total_cost:8.1f}  ({rel:.2f}x of cilk)")

    best = min(results + [result], key=lambda r: r.total_cost)
    print(f"\nBest: {best.scheduler}  "
          f"({100 * (1 - best.total_cost / baseline):.0f}% improvement over Cilk)")

    # 4. Requests and results are JSON round-trippable (the `repro batch`
    #    wire format) — what you solve is exactly what you can store.
    request = SolveRequest(spec=spec, scheduler="framework")
    assert SolveRequest.from_json(request.to_json()) == request
    print("\nRequest wire format:")
    print(request.to_json()[:100] + " ...")


if __name__ == "__main__":
    main()
