#!/usr/bin/env python
"""Quickstart: schedule a computational DAG on a BSP machine.

This example walks through the basic workflow of the library:

1. generate a computational DAG (a fine-grained sparse matrix-vector
   multiplication, one of the paper's workloads),
2. describe the target machine in the BSP model (P processors, per-unit
   communication cost g, per-superstep latency l),
3. schedule the DAG with the classical baselines and with the paper's
   combined framework,
4. compare the resulting BSP costs and inspect the best schedule.

Run with:  python examples/quickstart.py
"""

from repro import BspMachine, PipelineConfig, run_pipeline, spmv_dag
from repro.baselines import BlEstScheduler, CilkScheduler, EtfScheduler, HDaggScheduler
from repro.graphs import dag_statistics


def main() -> None:
    # 1. A fine-grained spmv DAG from a random 12x12 sparse matrix.
    dag = spmv_dag(12, q=0.25, seed=42)
    stats = dag_statistics(dag)
    print("Workload:", dag.name)
    print(f"  nodes={stats.num_nodes}  edges={stats.num_edges}  depth={stats.depth}"
          f"  total work={stats.total_work}  CCR={stats.ccr:.2f}")

    # 2. A machine with 4 processors, communication cost 3 per unit of data
    #    and a latency of 5 per superstep (the paper's default).
    machine = BspMachine(P=4, g=3, l=5)
    print("Machine:", machine.describe())

    # 3. Baselines.
    print("\nBaseline schedules:")
    for scheduler in (CilkScheduler(seed=0), BlEstScheduler(), EtfScheduler(), HDaggScheduler()):
        schedule = scheduler.schedule(dag, machine)
        breakdown = schedule.cost_breakdown()
        print(f"  {scheduler.name:<8} cost={breakdown.total:8.1f}  "
              f"(work {breakdown.work_cost:.0f}, comm {breakdown.comm_cost:.0f}, "
              f"latency {breakdown.latency_cost:.0f}, supersteps {breakdown.num_supersteps})")

    # 4. The paper's combined framework: initialization heuristics, hill
    #    climbing and the ILP-based refinement stages.
    result = run_pipeline(dag, machine, PipelineConfig.fast())
    print("\nOur framework:")
    print(f"  best initializer : {result.best_initializer} (cost {result.init_cost:.1f})")
    print(f"  after HC + HCcs  : {result.local_search_cost:.1f}")
    print(f"  after ILP stages : {result.final_cost:.1f}")

    best = result.schedule
    breakdown = best.cost_breakdown()
    print(f"\nFinal schedule: {breakdown.num_supersteps} supersteps, "
          f"cost {breakdown.total:.1f} "
          f"(work {breakdown.work_cost:.0f} + comm {breakdown.comm_cost:.0f} "
          f"+ latency {breakdown.latency_cost:.0f})")
    cilk_cost = CilkScheduler(seed=0).schedule(dag, machine).cost()
    print(f"Improvement over Cilk: {100 * (1 - breakdown.total / cilk_cost):.0f}%")
    assert best.is_valid()


if __name__ == "__main__":
    main()
