#!/usr/bin/env python
"""Multilevel scheduling for communication-dominated problems.

When communication costs dominate (large NUMA factors, expensive per-unit
communication), rescheduling single nodes — the strategy of the hill
climbing and window-ILP stages — stops working: any lone node moved to
another processor immediately pays more in traffic than it gains in
parallelism.  The paper's answer is the multilevel scheduler: coarsen the
DAG into clusters, schedule the small coarse DAG, then uncoarsen step by
step while refining.

This example reproduces that behaviour on a small instance: with a high NUMA
factor the base framework barely beats (or even loses to) the trivial
sequential schedule, while the multilevel scheduler finds a genuinely
parallel solution.

Run with:  python examples/multilevel_communication_heavy.py
"""

from repro import BspMachine, MultilevelConfig, PipelineConfig, multilevel_schedule, run_pipeline
from repro.baselines import CilkScheduler, HDaggScheduler, TrivialScheduler
from repro.graphs import cg_dag, communication_to_computation_ratio


def main() -> None:
    dag = cg_dag(6, k=2, q=0.3, seed=3)
    machine = BspMachine.hierarchical(P=16, delta=4, g=2, l=5)
    print(f"Workload: {dag.name} ({dag.n} nodes)")
    print(f"Machine:  {machine.describe()}")
    print(f"CCR (machine-weighted): {communication_to_computation_ratio(dag, machine):.2f}\n")

    trivial = TrivialScheduler().schedule(dag, machine).cost()
    cilk = CilkScheduler(seed=0).schedule(dag, machine).cost()
    hdagg = HDaggScheduler().schedule(dag, machine).cost()

    config = PipelineConfig.fast()
    base = run_pipeline(dag, machine, config).final_cost

    ml_config = MultilevelConfig(
        coarsening_ratios=(0.3, 0.15),
        base_pipeline=config,
    )
    ml_schedule, per_ratio = multilevel_schedule(dag, machine, ml_config)
    ml = ml_schedule.cost()

    print(f"{'scheduler':<22} {'cost':>10}")
    print("-" * 34)
    print(f"{'Trivial (sequential)':<22} {trivial:>10.0f}")
    print(f"{'Cilk':<22} {cilk:>10.0f}")
    print(f"{'HDagg':<22} {hdagg:>10.0f}")
    print(f"{'base framework':<22} {base:>10.0f}")
    for ratio, cost in sorted(per_ratio.items()):
        print(f"{'multilevel @ ' + format(ratio, 'g'):<22} {cost:>10.0f}")
    print(f"{'multilevel (best)':<22} {ml:>10.0f}")

    print(
        "\nIn this communication-dominated regime the baselines (and often the"
        "\nbase framework) cannot beat simply running everything sequentially;"
        "\nthe multilevel scheduler moves whole clusters at a time and finds a"
        "\nschedule that is actually worth parallelizing."
    )
    assert ml_schedule.is_valid()


if __name__ == "__main__":
    main()
