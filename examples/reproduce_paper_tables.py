#!/usr/bin/env python
"""Regenerate the paper's tables and figures through the API facade.

Every table/figure of the paper's evaluation has a named reproduction
target; :func:`repro.api.reproduce` runs the corresponding experiment grid
on laptop-scale datasets and returns rendered tables.  This example exposes
that facade as a small CLI so a single artifact can be reproduced
interactively, at a chosen scale and worker count.

Examples::

    python examples/reproduce_paper_tables.py --target table1
    python examples/reproduce_paper_tables.py --target table2 --scale reduced
    python examples/reproduce_paper_tables.py --target fig7 --jobs 4
    python examples/reproduce_paper_tables.py --list
"""

import argparse

from repro import api
from repro.experiments.tables import REPRO_TARGETS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--target", default="table1",
                        help="which artifact to regenerate (see --list)")
    parser.add_argument("--scale", default="smoke", choices=("smoke", "reduced", "paper"),
                        help="dataset scale (smoke is laptop-friendly)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes of the experiment engine")
    parser.add_argument("--seed", type=int, default=7, help="dataset generation seed")
    parser.add_argument("--list", action="store_true", help="list the available targets")
    args = parser.parse_args()

    if args.list:
        width = max(len(name) for name in REPRO_TARGETS)
        for name, description in REPRO_TARGETS.items():
            print(f"{name.ljust(width)} : {description}")
        return

    for table in api.reproduce(args.target, scale=args.scale, jobs=args.jobs, seed=args.seed):
        print(table.to_text())
        print()

    print("Note: at reduced scales the absolute numbers differ from the paper;")
    print("the qualitative shape (who wins, and how the gap grows with g, P and")
    print("delta) is what this reproduction targets — see EXPERIMENTS.md.")


if __name__ == "__main__":
    main()
