#!/usr/bin/env python
"""Regenerate the paper's headline tables from the command line.

The benchmark harness under ``benchmarks/`` regenerates every table and
figure; this example exposes the same machinery as a small CLI so that a
single table can be reproduced interactively, at a chosen scale.

Examples::

    python examples/reproduce_paper_tables.py --table 1 --scale smoke
    python examples/reproduce_paper_tables.py --table 2 --scale reduced
    python examples/reproduce_paper_tables.py --table 3
"""

import argparse

from repro.experiments import tables as paper_tables
from repro.experiments.datasets import build_dataset
from repro.pipeline.config import MultilevelConfig, PipelineConfig


def build_datasets(scale: str, instances: int):
    names = ["tiny", "small"] if scale == "smoke" else ["tiny", "small", "medium"]
    return {name: build_dataset(name, scale=scale, max_instances=instances) for name in names}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--table", type=int, default=1, choices=(1, 2, 3),
                        help="which paper table to regenerate (1, 2 or 3)")
    parser.add_argument("--scale", default="smoke", choices=("smoke", "reduced", "paper"),
                        help="dataset scale (smoke is laptop-friendly)")
    parser.add_argument("--instances", type=int, default=2,
                        help="instances per dataset")
    args = parser.parse_args()

    datasets = build_datasets(args.scale, args.instances)
    config = PipelineConfig.fast() if args.scale == "smoke" else PipelineConfig()

    if args.table == 1:
        by_p, by_dataset, _ = paper_tables.make_table1_no_numa(
            datasets, P_values=(2, 4), g_values=(1, 3, 5), latency=5, config=config
        )
        print(by_p.to_text())
        print()
        print(by_dataset.to_text())
    elif args.table == 2:
        table, _ = paper_tables.make_table2_numa(
            datasets, P_values=(4, 8), delta_values=(2, 3, 4), g=1, latency=5, config=config
        )
        print(table.to_text())
    else:
        ml_config = MultilevelConfig(base_pipeline=config)
        table, _ = paper_tables.make_table3_multilevel(
            datasets, P_values=(8,), delta_values=(2, 3, 4), g=1, latency=5,
            config=config, multilevel_config=ml_config,
        )
        print(table.to_text())

    print("\nNote: at reduced scales the absolute numbers differ from the paper;")
    print("the qualitative shape (who wins, and how the gap grows with g, P and")
    print("delta) is what this reproduction targets — see EXPERIMENTS.md.")


if __name__ == "__main__":
    main()
