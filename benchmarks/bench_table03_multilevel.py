"""Table 3 — cost reduction achieved by the multilevel scheduler with NUMA.

Regenerates the paper's Table 3: the geometric-mean cost reduction of the
multilevel scheduler relative to Cilk and HDagg for every (P, delta)
combination of the binary-tree NUMA hierarchy.
"""

from conftest import run_once

from repro.experiments import tables as paper_tables


def test_table03_multilevel(benchmark, small_dataset, fast_config, multilevel_config, emit):
    datasets = {"small": small_dataset}

    def run():
        return paper_tables.make_table3_multilevel(
            datasets,
            P_values=(8,),
            delta_values=(2, 4),
            g=1,
            latency=5,
            config=fast_config,
            multilevel_config=multilevel_config,
        )

    table, _grid = run_once(benchmark, run)
    emit(table)
    # Shape check: the multilevel scheduler improves on Cilk, and the
    # improvement grows with the NUMA factor delta (the paper's key trend).
    row = table.rows[0]
    reductions = [float(cell.split("/")[0].strip().rstrip("%")) for cell in row[1:]]
    assert all(r > 0 for r in reductions)
    assert reductions[-1] >= reductions[0] - 5.0
