"""Figure 5 — mean cost ratios of every pipeline stage, normalized to Cilk.

Regenerates the bar chart of the paper's Figure 5 as a table: for each value
of g, the geometric-mean cost ratio of Cilk, HDagg, the best initialization
heuristic, the schedule after HC+HCcs, and the final schedule after the ILP
stages — all normalized to the Cilk baseline.
"""

from conftest import run_once

from repro.experiments import tables as paper_tables


def test_fig05_stage_ratios(benchmark, main_datasets, fast_config, emit):
    def run():
        return paper_tables.make_figure5_stage_ratios(
            main_datasets,
            P_values=(2, 4),
            g_values=(1, 3, 5),
            latency=5,
            config=fast_config,
        )

    table, _grid = run_once(benchmark, run)
    emit(table)
    # Shape check: every stage of our framework is at least as good as the
    # Cilk baseline, and the final ILP stage is the best of our stages.
    for row in table.rows:
        cilk, hdagg, init, hccs, ilp = (float(x) for x in row[1:])
        assert cilk == 1.0
        assert ilp <= hccs + 1e-9 <= init + 1e-6
        assert ilp < cilk
