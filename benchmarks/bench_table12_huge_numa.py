"""Table 12 — the huge dataset with NUMA effects (heuristics + local search).

Regenerates the paper's Table 12: the cost reduction of Init+HC+HCcs versus
Cilk and HDagg on the huge dataset with the binary-tree NUMA hierarchy.
"""

from conftest import run_once

from repro.experiments import tables as paper_tables


def test_table12_huge_numa(benchmark, huge_dataset, heuristics_config, emit):
    def run():
        return paper_tables.make_table12_huge_numa(
            huge_dataset,
            P_values=(8,),
            delta_values=(2, 4),
            g=1,
            latency=5,
            config=heuristics_config,
        )

    table = run_once(benchmark, run)
    emit(table)
    for row in table.rows:
        reductions = [float(cell.split("/")[0].strip().rstrip("%")) for cell in row[1:]]
        assert all(r > 0 for r in reductions)
