"""Aggregate benchmark runner emitting one schema-stable ``BENCH_*.json``.

The per-suite benchmarks under ``benchmarks/`` produce pytest-benchmark JSON
files whose schema (machine info, full statistics, interleaved metadata)
is too volatile to diff across PRs.  This runner executes the requested
suites and condenses their results into the committed baseline schema:

.. code-block:: json

    {
      "schema": "repro-bench/1",
      "label": "pr6",
      "scale": "smoke",
      "suites": {
        "bench_core_micro": {
          "test_hill_climbing_hot_path": {"mean_s": 0.0384, "min_s": 0.0379, "rounds": 3}
        }
      }
    }

Only the fields that the regression gate (``benchmarks/check_regression.py``)
reads are kept, so baselines committed under ``benchmarks/baselines/`` stay
small and stable.  Usage::

    PYTHONPATH=src python benchmarks/run_all.py --label pr6 --out BENCH_pr6.json
    PYTHONPATH=src python benchmarks/run_all.py --suites bench_core_micro

The default suite set is the kernel micro-benchmarks plus the portfolio
bench; table benchmarks are opt-in (they re-run whole paper experiments).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from typing import Dict, List, Optional

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)

SCHEMA = "repro-bench/1"

#: Suites aggregated by default: fast, library-level benchmarks whose
#: timings track the kernel hot paths rather than whole paper tables.
DEFAULT_SUITES = (
    "bench_core_micro",
    "bench_portfolio",
    "bench_serve",
    "bench_distrib",
    "bench_obs",
)


def condense(raw: dict) -> Dict[str, dict]:
    """Reduce one pytest-benchmark JSON payload to the stable schema.

    Returns a mapping ``{benchmark name: {"mean_s", "min_s", "rounds"}}``;
    the benchmark *name* (``test_...``) is the stable join key the
    regression gate matches on.
    """
    out: Dict[str, dict] = {}
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        out[bench["name"]] = {
            "mean_s": float(stats["mean"]),
            "min_s": float(stats["min"]),
            "rounds": int(stats["rounds"]),
        }
    return out


def run_suite(suite: str, *, pytest_args: Optional[List[str]] = None) -> Dict[str, dict]:
    """Run one benchmark suite and return its condensed results."""
    path = os.path.join(BENCH_DIR, f"{suite}.py")
    if not os.path.exists(path):
        raise FileNotFoundError(f"no such benchmark suite: {path}")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_path = handle.name
    try:
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            path,
            "-q",
            f"--benchmark-json={json_path}",
        ] + (pytest_args or [])
        env = dict(os.environ)
        src = os.path.join(REPO_ROOT, "src")
        env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get("PYTHONPATH", "")
        proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
        if proc.returncode != 0:
            raise RuntimeError(f"benchmark suite {suite} failed (exit {proc.returncode})")
        with open(json_path) as fh:
            return condense(json.load(fh))
    finally:
        os.unlink(json_path)


def aggregate(
    suites: List[str],
    *,
    label: str,
    scale: Optional[str] = None,
    pytest_args: Optional[List[str]] = None,
) -> dict:
    """Run every suite and merge the condensed results into one payload."""
    payload = {
        "schema": SCHEMA,
        "label": label,
        "scale": scale or os.environ.get("REPRO_BENCH_SCALE", "smoke"),
        "suites": {},
    }
    for suite in suites:
        payload["suites"][suite] = run_suite(suite, pytest_args=pytest_args)
    return payload


def write_payload(payload: dict, out: str) -> None:
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suites",
        nargs="+",
        default=list(DEFAULT_SUITES),
        help=f"benchmark suites to run (default: {' '.join(DEFAULT_SUITES)})",
    )
    parser.add_argument("--label", default="local", help="label recorded in the payload")
    parser.add_argument("--out", default="BENCH_local.json", help="output JSON path")
    parser.add_argument(
        "--pytest-arg",
        action="append",
        default=[],
        help="extra argument forwarded to pytest (repeatable)",
    )
    args = parser.parse_args(argv)

    payload = aggregate(args.suites, label=args.label, pytest_args=args.pytest_arg)
    write_payload(payload, args.out)
    total = sum(len(v) for v in payload["suites"].values())
    print(f"wrote {args.out}: {total} benchmarks from {len(payload['suites'])} suite(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
