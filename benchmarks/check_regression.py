"""CI regression gate over the committed benchmark baselines.

Compares a freshly produced ``BENCH_*.json`` (from ``benchmarks/run_all.py``)
against a committed baseline under ``benchmarks/baselines/`` and fails when
the *geometric mean* of the per-benchmark mean-time ratios exceeds the
tolerance.  The geomean is the gate — individual benchmarks are allowed to
jitter (CI machines are noisy and some micro-benchmarks run in hundreds of
microseconds) as long as the suite as a whole has not slowed down.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py --label ci --out BENCH_ci.json
    python benchmarks/check_regression.py BENCH_ci.json \
        --baseline benchmarks/baselines/BENCH_pr6.json --tolerance 1.25

Only benchmarks present in *both* payloads are compared, so adding or
removing a benchmark never trips the gate by itself; the report lists the
unmatched names so silent coverage loss is at least visible.

A second, much tighter gate guards the observability layer's disabled-path
overhead: ``--overhead-suite bench_obs`` joins the current payload's
``bench_obs`` benchmarks (the instrumented hot paths with the tracer off)
against the same-named benchmarks of ``--overhead-against bench_core_micro``
in the *baseline* payload (recorded before the instrumentation existed).
That ratio isolates what the dormant hooks cost, so its tolerance is 2%
(``--overhead-tolerance 1.02``) and it gates on ``min_s`` — the minimum
over rounds is far less noisy than the mean at a 2% resolution::

    python benchmarks/check_regression.py BENCH_ci.json \
        --overhead-suite bench_obs --overhead-against bench_core_micro
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from typing import Dict, List, Optional, Tuple

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))

DEFAULT_BASELINE = os.path.join(BENCH_DIR, "baselines", "BENCH_pr9.json")
DEFAULT_TOLERANCE = 1.25
DEFAULT_OVERHEAD_TOLERANCE = 1.02


def flatten(payload: dict) -> Dict[Tuple[str, str], float]:
    """``{(suite, benchmark): mean seconds}`` from a repro-bench payload."""
    out: Dict[Tuple[str, str], float] = {}
    for suite, benches in payload.get("suites", {}).items():
        for name, stats in benches.items():
            mean = float(stats["mean_s"])
            if mean > 0:
                out[(suite, name)] = mean
    return out


def compare(
    baseline: dict, current: dict
) -> Tuple[float, List[Tuple[str, str, float, float, float]], List[Tuple[str, str]]]:
    """Geomean slowdown ratio, per-benchmark rows, and unmatched keys."""
    base = flatten(baseline)
    cur = flatten(current)
    shared = sorted(set(base) & set(cur))
    unmatched = sorted((set(base) ^ set(cur)))
    if not shared:
        raise SystemExit("no shared benchmarks between baseline and current payloads")
    rows = []
    log_sum = 0.0
    for key in shared:
        ratio = cur[key] / base[key]
        log_sum += math.log(ratio)
        rows.append((key[0], key[1], base[key], cur[key], ratio))
    geomean = math.exp(log_sum / len(shared))
    return geomean, rows, unmatched


def compare_overhead(
    baseline: dict,
    current: dict,
    *,
    overhead_suite: str,
    against_suite: str,
) -> Tuple[float, List[Tuple[str, float, float, float]]]:
    """Geomean of current[overhead_suite] / baseline[against_suite] on min_s.

    Joins on the benchmark name: the overhead suite re-runs the baseline
    suite's workloads under the same names, so the ratio is the cost of
    whatever changed between the payloads on those exact workloads.
    """
    base = baseline.get("suites", {}).get(against_suite, {})
    cur = current.get("suites", {}).get(overhead_suite, {})
    shared = sorted(
        name
        for name in set(base) & set(cur)
        if float(base[name]["min_s"]) > 0
    )
    if not shared:
        raise SystemExit(
            f"no shared benchmark names between baseline suite {against_suite!r} "
            f"and current suite {overhead_suite!r}"
        )
    rows = []
    log_sum = 0.0
    for name in shared:
        b = float(base[name]["min_s"])
        c = float(cur[name]["min_s"])
        ratio = c / b
        log_sum += math.log(ratio)
        rows.append((name, b, c, ratio))
    return math.exp(log_sum / len(shared)), rows


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="BENCH_*.json produced by benchmarks/run_all.py")
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"committed baseline payload (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"maximum allowed geomean slowdown (default: {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--overhead-suite",
        default=None,
        metavar="SUITE",
        help="current-payload suite measuring a disabled-instrumentation "
        "path (e.g. bench_obs); enables the tight overhead gate",
    )
    parser.add_argument(
        "--overhead-against",
        default="bench_core_micro",
        metavar="SUITE",
        help="baseline-payload suite whose same-named benchmarks are the "
        "pre-instrumentation reference (default: bench_core_micro)",
    )
    parser.add_argument(
        "--overhead-tolerance",
        type=float,
        default=DEFAULT_OVERHEAD_TOLERANCE,
        help="maximum allowed geomean overhead ratio on min_s "
        f"(default: {DEFAULT_OVERHEAD_TOLERANCE})",
    )
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.current) as fh:
        current = json.load(fh)

    geomean, rows, unmatched = compare(baseline, current)

    width = max(len(name) for _, name, _, _, _ in rows)
    print(f"baseline: {args.baseline} (label={baseline.get('label')})")
    print(f"current:  {args.current} (label={current.get('label')})")
    print()
    print(f"{'benchmark':<{width}}  {'base ms':>10}  {'curr ms':>10}  {'ratio':>7}")
    for suite, name, b, c, r in sorted(rows, key=lambda row: -row[4]):
        print(f"{name:<{width}}  {b * 1e3:>10.3f}  {c * 1e3:>10.3f}  {r:>6.2f}x")
    for key in unmatched:
        print(f"(unmatched, not gated: {key[0]}::{key[1]})")
    print()
    print(f"geomean ratio over {len(rows)} shared benchmarks: {geomean:.3f}x "
          f"(tolerance {args.tolerance:.2f}x)")
    status = 0
    if geomean > args.tolerance:
        print("FAIL: benchmark suite slowed down beyond tolerance", file=sys.stderr)
        status = 1
    else:
        print("OK")

    if args.overhead_suite:
        over_geomean, over_rows = compare_overhead(
            baseline,
            current,
            overhead_suite=args.overhead_suite,
            against_suite=args.overhead_against,
        )
        print()
        print(
            f"overhead gate: {args.overhead_suite} (current, min_s) vs "
            f"{args.overhead_against} (baseline, min_s)"
        )
        over_width = max(len(name) for name, _, _, _ in over_rows)
        print(f"{'benchmark':<{over_width}}  {'base ms':>10}  {'curr ms':>10}  {'ratio':>7}")
        for name, b, c, r in sorted(over_rows, key=lambda row: -row[3]):
            print(f"{name:<{over_width}}  {b * 1e3:>10.3f}  {c * 1e3:>10.3f}  {r:>6.3f}x")
        print(
            f"overhead geomean over {len(over_rows)} benchmark(s): "
            f"{over_geomean:.3f}x (tolerance {args.overhead_tolerance:.2f}x)"
        )
        if over_geomean > args.overhead_tolerance:
            print(
                "FAIL: disabled-instrumentation overhead beyond tolerance",
                file=sys.stderr,
            )
            status = 1
        else:
            print("OK")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
