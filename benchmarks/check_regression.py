"""CI regression gate over the committed benchmark baselines.

Compares a freshly produced ``BENCH_*.json`` (from ``benchmarks/run_all.py``)
against a committed baseline under ``benchmarks/baselines/`` and fails when
the *geometric mean* of the per-benchmark mean-time ratios exceeds the
tolerance.  The geomean is the gate — individual benchmarks are allowed to
jitter (CI machines are noisy and some micro-benchmarks run in hundreds of
microseconds) as long as the suite as a whole has not slowed down.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py --label ci --out BENCH_ci.json
    python benchmarks/check_regression.py BENCH_ci.json \
        --baseline benchmarks/baselines/BENCH_pr6.json --tolerance 1.25

Only benchmarks present in *both* payloads are compared, so adding or
removing a benchmark never trips the gate by itself; the report lists the
unmatched names so silent coverage loss is at least visible.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from typing import Dict, List, Optional, Tuple

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))

DEFAULT_BASELINE = os.path.join(BENCH_DIR, "baselines", "BENCH_pr9.json")
DEFAULT_TOLERANCE = 1.25


def flatten(payload: dict) -> Dict[Tuple[str, str], float]:
    """``{(suite, benchmark): mean seconds}`` from a repro-bench payload."""
    out: Dict[Tuple[str, str], float] = {}
    for suite, benches in payload.get("suites", {}).items():
        for name, stats in benches.items():
            mean = float(stats["mean_s"])
            if mean > 0:
                out[(suite, name)] = mean
    return out


def compare(
    baseline: dict, current: dict
) -> Tuple[float, List[Tuple[str, str, float, float, float]], List[Tuple[str, str]]]:
    """Geomean slowdown ratio, per-benchmark rows, and unmatched keys."""
    base = flatten(baseline)
    cur = flatten(current)
    shared = sorted(set(base) & set(cur))
    unmatched = sorted((set(base) ^ set(cur)))
    if not shared:
        raise SystemExit("no shared benchmarks between baseline and current payloads")
    rows = []
    log_sum = 0.0
    for key in shared:
        ratio = cur[key] / base[key]
        log_sum += math.log(ratio)
        rows.append((key[0], key[1], base[key], cur[key], ratio))
    geomean = math.exp(log_sum / len(shared))
    return geomean, rows, unmatched


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="BENCH_*.json produced by benchmarks/run_all.py")
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"committed baseline payload (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"maximum allowed geomean slowdown (default: {DEFAULT_TOLERANCE})",
    )
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.current) as fh:
        current = json.load(fh)

    geomean, rows, unmatched = compare(baseline, current)

    width = max(len(name) for _, name, _, _, _ in rows)
    print(f"baseline: {args.baseline} (label={baseline.get('label')})")
    print(f"current:  {args.current} (label={current.get('label')})")
    print()
    print(f"{'benchmark':<{width}}  {'base ms':>10}  {'curr ms':>10}  {'ratio':>7}")
    for suite, name, b, c, r in sorted(rows, key=lambda row: -row[4]):
        print(f"{name:<{width}}  {b * 1e3:>10.3f}  {c * 1e3:>10.3f}  {r:>6.2f}x")
    for key in unmatched:
        print(f"(unmatched, not gated: {key[0]}::{key[1]})")
    print()
    print(f"geomean ratio over {len(rows)} shared benchmarks: {geomean:.3f}x "
          f"(tolerance {args.tolerance:.2f}x)")
    if geomean > args.tolerance:
        print("FAIL: benchmark suite slowed down beyond tolerance", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
