"""Micro-benchmarks of the core components.

Not a paper table: these benchmark the throughput of the building blocks
(cost evaluation, validity checking, the baselines, the initialization
heuristics, hill climbing and coarsening) plus the array-native kernel
primitives (CSR construction, local-search state build, batched move
probing) and the experiment engine, so that performance regressions in the
library itself are visible.
"""

import pytest

from repro.baselines.cilk import CilkScheduler
from repro.baselines.hdagg import HDaggScheduler
from repro.baselines.list_schedulers import BlEstScheduler, EtfScheduler
from repro.experiments.runner import ParallelRunner
from repro.graphs.dag import ComputationalDAG
from repro.graphs.fine import exp_dag
from repro.heuristics.bspg import BspGreedyScheduler
from repro.heuristics.source import SourceScheduler
from repro.localsearch.comm_hill_climbing import comm_hill_climb
from repro.localsearch.hill_climbing import hill_climb
from repro.localsearch.state import LocalSearchState
from repro.model.cost import evaluate
from repro.model.machine import BspMachine
from repro.multilevel.coarsen import coarsen_dag


@pytest.fixture(scope="module")
def dag():
    return exp_dag(10, k=3, q=0.25, seed=13)


@pytest.fixture(scope="module")
def machine():
    return BspMachine(P=8, g=3, l=5)


@pytest.fixture(scope="module")
def hdagg_schedule(dag, machine):
    return HDaggScheduler().schedule(dag, machine)


def test_cost_evaluation(benchmark, hdagg_schedule):
    result = benchmark(evaluate, hdagg_schedule)
    assert result.total > 0


def test_validity_check(benchmark, hdagg_schedule):
    assert benchmark(hdagg_schedule.is_valid)


def test_cilk_scheduler(benchmark, dag, machine):
    sched = benchmark(CilkScheduler(seed=0).schedule, dag, machine)
    assert sched.is_valid()


def test_etf_scheduler(benchmark, dag, machine):
    sched = benchmark(EtfScheduler().schedule, dag, machine)
    assert sched.is_valid()


def test_bl_est_scheduler(benchmark, dag, machine):
    sched = benchmark(BlEstScheduler().schedule, dag, machine)
    assert sched.is_valid()


def test_hdagg_scheduler(benchmark, dag, machine):
    sched = benchmark(HDaggScheduler().schedule, dag, machine)
    assert sched.is_valid()


def test_bspg_scheduler(benchmark, dag, machine):
    sched = benchmark(BspGreedyScheduler().schedule, dag, machine)
    assert sched.is_valid()


def test_source_scheduler(benchmark, dag, machine):
    sched = benchmark(SourceScheduler().schedule, dag, machine)
    assert sched.is_valid()


def test_hill_climbing_hot_path(benchmark, hdagg_schedule):
    """The HC hot loop: probe + apply moves until a local optimum."""
    result = benchmark.pedantic(
        lambda: hill_climb(hdagg_schedule), rounds=3, iterations=1
    )
    assert result.schedule.is_valid()
    assert result.final_cost <= result.initial_cost


def test_comm_hill_climbing(benchmark, hdagg_schedule):
    result = benchmark.pedantic(
        lambda: comm_hill_climb(hdagg_schedule), rounds=1, iterations=1
    )
    assert result.schedule.is_valid()


def test_coarsening(benchmark, dag):
    seq = benchmark.pedantic(
        lambda: coarsen_dag(dag, max(8, dag.n // 3)), rounds=1, iterations=1
    )
    assert seq.num_contractions > 0


# ----------------------------------------------------------------------
# Array-native kernel primitives
# ----------------------------------------------------------------------
def test_csr_construction(benchmark, dag):
    """Cost of building the cached CSR adjacency of a fresh DAG."""

    def build():
        clone = ComputationalDAG(dag.n, list(dag.edges), dag.work, dag.comm)
        return clone.succ_indptr, clone.pred_indptr

    succ_indptr, _ = benchmark(build)
    assert int(succ_indptr[-1]) == dag.num_edges


def test_localsearch_state_build(benchmark, hdagg_schedule):
    """Cost of materializing the incremental local-search state."""
    state = benchmark(LocalSearchState, hdagg_schedule)
    assert state.total_cost == pytest.approx(state.recompute_cost())


def test_move_probe_throughput(benchmark, hdagg_schedule):
    """Batched candidate probing (move_deltas) over every node."""
    state = LocalSearchState(hdagg_schedule)

    def probe_all():
        probed = 0
        for v in range(state.dag.n):
            moves = state.candidate_moves(v)
            if moves:
                probed += len(state.move_deltas(v, moves))
        return probed

    probed = benchmark(probe_all)
    assert probed > 0


def test_parallel_runner_serial_engine(benchmark, machine):
    """Engine overhead: baselines-only experiment through ParallelRunner."""
    dags = [exp_dag(5, k=2, q=0.3, seed=s) for s in (1, 2)]

    def run():
        return ParallelRunner(1).run_experiment(dags, machine, baselines_only=True)

    experiment = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(experiment.instances) == 2
    assert all("Cilk" in inst.costs for inst in experiment.instances)
