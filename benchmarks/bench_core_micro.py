"""Micro-benchmarks of the core components.

Not a paper table: these benchmark the throughput of the building blocks
(cost evaluation, validity checking, the baselines, the initialization
heuristics, hill climbing and coarsening) so that performance regressions in
the library itself are visible.
"""

import pytest

from repro.baselines.cilk import CilkScheduler
from repro.baselines.hdagg import HDaggScheduler
from repro.baselines.list_schedulers import EtfScheduler
from repro.graphs.fine import exp_dag
from repro.heuristics.bspg import BspGreedyScheduler
from repro.heuristics.source import SourceScheduler
from repro.localsearch.hill_climbing import hill_climb
from repro.localsearch.comm_hill_climbing import comm_hill_climb
from repro.model.cost import evaluate
from repro.model.machine import BspMachine
from repro.multilevel.coarsen import coarsen_dag


@pytest.fixture(scope="module")
def dag():
    return exp_dag(10, k=3, q=0.25, seed=13)


@pytest.fixture(scope="module")
def machine():
    return BspMachine(P=8, g=3, l=5)


@pytest.fixture(scope="module")
def hdagg_schedule(dag, machine):
    return HDaggScheduler().schedule(dag, machine)


def test_cost_evaluation(benchmark, hdagg_schedule):
    result = benchmark(evaluate, hdagg_schedule)
    assert result.total > 0


def test_validity_check(benchmark, hdagg_schedule):
    assert benchmark(hdagg_schedule.is_valid)


def test_cilk_scheduler(benchmark, dag, machine):
    sched = benchmark(CilkScheduler(seed=0).schedule, dag, machine)
    assert sched.is_valid()


def test_etf_scheduler(benchmark, dag, machine):
    sched = benchmark(EtfScheduler().schedule, dag, machine)
    assert sched.is_valid()


def test_hdagg_scheduler(benchmark, dag, machine):
    sched = benchmark(HDaggScheduler().schedule, dag, machine)
    assert sched.is_valid()


def test_bspg_scheduler(benchmark, dag, machine):
    sched = benchmark(BspGreedyScheduler().schedule, dag, machine)
    assert sched.is_valid()


def test_source_scheduler(benchmark, dag, machine):
    sched = benchmark(SourceScheduler().schedule, dag, machine)
    assert sched.is_valid()


def test_hill_climbing_pass(benchmark, hdagg_schedule):
    result = benchmark.pedantic(
        lambda: hill_climb(hdagg_schedule, max_passes=1), rounds=1, iterations=1
    )
    assert result.schedule.is_valid()


def test_comm_hill_climbing(benchmark, hdagg_schedule):
    result = benchmark.pedantic(
        lambda: comm_hill_climb(hdagg_schedule), rounds=1, iterations=1
    )
    assert result.schedule.is_valid()


def test_coarsening(benchmark, dag):
    seq = benchmark.pedantic(
        lambda: coarsen_dag(dag, max(8, dag.n // 3)), rounds=1, iterations=1
    )
    assert seq.num_contractions > 0
