"""Table 13 — multilevel variants (C15 / C30 / C_opt) versus the baselines.

Regenerates the paper's Table 13: the cost reduction versus Cilk and HDagg
of the multilevel scheduler run with a 15% coarsening ratio, a 30% ratio,
and the best of the two, in the NUMA setting.
"""

from conftest import run_once

from repro.experiments import tables as paper_tables


def test_table13_ml_vs_baselines(benchmark, small_dataset, fast_config, multilevel_config, emit):
    datasets = {"small": small_dataset}

    def run():
        return paper_tables.make_tables_13_and_14_multilevel_detail(
            datasets,
            P_values=(8,),
            delta_values=(2, 4),
            g=1,
            latency=5,
            config=fast_config,
            multilevel_config=multilevel_config,
        )

    table13, _table14, _grid = run_once(benchmark, run)
    emit(table13)
    assert [row[0] for row in table13.rows] == ["C15", "C30", "C_opt"]
    # C_opt takes the better of the two coarsening ratios, so its reduction
    # is at least as large as either single-ratio variant in every column.
    for col in range(1, len(table13.headers)):
        c15 = float(table13.rows[0][col].split("/")[0].strip().rstrip("%"))
        c30 = float(table13.rows[1][col].split("/")[0].strip().rstrip("%"))
        copt = float(table13.rows[2][col].split("/")[0].strip().rstrip("%"))
        assert copt >= max(c15, c30) - 1e-6
