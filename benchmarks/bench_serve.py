"""Benchmarks of the solve daemon: one-shot CLI vs daemon cold vs warm.

The serving claim is amortization, demonstrated in three measurements over
the same deterministic request batch:

* **one-shot CLI** — ``python -m repro batch`` in a fresh interpreter, the
  cost every scripted caller pays per invocation (process start + imports
  + cold solve);
* **daemon, cold cache** — the same batch pipelined over one connection to
  a running daemon (no interpreter start, but every request is solved);
* **daemon, warm cache** — the batch again on the same daemon: every
  request is served from the shared solution cache without invoking a
  scheduler, byte-identical to the cold pass.

Printed tables land in ``benchmarks/results/`` like the paper-table benches.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from conftest import run_once

from repro.experiments.report import Table
from repro.serve.client import connect
from repro.serve.server import ServeConfig, SolveServer
from repro.spec import DagSpec, MachineSpec, ProblemSpec, SolveRequest

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)

#: Deterministic, cacheable requests (etf is fast and registry-deterministic).
REQUESTS = [
    SolveRequest(
        spec=ProblemSpec(
            dag=DagSpec.generator("spmv", n=16, q=0.25, seed=seed),
            machine=MachineSpec(P=4, g=2, l=5),
        ),
        scheduler="etf",
    )
    for seed in range(6)
]

#: Wall-clock of each pass, collected across tests for the summary table.
TIMINGS = {}


@pytest.fixture(scope="module")
def request_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve-bench") / "requests.jsonl"
    path.write_text("".join(json.dumps(r.to_dict()) + "\n" for r in REQUESTS))
    return path


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("serve-bench-cache")
    config = ServeConfig(port=0, jobs=2, cache_dir=str(cache_dir))
    with SolveServer(config) as server:
        yield server


def test_serve_one_shot_cli(benchmark, request_file, tmp_path_factory):
    """A fresh ``repro batch`` process per batch: the cost the daemon amortizes."""
    out = tmp_path_factory.mktemp("serve-bench-out") / "one_shot.jsonl"
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))

    def run():
        start = time.perf_counter()
        subprocess.run(
            [sys.executable, "-m", "repro", "batch", str(request_file), "--out", str(out)],
            cwd=REPO_ROOT,
            env=env,
            check=True,
            capture_output=True,
        )
        TIMINGS["one-shot CLI"] = time.perf_counter() - start

    run_once(benchmark, run)
    TIMINGS["one-shot results"] = out.read_bytes()


def test_serve_daemon_cold(benchmark, daemon):
    """First pass over a fresh daemon: no process start, every request solved."""

    def run():
        start = time.perf_counter()
        with connect(daemon.address) as client:
            results = client.solve_many(REQUESTS)
        TIMINGS["daemon cold"] = time.perf_counter() - start
        return results

    results = run_once(benchmark, run)
    assert all(r.valid for r in results)
    assert daemon.stats()["requests"]["cache_hits"] == 0
    TIMINGS["cold results"] = results


def test_serve_daemon_warm(benchmark, daemon, emit):
    """Second pass: served entirely from the shared cache, byte-identical."""

    def run():
        start = time.perf_counter()
        with connect(daemon.address) as client:
            results = client.solve_many(REQUESTS)
        TIMINGS["daemon warm"] = time.perf_counter() - start
        return results

    results = run_once(benchmark, run)
    cold = TIMINGS["cold results"]
    assert [r.to_json() for r in results] == [r.to_json() for r in cold]
    stats = daemon.stats()
    assert stats["requests"]["cache_hits"] >= len(REQUESTS)

    # The daemon passes write the same lines `repro batch` writes.
    served_bytes = "".join(r.to_json() + "\n" for r in results).encode()
    assert served_bytes == TIMINGS["one-shot results"]

    table = Table(
        title="Serve: one-shot CLI vs daemon cold vs daemon warm",
        headers=["path", "seconds", "speedup vs one-shot"],
    )
    one_shot = TIMINGS["one-shot CLI"]
    for label in ("one-shot CLI", "daemon cold", "daemon warm"):
        seconds = TIMINGS[label]
        speedup = one_shot / seconds if seconds > 0 else float("inf")
        table.add_row(label, f"{seconds:.3f}", f"{speedup:.1f}x")
    table.add_note(f"{len(REQUESTS)} deterministic etf requests, jobs=2, one connection")
    table.add_note("warm pass is byte-identical to cold and to the one-shot CLI output")
    emit(table)

    # The amortization claims: a warm daemon round trip must beat a fresh
    # interpreter (which pays startup + imports), and must not have invoked
    # any scheduler (every request was a cache hit, asserted above).
    assert TIMINGS["daemon warm"] < one_shot
