"""Table 2 — cost reduction of the base scheduler with NUMA effects.

Regenerates the paper's Table 2: the cost reduction of the framework
relative to Cilk and HDagg on a binary-tree NUMA hierarchy, for every
combination of the processor count P and the NUMA factor delta.
"""

from conftest import run_once

from repro.experiments import tables as paper_tables


def test_table02_numa(benchmark, main_datasets, fast_config, emit, jobs):
    def run():
        return paper_tables.make_table2_numa(
            main_datasets,
            P_values=(4, 8),
            delta_values=(2, 4),
            g=1,
            latency=5,
            config=fast_config,
            jobs=jobs,
        )

    table, _grid = run_once(benchmark, run)
    emit(table)
    # Shape check: positive improvement over Cilk in the NUMA setting.
    for row in table.rows:
        for cell in row[1:]:
            vs_cilk = float(cell.split("/")[0].strip().rstrip("%"))
            assert vs_cilk > 0.0
