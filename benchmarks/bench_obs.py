"""Disabled-tracer overhead guard for the observability layer.

The HC / comm-HC workloads here are byte-for-byte the ones in
``bench_core_micro.py`` — same fixtures, same benchmark *names* — but run
with the tracer explicitly uninstalled, i.e. on the no-op path every
untraced solve takes.  ``check_regression.py --overhead-suite bench_obs``
joins these numbers against the pre-instrumentation ``bench_core_micro``
entries of the committed baseline (``BENCH_pr9``), so the ratio isolates
the price of the disabled tracing hooks; the gate holds it under a 2%
geomean.

The remaining benchmarks pin the absolute cost of the observability
primitives themselves (no-op span entry, disabled-hook guard, counter and
histogram throughput) so a regression there is visible before it shows up
in a solver hot path.
"""

import pytest

from repro.baselines.hdagg import HDaggScheduler
from repro.graphs.fine import exp_dag
from repro.localsearch.comm_hill_climbing import comm_hill_climb
from repro.localsearch.hill_climbing import hill_climb
from repro.model.machine import BspMachine
from repro.obs import trace as trace_mod
from repro.obs.metrics import Counter, Histogram


@pytest.fixture(autouse=True)
def tracer_disabled():
    """Every benchmark here measures the *disabled* path."""
    trace_mod.uninstall()
    assert not trace_mod.enabled()
    yield
    trace_mod.uninstall()


@pytest.fixture(scope="module")
def dag():
    return exp_dag(10, k=3, q=0.25, seed=13)


@pytest.fixture(scope="module")
def machine():
    return BspMachine(P=8, g=3, l=5)


@pytest.fixture(scope="module")
def hdagg_schedule(dag, machine):
    return HDaggScheduler().schedule(dag, machine)


# ----------------------------------------------------------------------
# The instrumented solver hot paths, tracer off (joined against the
# pre-instrumentation bench_core_micro baseline by the overhead gate).
# ----------------------------------------------------------------------
def test_hill_climbing_hot_path(benchmark, hdagg_schedule):
    """The HC hot loop with its telemetry hooks compiled in but disabled."""
    result = benchmark.pedantic(
        lambda: hill_climb(hdagg_schedule), rounds=3, iterations=1
    )
    assert result.schedule.is_valid()
    assert result.final_cost <= result.initial_cost


def test_comm_hill_climbing(benchmark, hdagg_schedule):
    result = benchmark.pedantic(
        lambda: comm_hill_climb(hdagg_schedule), rounds=1, iterations=1
    )
    assert result.schedule.is_valid()


# ----------------------------------------------------------------------
# Absolute cost of the observability primitives
# ----------------------------------------------------------------------
def test_noop_span_entry(benchmark):
    """Entering/exiting the shared no-op span 1000 times."""

    def spin():
        for _ in range(1000):
            with trace_mod.span("x", k=1):
                pass

    benchmark(spin)
    assert trace_mod.span("a") is trace_mod.span("b")  # still the singleton


def test_disabled_hook_guard(benchmark):
    """The `if enabled():` guard instrumented code pays per hook site."""

    def spin():
        fired = 0
        for _ in range(1000):
            if trace_mod.enabled():
                fired += 1  # pragma: no cover - tracer is off
            trace_mod.event("e", cost=1.0)
        return fired

    assert benchmark(spin) == 0


def test_counter_inc_throughput(benchmark):
    counter = Counter("bench_counter")

    def spin():
        for _ in range(1000):
            counter.inc()

    benchmark(spin)
    assert counter.value >= 1000


def test_histogram_observe_throughput(benchmark):
    hist = Histogram("bench_hist", window=256)

    def spin():
        for k in range(1000):
            hist.observe(float(k))

    benchmark(spin)
    assert len(hist.values()) == 256
