"""Table 8 — cost reduction versus the ETF list scheduler on the tiny dataset.

Regenerates the paper's Table 8: on the tiny dataset ETF is the strongest
classical baseline, so the table reports the framework's improvement against
ETF for every (g, P) combination.
"""

from conftest import run_once

from repro.experiments import tables as paper_tables


def test_table08_vs_etf(benchmark, tiny_dataset, fast_config, emit):
    def run():
        return paper_tables.make_table8_vs_etf(
            tiny_dataset,
            P_values=(2, 4),
            g_values=(1, 5),
            latency=5,
            config=fast_config,
        )

    table = run_once(benchmark, run)
    emit(table)
    for row in table.rows:
        for cell in row[1:]:
            assert float(cell.rstrip("%")) > 0.0  # we beat ETF in every cell
