"""Figure 6 — stage cost ratios with NUMA effects, including the multilevel
scheduler.

Regenerates the paper's Figure 6 as a table: for each (P, delta) pair on the
binary-tree NUMA hierarchy, the geometric-mean cost ratio (normalized to
Cilk) of Cilk, HDagg, the initialization heuristics, HC+HCcs, the final ILP
stage, and the multilevel scheduler (ML).
"""

from conftest import run_once

from repro.experiments import tables as paper_tables


def test_fig06_numa_with_multilevel(benchmark, main_datasets, fast_config, multilevel_config, emit):
    def run():
        return paper_tables.make_figure6_numa_with_multilevel(
            main_datasets,
            P_values=(8,),
            delta_values=(2, 4),
            g=1,
            latency=5,
            config=fast_config,
            multilevel_config=multilevel_config,
        )

    table, _grid = run_once(benchmark, run)
    emit(table)
    # Shape checks: our base framework beats Cilk; with the highest delta the
    # multilevel scheduler is competitive with (or better than) the base
    # framework, mirroring the paper's crossover.
    rows = {row[0]: [float(x) for x in row[1:]] for row in table.rows}
    for label, (cilk, hdagg, init, hccs, ilp, ml) in rows.items():
        assert cilk == 1.0
        assert ilp < 1.0
    high_delta = [vals for label, vals in rows.items() if label.endswith("d=4")]
    assert high_delta and high_delta[0][5] <= high_delta[0][4] * 1.2
