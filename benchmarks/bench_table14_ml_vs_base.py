"""Table 14 — multilevel variants versus the base scheduling framework.

Regenerates the paper's Table 14: the geometric-mean cost ratio of the
multilevel scheduler (per coarsening variant) to the base framework's final
schedule, in the NUMA setting.  Values below 1 mean the multilevel approach
wins — in the paper this happens once the NUMA factor delta is large.
"""

from conftest import run_once

from repro.experiments import tables as paper_tables


def test_table14_ml_vs_base(benchmark, small_dataset, fast_config, multilevel_config, emit):
    datasets = {"small": small_dataset}

    def run():
        return paper_tables.make_tables_13_and_14_multilevel_detail(
            datasets,
            P_values=(8,),
            delta_values=(2, 4),
            g=1,
            latency=5,
            config=fast_config,
            multilevel_config=multilevel_config,
        )

    _table13, table14, _grid = run_once(benchmark, run)
    emit(table14)
    assert [row[0] for row in table14.rows] == ["C15", "C30", "C_opt"]
    ratios = [[float(x) for x in row[1:]] for row in table14.rows]
    # The paper's crossover: the ratio of ML to the base scheduler improves
    # (gets smaller) as delta grows — the last column is the high-delta one.
    copt = ratios[2]
    assert copt[-1] <= copt[0] + 0.1
    assert all(r > 0 for row in ratios for r in row)
