"""Benchmarks of the portfolio subsystem.

Two claims are demonstrated on the tiny/small datasets:

* **cached re-solve speedup** — a warm-cache portfolio solve (content-
  addressed hit, no scheduler invoked) is much faster than the cold solve
  that populated the cache, and returns a byte-identical result;
* **rules-mode quality** — the feature-rule portfolio tracks the best
  single registered heuristic per instance and never does worse than the
  worst one (the selection premise of the paper: no single scheduler
  dominates, so picking per instance beats committing to one).

Printed tables land in ``benchmarks/results/`` like the paper-table
benches.
"""

import time

import pytest

from conftest import run_once

from repro import api
from repro.experiments.report import Table, geometric_mean
from repro.model.machine import BspMachine
from repro.registry import make_scheduler
from repro.spec import ProblemSpec, SolveRequest

#: The single-scheduler field the rules portfolio is compared against.
HEURISTICS = ("cilk", "hdagg", "bl-est", "etf", "bspg", "source")


@pytest.fixture(scope="module")
def machine():
    return BspMachine(P=4, g=2, l=5)


def test_portfolio_cached_resolve_speedup(benchmark, tiny_dataset, machine, tmp_path_factory, emit):
    """Warm-cache re-solve: byte-identical results, order-of-magnitude faster."""
    cache_dir = tmp_path_factory.mktemp("portfolio-cache")
    requests = [
        SolveRequest(
            spec=ProblemSpec.from_instance(dag, machine),
            scheduler=f"portfolio(cache='{cache_dir}')",
        )
        for dag in tiny_dataset
    ]

    cold_start = time.perf_counter()
    cold = [api.solve(request) for request in requests]
    cold_seconds = time.perf_counter() - cold_start

    def warm_run():
        return [api.solve(request) for request in requests]

    warm = run_once(benchmark, warm_run)
    warm_seconds = sum(r.wall_seconds for r in warm)

    assert [r.to_json() for r in warm] == [r.to_json() for r in cold]

    table = Table(
        title="Portfolio cache: cold vs warm re-solve (tiny dataset)",
        headers=["metric", "value"],
    )
    table.add_row("instances", len(requests))
    table.add_row("cold solve seconds", f"{cold_seconds:.3f}")
    table.add_row("warm solve seconds", f"{warm_seconds:.3f}")
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    table.add_row("speedup", f"{speedup:.1f}x")
    table.add_note("warm results are byte-identical to the cold run")
    emit(table)
    # The warm pass must not re-run the schedulers; anything close to the
    # cold wall-clock means the cache did not serve.
    assert warm_seconds < cold_seconds


def test_portfolio_rules_vs_single_schedulers(benchmark, tiny_dataset, small_dataset, machine, emit):
    """Rules-mode quality: geometric-mean cost ratio vs each fixed heuristic."""
    datasets = {"tiny": tiny_dataset, "small": small_dataset}

    def run():
        costs = {}
        for name, dags in datasets.items():
            for dag in dags:
                per_instance = {
                    h: make_scheduler(h).schedule_checked(dag, machine).cost()
                    for h in HEURISTICS
                }
                portfolio = make_scheduler("portfolio")
                per_instance["portfolio"] = portfolio.schedule_checked(dag, machine).cost()
                per_instance["_chosen"] = portfolio.last_chosen
                costs[(name, dag.name)] = per_instance
        return costs

    costs = run_once(benchmark, run)

    table = Table(
        title="Portfolio rules vs single schedulers (geomean cost ratio, lower is better)",
        headers=["algorithm"] + [name for name in datasets],
    )
    for algorithm in HEURISTICS + ("portfolio",):
        row = [algorithm]
        for dataset in datasets:
            ratios = [
                per[algorithm] / per["portfolio"]
                for key, per in costs.items()
                if key[0] == dataset and per["portfolio"] > 0
            ]
            row.append(f"{geometric_mean(ratios):.3f}")
        table.add_row(*row)
    chosen = sorted({per["_chosen"] for per in costs.values()})
    table.add_note("ratios are relative to the portfolio (1.000)")
    table.add_note(f"schedulers chosen by the rules: {', '.join(chosen)}")
    emit(table)

    # Acceptance shape: never worse than the worst heuristic, per instance.
    for key, per in costs.items():
        worst = max(per[h] for h in HEURISTICS)
        assert per["portfolio"] <= worst, (key, per)
