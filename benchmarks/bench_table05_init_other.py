"""Table 5 — which initialization heuristic wins on exp / cg / kNN instances.

Regenerates the paper's Table 5: for the deeper training instances, how many
times each initialization heuristic produces the cheapest starting schedule,
split by processor count and DAG size bucket.
"""

from conftest import run_once

from repro.experiments import tables as paper_tables


def test_table05_initializers_other(benchmark, training_set, fast_config, emit):
    non_spmv = [d for d in training_set if "spmv" not in d.name]

    def run():
        return paper_tables.make_tables_4_and_5_initializers(
            non_spmv,
            P_values=(2, 4),
            g_values=(1, 3),
            latency=5,
            config=fast_config,
        )

    _table4, table5 = run_once(benchmark, run)
    emit(table5)
    assert len(table5.rows) == 3  # one row per size bucket
    assert any(cell != "-" for row in table5.rows for cell in row[1:])
