"""Table 6 — per-(g, P, dataset) improvement without NUMA effects.

Regenerates the paper's Table 6: the cost reduction of the framework versus
Cilk and HDagg for every combination of g, P and dataset.
"""

from conftest import run_once

from repro.experiments import tables as paper_tables


def test_table06_no_numa_detail(benchmark, main_datasets, fast_config, emit):
    def run():
        return paper_tables.make_table6_no_numa_detail(
            main_datasets,
            P_values=(2, 4),
            g_values=(1, 5),
            latency=5,
            config=fast_config,
        )

    table, _grid = run_once(benchmark, run)
    emit(table)
    assert len(table.rows) == len(main_datasets)
    assert len(table.headers) == 1 + 2 * 2
