"""Benchmarks of the pull-based distributed batch runner.

Three measurements over the same deterministic request batch:

* **direct batch** — ``api.solve_many`` in-process, the baseline every
  queued run is compared against (and must match byte-for-byte);
* **queued, one worker** — the batch fanned out through a directory queue
  with only the inline worker draining it: the full protocol overhead
  (envelope writes, atomic claims, result files, polling) with zero
  parallelism to hide it;
* **queued, two workers** — the same batch with one external
  ``repro worker`` process racing the inline worker on the shared queue.

A fourth pass demonstrates the shared-cache composition: portfolio
requests through the queue, cold then warm, where the warm pass serves
every request from the solution cache the cold pass populated.

Printed tables land in ``benchmarks/results/`` like the paper-table
benches.
"""

import os
import subprocess
import sys
import time

from conftest import run_once

from repro import api
from repro.experiments.report import Table
from repro.spec import DagSpec, MachineSpec, ProblemSpec, SolveRequest

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)

#: Deterministic requests (etf: fast, registry-deterministic, cache-free).
REQUESTS = [
    SolveRequest(
        spec=ProblemSpec(
            dag=DagSpec.generator("spmv", n=16, q=0.25, seed=seed),
            machine=MachineSpec(P=4, g=2, l=5),
        ),
        scheduler="etf",
    )
    for seed in range(6)
]

#: Wall-clock of each pass, collected across tests for the summary table.
TIMINGS = {}


def test_distrib_direct_batch(benchmark):
    """The in-process baseline the queued paths must match byte-for-byte."""

    def run():
        start = time.perf_counter()
        results = api.solve_many(REQUESTS)
        TIMINGS["direct"] = time.perf_counter() - start
        return results

    results = run_once(benchmark, run)
    assert all(r.valid for r in results)
    TIMINGS["direct results"] = [r.to_json() for r in results]


def test_distrib_queued_single_worker(benchmark, tmp_path_factory):
    """Queue protocol overhead: enqueue + inline drain, no extra workers."""
    queue_dir = tmp_path_factory.mktemp("distrib-bench-q1")

    def run():
        start = time.perf_counter()
        results = api.solve_many(
            REQUESTS, queue_dir=queue_dir / "q", queue_timeout=300
        )
        TIMINGS["queued 1 worker"] = time.perf_counter() - start
        return results

    results = run_once(benchmark, run)
    assert [r.to_json() for r in results] == TIMINGS["direct results"]


def test_distrib_queued_two_workers(benchmark, tmp_path_factory, emit):
    """One external ``repro worker`` process races the inline worker."""
    queue_dir = tmp_path_factory.mktemp("distrib-bench-q2") / "q"
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))

    def run():
        start = time.perf_counter()
        external = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                str(queue_dir),
                "--max-idle",
                "3",
            ],
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            results = api.solve_many(REQUESTS, queue_dir=queue_dir, queue_timeout=300)
        finally:
            external.wait(timeout=60)
        TIMINGS["queued 2 workers"] = time.perf_counter() - start
        return results

    results = run_once(benchmark, run)
    assert [r.to_json() for r in results] == TIMINGS["direct results"]

    table = Table(
        title="Distributed queue: direct vs queued (1 and 2 workers)",
        headers=["path", "seconds", "vs direct"],
    )
    direct = TIMINGS["direct"]
    for label in ("direct", "queued 1 worker", "queued 2 workers"):
        seconds = TIMINGS[label]
        ratio = seconds / direct if direct > 0 else float("inf")
        table.add_row(label, f"{seconds:.3f}", f"{ratio:.2f}x")
    table.add_note(f"{len(REQUESTS)} deterministic etf requests, shared queue directory")
    table.add_note("every queued pass is byte-identical to the direct batch")
    emit(table)


def test_distrib_queued_warm_cache(benchmark, tmp_path_factory, emit):
    """Queued portfolio batch: the warm pass serves from the shared cache."""
    cache_dir = tmp_path_factory.mktemp("distrib-bench-cache")
    requests = [
        SolveRequest(
            spec=ProblemSpec(
                dag=DagSpec.generator("spmv", n=12, q=0.25, seed=seed),
                machine=MachineSpec(P=4, g=2, l=5),
            ),
            scheduler=f"portfolio(cache='{cache_dir}')",
        )
        for seed in range(4)
    ]
    cold_start = time.perf_counter()
    cold = api.solve_many(
        requests, queue_dir=tmp_path_factory.mktemp("distrib-bench-qc") / "q",
        queue_timeout=300,
    )
    cold_seconds = time.perf_counter() - cold_start

    def warm_run():
        return api.solve_many(
            requests, queue_dir=tmp_path_factory.mktemp("distrib-bench-qw") / "q",
            queue_timeout=300,
        )

    warm_start = time.perf_counter()
    warm = run_once(benchmark, warm_run)
    warm_seconds = time.perf_counter() - warm_start

    assert [r.to_json() for r in warm] == [r.to_json() for r in cold]

    table = Table(
        title="Distributed queue + shared cache: cold vs warm portfolio batch",
        headers=["metric", "value"],
    )
    table.add_row("requests", len(requests))
    table.add_row("cold queued seconds", f"{cold_seconds:.3f}")
    table.add_row("warm queued seconds", f"{warm_seconds:.3f}")
    table.add_note("warm results are byte-identical to the cold queued run")
    emit(table)
