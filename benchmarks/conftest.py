"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation.
To keep the harness runnable on a laptop / CI machine, the default datasets
are the ``smoke``-scale versions (a handful of instances per dataset, a few
hundred nodes at most) and the pipeline runs with the ``fast`` configuration.
The *shape* of the results (who wins, roughly by how much, how the gap grows
with g, P and delta) reproduces the paper; absolute numbers do not, and are
recorded against the paper's in EXPERIMENTS.md.

Set the environment variable ``REPRO_BENCH_SCALE`` to ``reduced`` or
``paper`` to run the heavier versions.
"""

from __future__ import annotations

import os
from typing import Dict, List

import pytest

from repro.experiments.datasets import build_dataset, build_training_set
from repro.graphs.dag import ComputationalDAG
from repro.pipeline.config import MultilevelConfig, PipelineConfig

SCALE = os.environ.get("REPRO_BENCH_SCALE", "smoke")

#: Worker processes of the experiment engine (1 = serial); aggregates are
#: identical for every value, only the wall-clock changes.
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

#: Instances per dataset used by the benchmarks at each scale.
_MAX_INSTANCES = {"smoke": 2, "reduced": 8, "paper": None}


def _instances(name: str) -> List[ComputationalDAG]:
    return build_dataset(name, scale=SCALE, max_instances=_MAX_INSTANCES[SCALE], seed=7)


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return SCALE


@pytest.fixture(scope="session")
def jobs() -> int:
    """Worker count for benchmarks ported to the parallel experiment engine."""
    return JOBS


@pytest.fixture(scope="session")
def fast_config() -> PipelineConfig:
    config = PipelineConfig.fast()
    if SCALE != "smoke":
        config = PipelineConfig()
    return config


@pytest.fixture(scope="session")
def heuristics_config() -> PipelineConfig:
    config = PipelineConfig.heuristics_only()
    if SCALE == "smoke":
        config.hc_time_limit = 5.0
        config.hccs_time_limit = 1.0
    return config


@pytest.fixture(scope="session")
def multilevel_config(fast_config) -> MultilevelConfig:
    return MultilevelConfig(
        coarsening_ratios=(0.3, 0.15),
        min_coarse_nodes=8,
        hc_moves_per_refinement=50,
        base_pipeline=fast_config,
    )


@pytest.fixture(scope="session")
def tiny_dataset() -> List[ComputationalDAG]:
    return _instances("tiny")


@pytest.fixture(scope="session")
def small_dataset() -> List[ComputationalDAG]:
    return _instances("small")


@pytest.fixture(scope="session")
def medium_dataset() -> List[ComputationalDAG]:
    return _instances("medium")


@pytest.fixture(scope="session")
def large_dataset() -> List[ComputationalDAG]:
    return _instances("large")


@pytest.fixture(scope="session")
def huge_dataset() -> List[ComputationalDAG]:
    return _instances("huge")


@pytest.fixture(scope="session")
def main_datasets(tiny_dataset, small_dataset) -> Dict[str, List[ComputationalDAG]]:
    """The dataset dictionary used by the no-NUMA and NUMA grids.

    At smoke scale only the two smallest datasets are swept (the per-dataset
    benches cover the others); at larger scales medium/large join in.
    """
    datasets = {"tiny": tiny_dataset, "small": small_dataset}
    if SCALE != "smoke":
        datasets["medium"] = _instances("medium")
        datasets["large"] = _instances("large")
    return datasets


@pytest.fixture(scope="session")
def training_set() -> List[ComputationalDAG]:
    return build_training_set(scale=SCALE if SCALE in ("paper", "reduced", "smoke") else "smoke")


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def emit():
    """Print a regenerated table and persist it under ``benchmarks/results/``.

    pytest captures stdout by default, so the persisted files are the easy
    way to look at the regenerated tables after a benchmark run (they are
    also the source of the measured numbers recorded in EXPERIMENTS.md).
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _emit(*tables) -> None:
        for table in tables:
            text = table.to_text()
            print("\n" + text + "\n")
            slug = "".join(c if c.isalnum() else "_" for c in table.title.split(":")[0]).strip("_")
            path = os.path.join(RESULTS_DIR, f"{slug}.txt")
            with open(path, "w") as handle:
                handle.write(text + "\n")

    return _emit
