"""Table 7 — per-algorithm cost ratios (normalized to Cilk) for g = 5.

Regenerates the paper's Table 7: the geometric-mean cost ratio of BL-EST,
ETF, Cilk, HDagg and every stage of our framework, per dataset, for the
highest communication cost g = 5.
"""

from conftest import run_once

from repro.experiments import tables as paper_tables


def test_table07_algorithm_ratios(benchmark, main_datasets, fast_config, emit):
    def run():
        return paper_tables.make_table7_algorithm_ratios(
            main_datasets,
            P_values=(2, 4),
            g=5,
            latency=5,
            config=fast_config,
        )

    table = run_once(benchmark, run)
    emit(table)
    labels = table.headers[1:]
    for row in table.rows:
        ratios = dict(zip(labels, (float(x) for x in row[1:])))
        # Shape checks mirroring the paper: Cilk is the normalization unit,
        # our final stage beats every baseline, and the framework stages are
        # monotone (Init >= HCcs >= ILPpart >= ILP).
        assert ratios["Cilk"] == 1.0
        assert ratios["ILP"] <= min(ratios["Cilk"], ratios["HDagg"]) + 1e-9
        assert ratios["ILP"] <= ratios["ILPpart"] + 1e-9 <= ratios["HCcs"] + 1e-6 <= ratios["Init"] + 1e-6
