"""Table 10 — per-(P, delta, dataset) improvement with NUMA effects.

Regenerates the paper's Table 10: the framework's cost reduction versus Cilk
and HDagg for every dataset and every (P, delta) combination of the NUMA
hierarchy (g = 1, l = 5).
"""

from conftest import run_once

from repro.experiments import tables as paper_tables


def test_table10_numa_detail(benchmark, main_datasets, fast_config, emit):
    def run():
        return paper_tables.make_table10_numa_detail(
            main_datasets,
            P_values=(8,),
            delta_values=(2, 3, 4),
            g=1,
            latency=5,
            config=fast_config,
        )

    table, _grid = run_once(benchmark, run)
    emit(table)
    assert len(table.rows) == len(main_datasets)
    # The paper's trend within each dataset: improvement grows with delta.
    for row in table.rows:
        reductions = [float(cell.split("/")[0].strip().rstrip("%")) for cell in row[1:]]
        assert reductions[-1] >= reductions[0] - 5.0
