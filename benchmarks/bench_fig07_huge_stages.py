"""Figure 7 — stage cost ratios on the huge dataset, split by P.

Regenerates the paper's Figure 7 as a table: the geometric-mean cost ratios
(normalized to Cilk) of Cilk, HDagg, the best initializer and the schedule
after HC+HCcs on the huge dataset, for each processor count.
"""

from conftest import run_once

from repro.experiments import tables as paper_tables


def test_fig07_huge_stages(benchmark, huge_dataset, heuristics_config, emit):
    def run():
        return paper_tables.make_figure7_huge_stages(
            huge_dataset,
            P_values=(4, 8),
            g_values=(1, 5),
            latency=5,
            config=heuristics_config,
        )

    table = run_once(benchmark, run)
    emit(table)
    for row in table.rows:
        cilk, hdagg, init, hccs = (float(x) for x in row[1:])
        assert cilk == 1.0
        assert hccs <= init + 1e-6  # local search only improves the initializers
        assert hccs < 1.0  # and the result beats Cilk
