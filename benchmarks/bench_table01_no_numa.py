"""Table 1 — cost reduction vs Cilk and HDagg without NUMA effects.

Regenerates the paper's Table 1 (both halves): the geometric-mean cost
reduction of the full scheduling framework relative to the Cilk and HDagg
baselines, split by (g, P) and by (g, dataset).
"""

from conftest import run_once

from repro.experiments import tables as paper_tables


P_VALUES = (2, 4)
G_VALUES = (1, 5)
LATENCY = 5


def test_table01_no_numa(benchmark, main_datasets, fast_config, emit, jobs):
    def run():
        return paper_tables.make_table1_no_numa(
            main_datasets,
            P_values=P_VALUES,
            g_values=G_VALUES,
            latency=LATENCY,
            config=fast_config,
            jobs=jobs,
        )

    by_p, by_dataset, _grid = run_once(benchmark, run)
    emit(by_p, by_dataset)
    # Reproduction check (shape, not absolute numbers): the framework must
    # reduce the cost relative to both baselines on average.
    for row in by_p.rows:
        for cell in row[1:]:
            vs_cilk = float(cell.split("/")[0].strip().rstrip("%"))
            assert vs_cilk > 0.0
