"""Table 4 — which initialization heuristic wins on spmv training instances.

Regenerates the paper's Table 4: for every processor count, how many of the
shallow spmv training instances are won by each of the initialization
heuristics (BSPg, Source, ILPinit).
"""

from conftest import run_once

from repro.experiments import tables as paper_tables


def test_table04_initializers_spmv(benchmark, training_set, fast_config, emit):
    spmv_only = [d for d in training_set if "spmv" in d.name]

    def run():
        return paper_tables.make_tables_4_and_5_initializers(
            spmv_only,
            P_values=(2, 4),
            g_values=(1, 5),
            latency=5,
            config=fast_config,
        )

    table4, _table5 = run_once(benchmark, run)
    emit(table4)
    # Shape check: every P row records a winner for every spmv instance.
    assert len(table4.rows) == 2
    for row in table4.rows:
        assert row[1] != "-"
