"""Table 11 — the huge dataset without NUMA (heuristics + local search only).

Regenerates the paper's Table 11: on the largest DAGs the ILP stages are
skipped and only the initializers plus HC/HCcs run; the table reports the
cost reduction versus Cilk and HDagg per (g, P).
"""

from conftest import run_once

from repro.experiments import tables as paper_tables


def test_table11_huge(benchmark, huge_dataset, heuristics_config, emit):
    def run():
        return paper_tables.make_table11_huge(
            huge_dataset,
            P_values=(4, 8),
            g_values=(1, 5),
            latency=5,
            config=heuristics_config,
        )

    table, _grid = run_once(benchmark, run)
    emit(table)
    for row in table.rows:
        for cell in row[1:]:
            vs_cilk = float(cell.split("/")[0].strip().rstrip("%"))
            assert vs_cilk > 0.0  # still beats Cilk without any ILP stage
