"""Table 9 — the effect of the latency parameter on the improvement.

Regenerates the paper's Table 9: the framework's cost reduction versus Cilk
and HDagg on the medium dataset for g = 1, P = 8 and latency values
l in {2, 5, 10, 20}.  The paper's observation is that the improvement grows
(slowly) with the latency.
"""

from conftest import run_once

from repro.experiments import tables as paper_tables


def test_table09_latency(benchmark, small_dataset, fast_config, emit):
    def run():
        return paper_tables.make_table9_latency(
            small_dataset,
            latencies=(2, 5, 10, 20),
            P=4,
            g=1,
            config=fast_config,
        )

    table = run_once(benchmark, run)
    emit(table)
    reductions = [float(row[1].split("/")[0].strip().rstrip("%")) for row in table.rows]
    assert len(reductions) == 4
    assert all(r > 0 for r in reductions)
    # The trend of the paper: higher latency -> at least as large improvement
    # (allow a small tolerance, the trend is noisy at reduced scale).
    assert reductions[-1] >= reductions[0] - 5.0
