"""The pull-based queue worker: claim, solve, answer, repeat.

A worker drains one :class:`~repro.distrib.queue.DirectoryQueue` until it is
empty (or keeps polling with ``max_idle > 0``), solving every claimed
request through the same tolerant execution path as ``repro batch`` — so a
result file carries byte-for-byte the JSON the one-shot CLI would have
printed for that request.  Any number of workers on any number of hosts may
drain the same queue; the atomic-claim protocol guarantees each task is
executed by exactly one of them, and a shared solution cache (via
``--cache-dir`` / ``REPRO_CACHE_DIR``) lets all of them reuse each other's
solves.

Failure taxonomy (mirrors the batch CLI):

* scheduler failure / invalid schedule → an *answered* result with
  ``valid=False`` (tolerant execution; never retried),
* request that cannot be constructed (unknown scheduler, unbuildable DAG) →
  an answered invalid result via
  :func:`repro.api.broken_request_result` (never retried),
* anything unexpected (corrupt envelope, crash in the machinery) → the task
  is requeued with a bumped attempt counter and dead-lettered to ``failed/``
  after ``max_attempts``.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Union

from ..obs import trace as _trace
from ..obs.metrics import Metrics
from .queue import DEFAULT_MAX_ATTEMPTS, DirectoryQueue, Envelope, PathLike

__all__ = ["WorkerStats", "run_worker", "solve_envelope"]


class WorkerStats:
    """What one worker run did (the ``repro worker`` exit report).

    Backed by a per-run :class:`~repro.obs.metrics.Metrics` registry (so a
    long-running worker can be scraped alongside the daemon); the historical
    integer attributes are read-only properties over the counters, mutated
    through the ``note_*`` methods.
    """

    def __init__(self) -> None:
        self.metrics = Metrics()
        self._solved = self.metrics.counter(
            "repro_worker_solved_total", help="Tasks answered with a valid result"
        )
        self._invalid = self.metrics.counter(
            "repro_worker_invalid_total", help="Tasks answered with an invalid result"
        )
        self._retried = self.metrics.counter(
            "repro_worker_retried_total", help="Tasks requeued after a machinery failure"
        )
        self._dead_lettered = self.metrics.counter(
            "repro_worker_dead_lettered_total", help="Tasks moved to the dead-letter dir"
        )
        self._scans = self.metrics.counter(
            "repro_worker_scans_total", help="Queue claim attempts"
        )
        self.errors: List[str] = []

    @property
    def solved(self) -> int:
        return int(self._solved.value)

    @property
    def invalid(self) -> int:
        return int(self._invalid.value)

    @property
    def retried(self) -> int:
        return int(self._retried.value)

    @property
    def dead_lettered(self) -> int:
        return int(self._dead_lettered.value)

    @property
    def scans(self) -> int:
        return int(self._scans.value)

    @property
    def answered(self) -> int:
        return self.solved + self.invalid

    def note_solved(self) -> None:
        self._solved.inc()

    def note_invalid(self) -> None:
        self._invalid.inc()

    def note_retried(self, error: str) -> None:
        self.errors.append(error)
        self._retried.inc()

    def note_dead_lettered(self, error: Optional[str] = None, count: int = 1) -> None:
        if error is not None:
            self.errors.append(error)
        self._dead_lettered.inc(count)

    def note_scan(self) -> None:
        self._scans.inc()


def solve_envelope(envelope: Envelope):
    """Solve one claimed envelope tolerantly; returns a ``SolveResult``.

    Raises only on machinery failures (which the caller turns into a retry /
    dead-letter); request-level failures come back as invalid results.
    """
    from ..api import broken_request_result, to_solve_result
    from ..experiments.runner import (
        REQUEST_BUILD_FAILURES,
        WorkItem,
        execute_work_item_tolerant,
    )
    from ..spec import SpecError

    try:
        request = envelope.build_request()
    except (SpecError, KeyError, TypeError, ValueError) as exc:
        raise RuntimeError(f"malformed solve request: {exc}") from exc
    try:
        item = WorkItem.from_request(request)
    except REQUEST_BUILD_FAILURES as exc:
        return broken_request_result(request, exc)
    return to_solve_result(item, execute_work_item_tolerant(item))


def run_worker(
    queue_dir: PathLike,
    *,
    max_idle: float = 0.0,
    poll_interval: float = 0.2,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    max_tasks: Optional[int] = None,
    solver: Optional[Callable[[Envelope], object]] = None,
    log: Optional[Callable[[str], None]] = None,
) -> WorkerStats:
    """Drain a queue directory; return the per-worker statistics.

    ``max_idle = 0`` (the default) exits as soon as one full scan finds no
    claimable work — the drain mode the CI smoke job and ``solve_many``'s
    inline worker use.  ``max_idle > 0`` keeps polling every
    ``poll_interval`` seconds until the queue stays empty for ``max_idle``
    seconds — the long-running multi-host mode.  ``max_tasks`` bounds the
    number of claims (testing aid).  ``solver`` overrides the solve function
    (testing aid; defaults to :func:`solve_envelope`).
    """
    queue = DirectoryQueue(queue_dir)
    queue.ensure_layout()
    solve = solver if solver is not None else solve_envelope
    stats = WorkerStats()
    idle_since: Optional[float] = None
    while True:
        if max_tasks is not None and stats.answered + stats.dead_lettered >= max_tasks:
            break
        envelope = queue.claim_next()
        stats.note_scan()
        if envelope is None:
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if now - idle_since >= max_idle:
                break
            time.sleep(poll_interval)
            continue
        idle_since = None
        try:
            with _trace.span("worker_task", task=str(envelope.id)) as tspan:
                result = solve(envelope)
                if _trace.enabled():
                    tspan.annotate(valid=bool(getattr(result, "valid", True)))
        except Exception as exc:  # machinery failure: retry, then dead-letter
            error = f"{type(exc).__name__}: {exc}"
            if queue.retry_or_fail(envelope, error, max_attempts=max_attempts):
                stats.note_retried(error)
                if log is not None:
                    log(f"task {envelope.id} failed (attempt {envelope.attempts + 1}), requeued: {error}")
            else:
                stats.note_dead_lettered(error)
                if log is not None:
                    log(f"task {envelope.id} dead-lettered after {envelope.attempts + 1} attempts: {error}")
            continue
        queue.complete(envelope, result)  # type: ignore[arg-type]
        if getattr(result, "valid", True):
            stats.note_solved()
        else:
            stats.note_invalid()
        if log is not None:
            log(f"task {envelope.id} answered ({'ok' if getattr(result, 'valid', True) else 'invalid'})")
    if queue.raw_dead_letters:
        stats.note_dead_lettered(count=queue.raw_dead_letters)
    return stats
