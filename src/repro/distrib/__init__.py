"""Pull-based distributed batch running over a shared-filesystem queue.

The missing half of ROADMAP item 5: ``solve_many`` batches and sweeps can
fan out across hosts by sharing a directory queue (claim via atomic rename,
retry counter, dead-letter) and one solution cache.  See
:mod:`repro.distrib.queue` for the on-disk protocol and
:mod:`repro.distrib.worker` for the worker loop; the CLI surface is
``repro enqueue`` / ``repro worker`` / ``repro collect``, and
:func:`repro.api.solve_many` takes a ``queue_dir=`` to run a whole batch
through the queue (participating inline, accelerated by any extra workers).
"""

from .queue import (
    DEFAULT_MAX_ATTEMPTS,
    ENVELOPE_FORMAT_VERSION,
    DirectoryQueue,
    Envelope,
    QueueError,
)
from .worker import WorkerStats, run_worker, solve_envelope

__all__ = [
    "DEFAULT_MAX_ATTEMPTS",
    "ENVELOPE_FORMAT_VERSION",
    "DirectoryQueue",
    "Envelope",
    "QueueError",
    "WorkerStats",
    "run_worker",
    "solve_envelope",
]
