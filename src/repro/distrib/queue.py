"""Filesystem-backed work queue for the distributed batch runner.

The queue is a directory shared by any number of producer and worker
processes — typically over NFS or another shared filesystem, so several
hosts can drain one batch against one shared solution cache.  Everything is
plain files and atomic rename, no daemon and no locking service:

.. code-block:: text

    <queue>/
      pending/    <id>.json    work waiting for a worker (one request each)
      claimed/    <id>.json    work a worker has claimed (os.rename from pending)
      results/    <id>.json    answered work (written via temp + os.replace)
      failed/     <id>.json    dead-lettered work (gave up after max attempts)
      manifests/  <name>.json  batch manifests (ordered id lists, see enqueue)

Claiming is the only coordination point: a worker claims a task by renaming
``pending/<id>.json`` to ``claimed/<id>.json``.  ``os.rename`` within one
filesystem is atomic, so exactly one of any number of racing workers wins;
the losers see ``FileNotFoundError`` and move on.  A worker that finishes
writes ``results/<id>.json`` (temp file + ``os.replace``, same torn-write
protection as the solution cache) and only then removes the claim — a crash
between the two leaves a claim that :func:`recover_claimed` can requeue, and
re-answering an id is idempotent because results are keyed by id.

Each task file is an *envelope*: the serialized
:class:`~repro.spec.SolveRequest` plus the queue bookkeeping (id, attempt
counter).  A task whose envelope cannot even be parsed — or that fails
unexpectedly inside the worker machinery — is retried up to
``max_attempts`` times and then dead-lettered to ``failed/`` with the error
attached.  A request whose *scheduler* fails is not retried: tolerant
execution answers it with an invalid result, exactly like ``repro batch``.
"""

from __future__ import annotations

import json
import os
import tempfile
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..spec import SolveRequest, SolveResult, SpecError

__all__ = [
    "DEFAULT_MAX_ATTEMPTS",
    "ENVELOPE_FORMAT_VERSION",
    "DirectoryQueue",
    "Envelope",
    "QueueError",
]

#: Version header of the envelope format; a worker refuses (dead-letters)
#: envelopes written by an incompatible producer instead of guessing.
ENVELOPE_FORMAT_VERSION = 1

#: Attempts before a task is dead-lettered (the first run counts as one).
DEFAULT_MAX_ATTEMPTS = 3

PathLike = Union[str, Path]

_SUBDIRS = ("pending", "claimed", "results", "failed", "manifests")


class QueueError(RuntimeError):
    """Raised for malformed queue directories and unanswerable batches."""


@dataclass(frozen=True)
class Envelope:
    """One task in flight: a solve request plus queue bookkeeping."""

    id: str
    request: Dict[str, object]
    attempts: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": ENVELOPE_FORMAT_VERSION,
            "id": self.id,
            "attempts": self.attempts,
            "request": self.request,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Envelope":
        if not isinstance(data, dict) or data.get("format") != ENVELOPE_FORMAT_VERSION:
            raise QueueError(f"unsupported task envelope: {data!r:.120}")
        try:
            return cls(
                id=str(data["id"]),
                request=dict(data["request"]),  # type: ignore[call-overload]
                attempts=int(data.get("attempts", 0)),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise QueueError(f"malformed task envelope: {exc}") from exc

    def build_request(self) -> SolveRequest:
        """The embedded :class:`~repro.spec.SolveRequest` (raises SpecError)."""
        return SolveRequest.from_dict(self.request)


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write ``payload`` to ``path`` via temp file + ``os.replace``."""
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, sort_keys=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=".json")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class DirectoryQueue:
    """One shared work-queue directory (see module docstring for layout)."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        #: Envelopes this instance dead-lettered because they could not even
        #: be parsed (poisoned files).  A worker folds this into its exit
        #: report — such tasks never surface as claims, so the drain loop
        #: cannot count them itself.
        self.raw_dead_letters = 0

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    @property
    def pending_dir(self) -> Path:
        return self.root / "pending"

    @property
    def claimed_dir(self) -> Path:
        return self.root / "claimed"

    @property
    def results_dir(self) -> Path:
        return self.root / "results"

    @property
    def failed_dir(self) -> Path:
        return self.root / "failed"

    @property
    def manifests_dir(self) -> Path:
        return self.root / "manifests"

    def ensure_layout(self) -> None:
        """Create the queue subdirectories (idempotent, race-safe)."""
        for name in _SUBDIRS:
            (self.root / name).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Producing
    # ------------------------------------------------------------------
    def enqueue(
        self,
        requests: Sequence[SolveRequest],
        *,
        manifest: Optional[str] = None,
    ) -> List[str]:
        """Enqueue a batch; returns the task ids in request order.

        Every request becomes one ``pending/<id>.json`` envelope.  Ids embed
        a fresh batch token, so enqueueing the same JSONL twice queues (and
        answers) it twice — the queue deduplicates *claims*, not content.
        With ``manifest`` the ordered id list is also written to
        ``manifests/<manifest>.json`` so a collector (``repro collect``) can
        reassemble results in request order later.
        """
        self.ensure_layout()
        batch = uuid.uuid4().hex[:12]
        ids: List[str] = []
        for index, request in enumerate(requests):
            task_id = f"{batch}-{index:06d}"
            envelope = Envelope(id=task_id, request=request.to_dict())
            _atomic_write_json(self.pending_dir / f"{task_id}.json", envelope.to_dict())
            ids.append(task_id)
        if manifest is not None:
            self.write_manifest(manifest, ids)
        return ids

    def write_manifest(self, name: str, ids: Sequence[str]) -> Path:
        path = self.manifests_dir / f"{name}.json"
        _atomic_write_json(path, {"format": ENVELOPE_FORMAT_VERSION, "ids": list(ids)})
        return path

    def read_manifest(self, name: str) -> List[str]:
        path = self.manifests_dir / f"{name}.json"
        try:
            data = json.loads(path.read_text())
            return [str(i) for i in data["ids"]]
        except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
            raise QueueError(f"cannot read manifest {path}: {exc}") from exc

    # ------------------------------------------------------------------
    # Claiming (the workers' side)
    # ------------------------------------------------------------------
    def pending_ids(self) -> List[str]:
        """Ids currently waiting, sorted (deterministic claim order)."""
        try:
            names = sorted(p.stem for p in self.pending_dir.iterdir() if p.suffix == ".json")
        except OSError:
            return []
        return names

    def claim(self, task_id: str) -> Optional[Envelope]:
        """Atomically claim one pending task; ``None`` if another worker won.

        The claim is a single ``os.rename`` of the pending file into
        ``claimed/`` — on one filesystem exactly one racing claimant
        succeeds.  A claimed envelope that does not parse is dead-lettered
        immediately (raising would wedge the queue on one poisoned file).
        """
        source = self.pending_dir / f"{task_id}.json"
        target = self.claimed_dir / f"{task_id}.json"
        self.claimed_dir.mkdir(parents=True, exist_ok=True)
        try:
            os.rename(source, target)
        except OSError:
            return None  # lost the race (or the file vanished): not ours
        try:
            envelope = Envelope.from_dict(json.loads(target.read_text()))
        except (OSError, json.JSONDecodeError, QueueError) as exc:
            self._dead_letter_raw(task_id, target, f"unreadable envelope: {exc}")
            return None
        if envelope.id != task_id:
            self._dead_letter_raw(task_id, target, "envelope id does not match filename")
            return None
        return envelope

    def claim_next(self) -> Optional[Envelope]:
        """Claim the first available pending task (scan, race, repeat)."""
        for task_id in self.pending_ids():
            envelope = self.claim(task_id)
            if envelope is not None:
                return envelope
        return None

    # ------------------------------------------------------------------
    # Answering
    # ------------------------------------------------------------------
    def complete(self, envelope: Envelope, result: SolveResult) -> Path:
        """Answer a claimed task: write the result, then release the claim.

        The result is committed *before* the claim is removed, so a crash in
        between leaves a claim whose re-execution (after
        :func:`recover_claimed`) just overwrites ``results/<id>.json`` with
        the same id — answered exactly once as far as any collector sees.
        """
        path = self.results_dir / f"{envelope.id}.json"
        _atomic_write_json(
            path,
            {
                "format": ENVELOPE_FORMAT_VERSION,
                "id": envelope.id,
                "attempts": envelope.attempts + 1,
                "result": result.to_dict(),
            },
        )
        self._release_claim(envelope.id)
        return path

    def retry_or_fail(
        self, envelope: Envelope, error: str, *, max_attempts: int = DEFAULT_MAX_ATTEMPTS
    ) -> bool:
        """Requeue a failed claim, or dead-letter it after ``max_attempts``.

        Returns ``True`` when the task was requeued for another attempt.
        """
        attempts = envelope.attempts + 1
        if attempts >= max_attempts:
            self._dead_letter(envelope, attempts, error)
            return False
        # Bump the attempt counter inside the *claimed* file, then rename it
        # back to pending: the task is in exactly one place at every instant
        # (a crash in between leaves a recoverable claim), and no pending
        # copy ever coexists with the claim for another worker to grab.
        bumped = Envelope(id=envelope.id, request=envelope.request, attempts=attempts)
        claimed = self.claimed_dir / f"{envelope.id}.json"
        _atomic_write_json(claimed, bumped.to_dict())
        self.pending_dir.mkdir(parents=True, exist_ok=True)
        try:
            os.rename(claimed, self.pending_dir / f"{envelope.id}.json")
        except OSError:
            return False  # claim vanished (operator intervention): give up
        return True

    def _dead_letter(self, envelope: Envelope, attempts: int, error: str) -> None:
        _atomic_write_json(
            self.failed_dir / f"{envelope.id}.json",
            {
                "format": ENVELOPE_FORMAT_VERSION,
                "id": envelope.id,
                "attempts": attempts,
                "error": error,
                "request": envelope.request,
            },
        )
        self._release_claim(envelope.id)

    def _dead_letter_raw(self, task_id: str, claimed_path: Path, error: str) -> None:
        """Dead-letter a claim whose envelope cannot be parsed at all."""
        self.raw_dead_letters += 1
        try:
            raw = claimed_path.read_text()
        except OSError:
            raw = ""
        _atomic_write_json(
            self.failed_dir / f"{task_id}.json",
            {
                "format": ENVELOPE_FORMAT_VERSION,
                "id": task_id,
                "attempts": DEFAULT_MAX_ATTEMPTS,
                "error": error,
                "raw": raw,
            },
        )
        self._release_claim(task_id)

    def _release_claim(self, task_id: str) -> None:
        try:
            os.unlink(self.claimed_dir / f"{task_id}.json")
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Reading results / recovery
    # ------------------------------------------------------------------
    def load_result(self, task_id: str) -> Optional[SolveResult]:
        """The answered result of a task, or ``None`` while unanswered."""
        path = self.results_dir / f"{task_id}.json"
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        try:
            return SolveResult.from_dict(data["result"])
        except (SpecError, KeyError, TypeError, ValueError):
            return None

    def load_failure(self, task_id: str) -> Optional[str]:
        """The dead-letter error of a task, or ``None`` if not dead-lettered."""
        path = self.failed_dir / f"{task_id}.json"
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return str(data.get("error", "dead-lettered"))

    def recover_claimed(self) -> List[str]:
        """Move every claimed task back to pending (crash recovery).

        Only safe when no worker is currently processing the claims — run it
        from an operator command (``repro worker --recover-claimed``) after
        a worker host died, not concurrently with live workers.
        """
        recovered: List[str] = []
        try:
            names = sorted(p.name for p in self.claimed_dir.iterdir() if p.suffix == ".json")
        except OSError:
            return recovered
        self.pending_dir.mkdir(parents=True, exist_ok=True)
        for name in names:
            try:
                os.rename(self.claimed_dir / name, self.pending_dir / name)
            except OSError:
                continue
            recovered.append(Path(name).stem)
        return recovered

    def counts(self) -> Dict[str, int]:
        """``{pending, claimed, results, failed}`` file counts (telemetry)."""
        out: Dict[str, int] = {}
        for name in ("pending", "claimed", "results", "failed"):
            try:
                out[name] = sum(
                    1 for p in (self.root / name).iterdir() if p.suffix == ".json"
                )
            except OSError:
                out[name] = 0
        return out
