"""Scheduler registry: build any scheduler of the framework by name.

The registry is the glue used by the command-line interface and by user code
that wants to select algorithms from configuration files: every baseline,
every initialization heuristic and both combined schedulers (the pipeline and
the multilevel scheduler) are available under the short names used in the
paper's tables.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .baselines.cilk import CilkScheduler
from .baselines.hdagg import HDaggScheduler
from .baselines.list_schedulers import BlEstScheduler, EtfScheduler
from .baselines.trivial import LevelRoundRobinScheduler, TrivialScheduler
from .heuristics.bspg import BspGreedyScheduler
from .heuristics.source import SourceScheduler
from .ilp.full import IlpFullScheduler
from .ilp.init import IlpInitScheduler
from .multilevel.scheduler import MultilevelScheduler
from .pipeline.adaptive import AdaptiveScheduler
from .pipeline.config import MultilevelConfig, PipelineConfig
from .pipeline.framework import FrameworkScheduler
from .scheduler import Scheduler

__all__ = [
    "SCHEDULER_BUILDERS",
    "TABLE_LABELS",
    "available_schedulers",
    "make_scheduler",
    "registry_name_for_label",
    "scheduler_for_label",
]


def _framework(fast: bool = True) -> Scheduler:
    return FrameworkScheduler(PipelineConfig.fast() if fast else PipelineConfig())


def _multilevel(fast: bool = True) -> Scheduler:
    base = PipelineConfig.fast() if fast else PipelineConfig()
    return MultilevelScheduler(MultilevelConfig(base_pipeline=base))


#: Name -> zero-argument factory for every registered scheduler.
SCHEDULER_BUILDERS: Dict[str, Callable[[], Scheduler]] = {
    # Baselines (paper Section 4.1).
    "cilk": lambda: CilkScheduler(seed=0),
    "bl-est": BlEstScheduler,
    "etf": EtfScheduler,
    "hdagg": HDaggScheduler,
    "trivial": TrivialScheduler,
    "level-rr": LevelRoundRobinScheduler,
    # Initialization heuristics (paper Section 4.2).
    "bspg": BspGreedyScheduler,
    "source": SourceScheduler,
    "ilp-init": IlpInitScheduler,
    # ILP-based standalone scheduler.
    "ilp-full": IlpFullScheduler,
    # Combined schedulers (paper Figures 3 and 4).
    "framework": _framework,
    "framework-full": lambda: _framework(fast=False),
    "multilevel": _multilevel,
    "multilevel-full": lambda: _multilevel(fast=False),
    # CCR-based dispatch between the two (the paper's suggested extension).
    "adaptive": AdaptiveScheduler,
}


#: Table label (as printed in the paper's tables and figures) -> registry
#: scheduler name.  This is the single place where the experiment layer maps
#: its column labels to registry entries; every baseline the runner records
#: is constructed through this table.
TABLE_LABELS: Dict[str, str] = {
    "Cilk": "cilk",
    "HDagg": "hdagg",
    "BL-EST": "bl-est",
    "ETF": "etf",
    "Trivial": "trivial",
}


def available_schedulers() -> List[str]:
    """Sorted list of registered scheduler names."""
    return sorted(SCHEDULER_BUILDERS)


def make_scheduler(name: str) -> Scheduler:
    """Instantiate a scheduler by its registry name (case-insensitive)."""
    key = name.strip().lower()
    try:
        builder = SCHEDULER_BUILDERS[key]
    except KeyError as exc:
        raise ValueError(
            f"unknown scheduler {name!r}; available: {', '.join(available_schedulers())}"
        ) from exc
    return builder()


def registry_name_for_label(label: str) -> str:
    """Registry name of a table label like ``"Cilk"`` or ``"BL-EST"``."""
    try:
        return TABLE_LABELS[label]
    except KeyError as exc:
        raise ValueError(
            f"unknown table label {label!r}; known: {', '.join(TABLE_LABELS)}"
        ) from exc


def scheduler_for_label(label: str) -> Scheduler:
    """Instantiate the baseline scheduler behind a table label."""
    return make_scheduler(registry_name_for_label(label))
