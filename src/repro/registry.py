"""Scheduler registry v2: build any scheduler of the framework from a spec string.

The registry is the glue used by the command-line interface, the experiment
engine and the :mod:`repro.api` facade: every baseline, every initialization
heuristic, the local-search improvers and both combined schedulers (the
pipeline and the multilevel scheduler) are registered under the short names
used in the paper's tables.

Registration is declarative — a factory function decorated with
:func:`register_scheduler` carries per-scheduler metadata (description,
determinism, NUMA awareness) and its keyword parameters become reachable
from a *spec string*::

    make_scheduler("cilk")
    make_scheduler("multilevel(fast=false, min_coarse_nodes=16)")
    make_scheduler("hc(max_moves=200, init=source)")
    make_scheduler("framework(use_ilp_full=false, hc_time_limit=1.5)")

The grammar is ``name`` or ``name(key=value, ...)``; values are integers,
floats, booleans (``true``/``false``), ``none``, bracketed lists
(``coarsening_ratios=[0.3, 0.15]``), and bare or quoted strings.  Names and
table labels are case-insensitive everywhere.
"""

from __future__ import annotations

import inspect
import json
import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from .baselines.cilk import CilkScheduler
from .baselines.hdagg import HDaggScheduler
from .baselines.list_schedulers import BlEstScheduler, EtfScheduler
from .baselines.memory import MemoryAwareGreedyScheduler
from .baselines.trivial import LevelRoundRobinScheduler, TrivialScheduler
from .heuristics.bspg import BspGreedyScheduler
from .heuristics.source import SourceScheduler
from .ilp.full import IlpFullScheduler
from .ilp.init import IlpInitScheduler
from .localsearch.schedulers import (
    CommHillClimbingScheduler,
    HillClimbingScheduler,
    SimulatedAnnealingScheduler,
)
from .multilevel.scheduler import MultilevelScheduler
from .pipeline.adaptive import AdaptiveScheduler
from .pipeline.config import MultilevelConfig, PipelineConfig
from .pipeline.framework import FrameworkScheduler
from .portfolio.selector import PortfolioScheduler
from .scheduler import Scheduler

__all__ = [
    "SchedulerInfo",
    "SCHEDULER_BUILDERS",
    "TABLE_LABELS",
    "available_schedulers",
    "canonical_scheduler_spec",
    "canonical_table_label",
    "format_scheduler_spec",
    "make_scheduler",
    "parse_scheduler_spec",
    "register_scheduler",
    "registry_name_for_label",
    "scheduler_for_label",
    "scheduler_info",
    "split_scheduler_list",
]


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SchedulerInfo:
    """Metadata and factory of one registered scheduler."""

    name: str
    factory: Callable[..., Scheduler]
    description: str = ""
    #: Whether repeated runs on the same instance produce the same schedule
    #: *in the default configuration* (ILP stages run under wall-clock limits
    #: and are not reproducible run-to-run; seeded randomness is considered
    #: deterministic).  Explicitly setting a ``time_limit`` parameter in a
    #: spec string makes any scheduler wall-clock bounded.
    deterministic: bool = True
    #: Whether the algorithm takes per-pair NUMA coefficients into account.
    numa_aware: bool = True
    #: Keyword parameters reachable from a spec string.
    parameters: Tuple[str, ...] = ()

    def accepts(self, parameter: str) -> bool:
        """Whether a spec string may set ``parameter`` for this scheduler."""
        return parameter in self.parameters


_REGISTRY: Dict[str, SchedulerInfo] = {}


def register_scheduler(
    name: str,
    *,
    description: str = "",
    deterministic: bool = True,
    numa_aware: bool = True,
    parameters: Optional[Tuple[str, ...]] = None,
) -> Callable[[Callable[..., Scheduler]], Callable[..., Scheduler]]:
    """Decorator registering ``factory`` under ``name`` with metadata.

    The factory's keyword parameters (or the explicit ``parameters`` tuple,
    for factories taking ``**overrides``) define what spec strings may set.
    """

    def decorator(factory: Callable[..., Scheduler]) -> Callable[..., Scheduler]:
        key = name.strip().lower()
        if key in _REGISTRY:
            raise ValueError(f"scheduler {key!r} is already registered")
        if parameters is not None:
            params = tuple(parameters)
        else:
            params = tuple(
                p.name
                for p in inspect.signature(factory).parameters.values()
                if p.kind in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
            )
        _REGISTRY[key] = SchedulerInfo(
            name=key,
            factory=factory,
            description=description,
            deterministic=deterministic,
            numa_aware=numa_aware,
            parameters=params,
        )
        return factory

    return decorator


# ----------------------------------------------------------------------
# Spec-string grammar
# ----------------------------------------------------------------------
_SPEC_RE = re.compile(r"^\s*(?P<name>[A-Za-z0-9_.+-]+)\s*(?:\(\s*(?P<args>.*?)\s*\))?\s*$", re.S)
_BARE_STRING_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.+-]*$")
#: A parameterized spec used as a *value* (e.g. ``hc(init=hccs(max_moves=5))``)
#: — kept verbatim as a string so improvers can stack without quoting.
_NESTED_SPEC_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.+-]*\(.*\)$", re.S)
_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def split_scheduler_list(text: str) -> List[str]:
    """Split a comma-separated list of scheduler specs at the top level.

    Commas inside parentheses, brackets or quotes do not split, so
    ``"hc(max_moves=5, init=source),cilk"`` yields two entries.
    """
    return [part for part in _split_top_level(text) if part]


def _split_top_level(text: str) -> List[str]:
    parts: List[str] = []
    depth = 0
    quote: Optional[str] = None
    current: List[str] = []
    for ch in text:
        if quote is not None:
            current.append(ch)
            if ch == quote:
                quote = None
            continue
        if ch in "\"'":
            quote = ch
            current.append(ch)
        elif ch in "([":
            depth += 1
            current.append(ch)
        elif ch in ")]":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    if quote is not None or depth != 0:
        raise ValueError(f"unbalanced quotes or brackets in {text!r}")
    parts.append("".join(current).strip())
    return parts


def _parse_value(text: str) -> Any:
    text = text.strip()
    if not text:
        raise ValueError("empty value in scheduler spec")
    if text[0] in "\"'":
        if len(text) < 2 or text[-1] != text[0]:
            raise ValueError(f"unterminated string {text!r}")
        return text[1:-1]
    if (text[0], text[-1]) in (("[", "]"), ("(", ")")):
        inner = text[1:-1].strip()
        if not inner:
            return ()
        return tuple(_parse_value(part) for part in _split_top_level(inner))
    if _NESTED_SPEC_RE.match(text):
        return text
    lowered = text.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    if lowered in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if _BARE_STRING_RE.match(text):
        return text
    raise ValueError(f"cannot parse value {text!r} in scheduler spec")


def parse_scheduler_spec(spec: str) -> Tuple[str, Dict[str, Any]]:
    """Parse ``"name"`` / ``"name(key=value, ...)"`` into (name, kwargs).

    The name is lower-cased; keyword order is preserved as written.
    """
    match = _SPEC_RE.match(spec or "")
    if match is None:
        raise ValueError(
            f"invalid scheduler spec {spec!r}; expected 'name' or 'name(key=value, ...)'"
        )
    name = match.group("name").lower()
    args = match.group("args")
    kwargs: Dict[str, Any] = {}
    if args:
        for part in _split_top_level(args):
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip().lower()
            if not sep or not _IDENT_RE.match(key):
                raise ValueError(
                    f"invalid argument {part!r} in scheduler spec {spec!r}; "
                    "expected key=value"
                )
            if key in kwargs:
                raise ValueError(f"duplicate argument {key!r} in scheduler spec {spec!r}")
            kwargs[key] = _parse_value(value)
    return name, kwargs


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "none"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, (tuple, list)):
        return "[" + ", ".join(_format_value(v) for v in value) + "]"
    text = str(value)
    if _BARE_STRING_RE.match(text) or _NESTED_SPEC_RE.match(text):
        return text
    return json.dumps(text)


def format_scheduler_spec(name: str, kwargs: Optional[Dict[str, Any]] = None) -> str:
    """Render a canonical spec string (lower-cased name, kwargs sorted by key)."""
    name = name.strip().lower()
    if not kwargs:
        return name
    rendered = ", ".join(f"{key}={_format_value(kwargs[key])}" for key in sorted(kwargs))
    return f"{name}({rendered})"


def canonical_scheduler_spec(
    spec: str,
    *,
    seed: Optional[int] = None,
    time_budget: Optional[float] = None,
) -> str:
    """Canonical form of a spec string, optionally merging request defaults.

    ``seed`` maps onto a ``seed`` parameter and ``time_budget`` onto a
    ``time_limit`` parameter (or, for schedulers like the portfolio that
    take a wall-clock ``budget`` instead, onto ``budget``) — only when the
    scheduler's factory accepts them and the spec string does not already
    set them.  Parsing and re-rendering the result is an identity, which
    keeps work-item signatures (and therefore checkpoint resume) stable.
    """
    name, kwargs = parse_scheduler_spec(spec)
    info = _lookup(name, spec)
    if seed is not None and info.accepts("seed") and "seed" not in kwargs:
        kwargs["seed"] = int(seed)
    if time_budget is not None:
        if info.accepts("time_limit") and "time_limit" not in kwargs:
            kwargs["time_limit"] = float(time_budget)
        elif info.accepts("budget") and "budget" not in kwargs:
            kwargs["budget"] = float(time_budget)
    return format_scheduler_spec(name, kwargs)


# ----------------------------------------------------------------------
# Lookup and construction
# ----------------------------------------------------------------------
def available_schedulers() -> List[str]:
    """Sorted list of registered scheduler names."""
    return sorted(_REGISTRY)


def _lookup(name: str, spec: str) -> SchedulerInfo:
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown scheduler {spec!r}; available: {', '.join(available_schedulers())}"
        ) from exc


def scheduler_info(spec: str) -> SchedulerInfo:
    """Metadata of the scheduler a spec string refers to (case-insensitive)."""
    name, _ = parse_scheduler_spec(spec)
    return _lookup(name, spec)


def make_scheduler(spec: str) -> Scheduler:
    """Instantiate a scheduler from a spec string (case-insensitive).

    Plain registry names (``"cilk"``) build the default configuration;
    parameterized specs (``"hc(max_moves=200)"``) pass the parsed keyword
    values to the registered factory.
    """
    name, kwargs = parse_scheduler_spec(spec)
    info = _lookup(name, spec)
    unknown = sorted(k for k in kwargs if not info.accepts(k))
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {', '.join(unknown)} for scheduler {name!r}; "
            f"accepted: {', '.join(info.parameters)}"
        )
    try:
        return info.factory(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"cannot build scheduler from spec {spec!r}: {exc}") from exc


# ----------------------------------------------------------------------
# Registered schedulers
# ----------------------------------------------------------------------
# Baselines (paper Section 4.1).
@register_scheduler(
    "cilk",
    description="Cilk work-stealing simulation baseline",
    deterministic=True,
    numa_aware=False,
)
def _make_cilk(seed: int = 0) -> Scheduler:
    return CilkScheduler(seed=seed)


@register_scheduler(
    "bl-est",
    description="Bottom-level earliest-start-time list scheduler",
    deterministic=True,
    numa_aware=True,
)
def _make_bl_est() -> Scheduler:
    return BlEstScheduler()


@register_scheduler(
    "etf",
    description="Earliest-task-first list scheduler",
    deterministic=True,
    numa_aware=True,
)
def _make_etf() -> Scheduler:
    return EtfScheduler()


@register_scheduler(
    "hdagg",
    description="HDagg-style level-set aggregation baseline",
    deterministic=True,
    numa_aware=False,
)
def _make_hdagg(aggregation_factor: float = 2.0, balance_slack: float = 1.1) -> Scheduler:
    return HDaggScheduler(aggregation_factor=aggregation_factor, balance_slack=balance_slack)


@register_scheduler(
    "trivial",
    description="Everything on one processor (communication-free reference)",
    deterministic=True,
    numa_aware=False,
)
def _make_trivial() -> Scheduler:
    return TrivialScheduler()


@register_scheduler(
    "greedy-mem",
    description="Memory-aware greedy list scheduler (respects per-processor memory bounds)",
    deterministic=True,
    numa_aware=False,
)
def _make_greedy_mem(memory_bound: Optional[object] = None, policy: str = "est") -> Scheduler:
    return MemoryAwareGreedyScheduler(memory_bound=memory_bound, policy=policy)


@register_scheduler(
    "level-rr",
    description="Level-by-level round-robin assignment",
    deterministic=True,
    numa_aware=False,
)
def _make_level_rr() -> Scheduler:
    return LevelRoundRobinScheduler()


# Initialization heuristics (paper Section 4.2).
@register_scheduler(
    "bspg",
    description="BSPg greedy initialization heuristic",
    deterministic=True,
    numa_aware=False,
)
def _make_bspg(idle_fraction: float = 0.5) -> Scheduler:
    return BspGreedyScheduler(idle_fraction=idle_fraction)


@register_scheduler(
    "source",
    description="Source-partition initialization heuristic",
    deterministic=True,
    numa_aware=False,
)
def _make_source() -> Scheduler:
    return SourceScheduler()


@register_scheduler(
    "ilp-init",
    description="Batch-by-batch ILP construction of an initial schedule",
    deterministic=False,
    numa_aware=True,
)
def _make_ilp_init(
    max_variables: int = 2000,
    supersteps_per_batch: int = 3,
    time_limit: Optional[float] = 15.0,
    backend: str = "highs",
) -> Scheduler:
    return IlpInitScheduler(
        max_variables=max_variables,
        supersteps_per_batch=supersteps_per_batch,
        time_limit_per_batch=time_limit,
        backend=backend,
    )


# ILP-based standalone scheduler.
@register_scheduler(
    "ilp-full",
    description="Full BSP ILP seeded by an initialization heuristic",
    deterministic=False,
    numa_aware=True,
)
def _make_ilp_full(
    time_limit: Optional[float] = 60.0,
    max_variables: int = 20_000,
    backend: str = "highs",
    init: str = "bspg",
) -> Scheduler:
    return IlpFullScheduler(
        initializer=make_scheduler(init),
        time_limit=time_limit,
        max_variables=max_variables,
        backend=backend,
    )


# Local-search improvers as standalone schedulers.
@register_scheduler(
    "hc",
    description="Hill climbing (HC) on top of an initialization scheduler",
    deterministic=True,
    numa_aware=True,
)
def _make_hc(
    variant: str = "first",
    max_moves: Optional[int] = None,
    max_passes: Optional[int] = None,
    time_limit: Optional[float] = None,
    init: str = "bspg",
    memory_bound: Optional[object] = None,
) -> Scheduler:
    return HillClimbingScheduler(
        variant=variant,
        max_moves=max_moves,
        max_passes=max_passes,
        time_limit=time_limit,
        init=init,
        memory_bound=memory_bound,
    )


@register_scheduler(
    "hccs",
    description="Communication-schedule hill climbing (HCcs) on an initial schedule",
    deterministic=True,
    numa_aware=True,
)
def _make_hccs(
    max_moves: Optional[int] = None,
    time_limit: Optional[float] = None,
    init: str = "bspg",
    memory_bound: Optional[object] = None,
) -> Scheduler:
    return CommHillClimbingScheduler(
        max_moves=max_moves, time_limit=time_limit, init=init, memory_bound=memory_bound
    )


@register_scheduler(
    "sa",
    description="Seeded simulated annealing on the HC move neighbourhood",
    deterministic=True,
    numa_aware=True,
)
def _make_sa(
    steps: int = 2000,
    cooling: float = 0.995,
    initial_temperature: Optional[float] = None,
    time_limit: Optional[float] = None,
    seed: Optional[int] = 0,
    init: str = "bspg",
    memory_bound: Optional[object] = None,
) -> Scheduler:
    return SimulatedAnnealingScheduler(
        steps=steps,
        cooling=cooling,
        initial_temperature=initial_temperature,
        time_limit=time_limit,
        seed=seed,
        init=init,
        memory_bound=memory_bound,
    )


# Combined schedulers (paper Figures 3 and 4).
def _pipeline_config(fast: bool, preset: Optional[str], overrides: Dict[str, Any]) -> PipelineConfig:
    base = PipelineConfig.preset(preset) if preset is not None else (
        PipelineConfig.fast() if fast else PipelineConfig()
    )
    return base.with_overrides(**overrides)


_PIPELINE_PARAMS = ("fast", "preset") + tuple(sorted(PipelineConfig.field_names()))


@register_scheduler(
    "framework",
    description="The paper's combined pipeline (init + HC/HCcs + ILP stages), fast limits",
    deterministic=False,
    numa_aware=True,
    parameters=_PIPELINE_PARAMS,
)
def _make_framework(fast: bool = True, preset: Optional[str] = None, **overrides: Any) -> Scheduler:
    return FrameworkScheduler(_pipeline_config(fast, preset, overrides))


@register_scheduler(
    "framework-full",
    description="The combined pipeline with the full (default) time limits",
    deterministic=False,
    numa_aware=True,
    parameters=_PIPELINE_PARAMS,
)
def _make_framework_full(
    fast: bool = False, preset: Optional[str] = None, **overrides: Any
) -> Scheduler:
    return FrameworkScheduler(_pipeline_config(fast, preset, overrides))


_MULTILEVEL_PARAMS = ("fast", "preset") + tuple(
    sorted(MultilevelConfig.field_names() | PipelineConfig.field_names())
)


def _multilevel_config(
    fast: bool, preset: Optional[str], overrides: Dict[str, Any]
) -> MultilevelConfig:
    base = MultilevelConfig(base_pipeline=_pipeline_config(fast, preset, {}))
    return base.with_overrides(**overrides)


@register_scheduler(
    "multilevel",
    description="Multilevel coarsen-solve-refine scheduler, fast pipeline limits",
    deterministic=False,
    numa_aware=True,
    parameters=_MULTILEVEL_PARAMS,
)
def _make_multilevel(fast: bool = True, preset: Optional[str] = None, **overrides: Any) -> Scheduler:
    return MultilevelScheduler(_multilevel_config(fast, preset, overrides))


@register_scheduler(
    "multilevel-full",
    description="Multilevel scheduler with the full (default) pipeline limits",
    deterministic=False,
    numa_aware=True,
    parameters=_MULTILEVEL_PARAMS,
)
def _make_multilevel_full(
    fast: bool = False, preset: Optional[str] = None, **overrides: Any
) -> Scheduler:
    return MultilevelScheduler(_multilevel_config(fast, preset, overrides))


# CCR-based dispatch between the two (the paper's suggested extension).
@register_scheduler(
    "adaptive",
    description="CCR-based dispatch between the pipeline and the multilevel scheduler",
    deterministic=False,
    numa_aware=True,
)
def _make_adaptive(ccr_threshold: float = 8.0, margin: float = 0.5) -> Scheduler:
    return AdaptiveScheduler(ccr_threshold=ccr_threshold, margin=margin)


# Portfolio scheduling: per-instance selection + content-addressed caching.
@register_scheduler(
    "portfolio",
    description="Per-instance scheduler selection (feature rules or budgeted "
    "racing) with an optional content-addressed solution cache",
    # The default configuration (rules mode) delegates only to deterministic
    # schedulers through a deterministic decision list; race mode is
    # wall-clock dependent and flagged per-spec by the API facade.
    deterministic=True,
    numa_aware=True,
)
def _make_portfolio(
    mode: str = "rules",
    budget: Optional[float] = None,
    candidates: Optional[Tuple[str, ...]] = None,
    cache: Optional[str] = None,
    seed: Optional[int] = None,
    jobs: Optional[int] = None,
) -> Scheduler:
    return PortfolioScheduler(
        mode=mode,
        budget=budget,
        candidates=candidates,
        cache=cache,
        seed=seed,
        jobs=jobs,
    )


#: Name -> zero-argument factory view of the registry (legacy surface; all
#: registered factories build their default configuration with no arguments).
SCHEDULER_BUILDERS: Dict[str, Callable[[], Scheduler]] = {
    name: info.factory for name, info in _REGISTRY.items()
}


# ----------------------------------------------------------------------
# Table labels
# ----------------------------------------------------------------------
#: Table label (as printed in the paper's tables and figures) -> registry
#: scheduler name.  This is the single place where the experiment layer maps
#: its column labels to registry entries; every baseline the runner records
#: is constructed through this table.  Lookups are case-insensitive.
TABLE_LABELS: Dict[str, str] = {
    "Cilk": "cilk",
    "HDagg": "hdagg",
    "BL-EST": "bl-est",
    "ETF": "etf",
    "Trivial": "trivial",
    "GreedyMem": "greedy-mem",
}

_LABEL_LOOKUP: Dict[str, str] = {label.lower(): name for label, name in TABLE_LABELS.items()}
_CANONICAL_LABELS: Dict[str, str] = {label.lower(): label for label in TABLE_LABELS}


def canonical_table_label(label: str) -> Optional[str]:
    """The canonical spelling of a known table label, or ``None``.

    ``"cilk"`` / ``"CILK"`` / ``"Cilk"`` all map to ``"Cilk"``; labels that
    are not registry table labels (stage labels like ``"Init"``, spec
    strings, ...) return ``None`` so callers can fall back to their own
    resolution.  This is the single case-insensitive label authority the
    experiment layer routes its cost lookups through.
    """
    return _CANONICAL_LABELS.get(label.strip().lower())


def registry_name_for_label(label: str) -> str:
    """Registry name of a table label like ``"Cilk"`` (case-insensitive)."""
    try:
        return _LABEL_LOOKUP[label.strip().lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown table label {label!r}; known: {', '.join(TABLE_LABELS)}"
        ) from exc


def scheduler_for_label(label: str) -> Scheduler:
    """Instantiate the baseline scheduler behind a table label."""
    return make_scheduler(registry_name_for_label(label))
