"""Common scheduler interface.

Every scheduling algorithm in this package — baselines, initialization
heuristics, the combined pipeline and the multilevel scheduler — implements
the small :class:`Scheduler` interface: given a DAG and a machine it returns
a valid :class:`~repro.model.schedule.BspSchedule`.  Keeping the interface
identical across algorithms is what makes the experiment runner and the
benchmark harness uniform.
"""

from __future__ import annotations

import abc

from .graphs.dag import ComputationalDAG
from .model.machine import BspMachine
from .model.schedule import BspSchedule

__all__ = ["Scheduler", "SchedulingError"]


class SchedulingError(RuntimeError):
    """Raised when a scheduler cannot produce a valid schedule."""


class Scheduler(abc.ABC):
    """Abstract base class of all schedulers."""

    #: Short identifier used in experiment tables (e.g. ``"Cilk"``).
    name: str = "scheduler"

    @abc.abstractmethod
    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        """Compute a valid BSP schedule of ``dag`` on ``machine``."""

    def schedule_checked(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        """Like :meth:`schedule` but raises if the result is invalid.

        Used by tests and the experiment runner as a safety net: a scheduler
        bug must fail loudly rather than silently produce a bogus cost.
        """
        sched = self.schedule(dag, machine)
        errors = sched.validation_errors()
        if errors:
            raise SchedulingError(
                f"{self.name} produced an invalid schedule: {errors[0]} "
                f"({len(errors)} violations)"
            )
        return sched

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"
