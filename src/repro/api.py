"""The batch solve facade: one declarative entry point for scheduling requests.

This module is the public, config-first surface of the package.  Callers
describe *what* to solve with the frozen spec types of :mod:`repro.spec` and
the registry's scheduler spec strings, and the facade takes care of *how*:
materializing DAGs and machines, resolving schedulers, validating schedules,
and batching work onto the parallel experiment engine with checkpoint /
resume.

::

    from repro import api
    from repro.spec import DagSpec, MachineSpec, ProblemSpec, SolveRequest

    spec = ProblemSpec(
        dag=DagSpec.generator("spmv", n=12, q=0.25, seed=42),
        machine=MachineSpec(P=4, g=3, l=5),
    )
    result = api.solve(SolveRequest(spec=spec, scheduler="framework"))
    ranking = api.compare(spec, ["cilk", "hdagg", "hc(max_moves=200)"])

Batches (:func:`solve_many`) run through
:class:`repro.experiments.runner.ParallelRunner`: ``jobs > 1`` fans the
requests out over a process pool with deterministic result ordering, and a
``checkpoint`` JSONL path makes the batch resumable — results already in the
checkpoint are not re-solved.  The JSONL helpers (:func:`load_requests`,
:func:`write_results`) round-trip the request/result wire format used by the
``python -m repro batch`` subcommand.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, TextIO, Union

from .experiments.runner import (
    REQUEST_BUILD_FAILURES,
    ParallelRunner,
    WorkItem,
    WorkItemResult,
)
from .registry import parse_scheduler_spec, scheduler_info
from .spec import MachineSpec, ProblemSpec, SolveRequest, SolveResult, SpecError

__all__ = [
    "solve",
    "solve_many",
    "compare",
    "load_requests",
    "write_results",
    "reproduce",
    "to_solve_result",
    "broken_request_result",
]

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# Request -> result
# ----------------------------------------------------------------------
def to_solve_result(item: WorkItem, result: WorkItemResult) -> SolveResult:
    """Assemble the public result from an executed (or resumed) work item.

    This is the single place a :class:`~repro.experiments.runner.WorkItemResult`
    becomes a public :class:`~repro.spec.SolveResult`; the batch facade and
    the :mod:`repro.serve` daemon share it so a served solve is bytewise the
    result of the equivalent one-shot solve.
    """
    info = scheduler_info(item.scheduler)
    # The registry flag describes the default configuration; an explicit
    # wall-clock cutoff in the spec (or a portfolio racing under a budget)
    # makes this particular run load-dependent.
    _, kwargs = parse_scheduler_spec(item.scheduler)
    deterministic = (
        info.deterministic
        and kwargs.get("time_limit") is None
        and kwargs.get("budget") is None
        # Mirror PortfolioScheduler's case-insensitive mode normalization.
        and str(kwargs.get("mode") or "").lower() != "race"
    )
    breakdown = result.breakdown
    total = breakdown.get("total_cost")
    if total is None:
        # Registry items record exactly one cost under their label.
        total = next(iter(result.costs.values()))
    return SolveResult(
        scheduler=item.scheduler,
        dag_name=item.dag.name,
        num_nodes=int(item.dag.n),
        machine=MachineSpec.from_machine(item.machine),
        total_cost=float(total),
        work_cost=float(breakdown.get("work_cost", 0.0)),
        comm_cost=float(breakdown.get("comm_cost", 0.0)),
        latency_cost=float(breakdown.get("latency_cost", 0.0)),
        num_supersteps=int(breakdown.get("num_supersteps", 0)),
        # Strict execution validates every schedule it costs; a tolerant
        # batch records the failure on the result instead of raising.
        valid=result.valid,
        wall_seconds=float(result.seconds),
        scheduler_description=result.error if not result.valid else info.description,
        deterministic=deterministic,
    )


def broken_request_result(request: SolveRequest, exc: Exception) -> SolveResult:
    """Invalid result for a request that failed before it could execute.

    Shared by tolerant batches and the :mod:`repro.serve` thin client, so a
    request that cannot even be constructed is reported identically whether
    it failed locally or on the daemon.
    """
    dag = request.spec.dag
    return SolveResult(
        scheduler=request.scheduler,
        dag_name=dag.name or dag.kind or dag.path or "inline",
        num_nodes=int(dag.n) if dag.n is not None else 0,
        machine=request.spec.machine,
        total_cost=float("inf"),
        work_cost=0.0,
        comm_cost=0.0,
        latency_cost=0.0,
        num_supersteps=0,
        valid=False,
        scheduler_description=str(exc),
        deterministic=True,
    )


def solve(request: SolveRequest) -> SolveResult:
    """Solve one request: build the instance, run the scheduler, validate.

    The scheduler spec is resolved through the registry (the request's
    ``seed`` / ``time_budget`` are merged into it when the scheduler accepts
    them), and the resulting schedule is validity-checked before its cost is
    reported — an invalid schedule raises instead of returning a bogus cost.
    """
    from .experiments.runner import execute_work_item

    item = WorkItem.from_request(request)
    return to_solve_result(item, execute_work_item(item))


def solve_many(
    requests: Sequence[SolveRequest],
    *,
    jobs: Optional[int] = None,
    checkpoint: Optional[PathLike] = None,
    resume: bool = False,
    tolerant: bool = False,
    queue_dir: Optional[PathLike] = None,
    queue_timeout: Optional[float] = None,
) -> List[SolveResult]:
    """Solve a batch of requests, optionally in parallel and resumably.

    Results come back in request order regardless of worker completion
    order, so a ``jobs > 1`` batch of deterministic schedulers is
    bytewise identical to a serial :func:`solve` loop.  With ``checkpoint``
    every finished request is appended to a JSONL file as it completes;
    ``resume=True`` skips requests whose results are already recorded there
    (matched by a content signature, never by position alone).

    With ``tolerant=True`` a request whose scheduler fails (or produces an
    invalid schedule, or cannot even be constructed — unknown scheduler,
    unbuildable DAG spec) yields a result with ``valid=False`` and infinite
    cost instead of aborting the batch — the contract of the ``repro batch``
    subcommand, which reports such requests in its exit status.

    With ``queue_dir`` the batch fans out over a shared-filesystem work
    queue (:mod:`repro.distrib`): the requests are enqueued as task files
    and this process participates as one inline worker, so the call always
    completes on its own — while any number of additional ``repro worker``
    processes on any hosts sharing the directory (and, via
    ``REPRO_CACHE_DIR``, one solution cache) drain the same queue and
    accelerate it.  Results are byte-identical to the non-queued path for
    deterministic schedulers.  ``jobs``/``checkpoint``/``resume`` do not
    apply to queued batches (checkpointing is subsumed by the queue's own
    ``results/`` directory); ``queue_timeout`` bounds the wait for results
    answered by external workers.
    """
    if queue_dir is not None:
        if checkpoint is not None or resume:
            raise ValueError("queue_dir cannot be combined with checkpoint/resume")
        return _solve_many_queued(
            requests, queue_dir, tolerant=tolerant, timeout=queue_timeout
        )
    items: List[WorkItem] = []
    broken: dict = {}
    for k, request in enumerate(requests):
        try:
            items.append(WorkItem.from_request(request, index=k, instance=k))
        except REQUEST_BUILD_FAILURES as exc:
            # Construction failures (unknown scheduler spec, bad generator
            # parameters, unreadable hyperDAG file) happen before the
            # tolerant runner is reached — fold them into invalid results
            # here so one malformed request cannot sink the batch.
            if not tolerant:
                raise
            broken[k] = broken_request_result(request, exc)
    checkpoint_path = str(checkpoint) if checkpoint is not None else None
    runner = ParallelRunner(
        jobs, checkpoint=checkpoint_path, resume=resume, tolerant=tolerant
    )
    results = runner.execute(items)
    # A resumed record from a pre-breakdown checkpoint format carries only
    # the total cost; re-solve those items (on the pool, like any other
    # batch) instead of fabricating a zeroed breakdown, and append the
    # upgraded records so the next resume finds them (later records win).
    # A strict batch likewise re-runs invalid records resumed from an
    # earlier *tolerant* run — strict callers are promised an exception,
    # not a silent valid=False result, and the re-run raises the real error.
    stale = [
        item
        for item, result in zip(items, results)
        if (result.valid and not result.breakdown)
        or (not tolerant and not result.valid)
    ]
    if stale:
        redone = ParallelRunner(jobs, tolerant=tolerant).execute(stale)
        by_index = {result.index: result for result in redone}
        results = [by_index.get(result.index, result) for result in results]
        if checkpoint_path is not None:
            from .experiments.persistence import CheckpointWriter

            with CheckpointWriter(checkpoint_path, append=True) as writer:
                for result in redone:
                    writer.append(result.as_record())
    solved = {
        item.index: to_solve_result(item, result)
        for item, result in zip(items, results)
    }
    solved.update(broken)
    return [solved[k] for k in range(len(requests))]


def _solve_many_queued(
    requests: Sequence[SolveRequest],
    queue_dir: PathLike,
    *,
    tolerant: bool,
    timeout: Optional[float],
    poll_interval: float = 0.05,
) -> List[SolveResult]:
    """Enqueue a batch and drain the queue inline until it is answered.

    The claim protocol makes this cooperative by construction: this process
    claims and solves tasks exactly like an external ``repro worker`` —
    including tasks enqueued by *other* producers sharing the queue — and
    between claims polls for its own results, which external workers may be
    producing concurrently.
    """
    import time

    from .distrib.queue import DirectoryQueue, QueueError
    from .distrib.worker import solve_envelope

    queue = DirectoryQueue(queue_dir)
    ids = queue.enqueue(requests)
    outcome: dict = {}
    deadline = None if timeout is None else time.monotonic() + timeout
    while len(outcome) < len(ids):
        envelope = queue.claim_next()
        if envelope is not None:
            try:
                result = solve_envelope(envelope)
            except Exception as exc:  # mirror the worker's retry policy
                queue.retry_or_fail(envelope, f"{type(exc).__name__}: {exc}")
            else:
                queue.complete(envelope, result)
        progressed = False
        for index, task_id in enumerate(ids):
            if index in outcome:
                continue
            result = queue.load_result(task_id)
            if result is not None:
                outcome[index] = result
                progressed = True
                continue
            error = queue.load_failure(task_id)
            if error is not None:
                if not tolerant:
                    raise QueueError(f"request {index + 1} dead-lettered: {error}")
                outcome[index] = broken_request_result(
                    requests[index], RuntimeError(error)
                )
                progressed = True
        if len(outcome) >= len(ids):
            break
        if envelope is None and not progressed:
            if deadline is not None and time.monotonic() > deadline:
                unanswered = [i + 1 for i in range(len(ids)) if i not in outcome]
                raise QueueError(
                    f"queued batch timed out after {timeout}s; "
                    f"unanswered request(s): {unanswered[:10]}"
                )
            time.sleep(poll_interval)
    results = [outcome[index] for index in range(len(ids))]
    if not tolerant:
        for index, result in enumerate(results):
            if not result.valid:
                raise RuntimeError(
                    f"request {index + 1} failed on the queue: "
                    f"{result.scheduler_description or 'invalid schedule'}"
                )
    return results


def compare(
    spec: ProblemSpec,
    scheduler_specs: Sequence[str],
    *,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    time_budget: Optional[float] = None,
) -> List[SolveResult]:
    """Run several schedulers on one problem; results in the given order.

    A thin wrapper over :func:`solve_many` — one request per scheduler spec,
    all sharing the problem, seed and time budget.
    """
    requests = [
        SolveRequest(spec=spec, scheduler=s, seed=seed, time_budget=time_budget)
        for s in scheduler_specs
    ]
    return solve_many(requests, jobs=jobs)


# ----------------------------------------------------------------------
# JSONL wire helpers (the `repro batch` format)
# ----------------------------------------------------------------------
def load_requests(path: PathLike) -> List[SolveRequest]:
    """Read solve requests from a JSONL file (one request object per line)."""
    requests: List[SolveRequest] = []
    with Path(path).open() as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SpecError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
            try:
                requests.append(SolveRequest.from_dict(data))
            except (SpecError, KeyError, TypeError, ValueError) as exc:
                raise SpecError(f"{path}:{lineno}: invalid solve request: {exc}") from exc
    return requests


def write_results(
    results: Iterable[SolveResult],
    target: Union[PathLike, TextIO],
    *,
    timing: bool = False,
) -> None:
    """Write results as JSONL (sorted keys, one object per line).

    Without ``timing`` the output is deterministic for deterministic
    schedulers, so two runs of the same batch — serial or parallel — can be
    compared bytewise.
    """
    lines = (result.to_json(timing=timing) + "\n" for result in results)
    if hasattr(target, "write"):
        for line in lines:
            target.write(line)
    else:
        with Path(target).open("w") as handle:
            for line in lines:
                handle.write(line)


# ----------------------------------------------------------------------
# Paper-table facade
# ----------------------------------------------------------------------
def reproduce(target: str, *, scale: str = "smoke", jobs: Optional[int] = None, seed: int = 7):
    """Regenerate one paper table / figure by name (``"table1"`` .. ``"fig7"``).

    Delegates to :func:`repro.experiments.tables.reproduce`; exposed here so
    scripts depending on the facade need no second import path.
    """
    from .experiments.tables import reproduce as _reproduce

    return _reproduce(target, scale=scale, jobs=jobs, seed=seed)
