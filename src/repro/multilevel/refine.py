"""Uncoarsening and refinement (paper Section 4.5 / Appendix A.5).

After the coarsest DAG has been scheduled, the contraction steps are undone
in reverse order.  Every ``refine_interval`` uncontractions the current
schedule is *projected* onto the (slightly finer) DAG — every finer cluster
inherits the processor and superstep of the coarse cluster that contained it
— and a bounded number of hill-climbing moves is run to adapt the schedule
to the newly revealed structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..localsearch.hill_climbing import hill_climb
from ..model.machine import BspMachine
from ..model.schedule import BspSchedule, legalize_superstep_assignment
from ..obs import trace as _trace
from .coarsen import CoarseningSequence

__all__ = ["project_schedule", "uncoarsen_and_refine"]


def project_schedule(
    sequence: CoarseningSequence,
    machine: BspMachine,
    coarse_schedule: BspSchedule,
    coarse_steps: int,
    finer_steps: int,
) -> BspSchedule:
    """Project a schedule of the coarse DAG (after ``coarse_steps``
    contractions) onto the finer DAG obtained after ``finer_steps``
    contractions (``finer_steps <= coarse_steps``).

    Every finer cluster is assigned the processor and superstep of the
    coarse cluster containing it; since the coarse schedule was valid, the
    projection is valid as well (edges inside a coarse cluster end up in the
    same processor and superstep).  A legalization pass guards against any
    remaining ordering issue.
    """
    if finer_steps > coarse_steps:
        raise ValueError("finer_steps must not exceed coarse_steps")
    fine_dag, fine_mapping = sequence.coarse_dag_after(finer_steps)
    coarse_mapping = None
    # Mapping from original nodes to coarse nodes of the *coarse* level.
    _, coarse_mapping = sequence.coarse_dag_after(coarse_steps)

    # For every fine cluster pick any original member; its coarse cluster
    # determines the inherited assignment.
    representative_original = {}
    for original_node in range(sequence.dag.n):
        fine_node = int(fine_mapping[original_node])
        representative_original.setdefault(fine_node, original_node)

    proc = np.zeros(fine_dag.n, dtype=np.int64)
    step = np.zeros(fine_dag.n, dtype=np.int64)
    for fine_node, original_node in representative_original.items():
        coarse_node = int(coarse_mapping[original_node])
        proc[fine_node] = coarse_schedule.proc[coarse_node]
        step[fine_node] = coarse_schedule.step[coarse_node]
    step = legalize_superstep_assignment(fine_dag, proc, step)
    return BspSchedule(fine_dag, machine, proc, step)


@dataclass
class RefinementConfig:
    """Tuning knobs of the uncoarsening phase."""

    refine_interval: int = 5
    hc_moves_per_refinement: int = 100
    hc_variant: str = "first"


def uncoarsen_and_refine(
    sequence: CoarseningSequence,
    machine: BspMachine,
    coarse_schedule: BspSchedule,
    *,
    config: Optional[RefinementConfig] = None,
) -> BspSchedule:
    """Run the full uncoarsening + refinement phase.

    Starts from a schedule of the coarsest DAG (after all recorded
    contractions) and returns a schedule of the *original* DAG.
    """
    if config is None:
        config = RefinementConfig()
    total = sequence.num_contractions
    current_steps = total
    current_schedule = coarse_schedule

    while current_steps > 0:
        next_steps = max(0, current_steps - max(config.refine_interval, 1))
        with _trace.span(
            "refine_level", contractions=current_steps, next=next_steps
        ) as level_span:
            projected = project_schedule(
                sequence, machine, current_schedule, current_steps, next_steps
            )
            result = hill_climb(
                projected,
                variant=config.hc_variant,
                max_moves=config.hc_moves_per_refinement,
            )
            if _trace.enabled():
                level_span.annotate(
                    nodes=projected.dag.n, cost=result.final_cost
                )
        current_schedule = result.schedule
        current_steps = next_steps

    # The uncoarsening loop ends at the original DAG (0 contractions), whose
    # node indexing is the identity; re-attach the original DAG object so the
    # caller gets a schedule of exactly the DAG it passed in.
    assert current_schedule.dag.n == sequence.dag.n
    return BspSchedule(
        sequence.dag, machine, current_schedule.proc.copy(), current_schedule.step.copy()
    )
