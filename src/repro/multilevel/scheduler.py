"""The multilevel scheduler (paper Section 4.5, Figure 4).

Pipeline: coarsen the DAG, schedule the coarse DAG with the base framework
(Figure 3, without its final communication-schedule ILP), then uncoarsen
step by step while refining with bounded hill climbing, and finally optimize
the communication schedule of the resulting original-DAG schedule with HCcs
and ILPcs.  The whole procedure is run for each configured coarsening ratio
(30% and 15% in the paper) and the cheapest result is returned.

Memory-constrained variant: with per-processor memory bounds (either on the
machine or via ``MultilevelConfig.memory_bound``), the coarse solve runs on
the unconstrained machine, its schedule is repaired into the feasible region
(coarse memory weights are the summed fine weights, so a feasible coarse
assignment projects to a feasible fine assignment), and every refinement
hill climb then respects the bounds through the local-search move filter.
The feasibility fallback candidate is the memory-aware greedy schedule
instead of the (generally infeasible) trivial sequential one.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..graphs.dag import ComputationalDAG
from ..ilp.commsched import CommScheduleIlpImprover
from ..localsearch.comm_hill_climbing import comm_hill_climb
from ..model.machine import BspMachine
from ..model.schedule import BspSchedule
from ..obs import trace as _trace
from ..pipeline.config import MultilevelConfig
from ..pipeline.framework import run_pipeline
from ..scheduler import Scheduler, SchedulingError
from .coarsen import coarsen_dag
from .refine import RefinementConfig, uncoarsen_and_refine

__all__ = ["MultilevelScheduler", "multilevel_schedule"]


def multilevel_schedule(
    dag: ComputationalDAG,
    machine: BspMachine,
    config: Optional[MultilevelConfig] = None,
) -> Tuple[BspSchedule, Dict[float, float]]:
    """Run the multilevel scheduler; returns (best schedule, cost per ratio).

    The per-ratio cost dictionary backs the paper's Table 13/14 comparison of
    the C15 / C30 / C_opt variants.
    """
    if config is None:
        config = MultilevelConfig()
    with _trace.span("multilevel", nodes=dag.n, P=machine.P) as tspan:
        return _multilevel_schedule(dag, machine, config, tspan)


def _multilevel_schedule(
    dag: ComputationalDAG,
    machine: BspMachine,
    config: MultilevelConfig,
    tspan: "_trace.SpanLike",
) -> Tuple[BspSchedule, Dict[float, float]]:
    if config.memory_bound is not None:
        machine = machine.with_memory_bound(config.memory_bound)
    bounded = machine.has_memory_bounds
    base_config = config.base_pipeline.without_ilp_cs()
    refinement = RefinementConfig(
        refine_interval=config.refine_interval,
        hc_moves_per_refinement=config.hc_moves_per_refinement,
    )

    # The fully coarsened limit of the method is a single cluster, whose
    # schedule is exactly the trivial sequential one; include it as a
    # zero-cost candidate so the multilevel scheduler never returns a
    # solution worse than the trivial baseline (the property the paper
    # highlights for communication-dominated instances, Section 7.3).
    # Under memory bounds the trivial schedule is generally infeasible, so
    # the memory-aware greedy takes over as the feasibility fallback — but
    # only as a *candidate*: its first-fit placement can fail on tight
    # instances the repair-based per-ratio path still schedules.
    best_schedule: Optional[BspSchedule] = None
    if bounded:
        from ..baselines.memory import MemoryAwareGreedyScheduler, repair_memory

        try:
            best_schedule = MemoryAwareGreedyScheduler().schedule(dag, machine)
        except SchedulingError:
            pass
    else:
        best_schedule = BspSchedule.trivial(dag, machine)
    best_cost = float(best_schedule.cost()) if best_schedule is not None else float("inf")
    per_ratio_cost: Dict[float, float] = {}

    for ratio in config.coarsening_ratios:
        with _trace.span("ml_ratio", ratio=float(ratio)) as ratio_span:
            target = max(config.min_coarse_nodes, int(round(dag.n * float(ratio))))
            target = min(target, dag.n)
            with _trace.span("coarsen"):
                sequence = coarsen_dag(
                    dag, target, light_fraction=config.light_edge_fraction
                )
                coarse_dag, _ = sequence.coarse_dag_after(sequence.num_contractions)

            # The base pipeline is not memory-aware: solve the coarse DAG
            # unconstrained, then repair the result into the feasible region
            # before the bound-respecting refinement takes over.
            solve_machine = machine.without_memory_bound() if bounded else machine
            with _trace.span("coarse_solve", coarse_nodes=coarse_dag.n):
                coarse_result = run_pipeline(coarse_dag, solve_machine, base_config)
            coarse_schedule = coarse_result.schedule.without_comm()
            if bounded:
                coarse_schedule = BspSchedule(
                    coarse_dag, machine, coarse_schedule.proc, coarse_schedule.step
                )
                try:
                    coarse_schedule = repair_memory(coarse_schedule)
                except SchedulingError:
                    # Cluster granularity too coarse for the bound at this
                    # ratio; the fallback candidate keeps the result feasible.
                    if _trace.enabled():
                        ratio_span.annotate(repair_failed=True)
                    continue
            with _trace.span("refine"):
                refined = uncoarsen_and_refine(
                    sequence, machine, coarse_schedule, config=refinement
                )

            # Communication scheduling is run on the original DAG only — the
            # coarse DAG overestimates communication volumes (summed weights).
            with _trace.span("comm_opt"):
                refined = comm_hill_climb(
                    refined, time_limit=config.base_pipeline.hccs_time_limit
                ).schedule
                if config.base_pipeline.use_ilp_cs:
                    refined = CommScheduleIlpImprover(
                        time_limit=config.base_pipeline.ilp_cs_time_limit,
                        backend=config.base_pipeline.solver_backend,
                    ).improve(refined)

            cost = float(refined.cost())
            per_ratio_cost[float(ratio)] = cost
            if _trace.enabled():
                ratio_span.annotate(cost=cost)
            if cost < best_cost:
                best_cost = cost
                best_schedule = refined

    if best_schedule is None:
        raise SchedulingError(
            "multilevel scheduler found no memory-feasible schedule: the "
            "greedy fallback and every coarsening ratio failed under the "
            "per-processor memory bounds"
        )
    if _trace.enabled():
        tspan.annotate(final_cost=best_cost)
    return best_schedule, per_ratio_cost


class MultilevelScheduler(Scheduler):
    """The multilevel coarsen–solve–refine scheduler as a :class:`Scheduler`."""

    name = "ML"

    def __init__(self, config: Optional[MultilevelConfig] = None) -> None:
        self.config = config or MultilevelConfig()

    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        schedule, _ = multilevel_schedule(dag, machine, self.config)
        return schedule
