"""The multilevel scheduler (paper Section 4.5, Figure 4).

Pipeline: coarsen the DAG, schedule the coarse DAG with the base framework
(Figure 3, without its final communication-schedule ILP), then uncoarsen
step by step while refining with bounded hill climbing, and finally optimize
the communication schedule of the resulting original-DAG schedule with HCcs
and ILPcs.  The whole procedure is run for each configured coarsening ratio
(30% and 15% in the paper) and the cheapest result is returned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..graphs.dag import ComputationalDAG
from ..ilp.commsched import CommScheduleIlpImprover
from ..localsearch.comm_hill_climbing import comm_hill_climb
from ..model.machine import BspMachine
from ..model.schedule import BspSchedule
from ..pipeline.config import MultilevelConfig, PipelineConfig
from ..pipeline.framework import run_pipeline
from ..scheduler import Scheduler
from .coarsen import coarsen_dag
from .refine import RefinementConfig, uncoarsen_and_refine

__all__ = ["MultilevelScheduler", "multilevel_schedule"]


def multilevel_schedule(
    dag: ComputationalDAG,
    machine: BspMachine,
    config: Optional[MultilevelConfig] = None,
) -> Tuple[BspSchedule, Dict[float, float]]:
    """Run the multilevel scheduler; returns (best schedule, cost per ratio).

    The per-ratio cost dictionary backs the paper's Table 13/14 comparison of
    the C15 / C30 / C_opt variants.
    """
    if config is None:
        config = MultilevelConfig()
    base_config = config.base_pipeline.without_ilp_cs()
    refinement = RefinementConfig(
        refine_interval=config.refine_interval,
        hc_moves_per_refinement=config.hc_moves_per_refinement,
    )

    # The fully coarsened limit of the method is a single cluster, whose
    # schedule is exactly the trivial sequential one; include it as a
    # zero-cost candidate so the multilevel scheduler never returns a
    # solution worse than the trivial baseline (the property the paper
    # highlights for communication-dominated instances, Section 7.3).
    best_schedule: BspSchedule = BspSchedule.trivial(dag, machine)
    best_cost = float(best_schedule.cost())
    per_ratio_cost: Dict[float, float] = {}

    for ratio in config.coarsening_ratios:
        target = max(config.min_coarse_nodes, int(round(dag.n * float(ratio))))
        target = min(target, dag.n)
        sequence = coarsen_dag(dag, target, light_fraction=config.light_edge_fraction)
        coarse_dag, _ = sequence.coarse_dag_after(sequence.num_contractions)

        coarse_result = run_pipeline(coarse_dag, machine, base_config)
        refined = uncoarsen_and_refine(
            sequence, machine, coarse_result.schedule.without_comm(), config=refinement
        )

        # Communication scheduling is run on the original DAG only — the
        # coarse DAG overestimates communication volumes (summed weights).
        refined = comm_hill_climb(
            refined, time_limit=config.base_pipeline.hccs_time_limit
        ).schedule
        if config.base_pipeline.use_ilp_cs:
            refined = CommScheduleIlpImprover(
                time_limit=config.base_pipeline.ilp_cs_time_limit,
                backend=config.base_pipeline.solver_backend,
            ).improve(refined)

        cost = float(refined.cost())
        per_ratio_cost[float(ratio)] = cost
        if cost < best_cost:
            best_cost = cost
            best_schedule = refined

    assert best_schedule is not None
    return best_schedule, per_ratio_cost


class MultilevelScheduler(Scheduler):
    """The multilevel coarsen–solve–refine scheduler as a :class:`Scheduler`."""

    name = "ML"

    def __init__(self, config: Optional[MultilevelConfig] = None) -> None:
        self.config = config or MultilevelConfig()

    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        schedule, _ = multilevel_schedule(dag, machine, self.config)
        return schedule
