"""Multilevel (coarsen–solve–refine) scheduling (paper Section 4.5)."""

from .coarsen import (
    CoarseningSequence,
    ContractionRecord,
    coarse_dag_from_partition,
    coarsen_dag,
)
from .refine import RefinementConfig, project_schedule, uncoarsen_and_refine
from .scheduler import MultilevelScheduler, multilevel_schedule

__all__ = [
    "coarsen_dag",
    "CoarseningSequence",
    "ContractionRecord",
    "coarse_dag_from_partition",
    "project_schedule",
    "uncoarsen_and_refine",
    "RefinementConfig",
    "MultilevelScheduler",
    "multilevel_schedule",
]
