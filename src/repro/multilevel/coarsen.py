"""DAG coarsening by acyclicity-preserving edge contraction (paper 4.5 / A.5).

The coarsening phase repeatedly contracts a directed edge ``(u, v)`` into a
single node.  An edge may only be contracted if no *other* directed path
from ``u`` to ``v`` exists (otherwise the contraction would create a cycle).
Following the paper, the contractable edges are ranked by the combined work
weight ``w(u) + w(v)`` (smaller is better, so no huge cluster is forced onto
one processor) and, within the lightest third, by the communication weight
``c(u)`` (larger is better, since contracting removes the need to ever send
that value across the contracted edge).

The full sequence of contractions is recorded so that the uncoarsening phase
can replay it in reverse and rebuild every intermediate coarse DAG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..graphs.dag import ComputationalDAG

__all__ = ["ContractionRecord", "CoarseningSequence", "coarsen_dag", "coarse_dag_from_partition"]


@dataclass(frozen=True)
class ContractionRecord:
    """One contraction step: cluster ``absorbed`` merged into cluster ``kept``.

    Both fields are *original-DAG node ids* representing their clusters at
    the time of contraction.
    """

    kept: int
    absorbed: int


@dataclass
class CoarseningSequence:
    """The original DAG plus an ordered list of contraction records."""

    dag: ComputationalDAG
    records: List[ContractionRecord] = field(default_factory=list)

    @property
    def num_contractions(self) -> int:
        return len(self.records)

    def partition_after(self, num_steps: int) -> np.ndarray:
        """Cluster representative of every original node after ``num_steps``
        contractions (a prefix of the recorded sequence)."""
        if not (0 <= num_steps <= len(self.records)):
            raise ValueError("num_steps out of range")
        rep = np.arange(self.dag.n, dtype=np.int64)

        def find(x: int) -> int:
            while rep[x] != x:
                rep[x] = rep[rep[x]]
                x = int(rep[x])
            return x

        for record in self.records[:num_steps]:
            ra, rk = find(record.absorbed), find(record.kept)
            if ra != rk:
                rep[ra] = rk
        return np.array([find(v) for v in range(self.dag.n)], dtype=np.int64)

    def coarse_dag_after(self, num_steps: int) -> Tuple[ComputationalDAG, np.ndarray]:
        """Coarse DAG after ``num_steps`` contractions plus the node mapping.

        Returns ``(coarse_dag, mapping)`` where ``mapping[original_node]`` is
        the coarse node index of the cluster containing it.
        """
        partition = self.partition_after(num_steps)
        return coarse_dag_from_partition(self.dag, partition)


def coarse_dag_from_partition(
    dag: ComputationalDAG, cluster_rep: np.ndarray
) -> Tuple[ComputationalDAG, np.ndarray]:
    """Build the quotient DAG of a cluster partition (weights summed)."""
    cluster_rep = np.asarray(cluster_rep, dtype=np.int64)
    reps, mapping = np.unique(cluster_rep, return_inverse=True)
    mapping = mapping.astype(np.int64)
    num_clusters = len(reps)
    work = np.bincount(mapping, weights=dag.work, minlength=num_clusters).astype(np.int64)
    comm = np.bincount(mapping, weights=dag.comm, minlength=num_clusters).astype(np.int64)
    memory = np.bincount(mapping, weights=dag.memory, minlength=num_clusters).astype(np.int64)
    edges: List[Tuple[int, int]] = []
    if dag.num_edges:
        cu = mapping[dag.edge_sources]
        cv = mapping[dag.edge_targets]
        keep = cu != cv
        if np.any(keep):
            pairs = np.unique(np.stack([cu[keep], cv[keep]], axis=1), axis=0)
            edges = [tuple(pair) for pair in pairs.tolist()]
    coarse = ComputationalDAG(
        num_clusters, edges, work, comm, name=f"{dag.name}-coarse", memory=memory
    )
    return coarse, mapping


class _MutableCoarseGraph:
    """Mutable cluster graph used during coarsening (adjacency as sets)."""

    def __init__(self, dag: ComputationalDAG) -> None:
        self.children: Dict[int, Set[int]] = {
            v: set(dag.successors_array(v).tolist()) for v in dag.nodes()
        }
        self.parents: Dict[int, Set[int]] = {
            v: set(dag.predecessors_array(v).tolist()) for v in dag.nodes()
        }
        self.work: Dict[int, int] = dict(enumerate(np.asarray(dag.work).tolist()))
        self.comm: Dict[int, int] = dict(enumerate(np.asarray(dag.comm).tolist()))

    @property
    def num_nodes(self) -> int:
        return len(self.children)

    def edges(self) -> List[Tuple[int, int]]:
        return [(u, v) for u, kids in self.children.items() for v in kids]

    def has_other_path(self, u: int, v: int) -> bool:
        """True if a directed path from u to v exists besides the edge (u, v)."""
        stack = [w for w in self.children[u] if w != v]
        seen: Set[int] = set()
        while stack:
            x = stack.pop()
            if x == v:
                return True
            if x in seen:
                continue
            seen.add(x)
            stack.extend(self.children[x])
        return False

    def contract(self, u: int, v: int) -> None:
        """Merge cluster ``v`` into cluster ``u`` (edge (u, v) must exist)."""
        self.children[u].discard(v)
        self.parents[v].discard(u)
        for w in self.children.pop(v):
            self.parents[w].discard(v)
            if w != u:
                self.children[u].add(w)
                self.parents[w].add(u)
        for w in self.parents.pop(v):
            self.children[w].discard(v)
            if w != u:
                self.parents[u].add(w)
                self.children[w].add(u)
        self.work[u] += self.work.pop(v)
        self.comm[u] += self.comm.pop(v)


def coarsen_dag(
    dag: ComputationalDAG,
    target_nodes: int,
    *,
    light_fraction: float = 1.0 / 3.0,
    max_candidate_checks: int = 64,
) -> CoarseningSequence:
    """Coarsen ``dag`` down to (approximately) ``target_nodes`` clusters.

    Contractions stop when the target size is reached or no contractable
    edge remains.  ``light_fraction`` is the fraction of the lightest
    (by combined work weight) edges considered in each step, and
    ``max_candidate_checks`` bounds how many of them are tested for
    contractability before simply taking the first contractable edge found.
    """
    if target_nodes < 1:
        raise ValueError("target_nodes must be at least 1")
    sequence = CoarseningSequence(dag=dag)
    graph = _MutableCoarseGraph(dag)

    while graph.num_nodes > target_nodes:
        edges = graph.edges()
        if not edges:
            break
        edges.sort(key=lambda e: (graph.work[e[0]] + graph.work[e[1]], e))
        cutoff = max(1, int(len(edges) * light_fraction))
        light = edges[:cutoff]
        # Prefer large source communication weight within the light edges.
        light.sort(key=lambda e: (-graph.comm[e[0]], e))

        chosen: Optional[Tuple[int, int]] = None
        for (u, v) in light[:max_candidate_checks]:
            if not graph.has_other_path(u, v):
                chosen = (u, v)
                break
        if chosen is None:
            # Fall back to scanning the full edge list for any contractable edge.
            for (u, v) in edges:
                if not graph.has_other_path(u, v):
                    chosen = (u, v)
                    break
        if chosen is None:
            break  # no contractable edge left (cannot happen for a DAG with edges)
        u, v = chosen
        graph.contract(u, v)
        sequence.records.append(ContractionRecord(kept=u, absorbed=v))
    return sequence
