"""Summarize a ``repro-trace/1`` file: where did the wall time go?

Backs ``repro trace-view``.  The summary aggregates spans by name into a
per-stage breakdown (total time, *self* time with child spans subtracted),
lists the slowest individual spans, and attributes cache traffic recorded
as ``cache`` events or ``cached`` span attributes.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = ["summarize_trace", "render_trace_summary"]


def summarize_trace(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate parsed trace records (header included) into summary data."""
    spans = [r for r in records if r.get("type") == "span"]
    by_id = {s["id"]: s for s in spans}
    child_time: Dict[int, float] = {}
    for span in spans:
        parent = span.get("parent")
        if parent in by_id:
            child_time[parent] = child_time.get(parent, 0.0) + (span["t1"] - span["t0"])

    stages: Dict[str, Dict[str, float]] = {}
    for span in spans:
        duration = span["t1"] - span["t0"]
        self_time = max(0.0, duration - child_time.get(span["id"], 0.0))
        stage = stages.setdefault(span["name"], {"count": 0, "total_s": 0.0, "self_s": 0.0})
        stage["count"] += 1
        stage["total_s"] += duration
        stage["self_s"] += self_time

    cache_hits = 0
    cache_misses = 0
    for span in spans:
        cached = span.get("attrs", {}).get("cached")
        if cached is True:
            cache_hits += 1
        elif cached is False:
            cache_misses += 1
        for event in span.get("events", ()):
            if event.get("name") == "cache":
                if event.get("hit"):
                    cache_hits += 1
                else:
                    cache_misses += 1

    wall = 0.0
    if spans:
        wall = max(s["t1"] for s in spans) - min(s["t0"] for s in spans)
    slowest = sorted(spans, key=lambda s: s["t1"] - s["t0"], reverse=True)
    return {
        "spans": len(spans),
        "threads": len({s["thread"] for s in spans}),
        "wall_s": wall,
        "stages": stages,
        "slowest": slowest,
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
    }


def render_trace_summary(records: List[Dict[str, Any]], *, top: int = 10) -> str:
    """Human-readable summary of a parsed trace."""
    summary = summarize_trace(records)
    lines = [
        f"trace: {summary['spans']} span(s) on {summary['threads']} thread(s), "
        f"wall {summary['wall_s']:.3f}s"
    ]
    stages = summary["stages"]
    if stages:
        lines.append("")
        lines.append("per-stage breakdown (self = time not inside a child span):")
        name_w = max(len("stage"), max(len(name) for name in stages))
        lines.append(f"  {'stage'.ljust(name_w)}  {'count':>5}  {'total_s':>9}  {'self_s':>9}")
        for name, stage in sorted(stages.items(), key=lambda kv: -kv[1]["total_s"]):
            lines.append(
                f"  {name.ljust(name_w)}  {int(stage['count']):>5}  "
                f"{stage['total_s']:>9.4f}  {stage['self_s']:>9.4f}"
            )
    slowest = summary["slowest"][: max(0, top)]
    if slowest:
        lines.append("")
        lines.append(f"slowest {len(slowest)} span(s):")
        for span in slowest:
            duration = span["t1"] - span["t0"]
            attrs = span.get("attrs", {})
            brief = ", ".join(f"{k}={attrs[k]}" for k in sorted(attrs)[:4])
            suffix = f"  ({brief})" if brief else ""
            lines.append(f"  {duration:>9.4f}s  #{span['id']} {span['name']}{suffix}")
    hits, misses = summary["cache_hits"], summary["cache_misses"]
    if hits or misses:
        lines.append("")
        total = hits + misses
        lines.append(f"cache attribution: {hits} hit(s), {misses} miss(es) of {total} lookup(s)")
    return "\n".join(lines)
