"""Unified observability layer: span tracing, metrics, convergence telemetry.

Three pieces, all stdlib-only (importable from any subsystem without new
dependencies or import cycles):

* :mod:`repro.obs.trace` — hierarchical span tracer with a zero-cost
  disabled path, emitting schema-versioned ``repro-trace/1`` JSONL;
* :mod:`repro.obs.metrics` — thread-safe counters / gauges / bounded
  ring-buffer histograms behind one :class:`Metrics` registry, with
  Prometheus text exposition;
* :mod:`repro.obs.traceview` — the ``repro trace-view`` summarizer.

The invariant every hook in this package obeys: observability never
perturbs results.  Hooks read scheduler state, never advance an RNG, and no
timing field reaches deterministic ``SolveResult`` output.
"""

from .metrics import Counter, Gauge, Histogram, Metrics, percentiles, render_prometheus
from .trace import (
    NOOP_SPAN,
    TRACE_SCHEMA,
    Span,
    Tracer,
    active,
    annotate,
    enabled,
    event,
    install,
    read_trace,
    span,
    tracing,
    uninstall,
    validate_trace,
)
from .traceview import render_trace_summary, summarize_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "percentiles",
    "render_prometheus",
    "NOOP_SPAN",
    "TRACE_SCHEMA",
    "Span",
    "Tracer",
    "active",
    "annotate",
    "enabled",
    "event",
    "install",
    "read_trace",
    "span",
    "tracing",
    "uninstall",
    "validate_trace",
    "render_trace_summary",
    "summarize_trace",
]
