"""Hierarchical span tracing with a zero-cost disabled path.

A *span* is one timed region of a solve — ``solve`` -> pipeline stage ->
coarsen/refine level -> local-search pass — carrying attributes (scheduler,
cost, moves applied) and point-in-time *events* (per-pass convergence
samples, cache hits).  Spans nest per thread: each thread of the tracer
keeps its own stack, so the serve daemon's worker threads trace concurrent
requests without interleaving.

Tracing is off unless a :class:`Tracer` is installed (the ``--trace FILE``
CLI flag does this).  When off, :func:`span` returns one shared no-op
singleton and :func:`event` / :func:`annotate` return immediately — the
instrumented hot paths pay one module-global ``None`` check and nothing
else, and they must never perturb results: hooks read state, they never
touch RNG streams or control flow.

The emitted file is schema-versioned JSONL (``repro-trace/1``): a header
line followed by one JSON object per finished span, in completion order
(parents therefore appear *after* their children)::

    {"schema": "repro-trace/1", "type": "header"}
    {"type": "span", "id": 2, "parent": 1, "name": "init", "t0": ..., "t1": ...,
     "thread": "MainThread", "attrs": {...}, "events": [{"name": ..., "t": ...}]}

All timestamps are ``time.perf_counter`` seconds relative to the tracer's
creation — wall-clock time never enters the trace, and no timing field ever
enters a :class:`~repro.spec.SolveResult`.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Union

__all__ = [
    "TRACE_SCHEMA",
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "active",
    "annotate",
    "enabled",
    "event",
    "install",
    "read_trace",
    "span",
    "tracing",
    "uninstall",
    "validate_trace",
]

#: Schema identifier written on the header line.  Bump on any incompatible
#: change to the record shapes documented above.
TRACE_SCHEMA = "repro-trace/1"

#: Tolerance when validating parent/child interval containment: a child's
#: ``t1`` is taken *before* its parent's, but float rounding may reorder
#: equal readings by an ulp.
_NEST_EPS = 1e-9


class _NoopSpan:
    """The shared do-nothing span returned while tracing is disabled.

    A singleton so the disabled path allocates nothing per call — tests pin
    this with ``span("a") is span("b")``.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def annotate(self, **attrs: Any) -> "_NoopSpan":
        return self

    def event(self, name: str, **attrs: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class Span:
    """One live traced region; use as a context manager (``with span(...)``)."""

    __slots__ = ("tracer", "name", "attrs", "events", "span_id", "parent_id", "thread", "t0", "t1")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.events: List[Dict[str, Any]] = []
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.thread = ""
        self.t0 = 0.0
        self.t1 = 0.0

    def __enter__(self) -> "Span":
        tracer = self.tracer
        stack = tracer._stack()
        self.parent_id = stack[-1].span_id if stack else None
        self.span_id = tracer._fresh_id()
        self.thread = threading.current_thread().name
        stack.append(self)
        self.t0 = tracer._now()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.t1 = self.tracer._now()
        stack = self.tracer._stack()
        while stack:  # unwind past spans leaked by an exception below us
            top = stack.pop()
            if top is self:
                break
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._record(self._to_record())
        return None

    def annotate(self, **attrs: Any) -> "Span":
        """Attach attributes to the span (later keys win)."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: Any) -> "Span":
        """Record one point-in-time event inside the span."""
        record: Dict[str, Any] = dict(attrs)
        record["name"] = name
        record["t"] = self.tracer._now()
        self.events.append(record)
        return self

    def _to_record(self) -> Dict[str, Any]:
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "thread": self.thread,
            "t0": self.t0,
            "t1": self.t1,
            "attrs": self.attrs,
            "events": self.events,
        }


SpanLike = Union[Span, _NoopSpan]


class Tracer:
    """Collects finished span records; one instance per traced run.

    Thread-safe: span ids come from an atomic counter, finished records are
    appended under a lock, and the *open* span stack is thread-local, so
    concurrent threads nest their own spans independently.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[Dict[str, Any]] = []
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._origin = time.perf_counter()

    # ------------------------------------------------------------------
    # Span plumbing
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._origin

    def _fresh_id(self) -> int:
        return next(self._ids)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._records.append(record)

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        """A new span nested under this thread's current span (on enter)."""
        return Span(self, name, attrs)

    def current(self) -> Optional[Span]:
        """This thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def records(self) -> List[Dict[str, Any]]:
        """Snapshot of the finished span records (completion order)."""
        with self._lock:
            return list(self._records)

    def write(self, path_or_file: Any) -> int:
        """Write the ``repro-trace/1`` JSONL file; returns the span count.

        Records are sorted by span id so repeated writes of the same tracer
        are byte-identical regardless of completion interleavings.
        """
        records = sorted(self.records(), key=lambda r: r["id"])
        lines = [json.dumps({"schema": TRACE_SCHEMA, "type": "header"}, sort_keys=True)]
        lines.extend(json.dumps(record, sort_keys=True) for record in records)
        text = "\n".join(lines) + "\n"
        if hasattr(path_or_file, "write"):
            path_or_file.write(text)
        else:
            with open(path_or_file, "w") as handle:
                handle.write(text)
        return len(records)


# ----------------------------------------------------------------------
# Module-level switchboard (what instrumented code calls)
# ----------------------------------------------------------------------
_ACTIVE: Optional[Tracer] = None


def install(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Make ``tracer`` the process tracer; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


def uninstall() -> Optional[Tracer]:
    """Disable tracing; returns the tracer that was installed."""
    return install(None)


def active() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE


def enabled() -> bool:
    """Cheap guard for hooks that would otherwise build event payloads."""
    return _ACTIVE is not None


def span(name: str, **attrs: Any) -> SpanLike:
    """A span on the active tracer, or the shared no-op when disabled."""
    tracer = _ACTIVE
    if tracer is None:
        return NOOP_SPAN
    return Span(tracer, name, attrs)


def annotate(**attrs: Any) -> None:
    """Attach attributes to the current span (no-op when disabled/rootless)."""
    tracer = _ACTIVE
    if tracer is None:
        return
    current = tracer.current()
    if current is not None:
        current.attrs.update(attrs)


def event(name: str, **attrs: Any) -> None:
    """Record an event on the current span (no-op when disabled/rootless)."""
    tracer = _ACTIVE
    if tracer is None:
        return
    current = tracer.current()
    if current is not None:
        current.event(name, **attrs)


@contextlib.contextmanager
def tracing(root: Optional[str] = None, **attrs: Any) -> Iterator[Tracer]:
    """Install a fresh tracer for the block (optionally under a root span).

    Restores whatever tracer was installed before — nested ``tracing``
    blocks therefore behave sanely, each collecting its own records.
    """
    tracer = Tracer()
    previous = install(tracer)
    try:
        if root is not None:
            with tracer.span(root, **attrs):
                yield tracer
        else:
            yield tracer
    finally:
        install(previous)


# ----------------------------------------------------------------------
# Reading and validation
# ----------------------------------------------------------------------
def read_trace(path_or_file: Any) -> List[Dict[str, Any]]:
    """Parse a trace file into its records (header included).

    Raises ``ValueError`` on non-JSONL content; schema-level problems are
    the job of :func:`validate_trace`.
    """
    if hasattr(path_or_file, "read"):
        text = path_or_file.read()
    else:
        with open(path_or_file) as handle:
            text = handle.read()
    records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {lineno} is not valid JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise ValueError(f"trace line {lineno} is not a JSON object")
        records.append(record)
    return records


_SPAN_KEYS = ("id", "parent", "name", "thread", "t0", "t1", "attrs", "events")


def validate_trace(records: List[Dict[str, Any]]) -> List[str]:
    """Schema problems of a parsed trace; an empty list means valid.

    Checks the ``repro-trace/1`` contract: header first, every span record
    complete and well-typed, ids unique, parents resolving to known spans,
    ``t0 <= t1``, events timestamped inside their span, and same-thread
    children contained in their parent's interval.
    """
    problems: List[str] = []
    if not records:
        return ["empty trace (no header line)"]
    header = records[0]
    if header.get("type") != "header" or header.get("schema") != TRACE_SCHEMA:
        problems.append(f"first line is not a {TRACE_SCHEMA} header: {header}")
    spans: Dict[int, Dict[str, Any]] = {}
    for k, record in enumerate(records[1:], start=2):
        kind = record.get("type")
        if kind == "header":
            problems.append(f"line {k}: duplicate header")
            continue
        if kind != "span":
            problems.append(f"line {k}: unknown record type {kind!r}")
            continue
        missing = [key for key in _SPAN_KEYS if key not in record]
        if missing:
            problems.append(f"line {k}: span record missing {missing}")
            continue
        span_id = record["id"]
        if not isinstance(span_id, int) or span_id < 1:
            problems.append(f"line {k}: bad span id {span_id!r}")
            continue
        if span_id in spans:
            problems.append(f"line {k}: duplicate span id {span_id}")
            continue
        if not isinstance(record["name"], str) or not record["name"]:
            problems.append(f"line {k}: span {span_id} has no name")
        if not isinstance(record["attrs"], dict):
            problems.append(f"line {k}: span {span_id} attrs is not an object")
        t0, t1 = record["t0"], record["t1"]
        if not isinstance(t0, (int, float)) or not isinstance(t1, (int, float)):
            problems.append(f"line {k}: span {span_id} has non-numeric times")
        elif t1 < t0:
            problems.append(f"line {k}: span {span_id} ends before it starts")
        events = record["events"]
        if not isinstance(events, list):
            problems.append(f"line {k}: span {span_id} events is not a list")
        else:
            for event_record in events:
                if not isinstance(event_record, dict) or "name" not in event_record:
                    problems.append(f"line {k}: span {span_id} has a malformed event")
                    break
                t = event_record.get("t")
                if not isinstance(t, (int, float)) or t < t0 - _NEST_EPS or t > t1 + _NEST_EPS:
                    problems.append(
                        f"line {k}: span {span_id} event {event_record['name']!r} "
                        "timestamped outside the span"
                    )
                    break
        spans[span_id] = record
    for span_id, record in spans.items():
        parent_id = record["parent"]
        if parent_id is None:
            continue
        parent = spans.get(parent_id)
        if parent is None:
            problems.append(f"span {span_id} references unknown parent {parent_id}")
            continue
        if parent["thread"] == record["thread"]:
            if record["t0"] < parent["t0"] - _NEST_EPS or record["t1"] > parent["t1"] + _NEST_EPS:
                problems.append(
                    f"span {span_id} ({record['name']}) is not contained in "
                    f"its parent {parent_id} ({parent['name']})"
                )
    return problems
