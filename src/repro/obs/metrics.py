"""Stdlib-only metrics primitives: counters, gauges, bounded histograms.

One :class:`Metrics` registry owns a set of named instruments.  The serve
worker pool, the solution cache and the queue worker each hold their own
registry (no process-global state, so tests never leak counters into each
other), and the daemon merges them into one Prometheus text exposition for
the ``metrics`` wire op.

Design constraints:

* every instrument is thread-safe on its own (one small lock per
  instrument) — callers never need an external lock to bump a counter;
* histograms are *bounded*: a fixed-size ring buffer backs the percentile
  window, so a long-running daemon's memory does not grow with traffic
  (``count`` and ``sum`` still accumulate over the full lifetime);
* counters accept negative increments — the serve pool counts a response
  *before* delivering it and undoes the count when it loses the respond
  race to the deadline monitor;
* percentiles use the same nearest-rank rule the serve stats endpoint has
  always reported (:func:`percentiles` moved here from ``serve/pool.py``
  and is re-exported there for compatibility).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "percentiles",
    "render_prometheus",
]

Number = Union[int, float]

#: Default percentile window of a histogram (matches the serve pool's
#: historical latency window).
DEFAULT_WINDOW = 2048

#: (name, sorted label items) — the registry key of one instrument.
_InstrumentKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def percentiles(
    values: List[float], points: Sequence[float] = (50.0, 90.0, 99.0)
) -> Dict[str, float]:
    """Nearest-rank percentiles of ``values`` (empty input -> zeros)."""
    out: Dict[str, float] = {}
    ordered = sorted(values)
    for point in points:
        key = f"p{point:g}"
        if not ordered:
            out[key] = 0.0
        else:
            rank = max(0, min(len(ordered) - 1, int(round(point / 100.0 * len(ordered))) - 1))
            out[key] = ordered[rank]
    return out


def _label_key(labels: Optional[Dict[str, str]]) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotone-by-convention counter (negative increments undo a count)."""

    kind = "counter"
    __slots__ = ("name", "help", "labels", "_lock", "_value")

    def __init__(self, name: str, help: str = "", labels: Optional[Dict[str, str]] = None) -> None:
        self.name = name
        self.help = help
        self.labels: Tuple[Tuple[str, str], ...] = _label_key(labels)
        self._lock = threading.Lock()
        self._value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        with self._lock:
            return self._value

    def sample_lines(self) -> List[str]:
        return [f"{self.name}{_render_labels(self.labels)} {_format_number(self.value)}"]


class Gauge:
    """A value that goes up and down (queue depth, LRU occupancy, uptime)."""

    kind = "gauge"
    __slots__ = ("name", "help", "labels", "_lock", "_value")

    def __init__(self, name: str, help: str = "", labels: Optional[Dict[str, str]] = None) -> None:
        self.name = name
        self.help = help
        self.labels: Tuple[Tuple[str, str], ...] = _label_key(labels)
        self._lock = threading.Lock()
        self._value: Number = 0

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: Number = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: Number = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> Number:
        with self._lock:
            return self._value

    def sample_lines(self) -> List[str]:
        return [f"{self.name}{_render_labels(self.labels)} {_format_number(self.value)}"]


class Histogram:
    """Ring-buffer histogram: bounded percentile window, unbounded count/sum.

    ``observe`` is O(1) and never allocates once the window is full; the
    window holds the most recent ``window`` observations in insertion order,
    which is exactly the sliding-window semantics the serve stats endpoint
    reported from its (previously unbounded) latency list.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "labels", "window", "_lock", "_values", "_pos", "_count", "_sum")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Dict[str, str]] = None,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        if window < 1:
            raise ValueError("histogram window must be >= 1")
        self.name = name
        self.help = help
        self.labels: Tuple[Tuple[str, str], ...] = _label_key(labels)
        self.window = int(window)
        self._lock = threading.Lock()
        self._values: List[float] = []
        self._pos = 0
        self._count = 0
        self._sum = 0.0

    def observe(self, value: Number) -> None:
        with self._lock:
            self._count += 1
            self._sum += float(value)
            if len(self._values) < self.window:
                self._values.append(float(value))
            else:
                self._values[self._pos] = float(value)
                self._pos = (self._pos + 1) % self.window

    @property
    def count(self) -> int:
        """Observations over the instrument's lifetime (not window-bounded)."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations over the instrument's lifetime."""
        with self._lock:
            return self._sum

    def values(self) -> List[float]:
        """The current window, oldest observation first."""
        with self._lock:
            if len(self._values) < self.window:
                return list(self._values)
            return self._values[self._pos :] + self._values[: self._pos]

    def recent(self, n: int) -> List[float]:
        """The most recent ``min(n, window)`` observations, oldest first."""
        return self.values()[-max(0, int(n)) :]

    def percentiles(self, points: Sequence[float] = (50.0, 90.0, 99.0)) -> Dict[str, float]:
        """Nearest-rank percentiles over the current window."""
        return percentiles(self.values(), points)

    def sample_lines(self) -> List[str]:
        window = self.values()
        pcts = percentiles(window)
        lines = []
        for point, key in ((0.5, "p50"), (0.9, "p90"), (0.99, "p99")):
            labels = self.labels + (("quantile", f"{point:g}"),)
            lines.append(f"{self.name}{_render_labels(labels)} {_format_number(pcts[key])}")
        suffix = _render_labels(self.labels)
        lines.append(f"{self.name}_sum{suffix} {_format_number(self.sum)}")
        lines.append(f"{self.name}_count{suffix} {_format_number(self.count)}")
        return lines


Instrument = Union[Counter, Gauge, Histogram]


class Metrics:
    """A named registry of instruments (get-or-create, type-checked).

    ``counter`` / ``gauge`` / ``histogram`` return the existing instrument
    for a ``(name, labels)`` pair, so call sites can resolve instruments
    lazily without caching them; creating the same name with two different
    kinds is a programming error and raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: "OrderedDict[_InstrumentKey, Instrument]" = OrderedDict()

    def counter(
        self, name: str, help: str = "", labels: Optional[Dict[str, str]] = None
    ) -> Counter:
        instrument = self._instrument(Counter, name, help, labels)
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(self, name: str, help: str = "", labels: Optional[Dict[str, str]] = None) -> Gauge:
        instrument = self._instrument(Gauge, name, help, labels)
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[Dict[str, str]] = None,
        window: int = DEFAULT_WINDOW,
    ) -> Histogram:
        with self._lock:
            key = (name, _label_key(labels))
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ValueError(
                        f"metric {name!r} is already registered as a {existing.kind}"
                    )
                return existing
            instrument = Histogram(name, help, labels, window=window)
            self._instruments[key] = instrument
            return instrument

    def _instrument(
        self, cls: type, name: str, help: str, labels: Optional[Dict[str, str]]
    ) -> Instrument:
        with self._lock:
            key = (name, _label_key(labels))
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} is already registered as a {existing.kind}"
                    )
                return existing
            instrument: Instrument = cls(name, help, labels)
            self._instruments[key] = instrument
            return instrument

    def instruments(self) -> List[Instrument]:
        """Every registered instrument, in registration order."""
        with self._lock:
            return list(self._instruments.values())

    def to_prometheus(self) -> str:
        """This registry alone in Prometheus text exposition format."""
        return render_prometheus(self.instruments())


def render_prometheus(instruments: Iterable[Instrument]) -> str:
    """Prometheus text exposition of any instrument collection.

    Counters and gauges render as single samples, histograms as summaries
    (nearest-rank ``quantile`` samples over the bounded window, plus the
    lifetime ``_sum`` / ``_count``).  Instruments sharing a name (labeled
    counter families) share one ``HELP``/``TYPE`` header.
    """
    by_name: "OrderedDict[str, List[Instrument]]" = OrderedDict()
    for instrument in instruments:
        by_name.setdefault(instrument.name, []).append(instrument)
    lines: List[str] = []
    for name, family in by_name.items():
        first = family[0]
        help_text = first.help or name
        kind = "summary" if isinstance(first, Histogram) else first.kind
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for instrument in family:
            lines.extend(instrument.sample_lines())
    return "\n".join(lines) + "\n" if lines else ""


def _render_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape_label(value)}"' for key, value in labels)
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_number(value: Number) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))
