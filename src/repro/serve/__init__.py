"""Scheduling as a service: a persistent solve daemon and its thin client.

Every other entry point of the package (the CLI, :mod:`repro.api`) is
one-shot: each invocation pays interpreter start, registry build, and a cold
solution cache.  This package keeps all of that warm in one long-running
process:

* :mod:`repro.serve.protocol` — the line-delimited JSON wire format
  (requests, responses, the structured error codes);
* :mod:`repro.serve.pool` — the bounded request queue and worker pool that
  executes :class:`~repro.experiments.runner.WorkItem`\\ s against one shared
  :class:`~repro.portfolio.cache.SolutionCache`;
* :mod:`repro.serve.server` — the TCP daemon (``repro serve``): connection
  handling, backpressure, per-request timeouts, stats/health, graceful
  drain on shutdown;
* :mod:`repro.serve.client` — the thin client (``repro submit``):
  :func:`~repro.serve.client.connect` / ``solve`` / ``solve_many`` /
  ``stats`` with retry-with-backoff on transient failures.

Quick start::

    # terminal 1
    python -m repro serve --port 7464 --jobs 4 --cache-dir .cache

    # terminal 2 (or any process)
    from repro.serve import connect
    from repro.spec import DagSpec, MachineSpec, ProblemSpec, SolveRequest

    client = connect("127.0.0.1:7464")
    spec = ProblemSpec(dag=DagSpec.generator("spmv", n=12, q=0.25, seed=42),
                       machine=MachineSpec(P=4, g=3, l=5))
    result = client.solve(SolveRequest(spec=spec, scheduler="hc"))
"""

from .client import ServeError, ServiceClient, connect
from .protocol import (
    ERROR_CODES,
    E_INTERNAL,
    E_INVALID_REQUEST,
    E_INVALID_SPEC,
    E_QUEUE_FULL,
    E_SCHEDULER,
    E_SHUTTING_DOWN,
    E_TIMEOUT,
    PROTOCOL,
    ProtocolError,
)
from .server import ServeConfig, SolveServer

__all__ = [
    "PROTOCOL",
    "ERROR_CODES",
    "E_INTERNAL",
    "E_INVALID_REQUEST",
    "E_INVALID_SPEC",
    "E_QUEUE_FULL",
    "E_SCHEDULER",
    "E_SHUTTING_DOWN",
    "E_TIMEOUT",
    "ProtocolError",
    "ServeConfig",
    "SolveServer",
    "ServeError",
    "ServiceClient",
    "connect",
]
