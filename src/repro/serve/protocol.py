"""Wire format of the solve service: line-delimited JSON over a stream.

One message is one JSON object on one ``\\n``-terminated line (NDJSON), in
both directions.  A client may pipeline any number of requests on one
connection; the server answers each request exactly once, tagged with the
request's ``id``, in *completion* order (not necessarily submission order).
Every failure is a structured error response — the server never answers a
well-formed line by dropping the connection.

Requests (client -> server)::

    {"op": "solve",    "id": 7, "request": {<SolveRequest.to_dict()>}, "timeout": 30.0}
    {"op": "stats",    "id": 8, "disk": false}
    {"op": "metrics",  "id": 9}
    {"op": "health",   "id": 10}
    {"op": "shutdown", "id": 11, "drain": true}

Responses (server -> client)::

    {"id": 7, "ok": true,  "op": "solve", "cached": false, "result": {<SolveResult.to_dict()>}}
    {"id": 8, "ok": true,  "op": "stats", "data": {...}}
    {"id": 7, "ok": false, "error": {"code": "queue-full", "message": "...", "retry_after": 0.2}}

Error codes (the ``error.code`` field):

================== ==========================================================
``invalid-request`` the line is not valid JSON / not a known message shape
``invalid-spec``    the embedded :class:`~repro.spec.SolveRequest` cannot be
                    built (malformed spec, unknown scheduler, bad parameters)
``scheduler-error`` the scheduler ran and failed (raised, or produced an
                    invalid schedule); ``error.result`` carries the invalid
                    :class:`~repro.spec.SolveResult` the tolerant batch
                    surface would have reported
``queue-full``      backpressure: the bounded request queue is full;
                    ``error.retry_after`` suggests how long to back off
``timeout``         the per-request deadline passed before a result was ready
``shutting-down``   the server is draining and accepts no new work
``internal-error``  unexpected server-side failure (a bug, not a bad request)
================== ==========================================================

``queue-full`` is the only *retryable-by-design* code: the request was never
accepted, so resubmitting it is always safe, even for non-deterministic
schedulers.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, Optional, Union

__all__ = [
    "PROTOCOL",
    "OP_SOLVE",
    "OP_STATS",
    "OP_METRICS",
    "OP_HEALTH",
    "OP_SHUTDOWN",
    "OPS",
    "E_INVALID_REQUEST",
    "E_INVALID_SPEC",
    "E_SCHEDULER",
    "E_QUEUE_FULL",
    "E_TIMEOUT",
    "E_SHUTTING_DOWN",
    "E_INTERNAL",
    "ERROR_CODES",
    "RETRYABLE_CODES",
    "ProtocolError",
    "encode",
    "decode",
    "read_messages",
    "solve_message",
    "stats_message",
    "metrics_message",
    "health_message",
    "shutdown_message",
    "result_response",
    "data_response",
    "error_response",
]

#: Protocol identifier, reported by the ``health`` endpoint.  Bump on any
#: incompatible change to the message shapes below.
PROTOCOL = "repro-serve/1"

#: Refuse to buffer unbounded garbage from a misbehaving peer: one message
#: line may not exceed this many bytes (inline DAG specs are the only large
#: payloads; 64 MiB is orders of magnitude above any realistic instance).
MAX_LINE_BYTES = 64 * 1024 * 1024

OP_SOLVE = "solve"
OP_STATS = "stats"
OP_METRICS = "metrics"
OP_HEALTH = "health"
OP_SHUTDOWN = "shutdown"
OPS = (OP_SOLVE, OP_STATS, OP_METRICS, OP_HEALTH, OP_SHUTDOWN)

E_INVALID_REQUEST = "invalid-request"
E_INVALID_SPEC = "invalid-spec"
E_SCHEDULER = "scheduler-error"
E_QUEUE_FULL = "queue-full"
E_TIMEOUT = "timeout"
E_SHUTTING_DOWN = "shutting-down"
E_INTERNAL = "internal-error"
ERROR_CODES = (
    E_INVALID_REQUEST,
    E_INVALID_SPEC,
    E_SCHEDULER,
    E_QUEUE_FULL,
    E_TIMEOUT,
    E_SHUTTING_DOWN,
    E_INTERNAL,
)

#: Codes a client may retry verbatim without changing semantics.
RETRYABLE_CODES = frozenset({E_QUEUE_FULL})


class ProtocolError(ValueError):
    """Raised for a line that is not a valid protocol message."""


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode(message: Dict[str, Any]) -> bytes:
    """One message as a ``\\n``-terminated JSON line (sorted keys, compact)."""
    return (json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n").encode()


def decode(line: Union[str, bytes]) -> Dict[str, Any]:
    """Parse one line into a message dict; raises :class:`ProtocolError`."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(f"message exceeds {MAX_LINE_BYTES} bytes")
        try:
            line = line.decode()
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"message is not UTF-8: {exc}") from exc
    line = line.strip()
    if not line:
        raise ProtocolError("empty message line")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"message must be a JSON object, got {type(message).__name__}")
    return message


def read_messages(stream) -> Iterator[Dict[str, Any]]:
    """Messages from a binary line stream, until EOF.

    Malformed lines raise :class:`ProtocolError` — callers decide whether to
    answer with an ``invalid-request`` error (the server) or to treat it as
    a broken peer (the client).
    """
    for raw in stream:
        yield decode(raw)


# ----------------------------------------------------------------------
# Request constructors (client side)
# ----------------------------------------------------------------------
def solve_message(
    request_dict: Dict[str, Any],
    *,
    id: Any,
    timeout: Optional[float] = None,
) -> Dict[str, Any]:
    """A ``solve`` request; ``request_dict`` is ``SolveRequest.to_dict()``."""
    message: Dict[str, Any] = {"op": OP_SOLVE, "id": id, "request": request_dict}
    if timeout is not None:
        message["timeout"] = float(timeout)
    return message


def stats_message(*, id: Any, disk: bool = False) -> Dict[str, Any]:
    """A ``stats`` request; ``disk=True`` also walks the cache directory."""
    return {"op": OP_STATS, "id": id, "disk": bool(disk)}


def metrics_message(*, id: Any) -> Dict[str, Any]:
    """A ``metrics`` request: Prometheus text exposition of the daemon."""
    return {"op": OP_METRICS, "id": id}


def health_message(*, id: Any) -> Dict[str, Any]:
    return {"op": OP_HEALTH, "id": id}


def shutdown_message(*, id: Any, drain: bool = True) -> Dict[str, Any]:
    return {"op": OP_SHUTDOWN, "id": id, "drain": bool(drain)}


# ----------------------------------------------------------------------
# Response constructors (server side)
# ----------------------------------------------------------------------
def result_response(
    id: Any, result_dict: Dict[str, Any], *, cached: bool = False
) -> Dict[str, Any]:
    """Successful ``solve`` response carrying a ``SolveResult.to_dict()``."""
    return {"id": id, "ok": True, "op": OP_SOLVE, "cached": bool(cached), "result": result_dict}


def data_response(id: Any, op: str, data: Dict[str, Any]) -> Dict[str, Any]:
    """Successful response of a non-solve op (stats/metrics/health/shutdown)."""
    return {"id": id, "ok": True, "op": op, "data": data}


def error_response(
    id: Any,
    code: str,
    message: str,
    *,
    retry_after: Optional[float] = None,
    result: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Structured error response; ``code`` is one of :data:`ERROR_CODES`."""
    assert code in ERROR_CODES, code
    error: Dict[str, Any] = {"code": code, "message": message}
    if retry_after is not None:
        error["retry_after"] = float(retry_after)
    if result is not None:
        # scheduler-error responses embed the invalid SolveResult so thin
        # clients can reproduce the tolerant-batch output bytewise.
        error["result"] = result
    return {"id": id, "ok": False, "error": error}
