"""Thin client of the solve daemon: connect / solve / solve_many / stats.

The client owns one TCP connection (re-established transparently after
transient failures) and speaks :mod:`repro.serve.protocol`:

* :func:`connect` dials with retry-with-backoff and verifies the server
  answers ``health`` before returning a usable client;
* :meth:`ServiceClient.solve` submits one request and blocks for its result;
  ``queue-full`` backpressure responses are retried after the server's
  ``retry_after`` hint, other structured errors raise :class:`ServeError`
  with the error code attached;
* :meth:`ServiceClient.solve_many` pipelines a whole batch over the one
  connection — the daemon fans the requests out over its worker pool, the
  client reassembles results *in request order*, retrying only the requests
  that were refused with ``queue-full``.  With ``tolerant=True`` failed
  requests yield ``valid=False`` results exactly like ``repro.api.solve_many
  (tolerant=True)``, so ``repro submit`` output matches ``repro batch``
  output bytewise.

Usage::

    from repro.serve import connect

    with connect("127.0.0.1:7464") as client:
        result = client.solve(request)
        results = client.solve_many(requests)
        print(client.stats()["latency"])
"""

from __future__ import annotations

import socket
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..spec import SolveRequest, SolveResult
from . import protocol

__all__ = ["ServeError", "ServiceUnavailable", "ServiceClient", "connect", "parse_address"]


class ServeError(RuntimeError):
    """A structured error response from the solve service.

    ``code`` is one of :data:`repro.serve.protocol.ERROR_CODES`;
    ``retry_after`` is the server's backoff hint (queue-full responses);
    ``result`` is the embedded invalid result dict, when the server attached
    one (scheduler failures).
    """

    def __init__(
        self,
        code: str,
        message: str,
        *,
        retry_after: Optional[float] = None,
        result: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.retry_after = retry_after
        self.result = result

    @classmethod
    def from_response(cls, response: Dict[str, Any]) -> "ServeError":
        error = response.get("error") or {}
        return cls(
            error.get("code", protocol.E_INTERNAL),
            error.get("message", "unknown error"),
            retry_after=error.get("retry_after"),
            result=error.get("result"),
        )


class ServiceUnavailable(ServeError):
    """The service could not be reached (after the configured retries)."""

    def __init__(self, message: str) -> None:
        super().__init__(protocol.E_SHUTTING_DOWN, message)


AddressLike = Union[str, Tuple[str, int]]


def parse_address(addr: AddressLike) -> Tuple[str, int]:
    """``"host:port"`` / ``":port"`` / ``(host, port)`` -> ``(host, port)``."""
    if isinstance(addr, tuple):
        host, port = addr
        return str(host) or "127.0.0.1", int(port)
    text = str(addr).strip()
    host, sep, port = text.rpartition(":")
    if not sep:
        host, port = "", text
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise ValueError(f"bad service address {addr!r}; expected 'host:port'") from None


class ServiceClient:
    """One connection to a solve daemon, with transparent reconnect.

    Not thread-safe: share a daemon between threads by giving each thread
    its own client (connections are cheap; the daemon multiplexes).
    """

    def __init__(
        self,
        addr: AddressLike,
        *,
        retries: int = 5,
        backoff: float = 0.05,
        max_backoff: float = 2.0,
        socket_timeout: Optional[float] = 300.0,
    ) -> None:
        self.host, self.port = parse_address(addr)
        self.retries = max(0, int(retries))
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)
        self.socket_timeout = socket_timeout
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._next_id = 0

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _connect(self) -> None:
        if self._sock is not None:
            return
        last: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            try:
                sock = socket.create_connection((self.host, self.port), timeout=10.0)
                sock.settimeout(self.socket_timeout)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                self._sock = sock
                self._rfile = sock.makefile("rb")
                return
            except OSError as exc:
                last = exc
                if attempt < self.retries:
                    time.sleep(self._sleep_for(attempt))
        raise ServiceUnavailable(
            f"cannot reach solve service at {self.host}:{self.port} "
            f"after {self.retries + 1} attempts: {last}"
        )

    def _sleep_for(self, attempt: int) -> float:
        return min(self.max_backoff, self.backoff * (2.0 ** attempt))

    def _reset(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        self._reset()

    def __enter__(self) -> "ServiceClient":
        self._connect()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Raw messaging
    # ------------------------------------------------------------------
    def _fresh_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _send(self, message: Dict[str, Any]) -> None:
        assert self._sock is not None
        self._sock.sendall(protocol.encode(message))

    def _recv(self) -> Dict[str, Any]:
        assert self._rfile is not None
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("solve service closed the connection")
        return protocol.decode(line)

    def _call(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response round trip, reconnecting on transport faults.

        Only resent while the *send* has provably not been processed: a
        failure to write (or a connection refused) is always safe to retry;
        a failure while *reading* the response is only retried for ops that
        are idempotent anyway (everything except solve is; solve callers
        handle retry at their level, where request semantics are known).
        """
        for attempt in range(self.retries + 1):
            self._connect()
            try:
                self._send(message)
            except OSError:
                self._reset()
                if attempt < self.retries:
                    time.sleep(self._sleep_for(attempt))
                    continue
                raise ServiceUnavailable(
                    f"lost connection to {self.host}:{self.port} while sending"
                ) from None
            try:
                return self._recv()
            except (OSError, protocol.ProtocolError, ConnectionError) as exc:
                self._reset()
                raise ServiceUnavailable(
                    f"lost connection to {self.host}:{self.port} while waiting: {exc}"
                ) from exc
        raise ServiceUnavailable(f"cannot reach {self.host}:{self.port}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def solve(
        self, request: SolveRequest, *, timeout: Optional[float] = None
    ) -> SolveResult:
        """Solve one request on the daemon; returns its :class:`SolveResult`.

        ``queue-full`` responses are retried with the server's backoff hint
        (the request was never accepted, so a retry is always safe); every
        other structured error raises :class:`ServeError` with ``.code`` set.
        """
        payload = request.to_dict()
        for attempt in range(self.retries + 1):
            response = self._call(
                protocol.solve_message(payload, id=self._fresh_id(), timeout=timeout)
            )
            if response.get("ok"):
                return SolveResult.from_dict(response["result"])
            error = ServeError.from_response(response)
            if error.code in protocol.RETRYABLE_CODES and attempt < self.retries:
                time.sleep(error.retry_after or self._sleep_for(attempt))
                continue
            raise error
        raise error  # pragma: no cover - loop always returns or raises

    def solve_many(
        self,
        requests: Sequence[SolveRequest],
        *,
        timeout: Optional[float] = None,
        tolerant: bool = False,
        on_result: Optional[Callable[[int, SolveResult], None]] = None,
    ) -> List[SolveResult]:
        """Pipeline a batch over one connection; results in request order.

        All requests are written back-to-back, so the daemon's worker pool
        executes them concurrently; responses arrive in completion order and
        are reassembled by id.  Requests bounced with ``queue-full`` are
        resubmitted in waves after the server's ``retry_after`` hint (never
        re-running anything the server accepted).  ``on_result`` fires once
        per request, with its batch index, as each result arrives — callers
        can stream output without waiting for the slowest request.

        With ``tolerant=False`` the first failed request raises its
        :class:`ServeError`; with ``tolerant=True`` failures become
        ``valid=False`` results, mirroring ``api.solve_many(tolerant=True)``.
        """
        from ..api import broken_request_result

        results: Dict[int, SolveResult] = {}
        pending = list(enumerate(requests))
        self._connect()
        wave = 0
        while pending:
            id_to_index = {}
            try:
                for index, request in pending:
                    rid = self._fresh_id()
                    id_to_index[rid] = index
                    self._send(
                        protocol.solve_message(request.to_dict(), id=rid, timeout=timeout)
                    )
            except OSError as exc:
                self._reset()
                raise ServiceUnavailable(
                    f"lost connection to {self.host}:{self.port} mid-batch: {exc}"
                ) from exc
            retry = []
            retry_after = 0.0
            while id_to_index:
                try:
                    response = self._recv()
                except (OSError, ConnectionError, protocol.ProtocolError) as exc:
                    self._reset()
                    raise ServiceUnavailable(
                        f"lost connection to {self.host}:{self.port} mid-batch: {exc}"
                    ) from exc
                index = id_to_index.pop(response.get("id"), None)
                if index is None:
                    continue  # stale response from an abandoned wave
                if response.get("ok"):
                    result = SolveResult.from_dict(response["result"])
                elif (
                    response["error"].get("code") in protocol.RETRYABLE_CODES
                    and wave < self.retries
                ):
                    error = ServeError.from_response(response)
                    retry_after = max(retry_after, error.retry_after or 0.0)
                    retry.append((index, requests[index]))
                    continue
                else:
                    error = ServeError.from_response(response)
                    if not tolerant:
                        self._reset()  # unread pipelined responses: start clean
                        raise error
                    if error.result is not None:
                        result = SolveResult.from_dict(error.result)
                    else:
                        result = broken_request_result(requests[index], error)
                results[index] = result
                if on_result is not None:
                    on_result(index, result)
            pending = retry
            if pending:
                wave += 1
                time.sleep(retry_after or self._sleep_for(wave))
        return [results[k] for k in range(len(requests))]

    def stats(self, *, disk: bool = False) -> Dict[str, Any]:
        """The daemon's stats snapshot (``disk=True`` adds on-disk cache totals)."""
        return self._data(protocol.stats_message(id=self._fresh_id(), disk=disk))

    def health(self) -> Dict[str, Any]:
        """The daemon's health blurb (status, protocol, uptime)."""
        return self._data(protocol.health_message(id=self._fresh_id()))

    def metrics(self) -> str:
        """The daemon's metrics in Prometheus text exposition format."""
        return str(self._data(protocol.metrics_message(id=self._fresh_id()))["text"])

    def shutdown(self, *, drain: bool = True) -> Dict[str, Any]:
        """Ask the daemon to shut down; returns once the drain completed."""
        try:
            return self._data(protocol.shutdown_message(id=self._fresh_id(), drain=drain))
        finally:
            self._reset()

    def _data(self, message: Dict[str, Any]) -> Dict[str, Any]:
        response = self._call(message)
        if not response.get("ok"):
            raise ServeError.from_response(response)
        return response.get("data", {})


def connect(
    addr: AddressLike,
    *,
    retries: int = 5,
    backoff: float = 0.05,
    socket_timeout: Optional[float] = 300.0,
) -> ServiceClient:
    """Dial a solve daemon (with backoff) and verify it answers ``health``."""
    client = ServiceClient(
        addr, retries=retries, backoff=backoff, socket_timeout=socket_timeout
    )
    client.health()
    return client
