"""The solve daemon: a threaded TCP server speaking :mod:`repro.serve.protocol`.

Architecture (one process, stdlib only)::

    client connections          bounded queue           worker threads
    ───────────────────┐      ┌───────────────┐      ┌──────────────────┐
    handler thread  ───┼─────▶│ Ticket Ticket │─────▶│ WorkItem solve   │
    (reads lines,      │      │  (backpressure │      │  + shared warm   │
     submits tickets)  │      │   when full)   │      │  SolutionCache   │
    responses written ◀┼──────┴───────────────┴──────┤  + LRU           │
    in completion order│         deadline monitor     └──────────────────┘

Each connection gets one handler thread (``socketserver.ThreadingTCPServer``)
that *only* parses lines and submits tickets — it never solves, so a client
can pipeline hundreds of requests over one connection and they fan out over
the whole worker pool.  Responses are written by whichever worker finishes,
serialized per connection by a write lock, in completion order; clients
match them by ``id``.

Lifecycle: SIGTERM/SIGINT (or a ``shutdown`` message) stop the accept loop
and *drain* — every request already accepted is answered before the process
exits.  New solve requests during the drain get a ``shutting-down`` error.
"""

from __future__ import annotations

import socketserver
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from ..obs.metrics import Gauge, render_prometheus
from ..portfolio.cache import SolutionCache, default_cache_dir
from ..spec import SolveRequest, SpecError
from . import protocol
from .pool import Ticket, WorkerPool

__all__ = ["ServeConfig", "SolveServer"]


@dataclass(frozen=True)
class ServeConfig:
    """Static configuration of one :class:`SolveServer`."""

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (read it back from ``address``).
    port: int = 0
    #: Worker threads executing solves.
    jobs: int = 2
    #: Bound of the request queue — the backpressure knob.
    queue_size: int = 64
    #: Solution-cache directory shared by all workers (``None``: resolve the
    #: process default / ``REPRO_CACHE_DIR``; empty string: caching off).
    cache_dir: Optional[str] = None
    #: Default per-request timeout in seconds (``None``: no deadline unless
    #: the request message carries its own ``timeout``).
    timeout: Optional[float] = None
    #: In-process LRU entries of the shared cache.
    lru_entries: int = 256
    #: Seconds :meth:`SolveServer.close` waits for the drain to finish.
    drain_timeout: float = 60.0


class _TcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    solve_server: "SolveServer"


class _Handler(socketserver.StreamRequestHandler):
    """One thread per connection: parse lines, dispatch, never block on solves."""

    def handle(self) -> None:  # noqa: D102 - socketserver hook
        server: SolveServer = self.server.solve_server
        write_lock = threading.Lock()

        def send(message: Dict[str, Any]) -> None:
            data = protocol.encode(message)
            with write_lock:
                try:
                    self.wfile.write(data)
                    self.wfile.flush()
                except (OSError, ValueError):
                    # OSError: client went away; ValueError: the connection's
                    # buffered writer was already closed by handler teardown.
                    # Either way the result still warmed the cache.
                    pass

        tickets = []
        try:
            for raw in self.rfile:
                ticket = server.dispatch(raw, send)
                if ticket is not None:
                    tickets.append(ticket)
        except (ConnectionError, OSError):
            pass
        # EOF: the client closed its sending side.  Wait for the requests it
        # already submitted so their responses are not raced by the close.
        for ticket in tickets:
            ticket.done.wait(timeout=server.config.drain_timeout)


class SolveServer:
    """Persistent solve service: TCP front end over a :class:`WorkerPool`.

    Embeddable (tests run it in-process against an ephemeral port) and
    runnable as a daemon (the ``repro serve`` subcommand calls
    :meth:`run_forever`, which installs SIGTERM/SIGINT drain handlers).
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config = config if config is not None else ServeConfig()
        root = config.cache_dir if config.cache_dir is not None else default_cache_dir()
        self.cache: Optional[SolutionCache] = (
            SolutionCache(root, max_memory_entries=config.lru_entries) if root else None
        )
        self.pool = WorkerPool(
            config.jobs,
            config.queue_size,
            cache=self.cache,
            default_timeout=config.timeout,
        )
        self._tcp = _TcpServer((config.host, config.port), _Handler, bind_and_activate=False)
        self._tcp.solve_server = self
        self._serve_thread: Optional[threading.Thread] = None
        self._shutdown_lock = threading.Lock()
        self._draining = False
        self._closed = False
        self.started_at = 0.0
        # Daemon-level gauges, set at scrape time by :meth:`metrics_text`.
        self._uptime_gauge = Gauge(
            "repro_serve_uptime_seconds", help="Seconds since the daemon started"
        )
        self._cache_lru_gauge = Gauge(
            "repro_cache_lru_entries", help="Entries in the in-process LRU layer"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Bind, start the pool and the accept loop; returns the address."""
        self._tcp.server_bind()
        self._tcp.server_activate()
        self.pool.start()
        self.started_at = time.monotonic()
        accept_thread = threading.Thread(
            target=self._tcp.serve_forever, name="repro-serve-accept", daemon=True
        )
        with self._shutdown_lock:
            self._serve_thread = accept_thread
        accept_thread.start()
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._tcp.server_address[:2]
        return str(host), int(port)

    def close(self, *, drain: bool = True) -> None:
        """Stop accepting and shut the pool down (draining by default)."""
        with self._shutdown_lock:
            if self._closed:
                return
            self._draining = True  # new solve requests get shutting-down errors
            self._closed = True
        if self._serve_thread is not None:  # stop the accept loop (thread-safe)
            self._tcp.shutdown()
        if drain:
            self.pool.drain(timeout=self.config.drain_timeout)
        else:
            self.pool.stop()
        self._tcp.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            with self._shutdown_lock:
                self._serve_thread = None

    def run_forever(self) -> None:
        """Run until SIGTERM/SIGINT (or a ``shutdown`` message), then drain.

        Must be called from the main thread (signal handlers).  The actual
        accept loop runs on the background thread :meth:`start` spawned.
        """
        import signal

        stop = threading.Event()

        def _handle(signum: int, frame: Any) -> None:
            stop.set()

        previous = {
            sig: signal.signal(sig, _handle) for sig in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            while not stop.is_set() and not self._closed:
                stop.wait(0.2)
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
        self.close(drain=True)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(
        self, raw: bytes, send: Callable[[Dict[str, Any]], None]
    ) -> Optional[Ticket]:
        """Handle one raw request line; returns the ticket of a solve."""
        try:
            message = protocol.decode(raw)
        except protocol.ProtocolError as exc:
            self.pool.note_error(protocol.E_INVALID_REQUEST)
            send(protocol.error_response(None, protocol.E_INVALID_REQUEST, str(exc)))
            return None
        rid = message.get("id")
        op = message.get("op")
        if op == protocol.OP_SOLVE:
            return self._dispatch_solve(message, rid, send)
        if op == protocol.OP_STATS:
            send(
                protocol.data_response(
                    rid, protocol.OP_STATS, self.stats(disk=bool(message.get("disk")))
                )
            )
            return None
        if op == protocol.OP_METRICS:
            send(
                protocol.data_response(
                    rid,
                    protocol.OP_METRICS,
                    {"format": "prometheus", "text": self.metrics_text()},
                )
            )
            return None
        if op == protocol.OP_HEALTH:
            send(protocol.data_response(rid, protocol.OP_HEALTH, self.health()))
            return None
        if op == protocol.OP_SHUTDOWN:
            self._dispatch_shutdown(rid, send, drain=bool(message.get("drain", True)))
            return None
        self.pool.note_error(protocol.E_INVALID_REQUEST)
        send(
            protocol.error_response(
                rid,
                protocol.E_INVALID_REQUEST,
                f"unknown op {op!r}; expected one of {', '.join(protocol.OPS)}",
            )
        )
        return None

    def _dispatch_solve(
        self, message: Dict[str, Any], rid: Any, send: Callable[[Dict[str, Any]], None]
    ) -> Optional[Ticket]:
        if self._draining:
            self.pool.note_error(protocol.E_SHUTTING_DOWN)
            send(
                protocol.error_response(
                    rid, protocol.E_SHUTTING_DOWN, "server is shutting down"
                )
            )
            return None
        payload = message.get("request")
        if not isinstance(payload, dict):
            self.pool.note_error(protocol.E_INVALID_REQUEST)
            send(
                protocol.error_response(
                    rid, protocol.E_INVALID_REQUEST, "solve message needs a 'request' object"
                )
            )
            return None
        try:
            request = SolveRequest.from_dict(payload)
        except (SpecError, KeyError, TypeError, ValueError) as exc:
            self.pool.note_error(protocol.E_INVALID_SPEC)
            send(protocol.error_response(rid, protocol.E_INVALID_SPEC, str(exc)))
            return None
        timeout = message.get("timeout", self.config.timeout)
        deadline = None
        if timeout is not None:
            try:
                deadline = time.monotonic() + float(timeout)
            except (TypeError, ValueError):
                self.pool.note_error(protocol.E_INVALID_REQUEST)
                send(
                    protocol.error_response(
                        rid, protocol.E_INVALID_REQUEST, f"bad timeout {timeout!r}"
                    )
                )
                return None
        ticket = Ticket(request, rid=rid, send=send, deadline=deadline)
        status = self.pool.submit(ticket)
        if status == "ok":
            return ticket
        if status == "full":
            self.pool.note_error(protocol.E_QUEUE_FULL)
            send(
                protocol.error_response(
                    rid,
                    protocol.E_QUEUE_FULL,
                    f"request queue is full ({self.pool.queue_size} pending)",
                    retry_after=self.pool.retry_after(),
                )
            )
        else:
            self.pool.note_error(protocol.E_SHUTTING_DOWN)
            send(
                protocol.error_response(
                    rid, protocol.E_SHUTTING_DOWN, "server is shutting down"
                )
            )
        return None

    def _dispatch_shutdown(
        self, rid: Any, send: Callable[[Dict[str, Any]], None], *, drain: bool
    ) -> None:
        """Drain (on a helper thread), acknowledge, then stop the process loop."""

        def _shutdown() -> None:
            pending = self.pool.queue_depth() + self.pool.in_flight()
            self.close(drain=drain)
            send(
                protocol.data_response(
                    rid, protocol.OP_SHUTDOWN, {"drained": pending, "drain": drain}
                )
            )

        with self._shutdown_lock:
            if self._draining:
                # A second shutdown request during the drain is acknowledged
                # immediately; the first one owns the actual teardown.
                send(protocol.data_response(rid, protocol.OP_SHUTDOWN, {"drained": 0, "drain": drain}))
                return
            self._draining = True
        threading.Thread(target=_shutdown, name="repro-serve-shutdown", daemon=True).start()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self, *, disk: bool = False) -> Dict[str, Any]:
        """Uptime, queue/pool counters, latency percentiles, cache telemetry."""
        stats = self.pool.stats()
        stats["uptime_s"] = round(time.monotonic() - self.started_at, 3) if self.started_at else 0.0
        stats["protocol"] = protocol.PROTOCOL
        stats["draining"] = self._draining
        if self.cache is not None:
            stats["cache"]["dir"] = str(self.cache.root)
            if disk:
                stats["cache"].update(self.cache.disk_stats())
        return stats

    def metrics_text(self) -> str:
        """The daemon's instruments in Prometheus text exposition format.

        Merges the pool's registry (request counters, error counters by
        code, the latency summary, point-in-time queue gauges) with the
        shared cache's registry, plus the daemon-level uptime gauge.
        """
        instruments = self.pool.metrics_instruments()
        if self.cache is not None:
            self._cache_lru_gauge.set(self.cache.stats()["lru_entries"])
            instruments = instruments + self.cache.metrics.instruments()
            instruments.append(self._cache_lru_gauge)
        uptime = round(time.monotonic() - self.started_at, 3) if self.started_at else 0.0
        self._uptime_gauge.set(uptime)
        instruments.append(self._uptime_gauge)
        return render_prometheus(instruments)

    def health(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "protocol": protocol.PROTOCOL,
            "uptime_s": round(time.monotonic() - self.started_at, 3) if self.started_at else 0.0,
            "workers": self.pool.jobs,
        }

    # ------------------------------------------------------------------
    def __enter__(self) -> "SolveServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close(drain=True)
