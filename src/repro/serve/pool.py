"""Bounded request queue + worker pool of the solve daemon.

The pool is the execution half of :mod:`repro.serve.server`:

* a bounded :class:`queue.Queue` gives the daemon *explicit backpressure* —
  when it is full, :meth:`WorkerPool.submit` reports ``"full"`` and the
  server answers ``queue-full`` with a ``retry_after`` hint instead of
  buffering unbounded work;
* worker threads execute :class:`~repro.experiments.runner.WorkItem`\\ s via
  the same :func:`~repro.experiments.runner.execute_work_item_tolerant`
  machinery the batch facade uses, so a daemon solve is bytewise the same
  computation as ``repro.api.solve``;
* one shared :class:`~repro.portfolio.cache.SolutionCache` (disk + in-process
  LRU) is consulted before and populated after every deterministic solve, so
  repeated traffic across *all* clients is served warm;
* per-request deadlines are enforced by a monitor thread: a request that
  times out gets a structured ``timeout`` error exactly once — if the
  underlying scheduler is still running its result is discarded (but still
  stored in the cache, warming future requests).

Threads (not processes) are the right pool here: the numpy kernels release
the GIL for the heavy parts, every worker shares one warm LRU, and tickets
carry live socket callbacks that cannot cross a process boundary.  A client
needing process-level parallelism for one huge batch can submit through
several connections or run ``repro batch --jobs N`` against the same cache
directory.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..api import broken_request_result, to_solve_result
from ..experiments.runner import (
    REQUEST_BUILD_FAILURES,
    WorkItem,
    execute_work_item_tolerant,
)
from ..obs import trace as _trace
from ..obs.metrics import Counter, Instrument, Metrics, percentiles
from ..portfolio.cache import SolutionCache
from ..spec import SolveRequest
from . import protocol

# ``percentiles`` moved to :mod:`repro.obs.metrics`; re-exported here because
# it has always been part of this module's public surface.
__all__ = ["Ticket", "WorkerPool", "percentiles"]


class Ticket:
    """One in-flight solve request with answer-exactly-once semantics.

    The ticket owns the response channel (a callable writing one message to
    the requesting connection).  :meth:`respond` delivers at most one
    response no matter how many parties race to answer — the worker thread
    finishing the solve, the deadline monitor timing it out, or the drain
    path refusing it — so a request can never be answered twice, and never
    silently dropped as long as one of them calls :meth:`respond`.
    """

    __slots__ = ("request", "rid", "deadline", "enqueued", "done", "_send", "_lock", "_answered")

    def __init__(
        self,
        request: SolveRequest,
        *,
        rid: Any,
        send: Callable[[Dict[str, Any]], None],
        deadline: Optional[float] = None,
    ) -> None:
        self.request = request
        self.rid = rid
        self._send = send
        self.deadline = deadline
        self.enqueued = time.monotonic()
        self.done = threading.Event()
        self._lock = threading.Lock()
        self._answered = False

    @property
    def answered(self) -> bool:
        return self._answered

    def respond(self, message: Dict[str, Any]) -> bool:
        """Deliver ``message`` unless the ticket was already answered."""
        with self._lock:
            if self._answered:
                return False
            self._answered = True
        try:
            self._send(message)
        finally:
            self.done.set()
        return True


class WorkerPool:
    """Fixed worker threads draining one bounded ticket queue.

    Counters and the latency window live on a per-pool
    :class:`~repro.obs.metrics.Metrics` registry (each instrument carries
    its own lock); the pool lock guards the remaining shared state (watch
    list, in-flight count, lifecycle).  The public snapshot is
    :meth:`stats`.  Lifecycle: :meth:`start` -> ``submit`` xN ->
    :meth:`drain` (finish everything queued, then stop) or
    :meth:`stop` (refuse queued tickets with ``shutting-down``).
    """

    #: How often the deadline monitor scans in-flight tickets (seconds).
    MONITOR_INTERVAL = 0.02
    #: Latency window backing the stats percentiles.
    LATENCY_WINDOW = 2048

    def __init__(
        self,
        jobs: int = 2,
        queue_size: int = 64,
        *,
        cache: Optional[SolutionCache] = None,
        default_timeout: Optional[float] = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.queue_size = max(1, int(queue_size))
        self.cache = cache
        self.default_timeout = default_timeout
        self._queue: "queue.Queue[Optional[Ticket]]" = queue.Queue(maxsize=self.queue_size)
        self._threads: List[threading.Thread] = []
        self._monitor: Optional[threading.Thread] = None
        self._accepting = False
        self._stopped = threading.Event()
        self._lock = threading.Lock()
        self._watched: List[Ticket] = []
        self._in_flight = 0
        #: Per-pool metrics registry: request counters, one labeled error
        #: counter per protocol error code, and the bounded latency
        #: histogram that replaced the historical (unbounded) latency list.
        #: Each instrument carries its own lock, so counting never needs the
        #: pool lock.
        self.metrics = Metrics()
        self._received = self.metrics.counter(
            "repro_serve_requests_received_total", help="Requests accepted into the queue"
        )
        self._served = self.metrics.counter(
            "repro_serve_requests_served_total", help="Requests answered with a result"
        )
        self._cache_hits = self.metrics.counter(
            "repro_serve_requests_cache_hits_total",
            help="Requests served from the shared solution cache",
        )
        self._abandoned = self.metrics.counter(
            "repro_serve_requests_abandoned_total",
            help="Requests whose computed answer lost the respond race",
        )
        self._errors: Dict[str, Counter] = {
            code: self.metrics.counter(
                "repro_serve_errors_total",
                help="Structured errors answered, by protocol error code",
                labels={"code": code},
            )
            for code in protocol.ERROR_CODES
        }
        self._latency = self.metrics.histogram(
            "repro_serve_request_latency_seconds",
            help="Queue-to-response latency of served requests",
            window=self.LATENCY_WINDOW,
        )
        self._queue_depth_gauge = self.metrics.gauge(
            "repro_serve_queue_depth", help="Tickets waiting in the bounded queue"
        )
        self._in_flight_gauge = self.metrics.gauge(
            "repro_serve_in_flight", help="Tickets currently being solved"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._threads:
            return
        self._stopped.clear()
        workers = [
            threading.Thread(target=self._worker, name=f"repro-serve-worker-{k}", daemon=True)
            for k in range(self.jobs)
        ]
        monitor = threading.Thread(target=self._monitor_deadlines, name="repro-serve-deadline", daemon=True)
        with self._lock:
            self._accepting = True
            self._threads = workers
            self._monitor = monitor
        for thread in workers:
            thread.start()
        monitor.start()

    def drain(self, timeout: Optional[float] = None) -> None:
        """Stop accepting, finish every queued/in-flight ticket, stop workers.

        The stop sentinels are enqueued *behind* all pending tickets, so
        every request accepted before the drain began is answered before the
        workers exit — the graceful-shutdown contract of the daemon.
        """
        with self._lock:
            self._accepting = False
        if not self._threads:
            return
        for _ in self._threads:
            self._queue.put(None)  # blocks while full; space frees as workers drain
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._threads:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            thread.join(remaining)
        self._finish_stop()

    def stop(self) -> None:
        """Hard stop: refuse queued tickets with ``shutting-down``, then exit."""
        with self._lock:
            self._accepting = False
        if not self._threads:
            return
        refused: List[Ticket] = []
        try:
            while True:
                ticket = self._queue.get_nowait()
                if ticket is not None:
                    refused.append(ticket)
        except queue.Empty:
            pass
        for ticket in refused:
            self._refuse(ticket, protocol.E_SHUTTING_DOWN, "server is shutting down")
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._finish_stop()

    def _finish_stop(self) -> None:
        self._stopped.set()
        with self._lock:
            monitor = self._monitor
            self._monitor = None
            self._threads = []
        if monitor is not None:  # join outside the lock: the monitor takes it
            monitor.join(timeout=1.0)

    # ------------------------------------------------------------------
    # Submission / backpressure
    # ------------------------------------------------------------------
    def submit(self, ticket: Ticket) -> str:
        """Enqueue a ticket: ``"ok"``, ``"full"`` (backpressure) or ``"stopped"``."""
        if not self._accepting:
            return "stopped"
        try:
            self._queue.put_nowait(ticket)
        except queue.Full:
            return "full"
        self._received.inc()
        if ticket.deadline is not None:
            with self._lock:
                self._watched.append(ticket)
        return "ok"

    def note_error(self, code: str) -> None:
        """Count a structured error answered outside the worker path.

        The server's dispatch layer refuses some requests before they ever
        become tickets (queue-full backpressure, shutting-down); counting
        them here keeps ``stats()["errors"]`` the one complete error ledger.
        """
        self._errors[code].inc()

    def retry_after(self) -> float:
        """Suggested client backoff when the queue is full.

        Rough model: the queue drains one request per worker per mean
        latency, so a full queue clears in about ``mean * depth / jobs``
        seconds.  Clamped to [0.05, 5] so a cold daemon (no latency samples
        yet) still returns a sane hint.
        """
        depth = self._queue.qsize()
        recent = self._latency.recent(64)
        mean = (sum(recent) / len(recent)) if recent else 0.1
        return min(5.0, max(0.05, mean * max(1, depth) / self.jobs))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def queue_depth(self) -> int:
        return self._queue.qsize()

    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def stats(self) -> Dict[str, Any]:
        """Snapshot of queue depth, counters and latency percentiles."""
        latencies = self._latency.values()
        counters = {
            "received": int(self._received.value),
            "served": int(self._served.value),
            "cache_hits": int(self._cache_hits.value),
            "abandoned": int(self._abandoned.value),
        }
        errors = {
            code: int(counter.value)
            for code, counter in self._errors.items()
            if counter.value
        }
        with self._lock:
            in_flight = self._in_flight
        stats: Dict[str, Any] = {
            "workers": self.jobs,
            "queue_size": self.queue_size,
            "queue_depth": self._queue.qsize(),
            "in_flight": in_flight,
            "requests": counters,
            "errors": errors,
        }
        latency: Dict[str, float] = {
            f"{key}_ms": round(value * 1000.0, 3)
            for key, value in percentiles(latencies).items()
        }
        latency["mean_ms"] = round(
            (sum(latencies) / len(latencies) * 1000.0) if latencies else 0.0, 3
        )
        latency["count"] = len(latencies)
        stats["latency"] = latency
        if self.cache is not None:
            stats["cache"] = self.cache.stats()
        return stats

    def metrics_instruments(self) -> List[Instrument]:
        """The pool's instruments with point-in-time gauges refreshed."""
        self._queue_depth_gauge.set(self._queue.qsize())
        with self._lock:
            in_flight = self._in_flight
        self._in_flight_gauge.set(in_flight)
        return self.metrics.instruments()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            ticket = self._queue.get()
            if ticket is None:
                return
            if ticket.answered:  # timed out (or refused) while queued
                self._abandoned.inc()
                continue
            with self._lock:
                self._in_flight += 1
            try:
                response, cache_hit = self._solve(ticket.request, ticket.rid)
            except Exception as exc:  # a bug must answer, not kill the worker
                response, cache_hit = (
                    protocol.error_response(
                        ticket.rid, protocol.E_INTERNAL, f"{type(exc).__name__}: {exc}"
                    ),
                    False,
                )
            # Count BEFORE delivering: a client that just read its response
            # must see it reflected in the very next stats snapshot.  If the
            # deadline monitor won the respond race, move the count over to
            # "abandoned" after the fact (the client saw a timeout error).
            ok = bool(response.get("ok"))
            with self._lock:
                self._in_flight -= 1
                self._forget(ticket)
            if ok:
                self._served.inc()
                if cache_hit:
                    self._cache_hits.inc()
                self._latency.observe(time.monotonic() - ticket.enqueued)
            else:
                self._errors[response["error"]["code"]].inc()
            if not ticket.respond(response):
                self._abandoned.inc()
                if ok:
                    self._served.inc(-1)
                    if cache_hit:
                        self._cache_hits.inc(-1)
                else:
                    self._errors[response["error"]["code"]].inc(-1)

    def _solve(self, request: SolveRequest, rid: Any) -> Tuple[Dict[str, Any], bool]:
        """Execute one request against the shared cache; returns (response, hit)."""
        with _trace.span("serve_request", scheduler=request.scheduler) as tspan:
            response, cache_hit = self._solve_inner(request, rid)
            if _trace.enabled():
                tspan.annotate(cached=cache_hit, ok=bool(response.get("ok")))
            return response, cache_hit

    def _solve_inner(self, request: SolveRequest, rid: Any) -> Tuple[Dict[str, Any], bool]:
        try:
            item = WorkItem.from_request(request, keep_schedule=True)
        except REQUEST_BUILD_FAILURES as exc:
            return (
                protocol.error_response(
                    rid,
                    protocol.E_INVALID_SPEC,
                    str(exc),
                    result=broken_request_result(request, exc).to_dict(),
                ),
                False,
            )
        signature: Optional[str] = None
        if self.cache is not None:
            from ..portfolio.features import instance_signature

            # Seed and time budget are already folded into the canonical
            # spec string by WorkItem.from_request, so the cache key's seed
            # slot stays empty — two requests with the same canonical spec
            # are the same computation.
            signature = instance_signature(item.dag, item.machine)
            entry = self.cache.get(signature, item.scheduler, None)
            if entry is not None and entry.result is not None:
                return protocol.result_response(rid, entry.result.to_dict(), cached=True), True
        outcome = execute_work_item_tolerant(item)
        result = to_solve_result(item, outcome)
        if not outcome.valid:
            return (
                protocol.error_response(
                    rid, protocol.E_SCHEDULER, outcome.error, result=result.to_dict()
                ),
                False,
            )
        if (
            self.cache is not None
            and signature is not None
            and result.deterministic
            and outcome.schedule is not None
        ):
            self.cache.put(
                signature,
                item.scheduler,
                None,
                result,
                outcome.schedule,
                chosen=item.scheduler,
            )
        return protocol.result_response(rid, result.to_dict(), cached=False), False

    # ------------------------------------------------------------------
    # Deadlines
    # ------------------------------------------------------------------
    def _monitor_deadlines(self) -> None:
        while not self._stopped.wait(self.MONITOR_INTERVAL):
            now = time.monotonic()
            with self._lock:
                expired = [
                    t for t in self._watched if t.deadline is not None and now >= t.deadline
                ]
                self._watched = [t for t in self._watched if t not in expired and not t.answered]
            for ticket in expired:
                waited = now - ticket.enqueued
                # Count BEFORE delivering (mirror of the worker path): a
                # client reading stats right after its timeout error must
                # see it counted.  Undo if the worker answered first.
                self._errors[protocol.E_TIMEOUT].inc()
                if not ticket.respond(
                    protocol.error_response(
                        ticket.rid,
                        protocol.E_TIMEOUT,
                        f"request timed out after {waited:.3f}s",
                    )
                ):
                    self._errors[protocol.E_TIMEOUT].inc(-1)

    def _forget(self, ticket: Ticket) -> None:
        """Drop a finished ticket from the deadline watch list (lock held)."""
        if ticket.deadline is not None:
            try:
                # Every caller already holds self._lock (see the docstring);
                # taking it here again would deadlock.
                self._watched.remove(ticket)  # repro-check: disable=lock-discipline
            except ValueError:
                pass

    def _refuse(self, ticket: Ticket, code: str, message: str) -> None:
        if ticket.respond(protocol.error_response(ticket.rid, code, message)):
            self._errors[code].inc()
            with self._lock:
                self._forget(ticket)
