"""Declarative problem specifications — the wire format of the solve API.

Every workflow of the package (CLI invocations, experiment sweeps, batch
services) boils down to the same request: *schedule this DAG on this machine
with this scheduler*.  This module gives that request a frozen, JSON
round-trippable shape so it can be stored in files, sent over a wire, hashed
for caching, and replayed deterministically:

* :class:`DagSpec` — where the computational DAG comes from: a hyperDAG
  file, one of the paper's generators (kind + parameters), or an inline
  node/edge description;
* :class:`MachineSpec` — the BSP/NUMA machine: ``P``/``g``/``l`` plus an
  optional binary-tree hierarchy ``delta``, processor groups, or an explicit
  NUMA matrix;
* :class:`ProblemSpec` — one (DAG, machine) instance;
* :class:`SolveRequest` — a problem plus a scheduler spec string (see
  :mod:`repro.registry`), an optional seed and an optional time budget;
* :class:`SolveResult` — the cost breakdown, superstep count, validation
  status, wall time and scheduler metadata of a solved request.

``X.from_dict(x.to_dict())`` (and the JSON equivalents) is an identity for
every spec class; :meth:`SolveResult.to_dict` is deterministic by default
(wall time excluded) so batched and serial runs can be compared bytewise.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .graphs.dag import ComputationalDAG
from .model.machine import BspMachine

__all__ = [
    "SpecError",
    "DagSpec",
    "MachineSpec",
    "ProblemSpec",
    "SolveRequest",
    "SolveResult",
]


class SpecError(ValueError):
    """Raised for malformed or inconsistent problem specifications."""


_DAG_SOURCES = ("generator", "hyperdag", "inline")


def _freeze_params(params: Union[Mapping[str, Any], Sequence[Tuple[str, Any]], None]) -> Tuple[Tuple[str, Any], ...]:
    """Normalize a parameter mapping to a sorted, hashable tuple of pairs."""
    if params is None:
        return ()
    items = params.items() if isinstance(params, Mapping) else params
    frozen = []
    for key, value in items:
        if isinstance(value, (list, tuple)):
            value = tuple(value)
        frozen.append((str(key), value))
    return tuple(sorted(frozen))


@dataclass(frozen=True)
class DagSpec:
    """Serializable description of where a computational DAG comes from.

    Exactly one of the three sources is used:

    * ``source="generator"``: ``kind`` names one of the fine- or
      coarse-grained generators and ``params`` holds its keyword arguments;
    * ``source="hyperdag"``: ``path`` points at a hyperDAG file;
    * ``source="inline"``: ``n``/``edges``/``work``/``comm`` describe the
      DAG explicitly (the shape a service would receive over the wire).
    """

    source: str
    kind: Optional[str] = None
    params: Tuple[Tuple[str, Any], ...] = ()
    path: Optional[str] = None
    n: Optional[int] = None
    edges: Tuple[Tuple[int, int], ...] = ()
    work: Optional[Tuple[int, ...]] = None
    comm: Optional[Tuple[int, ...]] = None
    name: Optional[str] = None
    #: Per-node memory weights of the memory-constrained model variant
    #: (inline source only); omitted weights default to the work weights.
    memory: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.source not in _DAG_SOURCES:
            raise SpecError(f"unknown DAG source {self.source!r}; expected one of {_DAG_SOURCES}")
        object.__setattr__(self, "params", _freeze_params(self.params))
        object.__setattr__(self, "edges", tuple((int(u), int(v)) for u, v in self.edges))
        if self.work is not None:
            object.__setattr__(self, "work", tuple(int(w) for w in self.work))
        if self.comm is not None:
            object.__setattr__(self, "comm", tuple(int(c) for c in self.comm))
        if self.memory is not None:
            object.__setattr__(self, "memory", tuple(int(m) for m in self.memory))
        if self.source == "generator" and not self.kind:
            raise SpecError("generator DAG specs need a 'kind'")
        if self.source == "hyperdag" and not self.path:
            raise SpecError("hyperdag DAG specs need a 'path'")
        if self.source == "inline" and self.n is None:
            raise SpecError("inline DAG specs need a node count 'n'")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def generator(cls, kind: str, **params: Any) -> "DagSpec":
        """Spec for one of the paper's DAG generators (``spmv``, ``cg``, ...)."""
        return cls(source="generator", kind=kind, params=_freeze_params(params))

    @classmethod
    def hyperdag(cls, path: Any) -> "DagSpec":
        """Spec pointing at a hyperDAG file on disk (any path-like value)."""
        return cls(source="hyperdag", path=str(path))

    @classmethod
    def from_dag(cls, dag: ComputationalDAG) -> "DagSpec":
        """Inline spec embedding an existing DAG (edges are deduplicated/sorted).

        Memory weights are only embedded when they differ from the work
        weights (their default), keeping the common case compact.
        """
        memory = None
        if not np.array_equal(np.asarray(dag.memory), np.asarray(dag.work)):
            memory = tuple(int(m) for m in np.asarray(dag.memory))
        return cls(
            source="inline",
            n=int(dag.n),
            edges=tuple(dag.edges),
            work=tuple(int(w) for w in np.asarray(dag.work)),
            comm=tuple(int(c) for c in np.asarray(dag.comm)),
            name=dag.name,
            memory=memory,
        )

    # ------------------------------------------------------------------
    @property
    def params_dict(self) -> Dict[str, Any]:
        """Generator parameters as a plain dict."""
        return dict(self.params)

    def build(self) -> ComputationalDAG:
        """Materialize the computational DAG this spec describes."""
        if self.source == "hyperdag":
            from .graphs.hyperdag import read_hyperdag

            return read_hyperdag(self.path)
        if self.source == "inline":
            return ComputationalDAG(
                int(self.n),
                list(self.edges),
                work=list(self.work) if self.work is not None else None,
                comm=list(self.comm) if self.comm is not None else None,
                name=self.name or "inline",
                memory=list(self.memory) if self.memory is not None else None,
            )
        from .graphs.coarse import COARSE_GRAINED_GENERATORS, generate_coarse_grained
        from .graphs.fine import FINE_GRAINED_GENERATORS, generate_fine_grained

        params = self.params_dict
        if self.kind in FINE_GRAINED_GENERATORS:
            dag = generate_fine_grained(self.kind, **params)
        elif self.kind in COARSE_GRAINED_GENERATORS:
            dag = generate_coarse_grained(self.kind, **params)
        else:
            raise SpecError(
                f"unknown generator kind {self.kind!r}; fine-grained: "
                f"{sorted(FINE_GRAINED_GENERATORS)}, coarse-grained: "
                f"{sorted(COARSE_GRAINED_GENERATORS)}"
            )
        if self.name:
            dag.name = self.name
        return dag

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (only the fields of the source)."""
        out: Dict[str, Any] = {"source": self.source}
        if self.source == "generator":
            out["kind"] = self.kind
            out["params"] = {k: list(v) if isinstance(v, tuple) else v for k, v in self.params}
        elif self.source == "hyperdag":
            out["path"] = self.path
        else:
            out["n"] = self.n
            out["edges"] = [list(e) for e in self.edges]
            if self.work is not None:
                out["work"] = list(self.work)
            if self.comm is not None:
                out["comm"] = list(self.comm)
            if self.memory is not None:
                out["memory"] = list(self.memory)
        if self.name is not None:
            out["name"] = self.name
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DagSpec":
        """Rebuild a spec written by :meth:`to_dict`."""
        source = data.get("source")
        if source == "generator":
            return cls(
                source="generator",
                kind=data.get("kind"),
                params=_freeze_params(data.get("params")),
                name=data.get("name"),
            )
        if source == "hyperdag":
            return cls(source="hyperdag", path=data.get("path"), name=data.get("name"))
        if source == "inline":
            return cls(
                source="inline",
                n=data.get("n"),
                edges=tuple(tuple(e) for e in data.get("edges", ())),
                work=tuple(data["work"]) if data.get("work") is not None else None,
                comm=tuple(data["comm"]) if data.get("comm") is not None else None,
                name=data.get("name"),
                memory=tuple(data["memory"]) if data.get("memory") is not None else None,
            )
        raise SpecError(f"unknown DAG source {source!r}; expected one of {_DAG_SOURCES}")


@dataclass(frozen=True)
class MachineSpec:
    """Serializable description of a BSP machine with optional NUMA effects.

    The NUMA structure is given by at most one of: an explicit ``numa``
    matrix, a binary-tree hierarchy factor ``delta`` (paper Section 6), or
    processor ``groups`` with intra/inter coefficients; with none of them
    the machine is uniform.  Setting more than one is rejected so the JSON
    round trip stays an identity.

    ``memory_bound`` opts into the memory-constrained model variant: a
    scalar bound applied to every processor, or one value per processor.
    """

    P: int
    g: float = 1.0
    l: float = 5.0
    delta: Optional[float] = None
    groups: Optional[Tuple[int, ...]] = None
    intra: float = 1.0
    inter: float = 4.0
    numa: Optional[Tuple[Tuple[float, ...], ...]] = None
    memory_bound: Optional[Union[float, Tuple[float, ...]]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "P", int(self.P))
        object.__setattr__(self, "g", float(self.g))
        object.__setattr__(self, "l", float(self.l))
        if self.delta is not None:
            object.__setattr__(self, "delta", float(self.delta))
        if self.groups is not None:
            object.__setattr__(self, "groups", tuple(int(s) for s in self.groups))
        object.__setattr__(self, "intra", float(self.intra))
        object.__setattr__(self, "inter", float(self.inter))
        if self.numa is not None:
            object.__setattr__(
                self, "numa", tuple(tuple(float(x) for x in row) for row in self.numa)
            )
        if self.P <= 0:
            raise SpecError("P must be positive")
        if self.memory_bound is not None:
            if isinstance(self.memory_bound, (list, tuple)):
                bounds = tuple(float(b) for b in self.memory_bound)
                if len(bounds) != self.P:
                    raise SpecError(
                        f"memory_bound needs one entry per processor (P={self.P}), "
                        f"got {len(bounds)}"
                    )
                object.__setattr__(self, "memory_bound", bounds)
            else:
                bounds = (float(self.memory_bound),)
                object.__setattr__(self, "memory_bound", bounds[0])
            # Mirror BspMachine's rule (strictly positive, finite) so a bad
            # bound fails at spec-construction time with a SpecError — and
            # never reaches JSON as non-compliant NaN/Infinity literals.
            if not all(math.isfinite(b) and b > 0 for b in bounds):
                raise SpecError("memory bounds must be finite and positive")
        given = [
            name
            for name, value in (("delta", self.delta), ("groups", self.groups), ("numa", self.numa))
            if value is not None
        ]
        if len(given) > 1:
            raise SpecError(
                f"machine spec sets conflicting NUMA descriptions: {', '.join(given)}; "
                "use at most one of delta, groups, numa"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_machine(cls, machine: BspMachine) -> "MachineSpec":
        """Spec capturing an existing machine (explicit matrix when non-uniform)."""
        memory_bound: Optional[Union[float, Tuple[float, ...]]] = None
        if machine.memory_bounds is not None:
            bounds = machine.memory_bounds
            if np.all(bounds == bounds[0]):
                memory_bound = float(bounds[0])
            else:
                memory_bound = tuple(float(b) for b in bounds)
        if machine.is_uniform:
            return cls(P=machine.P, g=machine.g, l=machine.l, memory_bound=memory_bound)
        return cls(
            P=machine.P,
            g=machine.g,
            l=machine.l,
            numa=tuple(tuple(float(x) for x in row) for row in np.asarray(machine.numa)),
            memory_bound=memory_bound,
        )

    def build(self) -> BspMachine:
        """Materialize the machine this spec describes."""
        if self.numa is not None:
            machine = BspMachine(P=self.P, g=self.g, l=self.l, numa=np.asarray(self.numa, dtype=float))
        elif self.delta is not None:
            machine = BspMachine.hierarchical(P=self.P, delta=self.delta, g=self.g, l=self.l)
        elif self.groups is not None:
            machine = BspMachine.from_groups(
                self.groups, intra=self.intra, inter=self.inter, g=self.g, l=self.l
            )
        else:
            machine = BspMachine(P=self.P, g=self.g, l=self.l)
        if self.memory_bound is not None:
            machine = machine.with_memory_bound(self.memory_bound)
        return machine

    def describe(self) -> Dict[str, object]:
        """Flat summary used by sweep CSV exports (delta / memory_bound 0 when
        absent; per-processor bounds are summarized by their minimum, the
        binding constraint)."""
        if self.memory_bound is None:
            memory_bound = 0.0
        elif isinstance(self.memory_bound, tuple):
            memory_bound = float(min(self.memory_bound))
        else:
            memory_bound = float(self.memory_bound)
        return {
            "P": self.P,
            "g": self.g,
            "l": self.l,
            "delta": self.delta if self.delta is not None else 0,
            "memory_bound": memory_bound,
        }

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (only the fields in use)."""
        out: Dict[str, Any] = {"P": self.P, "g": self.g, "l": self.l}
        if self.numa is not None:
            out["numa"] = [list(row) for row in self.numa]
        elif self.delta is not None:
            out["delta"] = self.delta
        elif self.groups is not None:
            out["groups"] = list(self.groups)
            out["intra"] = self.intra
            out["inter"] = self.inter
        if self.memory_bound is not None:
            out["memory_bound"] = (
                list(self.memory_bound)
                if isinstance(self.memory_bound, tuple)
                else self.memory_bound
            )
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MachineSpec":
        """Rebuild a spec written by :meth:`to_dict`."""
        memory_bound = data.get("memory_bound")
        if isinstance(memory_bound, (list, tuple)):
            memory_bound = tuple(memory_bound)
        return cls(
            P=data["P"],
            g=data.get("g", 1.0),
            l=data.get("l", 5.0),
            delta=data.get("delta"),
            groups=tuple(data["groups"]) if data.get("groups") is not None else None,
            intra=data.get("intra", 1.0),
            inter=data.get("inter", 4.0),
            numa=tuple(tuple(row) for row in data["numa"]) if data.get("numa") is not None else None,
            memory_bound=memory_bound,
        )


@dataclass(frozen=True)
class ProblemSpec:
    """One scheduling instance: a DAG source plus a machine description."""

    dag: DagSpec
    machine: MachineSpec

    @classmethod
    def from_instance(cls, dag: ComputationalDAG, machine: BspMachine) -> "ProblemSpec":
        """Spec embedding an in-memory (DAG, machine) pair inline."""
        return cls(dag=DagSpec.from_dag(dag), machine=MachineSpec.from_machine(machine))

    def build_dag(self) -> ComputationalDAG:
        return self.dag.build()

    def build_machine(self) -> BspMachine:
        return self.machine.build()

    def to_dict(self) -> Dict[str, Any]:
        return {"dag": self.dag.to_dict(), "machine": self.machine.to_dict()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProblemSpec":
        try:
            dag = data["dag"]
            machine = data["machine"]
        except KeyError as exc:
            raise SpecError(f"problem spec is missing the {exc.args[0]!r} section") from exc
        return cls(dag=DagSpec.from_dict(dag), machine=MachineSpec.from_dict(machine))

    def to_json(self, **kwargs: Any) -> str:
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ProblemSpec":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class SolveRequest:
    """A problem spec plus the scheduler (spec string) that should solve it.

    ``seed`` and ``time_budget`` are merged into the scheduler spec when the
    scheduler's factory accepts ``seed`` / ``time_limit`` parameters and the
    spec string does not already set them (see
    :func:`repro.registry.canonical_scheduler_spec`).
    """

    spec: ProblemSpec
    scheduler: str = "framework"
    seed: Optional[int] = None
    time_budget: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "scheduler", str(self.scheduler).strip())
        if self.seed is not None:
            object.__setattr__(self, "seed", int(self.seed))
        if self.time_budget is not None:
            object.__setattr__(self, "time_budget", float(self.time_budget))
        if not self.scheduler:
            raise SpecError("solve requests need a non-empty scheduler spec")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"spec": self.spec.to_dict(), "scheduler": self.scheduler}
        if self.seed is not None:
            out["seed"] = self.seed
        if self.time_budget is not None:
            out["time_budget"] = self.time_budget
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SolveRequest":
        if "spec" not in data:
            raise SpecError("solve request is missing the 'spec' section")
        return cls(
            spec=ProblemSpec.from_dict(data["spec"]),
            scheduler=data.get("scheduler", "framework"),
            seed=data.get("seed"),
            time_budget=data.get("time_budget"),
        )

    def to_json(self, **kwargs: Any) -> str:
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "SolveRequest":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class SolveResult:
    """Outcome of one solved request.

    ``to_dict`` is deterministic by default: ``wall_seconds`` is only
    included with ``timing=True``, so results of parallel batches compare
    bytewise equal to serial runs of the same deterministic requests.
    """

    scheduler: str
    dag_name: str
    num_nodes: int
    machine: MachineSpec
    total_cost: float
    work_cost: float
    comm_cost: float
    latency_cost: float
    num_supersteps: int
    valid: bool = True
    wall_seconds: float = 0.0
    scheduler_description: str = ""
    deterministic: bool = True

    def to_dict(self, *, timing: bool = False) -> Dict[str, Any]:
        # Failed (tolerant-batch) results carry an infinite cost; JSON has no
        # Infinity literal, so non-finite costs serialize as null — strict
        # consumers (jq, JSON.parse) keep parsing every line of a batch.
        def _cost(value: float) -> Optional[float]:
            return value if math.isfinite(value) else None

        out: Dict[str, Any] = {
            "scheduler": self.scheduler,
            "dag_name": self.dag_name,
            "num_nodes": self.num_nodes,
            "machine": self.machine.to_dict(),
            "total_cost": _cost(self.total_cost),
            "work_cost": _cost(self.work_cost),
            "comm_cost": _cost(self.comm_cost),
            "latency_cost": _cost(self.latency_cost),
            "num_supersteps": self.num_supersteps,
            "valid": self.valid,
            "scheduler_description": self.scheduler_description,
            "deterministic": self.deterministic,
        }
        if timing:
            out["wall_seconds"] = self.wall_seconds
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SolveResult":
        def _cost(value: Any) -> float:
            return float("inf") if value is None else float(value)

        return cls(
            scheduler=data["scheduler"],
            dag_name=data["dag_name"],
            num_nodes=int(data["num_nodes"]),
            machine=MachineSpec.from_dict(data["machine"]),
            total_cost=_cost(data["total_cost"]),
            work_cost=_cost(data["work_cost"]),
            comm_cost=_cost(data["comm_cost"]),
            latency_cost=_cost(data["latency_cost"]),
            num_supersteps=int(data["num_supersteps"]),
            valid=bool(data.get("valid", True)),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            scheduler_description=data.get("scheduler_description", ""),
            deterministic=bool(data.get("deterministic", True)),
        )

    def to_json(self, *, timing: bool = False, **kwargs: Any) -> str:
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(timing=timing), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "SolveResult":
        return cls.from_dict(json.loads(text))
