"""``python -m repro.checks`` — same entry point as ``repro check``."""

import sys

from .runner import main

sys.exit(main())
