"""Protocol contract audit: error codes vs. the wire-format registry.

``serve/protocol.py`` is the single source of truth for the daemon's error
codes: the ``E_*`` string constants and the ``ERROR_CODES`` tuple that
:func:`~repro.serve.protocol.error_response` validates against at runtime.
That runtime assert only fires on the error path actually exercised — a
typo'd or unregistered code in a rarely-hit branch survives every happy-path
test.  This project-wide rule closes the gap statically, in both directions:

* every module-level ``E_* = "..."`` constant must appear in ``ERROR_CODES``
  (a declared-but-unregistered code would crash ``error_response`` the first
  time that branch fires);
* every ``ERROR_CODES`` element must be a declared ``E_*`` constant, and no
  two constants may share a wire value;
* every *call site* in ``serve/`` that passes an error code —
  ``error_response(rid, code, ...)``, ``note_error(code)``,
  ``_refuse(ticket, code, ...)`` — must pass a declared constant (or a
  literal equal to a declared wire value);
* a declared code never referenced anywhere in ``serve/`` outside
  ``protocol.py`` and the package re-export is dead weight and flagged.

Dynamic code expressions (a variable, ``error.get("code")``) cannot be
audited statically and are skipped.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..core import Finding, Project, Rule, SourceModule, dotted_name

__all__ = ["ProtocolContractRule"]

#: Functions that accept an error code, and the positional index it lands at.
_CODE_ARG_INDEX = {
    "error_response": 1,  # error_response(rid, code, message, ...)
    "note_error": 0,      # note_error(code)
    "_refuse": 1,         # _refuse(ticket, code, message)
}

#: serve/ files whose mention of a code does not count as *use*.
_NON_USE_FILES = {"protocol.py", "__init__.py"}


def _declared_codes(tree: ast.Module) -> Dict[str, Tuple[str, ast.Assign]]:
    """Module-level ``E_NAME = "wire-value"`` constants of protocol.py."""
    out: Dict[str, Tuple[str, ast.Assign]] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if (
                isinstance(target, ast.Name)
                and target.id.startswith("E_")
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                out[target.id] = (node.value.value, node)
    return out


def _registry_elements(tree: ast.Module) -> Optional[Tuple[ast.AST, List[ast.AST]]]:
    """The ``ERROR_CODES = (...)`` assignment node and its elements."""
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id == "ERROR_CODES":
                value = node.value
                if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                    return node, list(value.elts)
                return node, []
    return None


class ProtocolContractRule(Rule):
    name = "protocol-contract"
    description = (
        "serve/ error codes and the protocol.py ERROR_CODES registry must "
        "agree in both directions, at every call site"
    )

    def finish_project(self, project: Project) -> Iterable[Finding]:
        protocol = project.find("serve", "protocol.py")
        if protocol is None:
            return ()
        declared = _declared_codes(protocol.tree)
        registry = _registry_elements(protocol.tree)
        findings: List[Finding] = []
        findings.extend(self._check_registry(protocol, declared, registry))
        used: Set[str] = set()
        for module in project.modules:
            if "serve" not in module.parts[:-1] or module.parts[-1] in _NON_USE_FILES:
                continue
            findings.extend(self._check_call_sites(module, declared))
            used.update(self._referenced_codes(module, declared))
        findings.extend(self._check_unused(protocol, declared, used))
        return findings

    # ------------------------------------------------------------------
    def _check_registry(
        self,
        protocol: SourceModule,
        declared: Dict[str, Tuple[str, ast.Assign]],
        registry: Optional[Tuple[ast.AST, List[ast.AST]]],
    ) -> Iterator[Finding]:
        if registry is None:
            yield protocol.finding(
                self.name,
                protocol.tree,
                "protocol.py declares no ERROR_CODES registry tuple",
            )
            return
        registry_node, elements = registry
        registered: Set[str] = set()
        for element in elements:
            if isinstance(element, ast.Name) and element.id in declared:
                registered.add(element.id)
            elif isinstance(element, ast.Constant) and isinstance(element.value, str):
                matches = [n for n, (v, _) in declared.items() if v == element.value]
                if matches:
                    registered.update(matches)
                else:
                    yield protocol.finding(
                        self.name,
                        element,
                        f"ERROR_CODES entry {element.value!r} has no matching "
                        "E_* constant",
                    )
            else:
                yield protocol.finding(
                    self.name,
                    element,
                    "ERROR_CODES entry is not a declared E_* constant",
                )
        for name in sorted(set(declared) - registered):
            _, node = declared[name]
            yield protocol.finding(
                self.name,
                node,
                f"error code {name} is declared but missing from ERROR_CODES — "
                "error_response() would reject it at runtime",
            )
        by_value: Dict[str, List[str]] = {}
        for name, (value, _) in declared.items():
            by_value.setdefault(value, []).append(name)
        for value, names in sorted(by_value.items()):
            if len(names) > 1:
                _, node = declared[sorted(names)[1]]
                yield protocol.finding(
                    self.name,
                    node,
                    f"error codes {', '.join(sorted(names))} share the wire "
                    f"value {value!r}",
                )

    # ------------------------------------------------------------------
    def _check_call_sites(
        self, module: SourceModule, declared: Dict[str, Tuple[str, ast.Assign]]
    ) -> Iterator[Finding]:
        values = {value for value, _ in declared.values()}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func_name = dotted_name(node.func)
            if func_name is None:
                continue
            tail = func_name.rsplit(".", 1)[-1]
            index = _CODE_ARG_INDEX.get(tail)
            if index is None:
                continue
            code = self._code_argument(node, index)
            if code is None:
                continue
            if isinstance(code, ast.Constant):
                if isinstance(code.value, str) and code.value not in values:
                    yield module.finding(
                        self.name,
                        code,
                        f"{tail}() called with literal code {code.value!r} "
                        "which is not a registered protocol error code",
                    )
                continue
            name = self._code_name(code)
            if name is not None and name not in declared:
                yield module.finding(
                    self.name,
                    code,
                    f"{tail}() called with undeclared error code constant "
                    f"{name} — not defined in serve/protocol.py",
                )

    @staticmethod
    def _code_argument(node: ast.Call, index: int) -> Optional[ast.AST]:
        for keyword in node.keywords:
            if keyword.arg == "code":
                return keyword.value
        if len(node.args) > index:
            return node.args[index]
        return None

    @staticmethod
    def _code_name(code: ast.AST) -> Optional[str]:
        """The ``E_*`` constant a code expression names, if it names one."""
        if isinstance(code, ast.Name) and code.id.startswith("E_"):
            return code.id
        if isinstance(code, ast.Attribute) and code.attr.startswith("E_"):
            return code.attr
        return None

    # ------------------------------------------------------------------
    def _referenced_codes(
        self, module: SourceModule, declared: Dict[str, Tuple[str, ast.Assign]]
    ) -> Set[str]:
        values = {value: name for name, (value, _) in declared.items()}
        used: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Name) and node.id in declared:
                used.add(node.id)
            elif isinstance(node, ast.Attribute) and node.attr in declared:
                used.add(node.attr)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                if node.value in values:
                    used.add(values[node.value])
        return used

    def _check_unused(
        self,
        protocol: SourceModule,
        declared: Dict[str, Tuple[str, ast.Assign]],
        used: Set[str],
    ) -> Iterator[Finding]:
        for name in sorted(set(declared) - used):
            _, node = declared[name]
            yield protocol.finding(
                self.name,
                node,
                f"error code {name} is never produced or handled anywhere in "
                "serve/ — dead protocol surface",
            )
