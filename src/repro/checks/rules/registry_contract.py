"""Registry contract audit: decorator metadata must match factory reality.

:func:`repro.registry.register_scheduler` carries declarative metadata —
the ``parameters`` a spec string may set, and a ``deterministic`` flag the
API facade and the solution cache both trust.  Nothing re-checks that
metadata against the decorated factory; this rule does, statically:

* a factory taking ``**overrides`` cannot have its parameters derived from
  its signature — it must declare ``parameters=`` explicitly;
* when ``parameters=`` is a resolvable tuple/list of string literals (a
  module-level constant counts), it must cover every named keyword of the
  factory, and — unless the factory takes ``**kwargs`` — must not declare
  parameters the factory does not accept (a spec string setting one would
  pass the registry's validation and then blow up in the factory);
* a factory whose ``time_limit`` parameter *defaults* to a number runs
  wall-clock bounded out of the box, so registering it
  ``deterministic=True`` would poison the cache and the byte-identity
  contract of ``solve_many`` — the flag must be ``False``.

Computed ``parameters=`` expressions (e.g. built from a config class's
field names at import time) cannot be audited statically and are skipped.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..core import Finding, Rule, SourceModule

__all__ = ["RegistryContractRule"]


def _register_call(decorator: ast.AST) -> Optional[ast.Call]:
    """The ``register_scheduler(...)`` call of a decorator, if it is one."""
    if not isinstance(decorator, ast.Call):
        return None
    func = decorator.func
    name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
    return decorator if name == "register_scheduler" else None


def _literal_strings(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """A tuple/list of string constants as strings, else ``None``."""
    if isinstance(node, (ast.Tuple, ast.List)):
        values: List[str] = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                values.append(element.value)
            else:
                return None
        return tuple(values)
    return None


def _constant_tuples(tree: ast.Module) -> Dict[str, Tuple[str, ...]]:
    """Module-level ``NAME = ("a", "b")`` string-tuple assignments."""
    out: Dict[str, Tuple[str, ...]] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                values = _literal_strings(node.value)
                if values is not None:
                    out[target.id] = values
    return out


class RegistryContractRule(Rule):
    name = "registry-contract"
    description = (
        "@register_scheduler parameters/deterministic metadata must match "
        "the decorated factory's real signature"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        constants = _constant_tuples(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for decorator in node.decorator_list:
                call = _register_call(decorator)
                if call is not None:
                    findings.extend(self._check_factory(module, call, node, constants))
        return findings

    # ------------------------------------------------------------------
    def _check_factory(
        self,
        module: SourceModule,
        call: ast.Call,
        factory: ast.FunctionDef,
        constants: Dict[str, Tuple[str, ...]],
    ) -> Iterator[Finding]:
        entry = self._entry_name(call)
        label = f"scheduler {entry!r}" if entry else f"factory {factory.name}()"
        args = factory.args
        named = [a.arg for a in args.args + args.kwonlyargs if a.arg != "self"]
        has_var_kw = args.kwarg is not None

        keywords = {kw.arg: kw.value for kw in call.keywords if kw.arg is not None}
        declared_node = keywords.get("parameters")
        if declared_node is None:
            if has_var_kw:
                yield module.finding(
                    self.name,
                    call,
                    f"{label}: the factory takes **{args.kwarg.arg} so its spec "
                    "parameters cannot be derived — declare parameters= explicitly",
                )
        else:
            declared = self._resolve(declared_node, constants)
            if declared is not None:
                for missing in sorted(set(named) - set(declared)):
                    yield module.finding(
                        self.name,
                        call,
                        f"{label}: factory argument {missing!r} is missing from "
                        "the declared parameters= metadata",
                    )
                if not has_var_kw:
                    for unknown in sorted(set(declared) - set(named)):
                        yield module.finding(
                            self.name,
                            call,
                            f"{label}: declared parameter {unknown!r} is not an "
                            "argument of the factory",
                        )

        deterministic = keywords.get("deterministic")
        flagged_deterministic = not (
            isinstance(deterministic, ast.Constant) and deterministic.value is False
        )
        if flagged_deterministic and self._wall_clock_default(args, named):
            yield module.finding(
                self.name,
                call,
                f"{label}: time_limit defaults to a wall-clock bound, so runs "
                "are load-dependent — register deterministic=False",
            )

    # ------------------------------------------------------------------
    @staticmethod
    def _entry_name(call: ast.Call) -> Optional[str]:
        if call.args and isinstance(call.args[0], ast.Constant):
            value = call.args[0].value
            if isinstance(value, str):
                return value
        return None

    @staticmethod
    def _resolve(
        node: ast.AST, constants: Dict[str, Tuple[str, ...]]
    ) -> Optional[Tuple[str, ...]]:
        values = _literal_strings(node)
        if values is not None:
            return values
        if isinstance(node, ast.Name):
            return constants.get(node.id)
        return None

    @staticmethod
    def _wall_clock_default(args: ast.arguments, named: List[str]) -> bool:
        """Whether the ``time_limit`` argument defaults to a number."""
        defaults: Dict[str, ast.AST] = {}
        positional = [a.arg for a in args.args if a.arg != "self"]
        for arg_name, default in zip(positional[len(positional) - len(args.defaults):], args.defaults):
            defaults[arg_name] = default
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                defaults[arg.arg] = default
        default = defaults.get("time_limit")
        return (
            default is not None
            and isinstance(default, ast.Constant)
            and isinstance(default.value, (int, float))
            and not isinstance(default.value, bool)
        )
