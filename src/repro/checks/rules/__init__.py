"""The shipped rules of the ``repro check`` suite.

Each module defines one :class:`~repro.checks.core.Rule` subclass; the
registry below is the single place a new rule is wired in (the runner and
the ``--rules`` CLI flag both resolve through it).
"""

from typing import Dict, List, Type

from ..core import Rule
from .determinism import DeterminismRule
from .frozen_spec import FrozenSpecMutationRule
from .lock_discipline import LockDisciplineRule
from .protocol_contract import ProtocolContractRule
from .registry_contract import RegistryContractRule

__all__ = [
    "ALL_RULES",
    "DeterminismRule",
    "FrozenSpecMutationRule",
    "LockDisciplineRule",
    "ProtocolContractRule",
    "RegistryContractRule",
    "rule_registry",
]

ALL_RULES: List[Type[Rule]] = [
    DeterminismRule,
    FrozenSpecMutationRule,
    LockDisciplineRule,
    ProtocolContractRule,
    RegistryContractRule,
]


def rule_registry() -> Dict[str, Type[Rule]]:
    """Rule name -> rule class, in deterministic order."""
    return {cls.name: cls for cls in ALL_RULES}
