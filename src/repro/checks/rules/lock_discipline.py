"""Lock-discipline check for the serve and obs subsystems.

The serve daemon's correctness rests on hand-maintained invariants:
answer-exactly-once tickets, counter-undo when a respond race is lost, one
lock guarding every shared counter.  The observability layer makes the same
promise from the other side: its tracer and instruments are documented as
thread-safe, so every shared mutation must actually hold the lock they
construct.  Those invariants all reduce to one mechanical rule this check
enforces:

    In a module under ``serve/`` or ``obs/``, an instance attribute mutated
    from more than one method of a *concurrency-relevant* class must only
    be mutated inside a ``with self.<lock>:`` block.

* under ``serve/`` a class is concurrency-relevant when its body constructs
  a ``threading.Thread`` (directly or via an alias) — exactly the classes
  whose methods run concurrently; under ``obs/`` the trigger is
  constructing a ``threading.Lock`` / ``RLock`` — a class that builds a
  lock has declared itself shared, so its mutations must honor it;
* a *mutation* is an assignment/augmented assignment/deletion of
  ``self.attr`` (including stores through ``self.attr[...]``) or a call to
  a known container mutator (``self.attr.append(...)``, ``.remove``, ...);
* ``__init__`` mutations are exempt (no other thread exists yet) and do
  not count toward the two-method threshold;
* any attribute whose name contains ``lock`` qualifies as the guard, so
  both ``self._lock`` and ``self._shutdown_lock`` discipline their blocks.

A mutation that is intentionally unguarded (e.g. a helper documented as
"caller holds the lock") carries a justified
``# repro-check: disable=lock-discipline`` pragma.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..core import Finding, Rule, SourceModule

__all__ = ["LockDisciplineRule"]

#: Method names that mutate their container in place.
_MUTATORS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "popitem",
    "clear",
    "add",
    "discard",
    "update",
    "setdefault",
    "sort",
    "reverse",
    "move_to_end",
}


def _self_attr(node: ast.AST) -> Optional[str]:
    """``attr`` when the node is ``self.attr``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _constructs(class_node: ast.ClassDef, names: Tuple[str, ...]) -> bool:
    """Whether the class body calls any constructor in ``names``."""
    for node in ast.walk(class_node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in names:
            return True
        if isinstance(func, ast.Name) and func.id in names:
            return True
    return False


def _spawns_threads(class_node: ast.ClassDef) -> bool:
    """Whether the class body constructs a thread anywhere."""
    return _constructs(class_node, ("Thread",))


def _constructs_locks(class_node: ast.ClassDef) -> bool:
    """Whether the class body constructs a lock anywhere."""
    return _constructs(class_node, ("Lock", "RLock"))


def _mutations(method: ast.FunctionDef) -> Iterator[Tuple[str, ast.AST]]:
    """(attribute, node) pairs for every ``self.attr`` mutation in a method."""
    for node in ast.walk(method):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                attr = _mutated_attr(target)
                if attr is not None:
                    yield attr, node
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = _mutated_attr(target)
                if attr is not None:
                    yield attr, node
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                attr = _self_attr(func.value)
                if attr is not None:
                    yield attr, node


def _mutated_attr(target: ast.AST) -> Optional[str]:
    """The ``self`` attribute a store target mutates, unwrapping subscripts."""
    while isinstance(target, ast.Subscript):
        target = target.value
    return _self_attr(target)


class LockDisciplineRule(Rule):
    name = "lock-discipline"
    description = (
        "in serve/ (thread-spawning classes) and obs/ (lock-constructing "
        "classes), instance attributes mutated from more than one method "
        "must be mutated under `with self.<lock>:`"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        parts = module.parts[:-1]
        if "serve" in parts:
            trigger = _spawns_threads
        elif "obs" in parts:
            trigger = _constructs_locks
        else:
            return ()
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and trigger(node):
                findings.extend(self._check_class(module, node))
        return findings

    # ------------------------------------------------------------------
    def _check_class(
        self, module: SourceModule, class_node: ast.ClassDef
    ) -> Iterator[Finding]:
        by_attr: Dict[str, List[Tuple[str, ast.FunctionDef, ast.AST]]] = {}
        for method in class_node.body:
            if not isinstance(method, ast.FunctionDef) or method.name == "__init__":
                continue
            for attr, node in _mutations(method):
                if "lock" in attr.lower():
                    continue  # the guard itself is never re-bound under itself
                by_attr.setdefault(attr, []).append((method.name, method, node))
        for attr, sites in sorted(by_attr.items()):
            methods = {name for name, _, _ in sites}
            if len(methods) < 2:
                continue
            for method_name, method, node in sites:
                if self._under_lock(module, method, node):
                    continue
                yield module.finding(
                    self.name,
                    node,
                    f"{class_node.name}.{attr} is mutated from "
                    f"{len(methods)} methods ({', '.join(sorted(methods))}) but "
                    f"this mutation in {method_name}() is not under "
                    "`with self.<lock>:`",
                )

    @staticmethod
    def _under_lock(module: SourceModule, method: ast.FunctionDef, node: ast.AST) -> bool:
        """Whether the node sits inside a ``with self.<lock>:`` in its method."""
        for ancestor in module.ancestors(node):
            if ancestor is method:
                return False
            if isinstance(ancestor, ast.With):
                for item in ancestor.items:
                    attr = _self_attr(item.context_expr)
                    if attr is not None and "lock" in attr.lower():
                        return True
        return False
