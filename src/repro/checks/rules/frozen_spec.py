"""Frozen-spec mutation check.

The spec types (:class:`~repro.spec.ProblemSpec`,
:class:`~repro.spec.SolveRequest`, :class:`~repro.spec.SolveResult`,
:class:`~repro.spec.MachineSpec`, :class:`~repro.spec.DagSpec`) are frozen
dataclasses: their hash feeds work-item signatures, cache keys, and
checkpoint resume.  A mutated instance silently invalidates all three.
Python's runtime guard (``FrozenInstanceError``) can be bypassed with
``object.__setattr__`` — the very idiom the defining module uses in its
``__post_init__`` normalizers — so this rule re-establishes the boundary
statically: *no attribute assignment on a spec instance outside
``repro/spec.py``*.

Instances are recognized by a local, per-function inference pass:

* variables assigned from a spec constructor or classmethod
  (``MachineSpec(...)``, ``SolveRequest.from_dict(...)``, ...);
* parameters and variables annotated with a spec type (including string
  and ``Optional[...]`` annotations);
* ``object.__setattr__(x, ...)`` where ``x`` is such an instance.

Assignments *to* a freshly constructed value (``spec = ProblemSpec(...)``)
are of course fine — only attribute stores on the instance are flagged.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator, List, Optional, Set

from ..core import Finding, Rule, SourceModule

__all__ = ["FROZEN_SPEC_TYPES", "FrozenSpecMutationRule"]

#: The frozen spec classes whose instances must never be mutated.
FROZEN_SPEC_TYPES = (
    "DagSpec",
    "MachineSpec",
    "ProblemSpec",
    "SolveRequest",
    "SolveResult",
)

_TYPE_NAME_RE = re.compile("|".join(rf"\b{name}\b" for name in FROZEN_SPEC_TYPES))


def _annotation_is_spec(annotation: Optional[ast.AST]) -> bool:
    """Whether an annotation mentions a frozen spec type.

    Matches plain names, string annotations, and wrappers like
    ``Optional[SolveRequest]`` — the textual form is enough here; a false
    positive requires naming an unrelated class exactly like a spec type.
    """
    if annotation is None:
        return False
    try:
        text = ast.unparse(annotation)
    except Exception:  # pragma: no cover - unparse failure on exotic nodes
        return False
    return _TYPE_NAME_RE.search(text) is not None


def _constructed_spec(value: ast.AST) -> bool:
    """Whether an expression constructs a frozen spec instance."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Name):
        return func.id in FROZEN_SPEC_TYPES
    if isinstance(func, ast.Attribute):
        base = func.value
        # Classmethod constructors: SolveRequest.from_dict(...), etc.
        if isinstance(base, ast.Name) and base.id in FROZEN_SPEC_TYPES:
            return True
    return False


class FrozenSpecMutationRule(Rule):
    name = "frozen-spec-mutation"
    description = (
        "no attribute assignment on frozen spec instances "
        f"({', '.join(FROZEN_SPEC_TYPES)}) outside their defining module"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        if module.parts[-2:] == ("repro", "spec.py"):
            return ()  # the defining module owns its __post_init__ setattrs
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_function(module, node))
        return findings

    # ------------------------------------------------------------------
    def _check_function(
        self, module: SourceModule, function: ast.FunctionDef
    ) -> Iterator[Finding]:
        spec_vars = self._spec_locals(function)
        if not spec_vars:
            return
        for node in ast.walk(function):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    name = self._mutated_spec_var(target, spec_vars)
                    if name is not None:
                        yield module.finding(
                            self.name,
                            node,
                            "attribute assignment on frozen spec instance "
                            f"{name!r} — spec objects are immutable; build a "
                            "new instance instead",
                        )
            elif isinstance(node, ast.Call):
                if self._is_object_setattr(node) and node.args:
                    target = node.args[0]
                    if isinstance(target, ast.Name) and target.id in spec_vars:
                        yield module.finding(
                            self.name,
                            node,
                            "object.__setattr__ on frozen spec instance "
                            f"{target.id!r} bypasses the immutability contract",
                        )

    # ------------------------------------------------------------------
    @staticmethod
    def _spec_locals(function: ast.FunctionDef) -> Set[str]:
        """Names bound to frozen spec instances inside this function."""
        names: Set[str] = set()
        args = function.args
        for arg in args.args + args.kwonlyargs + args.posonlyargs:
            if _annotation_is_spec(arg.annotation):
                names.add(arg.arg)
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and _constructed_spec(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if _annotation_is_spec(node.annotation) or (
                    node.value is not None and _constructed_spec(node.value)
                ):
                    names.add(node.target.id)
        return names

    @staticmethod
    def _mutated_spec_var(target: ast.AST, spec_vars: Set[str]) -> Optional[str]:
        """The spec variable a store target mutates (``var.attr = ...``)."""
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id in spec_vars
        ):
            return target.value.id
        return None

    @staticmethod
    def _is_object_setattr(node: ast.Call) -> bool:
        func = node.func
        return (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
        )
