"""Determinism lint: no unseeded RNG, wall clocks, or unordered iteration.

Byte-identical reproduction breaks the moment a result-producing code path
consults an unseeded random stream, the wall clock, or filesystem/set
iteration order.  This rule bans the common sources statically:

* calls through the process-global RNG singletons — ``np.random.rand(...)``,
  ``random.random()``, ``random.seed(...)`` and friends.  Seeded generator
  *construction* (``np.random.default_rng(seed)``, ``random.Random(seed)``)
  is the sanctioned idiom and passes; constructing one *without* a seed is
  flagged;
* ``time.time()`` outside the timing allowlist (benchmark harnesses and
  tests).  Budget checks in solver code must use ``time.monotonic`` — the
  wall clock jumps under NTP and breaks deadline arithmetic;
* iterating a ``set`` (literal, comprehension, or ``set(...)`` call) or
  ``os.listdir(...)`` in result-producing modules (everything outside
  ``tests``/``benchmarks``).  Iteration order of a set depends on insertion
  and hash history; ``os.listdir`` order depends on the filesystem.  Wrap
  either in ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Set

from ..core import Finding, Rule, SourceModule, dotted_name, module_imports

__all__ = ["DeterminismRule"]

#: Constructors of seedable generator objects: fine *with* a seed argument.
_SEEDED_CONSTRUCTORS = {"default_rng", "RandomState", "Generator", "SeedSequence", "Random"}

#: Directory names whose modules are timing/test harnesses — allowed to use
#: ``time.time`` and to iterate sets (they do not produce solver results).
_HARNESS_PARTS = {"tests", "benchmarks"}


def _is_harness(module: SourceModule) -> bool:
    return bool(_HARNESS_PARTS.intersection(module.parts))


class DeterminismRule(Rule):
    name = "determinism"
    description = (
        "ban unseeded RNG calls, wall-clock time.time() outside timing "
        "modules, and unsorted set/os.listdir iteration in result-producing "
        "modules"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        imports = module_imports(module.tree)
        numpy_names = {name for name, target in imports.items() if target == "numpy"}
        random_is_module = imports.get("random") == "random"
        time_is_module = imports.get("time") == "time"
        os_is_module = imports.get("os") == "os"
        harness = _is_harness(module)

        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                findings.extend(
                    self._check_call(
                        module,
                        node,
                        numpy_names=numpy_names,
                        random_is_module=random_is_module,
                        time_is_module=time_is_module,
                        harness=harness,
                    )
                )
            if not harness:
                for iter_node in _iterated_expressions(node):
                    findings.extend(
                        self._check_iteration(module, iter_node, os_is_module=os_is_module)
                    )
        return findings

    # ------------------------------------------------------------------
    def _check_call(
        self,
        module: SourceModule,
        node: ast.Call,
        *,
        numpy_names: Set[str],
        random_is_module: bool,
        time_is_module: bool,
        harness: bool,
    ) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")
        # np.random.<fn>(...) through any local alias of numpy.
        if len(parts) == 3 and parts[0] in numpy_names and parts[1] == "random":
            fn = parts[2]
            if fn in _SEEDED_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    yield module.finding(
                        self.name,
                        node,
                        f"unseeded {parts[0]}.random.{fn}() — pass an explicit seed",
                    )
            else:
                yield module.finding(
                    self.name,
                    node,
                    f"call to the global numpy RNG {parts[0]}.random.{fn}(...) — "
                    "use a seeded np.random.default_rng(seed) instance",
                )
        # random.<fn>(...) through the stdlib module.
        if random_is_module and len(parts) == 2 and parts[0] == "random":
            fn = parts[1]
            if fn in _SEEDED_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    yield module.finding(
                        self.name,
                        node,
                        f"unseeded random.{fn}() — pass an explicit seed",
                    )
            elif fn[:1].islower():  # functions mutate the hidden global stream
                yield module.finding(
                    self.name,
                    node,
                    f"call to the global stdlib RNG random.{fn}(...) — "
                    "use a seeded random.Random(seed) instance",
                )
        # time.time() — wall clock — outside the timing harness allowlist.
        if time_is_module and name == "time.time" and not harness:
            yield module.finding(
                self.name,
                node,
                "wall-clock time.time() in a result-producing module — "
                "budget checks must use time.monotonic()",
            )

    # ------------------------------------------------------------------
    def _check_iteration(
        self, module: SourceModule, iter_node: ast.AST, *, os_is_module: bool
    ) -> Iterator[Finding]:
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            yield module.finding(
                self.name,
                iter_node,
                "iteration over a set has no deterministic order — wrap in sorted(...)",
            )
            return
        if not isinstance(iter_node, ast.Call):
            return
        name = dotted_name(iter_node.func)
        if name == "set":
            yield module.finding(
                self.name,
                iter_node,
                "iteration over set(...) has no deterministic order — wrap in sorted(...)",
            )
        elif os_is_module and name == "os.listdir":
            yield module.finding(
                self.name,
                iter_node,
                "os.listdir(...) order depends on the filesystem — wrap in sorted(...)",
            )


def _iterated_expressions(node: ast.AST) -> Iterator[ast.AST]:
    """Expressions a node iterates over (for loops and comprehensions)."""
    if isinstance(node, (ast.For, ast.AsyncFor)):
        yield node.iter
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        for generator in node.generators:
            yield generator.iter
