"""Project-specific static analysis: the ``repro check`` lint suite.

The repo's central promise — byte-identical reproduction of the paper's
results across ``solve``, ``solve_many``, the batch CLI and the serve
daemon — is enforced dynamically by the equivalence tests, but those only
sample a few instances.  This package enforces the underlying *invariants*
statically, over every file, on every CI run:

``determinism``
    no unseeded RNG, no wall-clock ``time.time()`` outside timing modules,
    no iteration over unsorted ``set``/``os.listdir`` in result-producing
    code (see :mod:`repro.checks.rules.determinism`);

``lock-discipline``
    in :mod:`repro.serve`, instance attributes mutated from more than one
    method of a thread-spawning class must be mutated under a lock
    (:mod:`repro.checks.rules.lock_discipline`);

``registry-contract``
    ``@register_scheduler`` metadata must match the factory's real
    signature (:mod:`repro.checks.rules.registry_contract`);

``frozen-spec-mutation``
    no attribute assignment on frozen spec instances outside their
    defining module (:mod:`repro.checks.rules.frozen_spec`);

``protocol-contract``
    error codes constructed in ``serve/`` and the registry in
    ``protocol.py`` must agree both ways
    (:mod:`repro.checks.rules.protocol_contract`).

Findings carry ``path:line`` and a rule id; a line can opt out with a
justified ``# repro-check: disable=<rule>`` pragma, and a committed
baseline file can grandfather known findings.  Entry points: the
``repro check`` CLI subcommand and :func:`repro.checks.runner.run_checks`.
"""

from .core import BaselineError, Finding, Project, Rule, SourceModule
from .runner import CheckReport, all_rules, main, run_checks

__all__ = [
    "BaselineError",
    "CheckReport",
    "Finding",
    "Project",
    "Rule",
    "SourceModule",
    "all_rules",
    "main",
    "run_checks",
]
