"""Runner and CLI of the ``repro check`` static-analysis suite.

Collects python files deterministically, parses each once, runs every
selected rule (per-module passes, then project-wide passes), filters the
raw findings through per-line pragmas and the committed baseline, and
renders the survivors for humans or CI (``--format json``).

Exit codes: ``0`` clean, ``1`` findings (or unparseable files), ``2``
usage / baseline errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .core import (
    BaselineError,
    Finding,
    Project,
    Rule,
    SourceModule,
    load_baseline,
    write_baseline,
)
from .rules import ALL_RULES, rule_registry

__all__ = [
    "DEFAULT_BASELINE",
    "DEFAULT_PATHS",
    "CheckReport",
    "all_rules",
    "collect_files",
    "main",
    "run_checks",
]

#: Baseline file committed at the repo root.
DEFAULT_BASELINE = ".repro-check-baseline.json"

#: Directories checked when the CLI is invoked without paths.
DEFAULT_PATHS = ("src", "tests", "benchmarks")

#: Path parts that are never source code.
_SKIP_PARTS = {"__pycache__", ".git"}


def all_rules() -> List[Rule]:
    """One instance of every shipped rule, in deterministic order."""
    return [cls() for cls in ALL_RULES]


def collect_files(paths: Sequence[Path]) -> List[Tuple[Path, str]]:
    """``(path, relpath)`` for every python file under ``paths``, sorted.

    ``relpath`` — the identity used in findings and the baseline — is
    relative to the current directory when the file lies under it, else
    the path as given; always posix-style, so reports are byte-identical
    across platforms.
    """
    cwd = Path.cwd().resolve()
    seen: Set[Path] = set()
    collected: List[Tuple[Path, str]] = []
    for root in paths:
        if root.is_file():
            candidates = [root]
        elif root.is_dir():
            candidates = sorted(root.rglob("*.py"))
        else:
            raise FileNotFoundError(f"no such file or directory: {root}")
        for path in candidates:
            if path.suffix != ".py" or _SKIP_PARTS.intersection(path.parts):
                continue
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            try:
                relpath = resolved.relative_to(cwd).as_posix()
            except ValueError:
                relpath = path.as_posix()
            collected.append((resolved, relpath))
    collected.sort(key=lambda item: item[1])
    return collected


class CheckReport:
    """Outcome of one check run, split into what CI needs to react to."""

    def __init__(
        self,
        findings: List[Finding],
        baselined: List[Finding],
        errors: List[Tuple[str, str]],
        stale_baseline: int,
        checked_files: int,
    ) -> None:
        #: New findings: not pragma-suppressed, not in the baseline.
        self.findings = findings
        #: Grandfathered findings matched by the baseline.
        self.baselined = baselined
        #: ``(relpath, message)`` for files that failed to parse.
        self.errors = errors
        #: Baseline entries no current finding matches (candidates to drop).
        self.stale_baseline = stale_baseline
        self.checked_files = checked_files

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    # ------------------------------------------------------------------
    def render_human(self) -> str:
        lines: List[str] = []
        for relpath, message in self.errors:
            lines.append(f"{relpath}: [parse-error] {message}")
        for finding in self.findings:
            lines.append(finding.render())
        summary = (
            f"{len(self.findings)} finding(s) in {self.checked_files} file(s)"
        )
        if self.baselined:
            summary += f", {len(self.baselined)} baselined"
        if self.stale_baseline:
            summary += (
                f", {self.stale_baseline} stale baseline entr"
                f"{'y' if self.stale_baseline == 1 else 'ies'}"
                " (re-run with --update-baseline to drop)"
            )
        if self.errors:
            summary += f", {len(self.errors)} unparseable file(s)"
        lines.append(summary)
        return "\n".join(lines)

    def render_json(self) -> str:
        payload = {
            "checked_files": self.checked_files,
            "findings": [finding.to_dict() for finding in self.findings],
            "baselined": [finding.to_dict() for finding in self.baselined],
            "errors": [
                {"path": relpath, "message": message}
                for relpath, message in self.errors
            ],
            "stale_baseline": self.stale_baseline,
            "ok": self.ok,
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def run_checks(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Set[Tuple[str, str, str]]] = None,
) -> CheckReport:
    """Run ``rules`` over every python file under ``paths``."""
    active = list(rules) if rules is not None else all_rules()
    baseline_keys = baseline or set()

    modules: List[SourceModule] = []
    errors: List[Tuple[str, str]] = []
    for path, relpath in collect_files(paths):
        try:
            modules.append(SourceModule.parse(path, relpath))
        except (SyntaxError, ValueError) as exc:
            errors.append((relpath, f"cannot parse: {exc}"))

    by_relpath: Dict[str, SourceModule] = {m.relpath: m for m in modules}
    raw: List[Finding] = []
    for rule in active:
        for module in modules:
            raw.extend(rule.check_module(module))
    project = Project(modules)
    for rule in active:
        raw.extend(rule.finish_project(project))

    findings: List[Finding] = []
    baselined: List[Finding] = []
    matched_keys: Set[Tuple[str, str, str]] = set()
    for finding in sorted(set(raw)):
        module = by_relpath.get(finding.path)
        if module is not None and module.disabled(finding.rule, finding.line):
            continue
        if finding.key() in baseline_keys:
            matched_keys.add(finding.key())
            baselined.append(finding)
            continue
        findings.append(finding)

    return CheckReport(
        findings=findings,
        baselined=baselined,
        errors=errors,
        stale_baseline=len(baseline_keys - matched_keys),
        checked_files=len(modules),
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="Project-specific static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to check (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file and report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather every current finding",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated subset of rules to run (see --list-rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the available rules and exit",
    )
    return parser


def _select_rules(spec: Optional[str]) -> List[Rule]:
    if spec is None:
        return all_rules()
    registry = rule_registry()
    selected: List[Rule] = []
    for name in spec.split(","):
        name = name.strip()
        if not name:
            continue
        if name not in registry:
            known = ", ".join(sorted(registry))
            raise SystemExit(f"repro check: unknown rule {name!r} (known: {known})")
        selected.append(registry[name]())
    if not selected:
        raise SystemExit("repro check: --rules selected no rules")
    return selected


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name}: {rule.description}")
        return 0

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        paths = [Path(p) for p in DEFAULT_PATHS if Path(p).exists()]
        if not paths:
            print(
                "repro check: none of the default paths "
                f"({', '.join(DEFAULT_PATHS)}) exist here",
                file=sys.stderr,
            )
            return 2

    rules = _select_rules(args.rules)
    baseline_path = Path(args.baseline)
    try:
        baseline = set() if args.no_baseline else load_baseline(baseline_path)
    except BaselineError as exc:
        print(f"repro check: {exc}", file=sys.stderr)
        return 2

    try:
        report = run_checks(paths, rules=rules, baseline=baseline)
    except FileNotFoundError as exc:
        print(f"repro check: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        write_baseline(baseline_path, report.findings + report.baselined)
        print(
            f"baseline {baseline_path} updated: "
            f"{len(report.findings) + len(report.baselined)} finding(s) grandfathered"
        )
        return 0 if not report.errors else 1

    output = report.render_json() if args.format == "json" else report.render_human()
    print(output)
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via the repro CLI
    sys.exit(main())
