"""Framework of the ``repro check`` static-analysis suite.

The moving parts, shared by every rule:

* :class:`SourceModule` — one parsed python file: source text, AST (with
  parent links), per-line ``# repro-check: disable=...`` pragmas, and the
  path bookkeeping rules scope themselves by;
* :class:`Project` — all modules of one run, for rules that need
  cross-file knowledge (the protocol registry lives in one file, its call
  sites in others);
* :class:`Rule` — the plugin interface: per-module :meth:`Rule.check_module`
  findings plus an optional project-wide :meth:`Rule.finish_project` pass
  that runs after every module was parsed;
* :class:`Finding` — one structured finding (``path:line:col``, rule id,
  message), ordered deterministically;
* the baseline store (:func:`load_baseline` / :func:`write_baseline`) —
  a committed JSON file grandfathering known findings, keyed by
  ``(path, rule, message)`` so line drift does not invalidate entries.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "BASELINE_VERSION",
    "BaselineError",
    "Finding",
    "Project",
    "Rule",
    "SourceModule",
    "load_baseline",
    "write_baseline",
]

#: Version header of the baseline file format.
BASELINE_VERSION = 1

#: ``# repro-check: disable=rule-a,rule-b`` (or ``disable=all``) pragma.
_PRAGMA_RE = re.compile(r"#\s*repro-check:\s*disable=([A-Za-z0-9_*,\s-]+)")


class BaselineError(ValueError):
    """Raised for an unreadable or version-incompatible baseline file."""


@dataclass(frozen=True, order=True)
class Finding:
    """One structured finding; the dataclass order is the report order."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: stable across pure line-number drift."""
        return (self.path, self.rule, self.message)

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


class SourceModule:
    """One parsed source file plus the metadata rules need to scope by."""

    def __init__(self, path: Path, relpath: str, text: str, tree: ast.Module) -> None:
        self.path = path
        #: Posix-style path relative to the checked root, used in findings.
        self.relpath = relpath
        self.text = text
        self.tree = tree
        self.parts: Tuple[str, ...] = tuple(Path(relpath).parts)
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None
        self._pragmas: Optional[Dict[int, Set[str]]] = None

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, path: Path, relpath: str) -> "SourceModule":
        text = path.read_text()
        tree = ast.parse(text, filename=str(path))
        return cls(path, relpath, text, tree)

    # ------------------------------------------------------------------
    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child -> parent map of the AST (built lazily, once)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The node's enclosing nodes, innermost first."""
        parents = self.parents
        current = parents.get(node)
        while current is not None:
            yield current
            current = parents.get(current)

    # ------------------------------------------------------------------
    @property
    def pragmas(self) -> Dict[int, Set[str]]:
        """Line number -> rule names disabled on that line (``*`` for all)."""
        if self._pragmas is None:
            pragmas: Dict[int, Set[str]] = {}
            for lineno, line in enumerate(self.text.splitlines(), start=1):
                match = _PRAGMA_RE.search(line)
                if match is None:
                    continue
                rules = {
                    part.strip().lower()
                    for part in match.group(1).split(",")
                    if part.strip()
                }
                if "all" in rules:
                    rules.add("*")
                pragmas[lineno] = rules
            self._pragmas = pragmas
        return self._pragmas

    def disabled(self, rule: str, line: int) -> bool:
        """Whether a pragma on ``line`` suppresses ``rule``."""
        rules = self.pragmas.get(line)
        return bool(rules) and ("*" in rules or rule.lower() in rules)

    # ------------------------------------------------------------------
    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


class Project:
    """All modules of one check run, for cross-file rules."""

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.modules = list(modules)

    def find(self, *suffix: str) -> Optional[SourceModule]:
        """The first module whose path ends with the given parts, if any."""
        for module in self.modules:
            if module.parts[-len(suffix):] == suffix:
                return module
        return None


class Rule:
    """Base class of one pluggable check.

    Subclasses set :attr:`name` / :attr:`description` and override
    :meth:`check_module` (per-file findings) and/or :meth:`finish_project`
    (findings that need the whole run parsed first).  Pragma and baseline
    filtering happen in the runner — rules simply emit every finding.
    """

    name: str = ""
    description: str = ""

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        return ()

    def finish_project(self, project: Project) -> Iterable[Finding]:
        return ()


# ----------------------------------------------------------------------
# Baseline store
# ----------------------------------------------------------------------
def load_baseline(path: Path) -> Set[Tuple[str, str, str]]:
    """Grandfathered finding keys from a committed baseline file.

    A missing file is an empty baseline; a malformed one raises
    :class:`BaselineError` (silently ignoring a broken baseline would
    un-grandfather every finding at once).
    """
    try:
        text = path.read_text()
    except FileNotFoundError:
        return set()
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path} has unsupported version {data.get('version')!r} "
            f"(expected {BASELINE_VERSION})"
        )
    keys: Set[Tuple[str, str, str]] = set()
    for entry in data.get("findings", ()):
        try:
            keys.add((str(entry["path"]), str(entry["rule"]), str(entry["message"])))
        except (KeyError, TypeError) as exc:
            raise BaselineError(f"baseline {path} has a malformed entry: {entry!r}") from exc
    return keys


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Write the baseline file grandfathering ``findings`` (sorted, stable)."""
    entries = sorted({finding.key() for finding in findings})
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"path": p, "rule": r, "message": m} for p, r, m in entries
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# Shared AST helpers used by several rules
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def module_imports(tree: ast.Module) -> Dict[str, str]:
    """Local name -> imported module path for plain ``import`` statements.

    ``import numpy as np`` maps ``np -> numpy``; ``import os`` maps
    ``os -> os``.  Used to tell a real ``random.random()`` call from an
    attribute access on some local variable that happens to be named
    ``random``.
    """
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                imports[local] = alias.name if alias.asname else alias.name.split(".")[0]
    return imports
