"""The BSP+NUMA machine model, schedules and the cost function."""

from .classical import ClassicalSchedule, classical_to_bsp
from .comm import CommEntry, CommSchedule
from .cost import CostBreakdown, evaluate, superstep_matrices
from .inspect import (
    SuperstepSummary,
    describe_schedule,
    schedule_to_text_gantt,
    summarize_supersteps,
)
from .machine import BspMachine, MachineValidationError
from .simulate import NodeExecution, PhaseInterval, ScheduleTimeline, simulate_timeline
from .schedule import BspSchedule, ScheduleValidationError, legalize_superstep_assignment

__all__ = [
    "BspMachine",
    "MachineValidationError",
    "BspSchedule",
    "ScheduleValidationError",
    "legalize_superstep_assignment",
    "CommSchedule",
    "CommEntry",
    "CostBreakdown",
    "evaluate",
    "superstep_matrices",
    "SuperstepSummary",
    "summarize_supersteps",
    "describe_schedule",
    "schedule_to_text_gantt",
    "simulate_timeline",
    "ScheduleTimeline",
    "PhaseInterval",
    "NodeExecution",
    "ClassicalSchedule",
    "classical_to_bsp",
]
