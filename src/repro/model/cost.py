"""Cost evaluation in the NUMA-extended BSP model (paper Section 3.3 / 3.4).

The cost of a superstep ``s`` is

    C(s) = C_work(s) + g * C_comm(s) + l

where

* ``C_work(s)`` is the maximum total work weight assigned to any processor in
  the computation phase of ``s``,
* ``C_comm(s)`` is the h-relation cost: the maximum, over processors, of the
  amount of data sent or received by that processor in the communication
  phase of ``s`` — with every unit of data from ``p1`` to ``p2`` weighted by
  the NUMA coefficient ``lambda[p1, p2]``,
* ``l`` is the fixed latency charged for every superstep that occurs.

The total cost of a schedule is the sum of ``C(s)`` over all supersteps that
occur (i.e. supersteps with at least some computation or communication).
This module is the single source of truth for the cost formula; every
scheduler and every experiment compares schedules through :func:`evaluate`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .schedule import BspSchedule

__all__ = [
    "CostBreakdown",
    "evaluate",
    "superstep_matrices",
    "superstep_row_costs",
    "superstep_block_costs",
]

#: Tolerance below which a superstep's total activity counts as "empty"
#: (guards against float residue left behind by incremental +=/-= updates).
OCCUPANCY_TOL = 1e-12


@dataclass(frozen=True)
class CostBreakdown:
    """Per-superstep decomposition of a schedule's cost.

    Attributes
    ----------
    total:
        Total schedule cost (work + g * comm + latency summed over supersteps).
    work_cost:
        Sum over supersteps of the maximum per-processor work.
    comm_cost:
        Sum over supersteps of ``g`` times the h-relation cost.
    latency_cost:
        ``l`` times the number of supersteps that occur.
    num_supersteps:
        Number of supersteps that occur (non-empty in work or communication).
    work_per_step:
        Array of per-superstep work costs (max over processors).
    comm_per_step:
        Array of per-superstep h-relation costs (already NUMA weighted, not
        yet multiplied by ``g``).
    work_matrix:
        ``(S, P)`` matrix of total work per superstep and processor.
    send_matrix / recv_matrix:
        ``(S, P)`` matrices of NUMA-weighted data sent / received.
    """

    total: float
    work_cost: float
    comm_cost: float
    latency_cost: float
    num_supersteps: int
    work_per_step: np.ndarray
    comm_per_step: np.ndarray
    work_matrix: np.ndarray
    send_matrix: np.ndarray
    recv_matrix: np.ndarray


def superstep_matrices(schedule: BspSchedule):
    """Compute the raw ``(S, P)`` work / send / receive matrices of a schedule.

    ``S`` is the number of superstep *indices* spanned (``max index + 1``);
    empty supersteps simply have all-zero rows.  Communication is taken from
    the schedule's effective Gamma (explicit if attached, lazy otherwise).
    """
    dag = schedule.dag
    machine = schedule.machine
    P = machine.P
    S = schedule.num_supersteps
    work = np.zeros((max(S, 1), P), dtype=np.float64)
    send = np.zeros((max(S, 1), P), dtype=np.float64)
    recv = np.zeros((max(S, 1), P), dtype=np.float64)
    if dag.n == 0:
        return work[:0], send[:0], recv[:0]

    np.add.at(work, (schedule.step, schedule.proc), dag.work.astype(np.float64))

    comm = schedule.effective_comm_schedule()
    if len(comm) > 0:
        entries = np.array(sorted(comm.entries), dtype=np.int64).reshape(-1, 4)
        keep = entries[:, 1] != entries[:, 2]
        ev, p1, p2, es = (entries[keep, k] for k in range(4))
        volume = dag.comm[ev].astype(np.float64) * machine.numa[p1, p2]
        np.add.at(send, (es, p1), volume)
        np.add.at(recv, (es, p2), volume)
    return work[:S], send[:S], recv[:S]


def superstep_row_costs(
    work: np.ndarray,
    send: np.ndarray,
    recv: np.ndarray,
    g: float,
    l: float,
) -> np.ndarray:
    """Per-superstep costs ``C(s) = w(s) + g * h(s) + l * occurs(s)``.

    ``work``/``send``/``recv`` are ``(k, P)`` blocks of superstep rows (any
    subset of rows, not necessarily the full schedule).  This is the single
    cost kernel shared by :func:`evaluate` and the incremental local-search
    state, so the cost formula lives in exactly one place.
    """
    if work.size == 0:
        return np.zeros(work.shape[0], dtype=np.float64)
    w = work.max(axis=1)
    h = np.maximum(send.max(axis=1), recv.max(axis=1))
    occurs = (
        (work.sum(axis=1) > OCCUPANCY_TOL)
        | (send.sum(axis=1) > OCCUPANCY_TOL)
        | (recv.sum(axis=1) > OCCUPANCY_TOL)
    )
    return w + float(g) * h + float(l) * occurs


def superstep_block_costs(blocks: np.ndarray, g: float, l: float) -> np.ndarray:
    """Per-superstep costs of a stacked ``(3, k, P)`` work/send/recv block.

    Identical (bitwise) to ``superstep_row_costs(blocks[0], blocks[1],
    blocks[2], g, l)``, but with the reductions fused across the three
    matrices — one max, one sum and one comparison instead of three of each
    — which matters on the local-search probe path where the blocks are tiny
    and per-call overhead dominates.  The formula itself is the same
    ``C(s) = w(s) + g * h(s) + l * occurs(s)``; this function and
    :func:`superstep_row_costs` are the only two places that spell it.
    """
    if blocks.size == 0:
        return np.zeros(blocks.shape[1], dtype=np.float64)
    mx = blocks.max(axis=2)
    occurs = (blocks.sum(axis=2) > OCCUPANCY_TOL).any(axis=0)
    return mx[0] + float(g) * np.maximum(mx[1], mx[2]) + float(l) * occurs


def evaluate(schedule: BspSchedule) -> CostBreakdown:
    """Evaluate the total BSP+NUMA cost of a schedule.

    The schedule does not have to be valid; validity is checked separately by
    :meth:`BspSchedule.validate`.  Latency is charged once per superstep that
    has any computation or communication.
    """
    machine = schedule.machine
    work, send, recv = superstep_matrices(schedule)
    S = work.shape[0]
    if S == 0:
        empty = np.zeros(0)
        return CostBreakdown(0.0, 0.0, 0.0, 0.0, 0, empty, empty, work, send, recv)

    work_per_step = work.max(axis=1)
    comm_per_step = np.maximum(send.max(axis=1), recv.max(axis=1))
    occurs = (work.sum(axis=1) > 0) | (send.sum(axis=1) > 0) | (recv.sum(axis=1) > 0)
    num_occurring = int(np.count_nonzero(occurs))

    work_cost = float(work_per_step.sum())
    comm_cost = float(machine.g) * float(comm_per_step.sum())
    latency_cost = float(machine.l) * num_occurring
    total = work_cost + comm_cost + latency_cost
    return CostBreakdown(
        total=total,
        work_cost=work_cost,
        comm_cost=comm_cost,
        latency_cost=latency_cost,
        num_supersteps=num_occurring,
        work_per_step=work_per_step,
        comm_per_step=comm_per_step,
        work_matrix=work,
        send_matrix=send,
        recv_matrix=recv,
    )
