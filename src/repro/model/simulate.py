"""Timeline simulation of a BSP schedule.

The cost function collapses each superstep into a single number; this module
expands a schedule into an explicit execution timeline — when each
computation phase and each communication phase of every superstep starts and
ends under the BSP timing assumptions — which is useful for visualization,
for sanity-checking the cost function (the makespan of the timeline equals
the total cost by construction of the model), and for exporting traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .cost import evaluate
from .schedule import BspSchedule

__all__ = ["PhaseInterval", "NodeExecution", "ScheduleTimeline", "simulate_timeline"]


@dataclass(frozen=True)
class PhaseInterval:
    """Start/end of one phase (computation or communication) of a superstep."""

    superstep: int
    kind: str  # "compute", "communicate" or "latency"
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class NodeExecution:
    """Execution interval of a single node on its processor."""

    node: int
    processor: int
    superstep: int
    start: float
    end: float


@dataclass
class ScheduleTimeline:
    """Explicit timeline of a BSP schedule."""

    phases: List[PhaseInterval]
    executions: List[NodeExecution]
    makespan: float

    def phases_of(self, superstep: int) -> List[PhaseInterval]:
        return [p for p in self.phases if p.superstep == superstep]

    def executions_on(self, processor: int) -> List[NodeExecution]:
        return sorted(
            (e for e in self.executions if e.processor == processor), key=lambda e: e.start
        )


def simulate_timeline(schedule: BspSchedule) -> ScheduleTimeline:
    """Expand a schedule into phase intervals and per-node execution intervals.

    Within a computation phase, the nodes assigned to a processor are
    executed back to back in topological order.  The phase lasts as long as
    the busiest processor (the work cost of the superstep); the communication
    phase lasts ``g`` times the h-relation; the latency is charged at the end
    of every occurring superstep.  The resulting makespan therefore equals
    the schedule's total cost.
    """
    breakdown = evaluate(schedule)
    dag = schedule.dag
    machine = schedule.machine
    S = breakdown.work_matrix.shape[0]

    topo_position = {v: i for i, v in enumerate(dag.topological_order())}
    phases: List[PhaseInterval] = []
    executions: List[NodeExecution] = []
    clock = 0.0

    for s in range(S):
        occurs = (
            breakdown.work_matrix[s].sum() > 0
            or breakdown.send_matrix[s].sum() > 0
            or breakdown.recv_matrix[s].sum() > 0
        )
        if not occurs:
            continue
        # Computation phase.
        work_duration = float(breakdown.work_per_step[s])
        if work_duration > 0:
            phases.append(PhaseInterval(s, "compute", clock, clock + work_duration))
        per_processor_cursor: Dict[int, float] = {p: clock for p in range(machine.P)}
        for v in sorted(schedule.nodes_in_superstep(s), key=lambda v: topo_position[v]):
            p = int(schedule.proc[v])
            start = per_processor_cursor[p]
            end = start + float(dag.work[v])
            per_processor_cursor[p] = end
            executions.append(NodeExecution(v, p, s, start, end))
        clock += work_duration
        # Communication phase.
        comm_duration = float(machine.g) * float(breakdown.comm_per_step[s])
        if comm_duration > 0:
            phases.append(PhaseInterval(s, "communicate", clock, clock + comm_duration))
            clock += comm_duration
        # Latency / synchronization overhead.
        if machine.l > 0:
            phases.append(PhaseInterval(s, "latency", clock, clock + float(machine.l)))
            clock += float(machine.l)

    return ScheduleTimeline(phases=phases, executions=executions, makespan=clock)
