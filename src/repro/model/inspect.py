"""Human-readable inspection of BSP schedules.

The cost function says *how good* a schedule is; these helpers show *what it
looks like*: a per-superstep summary (work per processor, h-relation, which
values cross processors) and a compact text "Gantt" view of the supersteps.
They are used by the CLI and the examples, and are handy when debugging a
scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .cost import evaluate
from .schedule import BspSchedule

__all__ = ["SuperstepSummary", "summarize_supersteps", "describe_schedule", "schedule_to_text_gantt"]


@dataclass(frozen=True)
class SuperstepSummary:
    """Aggregate view of one superstep of a schedule."""

    index: int
    nodes_per_processor: Dict[int, int]
    work_per_processor: Dict[int, float]
    work_cost: float
    comm_cost: float
    num_transfers: int

    @property
    def busiest_processor(self) -> int:
        if not self.work_per_processor:
            return 0
        return max(self.work_per_processor, key=lambda p: self.work_per_processor[p])


def summarize_supersteps(schedule: BspSchedule) -> List[SuperstepSummary]:
    """Per-superstep summaries (one entry per superstep index in use)."""
    breakdown = evaluate(schedule)
    S = breakdown.work_matrix.shape[0]
    comm = schedule.effective_comm_schedule()
    transfers_per_step: Dict[int, int] = {}
    for (_, p1, p2, s) in comm:
        if p1 != p2:
            transfers_per_step[s] = transfers_per_step.get(s, 0) + 1

    summaries: List[SuperstepSummary] = []
    for s in range(S):
        nodes: Dict[int, int] = {}
        work: Dict[int, float] = {}
        for v in schedule.nodes_in_superstep(s):
            p = int(schedule.proc[v])
            nodes[p] = nodes.get(p, 0) + 1
            work[p] = work.get(p, 0.0) + float(schedule.dag.work[v])
        summaries.append(
            SuperstepSummary(
                index=s,
                nodes_per_processor=nodes,
                work_per_processor=work,
                work_cost=float(breakdown.work_per_step[s]),
                comm_cost=float(breakdown.comm_per_step[s]),
                num_transfers=transfers_per_step.get(s, 0),
            )
        )
    return summaries


def describe_schedule(schedule: BspSchedule, name: str = "") -> str:
    """Multi-line text description of a schedule (cost breakdown + supersteps)."""
    breakdown = evaluate(schedule)
    machine = schedule.machine
    lines: List[str] = []
    title = name or f"schedule of {schedule.dag.name}"
    lines.append(f"{title}: {schedule.dag.n} nodes on {machine.describe()}")
    lines.append(
        f"  total cost {breakdown.total:.1f} = work {breakdown.work_cost:.1f}"
        f" + {machine.g:g} x comm {breakdown.comm_cost / machine.g if machine.g else 0.0:.1f}"
        f" + latency {breakdown.latency_cost:.1f}"
        f"  ({breakdown.num_supersteps} supersteps)"
    )
    for summary in summarize_supersteps(schedule):
        if not summary.nodes_per_processor and summary.comm_cost == 0:
            continue
        proc_bits = ", ".join(
            f"p{p}: {summary.nodes_per_processor[p]} nodes / {summary.work_per_processor[p]:.0f} work"
            for p in sorted(summary.nodes_per_processor)
        )
        lines.append(
            f"  superstep {summary.index}: work cost {summary.work_cost:.0f}, "
            f"h-relation {summary.comm_cost:.0f}, {summary.num_transfers} transfers"
            + (f"  [{proc_bits}]" if proc_bits else "")
        )
    return "\n".join(lines)


def schedule_to_text_gantt(schedule: BspSchedule, width: int = 40) -> str:
    """Compact text Gantt chart: one row per processor, one column block per
    superstep, block width proportional to that superstep's work cost."""
    breakdown = evaluate(schedule)
    S = breakdown.work_matrix.shape[0]
    P = schedule.machine.P
    if S == 0:
        return "(empty schedule)"
    total_work_cost = float(breakdown.work_per_step.sum()) or 1.0
    widths = [
        max(3, int(round(width * float(breakdown.work_per_step[s]) / total_work_cost)))
        for s in range(S)
    ]
    header = "      " + " ".join(f"s{s}".center(widths[s]) for s in range(S))
    rows = [header]
    for p in range(P):
        cells = []
        for s in range(S):
            load = breakdown.work_matrix[s, p]
            peak = breakdown.work_per_step[s]
            if load <= 0:
                fill = "."
            elif peak > 0 and load >= peak - 1e-9:
                fill = "#"  # this processor determines the superstep's work cost
            else:
                fill = "="
            cells.append((fill * widths[s])[: widths[s]])
        rows.append(f"p{p:<4} " + " ".join(cells))
    return "\n".join(rows)
