"""Communication schedules (the Gamma component of a BSP schedule).

A communication schedule is a set of 4-tuples ``(v, p_from, p_to, s)``
meaning "the output value of node ``v`` is sent from processor ``p_from`` to
processor ``p_to`` in the communication phase of superstep ``s``" (paper
Section 3.2).

Most of the heuristic schedulers in this package do not construct Gamma
explicitly; they rely on the *lazy* communication schedule in which every
required value is sent directly from the processor that computed it, in the
last possible communication phase (paper Appendix A).  The helpers here
materialize that lazy schedule and provide the bookkeeping shared by the
communication-scheduling optimizers (HCcs and ILPcs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set, Tuple

__all__ = ["CommEntry", "CommSchedule"]


CommEntry = Tuple[int, int, int, int]
"""A communication step ``(node, from_processor, to_processor, superstep)``."""


@dataclass
class CommSchedule:
    """A set of communication steps with convenience accessors."""

    entries: Set[CommEntry] = field(default_factory=set)

    def __post_init__(self) -> None:
        self.entries = {tuple(int(x) for x in e) for e in self.entries}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, v: int, p_from: int, p_to: int, step: int) -> None:
        """Add a communication step (idempotent)."""
        self.entries.add((int(v), int(p_from), int(p_to), int(step)))

    def remove(self, v: int, p_from: int, p_to: int, step: int) -> None:
        """Remove a communication step; raises ``KeyError`` if absent."""
        self.entries.remove((int(v), int(p_from), int(p_to), int(step)))

    def discard(self, v: int, p_from: int, p_to: int, step: int) -> None:
        """Remove a communication step if present."""
        self.entries.discard((int(v), int(p_from), int(p_to), int(step)))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[CommEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, entry: CommEntry) -> bool:
        return tuple(int(x) for x in entry) in self.entries

    def copy(self) -> "CommSchedule":
        return CommSchedule(set(self.entries))

    def max_step(self) -> int:
        """Largest superstep index used by any entry (-1 if empty)."""
        if not self.entries:
            return -1
        return max(e[3] for e in self.entries)

    def by_step(self) -> Dict[int, List[CommEntry]]:
        """Group entries by superstep."""
        out: Dict[int, List[CommEntry]] = {}
        for e in sorted(self.entries):
            out.setdefault(e[3], []).append(e)
        return out

    def entries_for_node(self, v: int) -> List[CommEntry]:
        """All entries sending the value of node ``v``."""
        return sorted(e for e in self.entries if e[0] == v)

    def targets_of(self, v: int) -> Set[int]:
        """Processors that (eventually) receive the value of ``v``."""
        return {e[2] for e in self.entries if e[0] == v}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CommSchedule):
            return NotImplemented
        return self.entries == other.entries

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CommSchedule({len(self.entries)} entries)"
