"""Classical (time-based) schedules and their conversion to BSP.

The Cilk, BL-EST and ETF baselines assign nodes to concrete start times on
processors, like classical makespan schedulers.  The paper (Section 4.1 and
Appendix A.1) converts such a schedule to a BSP schedule by inserting a
superstep barrier whenever a node is about to start that still needs data
from a different processor produced in the current (unfinished) superstep.

This module provides the :class:`ClassicalSchedule` container and the
:func:`classical_to_bsp` conversion used by those baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..graphs.dag import ComputationalDAG
from .machine import BspMachine
from .schedule import BspSchedule

__all__ = ["ClassicalSchedule", "classical_to_bsp"]


@dataclass
class ClassicalSchedule:
    """A schedule assigning each node a processor and a start time.

    ``finish[v] = start[v] + w(v)``; the makespan is the largest finish time.
    Validity in the classical sense (precedences respected with respect to
    the delays the constructing scheduler assumed) is the responsibility of
    the scheduler; the BSP conversion only uses the ordering of start times.
    """

    dag: ComputationalDAG
    machine: BspMachine
    proc: np.ndarray
    start: np.ndarray

    def __post_init__(self) -> None:
        self.proc = np.asarray(self.proc, dtype=np.int64).copy()
        self.start = np.asarray(self.start, dtype=np.float64).copy()
        if len(self.proc) != self.dag.n or len(self.start) != self.dag.n:
            raise ValueError("proc/start arrays must have one entry per node")

    @property
    def finish(self) -> np.ndarray:
        """Finish time of each node."""
        return self.start + self.dag.work.astype(np.float64)

    @property
    def makespan(self) -> float:
        """Largest finish time (0 for an empty DAG)."""
        if self.dag.n == 0:
            return 0.0
        return float(self.finish.max())

    def execution_order(self) -> List[int]:
        """Nodes sorted by (start time, topological position).

        Ties in start time are broken by topological order so that the BSP
        conversion below processes predecessors before successors.
        """
        topo_pos = {v: i for i, v in enumerate(self.dag.topological_order())}
        return sorted(range(self.dag.n), key=lambda v: (self.start[v], topo_pos[v]))

    def validate_processor_exclusivity(self) -> List[str]:
        """Check that no two nodes overlap in time on the same processor."""
        errors: List[str] = []
        fin = self.finish
        for p in range(self.machine.P):
            nodes = [v for v in range(self.dag.n) if self.proc[v] == p]
            nodes.sort(key=lambda v: self.start[v])
            for a, b in zip(nodes, nodes[1:]):
                if fin[a] > self.start[b] + 1e-9:
                    errors.append(
                        f"nodes {a} and {b} overlap on processor {p}: "
                        f"[{self.start[a]}, {fin[a]}) vs [{self.start[b]}, {fin[b]})"
                    )
        return errors


def classical_to_bsp(classical: ClassicalSchedule) -> BspSchedule:
    """Convert a classical schedule to a BSP schedule (paper Appendix A.1).

    Nodes are scanned in order of start time.  A node can join the current
    superstep unless one of its direct predecessors is assigned to a
    *different* processor and has not yet been placed in an *earlier*
    superstep — in that case a superstep barrier is inserted (so that the
    pending value can be communicated) and the node starts the next
    superstep.  The processor assignment is kept unchanged.
    """
    dag = classical.dag
    n = dag.n
    proc = classical.proc
    step = np.zeros(n, dtype=np.int64)
    if n == 0:
        return BspSchedule(dag, classical.machine, proc.copy(), step)

    assigned_step = np.full(n, -1, dtype=np.int64)
    current = 0
    for v in classical.execution_order():
        needs_barrier = False
        min_step = 0
        for u in dag.parents(v):
            su = assigned_step[u]
            if su == -1:
                # Predecessor not yet placed: cannot happen for a schedule
                # whose start times respect precedence, but guard anyway.
                needs_barrier = True
                continue
            if proc[u] != proc[v]:
                # Value must be communicated, i.e. cross a superstep barrier.
                if su >= current:
                    needs_barrier = True
                min_step = max(min_step, su + 1)
            else:
                min_step = max(min_step, su)
        if needs_barrier:
            current += 1
        current = max(current, min_step)
        assigned_step[v] = current

    step[:] = assigned_step
    return BspSchedule(dag, classical.machine, proc.copy(), step)
