"""BSP machine model with optional NUMA extension.

A machine (paper Sections 3.2 and 3.4) is described by:

* ``P``  — number of processors,
* ``g``  — time cost of sending a single unit of data,
* ``l``  — latency (fixed overhead) of every superstep,
* ``numa`` — an optional ``P x P`` matrix of per-pair communication cost
  coefficients ``lambda[p1, p2]``.  The uniform (non-NUMA) case corresponds
  to ``lambda[p1, p2] = 1`` for ``p1 != p2`` and ``0`` on the diagonal.

The paper's NUMA experiments use a binary-tree hierarchy over the processors
where the per-unit cost grows by a factor ``delta`` for every level of the
hierarchy that a message has to cross; :meth:`BspMachine.hierarchical`
constructs exactly that matrix.

The *memory-constrained* model variant additionally gives every processor a
memory bound: the total memory weight of the nodes co-resident on a
processor must not exceed its bound.  The optional ``memory_bound``
attribute (a scalar applied to every processor, or one value per processor)
carries that constraint; schedulers that are memory-aware consult it through
:attr:`BspMachine.memory_bounds`, and schedule validation enforces it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["BspMachine", "MachineValidationError", "MEMORY_EPS"]

#: Shared feasibility tolerance of the memory-constrained model: every layer
#: that compares memory usage against a bound (schedule validation, greedy
#: placement, local-search move filter, repair) uses this same epsilon, so a
#: placement admitted by one layer is never rejected by another.
MEMORY_EPS = 1e-9


class MachineValidationError(ValueError):
    """Raised for invalid machine descriptions."""


@dataclass
class BspMachine:
    """Description of the target architecture in the (NUMA-extended) BSP model."""

    P: int
    g: float = 1.0
    l: float = 0.0
    numa: Optional[np.ndarray] = None
    #: Per-processor memory bound of the memory-constrained model variant;
    #: ``None`` (the default) disables the constraint.  A scalar is broadcast
    #: to every processor; a sequence must have one entry per processor.
    memory_bound: Optional[object] = None

    def __post_init__(self) -> None:
        if self.P <= 0:
            raise MachineValidationError("P must be positive")
        if self.g < 0 or self.l < 0:
            raise MachineValidationError("g and l must be non-negative")
        if self.memory_bound is not None:
            bounds = np.asarray(self.memory_bound, dtype=np.float64)
            if bounds.ndim == 0:
                bounds = np.full(self.P, float(bounds))
            if bounds.shape != (self.P,):
                raise MachineValidationError(
                    "memory_bound must be a scalar or have one entry per processor "
                    f"(P={self.P}), got shape {bounds.shape}"
                )
            # Strictly positive so that 0 can unambiguously mean "unbounded"
            # in flat exports (MachineSpec.describe, sweep CSV columns).
            if not np.all(np.isfinite(bounds)) or np.any(bounds <= 0):
                raise MachineValidationError("memory bounds must be finite and positive")
            self.memory_bound = bounds
        if self.numa is None:
            numa = np.ones((self.P, self.P), dtype=np.float64)
            np.fill_diagonal(numa, 0.0)
            self.numa = numa
            self._uniform = True
        else:
            numa = np.asarray(self.numa, dtype=np.float64).copy()
            if numa.shape != (self.P, self.P):
                raise MachineValidationError(
                    f"NUMA matrix must be {self.P}x{self.P}, got {numa.shape}"
                )
            if np.any(numa < 0):
                raise MachineValidationError("NUMA coefficients must be non-negative")
            if np.any(np.diag(numa) != 0):
                raise MachineValidationError("NUMA diagonal (self-communication) must be 0")
            self.numa = numa
            off_diag = numa[~np.eye(self.P, dtype=bool)]
            self._uniform = bool(off_diag.size == 0 or np.all(off_diag == 1.0))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, P: int, g: float = 1.0, l: float = 0.0) -> "BspMachine":
        """Classic BSP machine with uniform inter-processor costs."""
        return cls(P=P, g=g, l=l)

    @classmethod
    def hierarchical(
        cls, P: int, delta: float, g: float = 1.0, l: float = 0.0
    ) -> "BspMachine":
        """Binary-tree NUMA hierarchy over ``P`` processors (paper Section 6).

        Processors are the leaves of a complete binary tree; the per-unit
        cost between two processors is ``delta ** (levels_crossed - 1)`` where
        ``levels_crossed`` is the height of their lowest common ancestor.
        With ``P = 8`` and ``delta = 3`` this gives ``lambda[0, 1] = 1``,
        ``lambda[0, 2] = lambda[0, 3] = 3`` and ``lambda[0, p] = 9`` for
        ``p in {4..7}``, matching the example in the paper.
        """
        if P < 1:
            raise MachineValidationError("P must be positive")
        if P & (P - 1) != 0:
            raise MachineValidationError("hierarchical machines require P to be a power of two")
        if delta <= 0:
            raise MachineValidationError("delta must be positive")
        numa = np.zeros((P, P), dtype=np.float64)
        for p1 in range(P):
            for p2 in range(P):
                if p1 == p2:
                    continue
                # Height of the lowest common ancestor in the binary tree
                # = position of the highest differing bit + 1.
                diff = p1 ^ p2
                level = diff.bit_length()  # >= 1
                numa[p1, p2] = float(delta) ** (level - 1)
        return cls(P=P, g=g, l=l, numa=numa)

    @classmethod
    def from_groups(
        cls,
        group_sizes: Sequence[int],
        intra: float = 1.0,
        inter: float = 4.0,
        g: float = 1.0,
        l: float = 0.0,
    ) -> "BspMachine":
        """Two-level NUMA machine: cheap within a group, expensive across.

        Useful for modelling multi-socket nodes (a coarser alternative to the
        binary-tree hierarchy).
        """
        P = int(sum(group_sizes))
        if P <= 0:
            raise MachineValidationError("total processor count must be positive")
        group = np.zeros(P, dtype=np.int64)
        idx = 0
        for gi, size in enumerate(group_sizes):
            if size <= 0:
                raise MachineValidationError("group sizes must be positive")
            group[idx : idx + size] = gi
            idx += size
        numa = np.where(group[:, None] == group[None, :], float(intra), float(inter))
        np.fill_diagonal(numa, 0.0)
        return cls(P=P, g=g, l=l, numa=numa)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_uniform(self) -> bool:
        """True if all off-diagonal NUMA coefficients equal 1 (plain BSP)."""
        return self._uniform

    @property
    def has_memory_bounds(self) -> bool:
        """True if the machine carries per-processor memory bounds."""
        return self.memory_bound is not None

    @property
    def memory_bounds(self) -> Optional[np.ndarray]:
        """Per-processor memory bounds as a float array, or ``None``."""
        return self.memory_bound

    def with_memory_bound(self, bound: Optional[object]) -> "BspMachine":
        """Copy of this machine with the memory bound replaced (``None`` clears)."""
        return BspMachine(
            P=self.P, g=self.g, l=self.l, numa=self.numa.copy(), memory_bound=bound
        )

    def without_memory_bound(self) -> "BspMachine":
        """Copy of this machine with no memory constraint."""
        return self.with_memory_bound(None)

    def coefficient(self, p1: int, p2: int) -> float:
        """Per-unit cost ``lambda[p1, p2]`` of sending data from p1 to p2."""
        return float(self.numa[p1, p2])

    def average_coefficient(self) -> float:
        """Average off-diagonal NUMA coefficient.

        The paper's BL-EST/ETF baselines use this average to estimate
        communication delays when NUMA effects are present (Appendix A.1).
        """
        if self.P == 1:
            return 0.0
        mask = ~np.eye(self.P, dtype=bool)
        return float(np.mean(self.numa[mask]))

    def max_coefficient(self) -> float:
        """Largest pairwise NUMA coefficient."""
        return float(np.max(self.numa))

    def with_parameters(
        self,
        *,
        g: Optional[float] = None,
        l: Optional[float] = None,
    ) -> "BspMachine":
        """Copy of this machine with ``g`` and/or ``l`` replaced."""
        return BspMachine(
            P=self.P,
            g=self.g if g is None else g,
            l=self.l if l is None else l,
            numa=self.numa.copy(),
            memory_bound=None if self.memory_bound is None else self.memory_bound.copy(),
        )

    def describe(self) -> str:
        """One-line human readable summary."""
        kind = "uniform" if self.is_uniform else "NUMA"
        mem = ""
        if self.memory_bound is not None:
            bounds = self.memory_bound
            if np.all(bounds == bounds[0]):
                mem = f", mem<={bounds[0]:g}"
            else:
                mem = f", mem<=[{', '.join(f'{b:g}' for b in bounds)}]"
        return f"BspMachine(P={self.P}, g={self.g}, l={self.l}, {kind}{mem})"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return self.describe()
