"""BSP schedules: node-to-(processor, superstep) assignment plus Gamma.

A BSP schedule (paper Section 3.2) consists of

* ``pi``  — assignment of nodes to processors (``proc`` array here),
* ``tau`` — assignment of nodes to supersteps (``step`` array here),
* ``Gamma`` — the communication schedule, a set of ``(v, p1, p2, s)`` steps.

Heuristic schedulers typically produce only ``pi``/``tau`` and rely on the
*lazy* communication schedule (every value sent directly from its producer in
the last possible communication phase); :meth:`BspSchedule.lazy_comm_schedule`
derives it.  The communication-schedule optimizers (HCcs, ILPcs) attach an
explicit, optimized Gamma instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.dag import ComputationalDAG
from .comm import CommSchedule
from .machine import MEMORY_EPS, BspMachine

__all__ = ["BspSchedule", "ScheduleValidationError", "legalize_superstep_assignment"]


def legalize_superstep_assignment(
    dag: ComputationalDAG, proc: np.ndarray, step: np.ndarray
) -> np.ndarray:
    """Return the smallest superstep assignment >= ``step`` that is valid.

    Given a fixed processor assignment, a superstep assignment combined with
    the lazy communication schedule is valid iff for every edge ``(u, v)``
    we have ``step[u] <= step[v]`` when both endpoints share a processor and
    ``step[u] < step[v]`` otherwise.  This pass raises supersteps in
    topological order until both conditions hold; it never lowers a step.
    Several schedulers (HDagg wavefront repair, multilevel projection) use it
    as a final legalization step.
    """
    out = np.asarray(step, dtype=np.int64).copy()
    proc = np.asarray(proc, dtype=np.int64)
    for v in dag.topological_order():
        parents = dag.predecessors_array(v)
        if parents.size == 0:
            continue
        required = int(np.max(out[parents] + (proc[parents] != proc[v])))
        if out[v] < required:
            out[v] = required
    return out


class ScheduleValidationError(ValueError):
    """Raised when a schedule violates the BSP validity conditions."""


@dataclass
class BspSchedule:
    """A (possibly partial-Gamma) BSP schedule of a DAG on a machine."""

    dag: ComputationalDAG
    machine: BspMachine
    proc: np.ndarray
    step: np.ndarray
    comm: Optional[CommSchedule] = None

    def __post_init__(self) -> None:
        self.proc = np.asarray(self.proc, dtype=np.int64).copy()
        self.step = np.asarray(self.step, dtype=np.int64).copy()
        if len(self.proc) != self.dag.n or len(self.step) != self.dag.n:
            raise ScheduleValidationError("proc/step arrays must have one entry per node")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def trivial(cls, dag: ComputationalDAG, machine: BspMachine) -> "BspSchedule":
        """The trivial schedule: every node on processor 0 in superstep 0.

        The paper uses this as the sanity baseline in communication-dominated
        settings (Section 7.3): a sequential execution with a single
        superstep and no communication at all.
        """
        return cls(
            dag=dag,
            machine=machine,
            proc=np.zeros(dag.n, dtype=np.int64),
            step=np.zeros(dag.n, dtype=np.int64),
        )

    @classmethod
    def from_assignment(
        cls,
        dag: ComputationalDAG,
        machine: BspMachine,
        proc: Sequence[int],
        step: Sequence[int],
        comm: Optional[CommSchedule] = None,
    ) -> "BspSchedule":
        """Build a schedule from explicit assignment arrays."""
        return cls(dag=dag, machine=machine, proc=np.asarray(proc), step=np.asarray(step), comm=comm)

    def copy(self) -> "BspSchedule":
        return BspSchedule(
            dag=self.dag,
            machine=self.machine,
            proc=self.proc.copy(),
            step=self.step.copy(),
            comm=self.comm.copy() if self.comm is not None else None,
        )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_supersteps(self) -> int:
        """Number of supersteps spanned by the schedule (computation and
        communication phases included)."""
        if self.dag.n == 0:
            return 0
        last = int(self.step.max()) if self.dag.n else -1
        if self.comm is not None and len(self.comm) > 0:
            last = max(last, self.comm.max_step())
        return last + 1

    def nodes_in_superstep(self, s: int) -> List[int]:
        """Nodes whose computation is assigned to superstep ``s``."""
        return [v for v in range(self.dag.n) if self.step[v] == s]

    def nodes_on_processor(self, p: int) -> List[int]:
        """Nodes assigned to processor ``p``."""
        return [v for v in range(self.dag.n) if self.proc[v] == p]

    def assignment(self, v: int) -> Tuple[int, int]:
        """``(processor, superstep)`` of node ``v``."""
        return int(self.proc[v]), int(self.step[v])

    def memory_usage(self) -> np.ndarray:
        """Total memory weight of the nodes co-resident on each processor."""
        if self.dag.n == 0:
            return np.zeros(self.machine.P, dtype=np.float64)
        return np.bincount(
            self.proc,
            weights=np.asarray(self.dag.memory, dtype=np.float64),
            minlength=self.machine.P,
        )

    # ------------------------------------------------------------------
    # Communication handling
    # ------------------------------------------------------------------
    def required_transfers(self) -> Dict[Tuple[int, int], int]:
        """Values that must cross processors, with their deadline superstep.

        Returns a dict mapping ``(node u, target processor p)`` to the first
        superstep in which some successor of ``u`` assigned to ``p`` is
        computed.  The value of ``u`` must therefore arrive at ``p`` in the
        communication phase of some *earlier* superstep.
        """
        needed: Dict[Tuple[int, int], int] = {}
        if self.dag.num_edges == 0:
            return needed
        # Vectorized extraction of the cross-processor edges; the python
        # fold below only sees those (usually a small fraction of all edges)
        # and preserves the first-occurrence ordering of the edge list.
        eu, ev = self.dag.edge_sources, self.dag.edge_targets
        cross = self.proc[eu] != self.proc[ev]
        if not np.any(cross):
            return needed
        for u, q, sv in zip(
            eu[cross].tolist(),
            self.proc[ev[cross]].tolist(),
            self.step[ev[cross]].tolist(),
        ):
            key = (u, q)
            prev = needed.get(key)
            if prev is None or sv < prev:
                needed[key] = sv
        return needed

    def lazy_comm_schedule(self) -> CommSchedule:
        """The lazy Gamma: each required value sent directly from its
        producer in the last possible communication phase (deadline - 1)."""
        comm = CommSchedule()
        for (u, p_target), first_needed in self.required_transfers().items():
            comm.add(u, int(self.proc[u]), p_target, first_needed - 1)
        return comm

    def effective_comm_schedule(self) -> CommSchedule:
        """The explicit Gamma if attached, otherwise the lazy one."""
        if self.comm is not None:
            return self.comm
        return self.lazy_comm_schedule()

    def with_lazy_comm(self) -> "BspSchedule":
        """Copy of the schedule with the lazy Gamma attached explicitly."""
        out = self.copy()
        out.comm = self.lazy_comm_schedule()
        return out

    def without_comm(self) -> "BspSchedule":
        """Copy with the explicit Gamma dropped (revert to implicit lazy)."""
        out = self.copy()
        out.comm = None
        return out

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validation_errors(self) -> List[str]:
        """Check the BSP validity conditions; return a list of violations.

        An empty list means the schedule is valid.  The two conditions from
        paper Section 3.2 are checked, using the effective (explicit or lazy)
        communication schedule:

        1. for every edge ``(u, v)``: if both endpoints are on the same
           processor then ``tau(u) <= tau(v)``; otherwise the value of ``u``
           must be delivered to ``proc(v)`` strictly before superstep
           ``tau(v)``;
        2. every communication step must send a value that is actually
           present on the sending processor at that time (either computed
           there early enough or received by an earlier communication step);
        3. when the machine carries per-processor memory bounds (the
           memory-constrained model variant), the total memory weight of the
           nodes co-resident on each processor must not exceed its bound.
        """
        errors: List[str] = []
        P = self.machine.P
        n = self.dag.n
        if n == 0:
            return errors
        if np.any(self.proc < 0) or np.any(self.proc >= P):
            errors.append("processor assignment out of range")
            return errors
        if np.any(self.step < 0):
            errors.append("negative superstep assignment")
            return errors

        bounds = self.machine.memory_bounds
        if bounds is not None:
            usage = self.memory_usage()
            for p in np.nonzero(usage > bounds + MEMORY_EPS)[0]:
                errors.append(
                    f"memory bound exceeded on processor {int(p)}: "
                    f"{usage[p]:g} > {bounds[p]:g}"
                )

        comm = self.effective_comm_schedule()

        # presence[v] = dict processor -> earliest superstep at whose *end*
        # (i.e. after its communication phase) the value of v is available
        # there.  The producer has it available from its own compute step.
        available: Dict[int, Dict[int, int]] = {v: {} for v in range(n)}
        for v in range(n):
            available[v][int(self.proc[v])] = int(self.step[v])

        # Process communication entries in superstep order and check their
        # own validity while building up availability.
        for (v, p1, p2, s) in sorted(comm, key=lambda e: e[3]):
            if not (0 <= v < n) or not (0 <= p1 < P) or not (0 <= p2 < P):
                errors.append(f"communication entry {(v, p1, p2, s)} out of range")
                continue
            if s < 0:
                errors.append(f"communication entry {(v, p1, p2, s)} has negative superstep")
                continue
            src_avail = available[v].get(p1)
            # The value can be sent from p1 in superstep s if it was computed
            # on p1 in superstep <= s, or received on p1 in a superstep < s.
            ok = False
            if p1 == int(self.proc[v]) and int(self.step[v]) <= s:
                ok = True
            elif src_avail is not None and src_avail < s:
                ok = True
            if not ok:
                errors.append(
                    f"communication entry {(v, p1, p2, s)} sends a value not present on "
                    f"processor {p1} at superstep {s}"
                )
            prev = available[v].get(p2)
            if prev is None or s < prev:
                available[v][p2] = s

        # Precedence constraints.
        for (u, v) in self.dag.edges:
            pu, pv = int(self.proc[u]), int(self.proc[v])
            su, sv = int(self.step[u]), int(self.step[v])
            if pu == pv:
                if su > sv:
                    errors.append(
                        f"edge ({u}, {v}) violated: both on processor {pu} but "
                        f"tau({u})={su} > tau({v})={sv}"
                    )
            else:
                arrival = available[u].get(pv)
                if arrival is None or arrival >= sv:
                    errors.append(
                        f"edge ({u}, {v}) violated: value of {u} not delivered to "
                        f"processor {pv} before superstep {sv}"
                    )
        return errors

    def is_valid(self) -> bool:
        """True iff the schedule satisfies all BSP validity conditions."""
        return not self.validation_errors()

    def validate(self) -> None:
        """Raise :class:`ScheduleValidationError` if the schedule is invalid."""
        errors = self.validation_errors()
        if errors:
            raise ScheduleValidationError("; ".join(errors[:5]))

    # ------------------------------------------------------------------
    # Cost (delegates to repro.model.cost)
    # ------------------------------------------------------------------
    def cost(self) -> float:
        """Total BSP+NUMA cost of the schedule (paper Section 3.3)."""
        from .cost import evaluate

        return evaluate(self).total

    def cost_breakdown(self):
        """Full per-superstep cost breakdown (see :mod:`repro.model.cost`)."""
        from .cost import evaluate

        return evaluate(self)

    # ------------------------------------------------------------------
    # Normalization helpers
    # ------------------------------------------------------------------
    def normalized(self) -> "BspSchedule":
        """Copy with empty supersteps removed (step indices compacted).

        Local search can empty out a superstep entirely; compacting keeps the
        latency term consistent with the number of supersteps that actually
        occur.  Comm entries are shifted accordingly.
        """
        used = set(int(s) for s in self.step)
        comm = self.effective_comm_schedule() if self.comm is not None else None
        if comm is not None:
            used.update(e[3] for e in comm)
        order = sorted(used)
        remap = {s: i for i, s in enumerate(order)}
        new_step = np.array([remap[int(s)] for s in self.step], dtype=np.int64)
        new_comm = None
        if comm is not None:
            new_comm = CommSchedule()
            for (v, p1, p2, s) in comm:
                new_comm.add(v, p1, p2, remap[s])
        return BspSchedule(self.dag, self.machine, self.proc.copy(), new_step, new_comm)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"BspSchedule(n={self.dag.n}, P={self.machine.P}, "
            f"supersteps={self.num_supersteps}, "
            f"comm={'explicit' if self.comm is not None else 'lazy'})"
        )
