"""Shared ILP formulation of (windows of) the BSP scheduling problem.

This module contains the variable/constraint generator shared by the three
ILP-based methods of the paper:

* ``ILPfull``  — the whole problem as one ILP (every node free, every
  superstep in the window),
* ``ILPpart``  — re-optimization of the nodes currently assigned to a
  contiguous superstep interval, with the rest of the schedule fixed,
* ``ILPinit``  — batch-by-batch construction, where each batch is optimized
  inside a small window of fresh supersteps.

Variables (following the FS formulation of Papp et al. [28] with the
simplifications described in the paper's Appendix A.4):

* ``comp[v, p, s]``  — node ``v`` is computed on processor ``p`` in
  superstep ``s`` (binary), for every *free* node,
* ``pres[v, p, s]``  — the value of free node ``v`` is present on ``p`` at
  the end of superstep ``s`` (binary),
* ``comm[v, p1, p2, s]`` — the value of free node ``v`` is sent from ``p1``
  to ``p2`` in the communication phase of ``s`` (binary),
* ``bcomm[u, p, s]`` — the value of *boundary* node ``u`` (a predecessor of
  a free node computed before the window) is sent from its fixed processor
  to ``p`` in phase ``s`` (binary),
* ``W[s]`` / ``H[s]`` — continuous upper bounds on the work and h-relation
  cost of superstep ``s``,
* ``used[s]`` — superstep ``s`` carries computation (binary, latency term).

The extracted result is a (pi, tau) assignment for the free nodes; the
final schedule is rebuilt with the *lazy* communication schedule and its
exact cost is evaluated by the caller, so an approximate objective inside
the ILP can never produce an invalid or mis-costed schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..graphs.dag import ComputationalDAG
from ..model.machine import BspMachine
from ..model.schedule import BspSchedule
from .model import IlpModel
from .solver import SolverResult

__all__ = ["BspIlpFormulation", "build_bsp_ilp", "estimate_variable_count"]


def estimate_variable_count(num_free_nodes: int, num_supersteps: int, P: int) -> int:
    """The paper's rule-of-thumb estimate ``|V0| * |S0| * P^2`` of the ILP size."""
    return num_free_nodes * num_supersteps * P * P


@dataclass
class BspIlpFormulation:
    """A built ILP plus the index maps needed to extract a schedule."""

    model: IlpModel
    dag: ComputationalDAG
    machine: BspMachine
    free_nodes: List[int]
    s_first: int
    s_last: int
    comp: Dict[Tuple[int, int, int], int] = field(default_factory=dict)
    pres: Dict[Tuple[int, int, int], int] = field(default_factory=dict)
    comm: Dict[Tuple[int, int, int, int], int] = field(default_factory=dict)
    bcomm: Dict[Tuple[int, int, int], int] = field(default_factory=dict)
    base_proc: Optional[np.ndarray] = None
    base_step: Optional[np.ndarray] = None

    @property
    def supersteps(self) -> range:
        return range(self.s_first, self.s_last + 1)

    # ------------------------------------------------------------------
    def extract_assignment(self, result: SolverResult) -> Tuple[np.ndarray, np.ndarray]:
        """Read the (proc, step) arrays out of a solver result.

        Nodes outside ``free_nodes`` keep their base assignment.  Raises
        ``ValueError`` if the solution does not assign every free node
        exactly once (which the constraints rule out for feasible results).
        """
        if not result.has_solution:
            raise ValueError("solver result carries no solution")
        n = self.dag.n
        if self.base_proc is not None:
            proc = self.base_proc.copy()
            step = self.base_step.copy()
        else:
            proc = np.zeros(n, dtype=np.int64)
            step = np.zeros(n, dtype=np.int64)
        assigned: Set[int] = set()
        for (v, p, s), idx in self.comp.items():
            if result.binary_value(idx):
                if v in assigned:
                    raise ValueError(f"node {v} assigned more than once in ILP solution")
                assigned.add(v)
                proc[v] = p
                step[v] = s
        missing = set(self.free_nodes) - assigned
        if missing:
            raise ValueError(f"ILP solution left nodes unassigned: {sorted(missing)[:5]}")
        return proc, step

    def extract_schedule(self, result: SolverResult) -> BspSchedule:
        """Full BSP schedule (with lazy communication) from a solver result."""
        proc, step = self.extract_assignment(result)
        return BspSchedule(self.dag, self.machine, proc, step)


def build_bsp_ilp(
    dag: ComputationalDAG,
    machine: BspMachine,
    *,
    free_nodes: Optional[Iterable[int]] = None,
    s_first: int = 0,
    s_last: Optional[int] = None,
    base_proc: Optional[np.ndarray] = None,
    base_step: Optional[np.ndarray] = None,
    include_latency: bool = True,
    background_consumers: bool = True,
    name: str = "bsp-ilp",
) -> BspIlpFormulation:
    """Build the (window) ILP formulation of the BSP scheduling problem.

    Parameters
    ----------
    free_nodes:
        Nodes to (re)assign.  Defaults to all nodes (the ``ILPfull`` case).
    s_first, s_last:
        Superstep window the free nodes may be assigned to.  ``s_last``
        defaults to a safe bound (one superstep per DAG level).
    base_proc, base_step:
        Fixed assignment of the non-free nodes (required whenever
        ``free_nodes`` is not the full node set).
    include_latency:
        Whether to add the per-superstep latency term to the objective.
    background_consumers:
        Whether to add the fixed communication load caused by transfers
        between non-free nodes whose (lazy) phase falls into the window.
    """
    P = machine.P
    g = float(machine.g)
    latency = float(machine.l)
    numa = machine.numa
    n = dag.n

    if free_nodes is None:
        free = list(range(n))
    else:
        free = sorted(set(int(v) for v in free_nodes))
    free_set = set(free)
    if len(free_set) != n and (base_proc is None or base_step is None):
        raise ValueError("a base assignment is required when only a subset of nodes is free")
    if s_last is None:
        s_last = s_first + max(dag.depth(), 1) - 1
    if s_last < s_first:
        raise ValueError("empty superstep window")

    model = IlpModel(name=name)
    form = BspIlpFormulation(
        model=model,
        dag=dag,
        machine=machine,
        free_nodes=free,
        s_first=s_first,
        s_last=s_last,
        base_proc=None if base_proc is None else np.asarray(base_proc, dtype=np.int64).copy(),
        base_step=None if base_step is None else np.asarray(base_step, dtype=np.int64).copy(),
    )
    steps = list(range(s_first, s_last + 1))
    # Communication phases available to the window: the phase right before
    # the window (if any) plus every phase inside the window.
    comm_phases = list(range(max(s_first - 1, 0), s_last + 1))

    # ------------------------------------------------------------------
    # Boundary predecessors: non-free predecessors of free nodes.
    # ------------------------------------------------------------------
    boundary: List[int] = []
    avail0: Dict[int, Set[int]] = {}
    if len(free_set) != n:
        assert form.base_proc is not None and form.base_step is not None
        for v in free:
            for u in dag.parents(v):
                if u not in free_set and u not in avail0:
                    boundary.append(u)
                    procs = {int(form.base_proc[u])}
                    # Processors that already received u's value before the
                    # window (via the lazy schedule of the base assignment).
                    for w in dag.children(u):
                        if w in free_set:
                            continue
                        if int(form.base_step[w]) < s_first and int(form.base_proc[w]) != int(
                            form.base_proc[u]
                        ):
                            procs.add(int(form.base_proc[w]))
                    avail0[u] = procs

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    for v in free:
        for p in range(P):
            for s in steps:
                form.comp[(v, p, s)] = model.add_binary(f"comp[{v},{p},{s}]")
                form.pres[(v, p, s)] = model.add_binary(f"pres[{v},{p},{s}]")
            for p2 in range(P):
                if p2 == p:
                    continue
                for s in steps:
                    form.comm[(v, p, p2, s)] = model.add_binary(f"comm[{v},{p},{p2},{s}]")
    for u in boundary:
        src = int(form.base_proc[u])
        for p in range(P):
            if p == src:
                continue
            for s in comm_phases:
                form.bcomm[(u, p, s)] = model.add_binary(f"bcomm[{u},{p},{s}]")

    work_var = {s: model.add_continuous(f"W[{s}]") for s in steps}
    h_var = {s: model.add_continuous(f"H[{s}]") for s in comm_phases}
    used_var = {}
    if include_latency and latency > 0:
        for s in steps:
            used_var[s] = model.add_binary(f"used[{s}]")

    # ------------------------------------------------------------------
    # Background communication load from fixed-to-fixed transfers whose lazy
    # phase falls inside the window (treated as constants, like the paper).
    # ------------------------------------------------------------------
    bg_send = {(s, p): 0.0 for s in comm_phases for p in range(P)}
    bg_recv = {(s, p): 0.0 for s in comm_phases for p in range(P)}
    if background_consumers and len(free_set) != n:
        needed: Dict[Tuple[int, int], int] = {}
        for (u, w) in dag.edges:
            if u in free_set or w in free_set:
                continue
            pu, pw = int(form.base_proc[u]), int(form.base_proc[w])
            if pu == pw:
                continue
            key = (u, pw)
            sw = int(form.base_step[w])
            if key not in needed or sw < needed[key]:
                needed[key] = sw
        for (u, p_target), first_need in needed.items():
            phase = first_need - 1
            if phase in h_var:
                pu = int(form.base_proc[u])
                volume = float(dag.comm[u]) * float(numa[pu, p_target])
                bg_send[(phase, pu)] += volume
                bg_recv[(phase, p_target)] += volume

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------
    # (1) every free node computed exactly once
    for v in free:
        model.add_eq(
            {form.comp[(v, p, s)]: 1.0 for p in range(P) for s in steps},
            1.0,
            name=f"assign[{v}]",
        )

    # (2) precedence constraints
    for v in free:
        for u in dag.parents(v):
            if u in free_set:
                for p in range(P):
                    for s in steps:
                        coeffs = {form.comp[(v, p, s)]: 1.0}
                        for s2 in steps:
                            if s2 <= s:
                                coeffs[form.comp[(u, p, s2)]] = coeffs.get(form.comp[(u, p, s2)], 0.0) - 1.0
                        if s - 1 >= s_first:
                            coeffs[form.pres[(u, p, s - 1)]] = -1.0
                        model.add_le(coeffs, 0.0, name=f"prec[{u}->{v},{p},{s}]")
            else:
                src = int(form.base_proc[u])
                for p in range(P):
                    if p in avail0[u]:
                        continue  # value already available on p: no constraint
                    for s in steps:
                        coeffs = {form.comp[(v, p, s)]: 1.0}
                        for s2 in comm_phases:
                            if s2 <= s - 1:
                                idx = form.bcomm.get((u, p, s2))
                                if idx is not None:
                                    coeffs[idx] = coeffs.get(idx, 0.0) - 1.0
                        model.add_le(coeffs, 0.0, name=f"bprec[{u}->{v},{p},{s}]")

    # (3) presence of free values
    for v in free:
        for p in range(P):
            for s in steps:
                coeffs = {form.pres[(v, p, s)]: 1.0}
                for s2 in steps:
                    if s2 <= s:
                        coeffs[form.comp[(v, p, s2)]] = coeffs.get(form.comp[(v, p, s2)], 0.0) - 1.0
                if s - 1 >= s_first:
                    coeffs[form.pres[(v, p, s - 1)]] = -1.0
                for p1 in range(P):
                    if p1 == p:
                        continue
                    coeffs[form.comm[(v, p1, p, s)]] = -1.0
                model.add_le(coeffs, 0.0, name=f"pres[{v},{p},{s}]")

    # (4) a free value can only be sent from a processor that has it
    for v in free:
        for p1 in range(P):
            for p2 in range(P):
                if p1 == p2:
                    continue
                for s in steps:
                    coeffs = {form.comm[(v, p1, p2, s)]: 1.0}
                    for s2 in steps:
                        if s2 <= s:
                            coeffs[form.comp[(v, p1, s2)]] = coeffs.get(form.comp[(v, p1, s2)], 0.0) - 1.0
                    if s - 1 >= s_first:
                        coeffs[form.pres[(v, p1, s - 1)]] = -1.0
                    model.add_le(coeffs, 0.0, name=f"commsrc[{v},{p1},{p2},{s}]")

    # (5) work cost bounds
    for s in steps:
        for p in range(P):
            coeffs = {form.comp[(v, p, s)]: float(dag.work[v]) for v in free}
            coeffs[work_var[s]] = -1.0
            model.add_le(coeffs, 0.0, name=f"work[{s},{p}]")

    # (6) h-relation bounds (send and receive, NUMA-weighted)
    for s in comm_phases:
        for p in range(P):
            send_coeffs: Dict[int, float] = {}
            recv_coeffs: Dict[int, float] = {}
            for v in free:
                if s in steps:
                    for p2 in range(P):
                        if p2 == p:
                            continue
                        send_coeffs[form.comm[(v, p, p2, s)]] = float(dag.comm[v]) * float(numa[p, p2])
                        recv_coeffs[form.comm[(v, p2, p, s)]] = float(dag.comm[v]) * float(numa[p2, p])
            for u in boundary:
                src = int(form.base_proc[u])
                for p2 in range(P):
                    if p2 == src:
                        continue
                    idx = form.bcomm.get((u, p2, s))
                    if idx is None:
                        continue
                    vol = float(dag.comm[u]) * float(numa[src, p2])
                    if p == src:
                        send_coeffs[idx] = send_coeffs.get(idx, 0.0) + vol
                    if p == p2:
                        recv_coeffs[idx] = recv_coeffs.get(idx, 0.0) + vol
            send_coeffs[h_var[s]] = -1.0
            recv_coeffs[h_var[s]] = -1.0
            model.add_le(send_coeffs, -bg_send[(s, p)], name=f"send[{s},{p}]")
            model.add_le(recv_coeffs, -bg_recv[(s, p)], name=f"recv[{s},{p}]")

    # (7) latency / superstep usage
    if used_var:
        for s in steps:
            coeffs = {form.comp[(v, p, s)]: 1.0 for v in free for p in range(P)}
            coeffs[used_var[s]] = -float(len(free))
            model.add_le(coeffs, 0.0, name=f"used[{s}]")
        # Push used supersteps to the front of the window (symmetry breaking).
        ordered = sorted(used_var)
        for a, b in zip(ordered, ordered[1:]):
            model.add_le({used_var[b]: 1.0, used_var[a]: -1.0}, 0.0, name=f"usedorder[{a},{b}]")

    # ------------------------------------------------------------------
    # Objective
    # ------------------------------------------------------------------
    for s in steps:
        model.add_objective_term(work_var[s], 1.0)
    for s in comm_phases:
        model.add_objective_term(h_var[s], g)
    for s, idx in used_var.items():
        model.add_objective_term(idx, latency)

    return form
