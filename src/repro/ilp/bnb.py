"""Pure-Python branch-and-bound MILP solver (fallback backend).

Solves small mixed-integer programs by LP-relaxation branch and bound, using
``scipy.optimize.linprog`` (HiGHS simplex/IPM) for the relaxations.  It is
*not* meant to compete with a real MILP solver — it exists so that

* the package keeps working if ``scipy.optimize.milp`` is unavailable, and
* the formulations can be cross-checked against an independent solver in the
  test suite.

Best-first search on the relaxation bound, branching on the most fractional
integer variable.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import List, Optional, Tuple

import numpy as np

from .model import IlpModel
from .solver import SolverResult, SolverStatus

__all__ = ["solve_branch_and_bound"]

_INT_TOL = 1e-6


def _solve_relaxation(model: IlpModel, lb: np.ndarray, ub: np.ndarray):
    """LP relaxation with the given variable bounds; returns (obj, x) or None."""
    from scipy.optimize import linprog

    c, A, c_lb, c_ub, _, _, _ = model.to_arrays()
    # linprog wants A_ub x <= b_ub and A_eq x = b_eq; split two-sided rows.
    import scipy.sparse as sp

    A = sp.csr_matrix(A)
    ub_rows = []
    ub_rhs = []
    eq_rows = []
    eq_rhs = []
    for r in range(A.shape[0]):
        row = A.getrow(r)
        lo, hi = c_lb[r], c_ub[r]
        if np.isfinite(lo) and np.isfinite(hi) and lo == hi:
            eq_rows.append(row)
            eq_rhs.append(lo)
            continue
        if np.isfinite(hi):
            ub_rows.append(row)
            ub_rhs.append(hi)
        if np.isfinite(lo):
            ub_rows.append(-row)
            ub_rhs.append(-lo)
    A_ub = sp.vstack(ub_rows) if ub_rows else None
    A_eq = sp.vstack(eq_rows) if eq_rows else None
    bounds = list(zip(lb.tolist(), [x if np.isfinite(x) else None for x in ub.tolist()]))
    res = linprog(
        c,
        A_ub=A_ub,
        b_ub=np.array(ub_rhs) if ub_rhs else None,
        A_eq=A_eq,
        b_eq=np.array(eq_rhs) if eq_rhs else None,
        bounds=bounds,
        method="highs",
    )
    if not res.success:
        return None
    return float(res.fun), np.asarray(res.x)


def solve_branch_and_bound(
    model: IlpModel,
    time_limit: Optional[float] = None,
    max_nodes: int = 20_000,
) -> SolverResult:
    """Best-first branch and bound over the LP relaxation."""
    n = model.num_variables
    lb0 = np.array(model.var_lb, dtype=np.float64)
    ub0 = np.array(model.var_ub, dtype=np.float64)
    integer_vars = [i for i in range(n) if model.var_integer[i]]

    start = time.monotonic()
    counter = itertools.count()

    root = _solve_relaxation(model, lb0, ub0)
    if root is None:
        return SolverResult(SolverStatus.INFEASIBLE, None, None)

    best_obj = np.inf
    best_x: Optional[np.ndarray] = None
    # heap of (relaxation bound, tie-breaker, lb, ub)
    heap: List[Tuple[float, int, np.ndarray, np.ndarray]] = [
        (root[0], next(counter), lb0, ub0)
    ]
    nodes_explored = 0
    timed_out = False

    while heap:
        if time_limit is not None and time.monotonic() - start > time_limit:
            timed_out = True
            break
        if nodes_explored >= max_nodes:
            timed_out = True
            break
        bound, _, lb, ub = heapq.heappop(heap)
        if bound >= best_obj - 1e-9:
            continue
        relax = _solve_relaxation(model, lb, ub)
        nodes_explored += 1
        if relax is None:
            continue
        obj, x = relax
        if obj >= best_obj - 1e-9:
            continue
        # Find the most fractional integer variable.
        frac_var = -1
        frac_dist = _INT_TOL
        for i in integer_vars:
            frac = abs(x[i] - round(x[i]))
            if frac > frac_dist:
                frac_dist = frac
                frac_var = i
        if frac_var == -1:
            # Integral solution.
            if obj < best_obj:
                best_obj = obj
                best_x = x.copy()
                for i in integer_vars:
                    best_x[i] = round(best_x[i])
            continue
        floor_val = np.floor(x[frac_var])
        # Down branch.
        ub_down = ub.copy()
        ub_down[frac_var] = floor_val
        if ub_down[frac_var] >= lb[frac_var]:
            heapq.heappush(heap, (obj, next(counter), lb.copy(), ub_down))
        # Up branch.
        lb_up = lb.copy()
        lb_up[frac_var] = floor_val + 1
        if lb_up[frac_var] <= ub[frac_var]:
            heapq.heappush(heap, (obj, next(counter), lb_up, ub.copy()))

    if best_x is None:
        if timed_out:
            return SolverResult(SolverStatus.NO_SOLUTION, None, None)
        return SolverResult(SolverStatus.INFEASIBLE, None, None)
    status = SolverStatus.FEASIBLE if (timed_out or heap) else SolverStatus.OPTIMAL
    return SolverResult(status, best_obj + model.objective_constant, best_x)
