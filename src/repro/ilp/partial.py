"""ILPpart: iterative re-optimization of superstep windows (paper 4.4).

Given a starting BSP schedule, the range of supersteps is split (from back
to front) into disjoint intervals; the interval grows until the estimated
ILP size ``|V0| * |S0| * P^2`` exceeds a configurable threshold (4 000 in the
paper).  For each interval, the nodes currently assigned to it are
re-assigned by a window ILP (see :mod:`repro.ilp.formulation`) while the
rest of the schedule is fixed; the re-assignment is accepted only if the
resulting schedule — rebuilt with the lazy communication schedule and
evaluated with the exact cost function — is valid and strictly cheaper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..model.schedule import BspSchedule
from .formulation import build_bsp_ilp, estimate_variable_count
from .solver import solve

__all__ = ["PartialIlpImprover", "superstep_windows"]


def superstep_windows(
    schedule: BspSchedule, P: int, max_variables: int = 4000
) -> List[Tuple[int, int]]:
    """Split the schedule's supersteps into windows, back to front.

    Each window ``[s1, s2]`` is grown (towards earlier supersteps) while the
    estimated number of ILP variables stays below ``max_variables``; a window
    always contains at least one superstep.
    """
    S = schedule.num_supersteps
    if S == 0:
        return []
    nodes_per_step = np.zeros(S, dtype=np.int64)
    for v in range(schedule.dag.n):
        nodes_per_step[int(schedule.step[v])] += 1

    windows: List[Tuple[int, int]] = []
    s2 = S - 1
    while s2 >= 0:
        s1 = s2
        nodes = int(nodes_per_step[s2])
        while s1 - 1 >= 0:
            cand_nodes = nodes + int(nodes_per_step[s1 - 1])
            cand_steps = s2 - (s1 - 1) + 1
            # A window always contains at least one superstep; it stops
            # growing once the size estimate would be exceeded.
            if estimate_variable_count(cand_nodes, cand_steps, P) > max_variables:
                break
            s1 -= 1
            nodes = cand_nodes
        windows.append((s1, s2))
        s2 = s1 - 1
    return windows


@dataclass
class PartialIlpImprover:
    """Iteratively re-optimize superstep windows of a schedule."""

    max_variables: int = 4000
    time_limit_per_window: Optional[float] = 20.0
    backend: str = "highs"
    name: str = "ILPpart"

    def improve(self, schedule: BspSchedule) -> BspSchedule:
        """Return the improved schedule (never worse than the input)."""
        current = schedule.normalized().without_comm()
        P = current.machine.P
        for (s1, s2) in superstep_windows(current, P, self.max_variables):
            free_nodes = [
                v for v in range(current.dag.n) if s1 <= int(current.step[v]) <= s2
            ]
            if not free_nodes:
                continue
            form = build_bsp_ilp(
                current.dag,
                current.machine,
                free_nodes=free_nodes,
                s_first=s1,
                s_last=s2,
                base_proc=current.proc,
                base_step=current.step,
                name=f"ILPpart[{s1},{s2}]",
            )
            result = solve(form.model, time_limit=self.time_limit_per_window, backend=self.backend)
            if not result.has_solution:
                continue
            try:
                proc, step = form.extract_assignment(result)
            except ValueError:
                continue
            candidate = BspSchedule(current.dag, current.machine, proc, step)
            if candidate.is_valid() and candidate.cost() < current.cost():
                current = candidate
        return current.normalized()
