"""MILP solver backends.

The paper uses the open-source CBC solver with per-call time limits; this
reproduction substitutes SciPy's bundled HiGHS MILP solver
(``scipy.optimize.milp``) and a pure-Python branch-and-bound fallback
(:mod:`repro.ilp.bnb`).  Both are driven through :func:`solve`, which
normalizes the result into a :class:`SolverResult`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .model import IlpModel

__all__ = ["SolverStatus", "SolverResult", "solve", "solve_with_highs"]


class SolverStatus(enum.Enum):
    """Normalized solver outcome."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # a solution was found but optimality not proven
    INFEASIBLE = "infeasible"
    NO_SOLUTION = "no_solution"  # time/size limit hit before any solution


@dataclass
class SolverResult:
    """Outcome of a MILP solve."""

    status: SolverStatus
    objective: Optional[float]
    values: Optional[np.ndarray]

    @property
    def has_solution(self) -> bool:
        return self.values is not None

    def value(self, index: int) -> float:
        """Value of variable ``index`` (requires a solution)."""
        if self.values is None:
            raise ValueError("solver returned no solution")
        return float(self.values[index])

    def binary_value(self, index: int) -> bool:
        """Rounded 0/1 value of a binary variable."""
        return self.value(index) > 0.5


def solve_with_highs(
    model: IlpModel,
    time_limit: Optional[float] = None,
    mip_rel_gap: Optional[float] = None,
) -> SolverResult:
    """Solve with ``scipy.optimize.milp`` (HiGHS)."""
    from scipy.optimize import Bounds, LinearConstraint, milp

    c, A, c_lb, c_ub, b_lb, b_ub, integrality = model.to_arrays()
    constraints = LinearConstraint(A, c_lb, c_ub) if model.num_constraints else ()
    options = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    if mip_rel_gap is not None:
        options["mip_rel_gap"] = float(mip_rel_gap)
    options["disp"] = False
    res = milp(
        c=c,
        constraints=constraints,
        integrality=integrality,
        bounds=Bounds(b_lb, b_ub),
        options=options,
    )
    # HiGHS status codes (scipy): 0 optimal, 1 iteration/time limit,
    # 2 infeasible, 3 unbounded, 4 other.
    if res.x is not None:
        status = SolverStatus.OPTIMAL if res.status == 0 else SolverStatus.FEASIBLE
        return SolverResult(status, float(res.fun) + model.objective_constant, np.asarray(res.x))
    if res.status == 2:
        return SolverResult(SolverStatus.INFEASIBLE, None, None)
    return SolverResult(SolverStatus.NO_SOLUTION, None, None)


def solve(
    model: IlpModel,
    time_limit: Optional[float] = None,
    mip_rel_gap: Optional[float] = None,
    backend: str = "highs",
) -> SolverResult:
    """Solve a model with the requested backend (``"highs"`` or ``"bnb"``).

    The branch-and-bound backend exists to keep the package functional where
    SciPy's HiGHS wrapper is unavailable and to cross-check the formulations
    in tests; it is only suitable for small models.
    """
    if backend == "highs":
        try:
            return solve_with_highs(model, time_limit=time_limit, mip_rel_gap=mip_rel_gap)
        except ImportError:  # pragma: no cover - environment without scipy.milp
            backend = "bnb"
    if backend == "bnb":
        from .bnb import solve_branch_and_bound

        return solve_branch_and_bound(model, time_limit=time_limit)
    raise ValueError(f"unknown solver backend {backend!r}")
