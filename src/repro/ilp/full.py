"""ILPfull: the whole BSP scheduling problem as a single ILP (paper 4.4).

This is the naive formulation of [28] (their FS submodel) with the paper's
small simplifications.  It only scales to very small DAGs — the paper caps
it at roughly 20 000 variables — but on those it produces (near-)optimal
schedules and is the strongest tool in the framework.
"""

from __future__ import annotations

from typing import Optional

from ..graphs.dag import ComputationalDAG
from ..model.machine import BspMachine
from ..model.schedule import BspSchedule
from ..scheduler import Scheduler
from .formulation import build_bsp_ilp, estimate_variable_count
from .solver import solve

__all__ = ["IlpFullScheduler", "solve_full_ilp"]

#: The paper only attempts ILPfull below roughly this many variables.
DEFAULT_MAX_VARIABLES = 20_000


def solve_full_ilp(
    dag: ComputationalDAG,
    machine: BspMachine,
    max_supersteps: int,
    *,
    time_limit: Optional[float] = None,
    backend: str = "highs",
) -> Optional[BspSchedule]:
    """Solve the full problem with at most ``max_supersteps`` supersteps.

    Returns ``None`` when the solver finds no feasible solution within the
    limits.  The returned schedule uses the lazy communication schedule
    derived from the ILP's node assignment.
    """
    form = build_bsp_ilp(
        dag,
        machine,
        s_first=0,
        s_last=max(max_supersteps, 1) - 1,
        name="ILPfull",
    )
    result = solve(form.model, time_limit=time_limit, backend=backend)
    if not result.has_solution:
        return None
    schedule = form.extract_schedule(result)
    schedule.validate()
    return schedule


class IlpFullScheduler(Scheduler):
    """Scheduler wrapper around :func:`solve_full_ilp`.

    The number of supersteps made available to the ILP is taken from an
    initial schedule (produced by ``initializer``), mirroring how the paper
    seeds the solver with a heuristic solution.  If the estimated variable
    count exceeds ``max_variables`` the initial schedule is returned
    unchanged (ILPfull "not applicable", as in the paper's pipeline).
    """

    name = "ILPfull"

    def __init__(
        self,
        initializer: Optional[Scheduler] = None,
        *,
        time_limit: Optional[float] = 60.0,
        max_variables: int = DEFAULT_MAX_VARIABLES,
        backend: str = "highs",
    ) -> None:
        if initializer is None:
            from ..heuristics.bspg import BspGreedyScheduler

            initializer = BspGreedyScheduler()
        self.initializer = initializer
        self.time_limit = time_limit
        self.max_variables = max_variables
        self.backend = backend

    def applicable(self, dag: ComputationalDAG, machine: BspMachine, num_supersteps: int) -> bool:
        """Whether the estimated ILP size is within the configured limit."""
        return estimate_variable_count(dag.n, num_supersteps, machine.P) <= self.max_variables

    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        initial = self.initializer.schedule(dag, machine)
        num_supersteps = max(initial.num_supersteps, 1)
        if not self.applicable(dag, machine, num_supersteps):
            return initial
        solved = solve_full_ilp(
            dag,
            machine,
            num_supersteps,
            time_limit=self.time_limit,
            backend=self.backend,
        )
        if solved is None:
            return initial
        # Keep whichever schedule is cheaper: the ILP window is bounded by
        # the initial schedule's superstep count, so the heuristic can in
        # principle still win.
        if solved.cost() <= initial.cost():
            return solved
        return initial
