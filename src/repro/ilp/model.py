"""A small mixed-integer linear programming modelling layer.

The paper formulates (parts of) the BSP scheduling problem as ILPs and hands
them to the CBC solver.  CBC is not available offline, so this repository
ships its own thin modelling layer which compiles to ``scipy.optimize.milp``
(the HiGHS solver bundled with SciPy) and, for very small models and for
testing, to a pure-Python branch-and-bound solver
(:mod:`repro.ilp.bnb`).

The layer is deliberately minimal: variables are referenced by integer
index, constraints are sparse row dictionaries ``{var_index: coefficient}``
with lower/upper bounds, and the objective is a sparse vector.  This is all
the BSP formulations need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["IlpModel", "Constraint", "INF"]

INF = float("inf")


@dataclass
class Constraint:
    """A linear constraint ``lb <= sum(coeffs[i] * x[i]) <= ub``."""

    coeffs: Dict[int, float]
    lb: float
    ub: float
    name: str = ""


@dataclass
class IlpModel:
    """A minimization MILP built incrementally by the formulations."""

    name: str = "model"
    var_names: List[str] = field(default_factory=list)
    var_lb: List[float] = field(default_factory=list)
    var_ub: List[float] = field(default_factory=list)
    var_integer: List[bool] = field(default_factory=list)
    constraints: List[Constraint] = field(default_factory=list)
    objective: Dict[int, float] = field(default_factory=dict)
    objective_constant: float = 0.0

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return len(self.var_names)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def add_variable(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = INF,
        integer: bool = False,
    ) -> int:
        """Add a variable and return its index."""
        if ub < lb:
            raise ValueError(f"variable {name}: upper bound below lower bound")
        self.var_names.append(name)
        self.var_lb.append(float(lb))
        self.var_ub.append(float(ub))
        self.var_integer.append(bool(integer))
        return len(self.var_names) - 1

    def add_binary(self, name: str) -> int:
        """Add a binary (0/1) variable and return its index."""
        return self.add_variable(name, 0.0, 1.0, integer=True)

    def add_continuous(self, name: str, lb: float = 0.0, ub: float = INF) -> int:
        """Add a continuous variable and return its index."""
        return self.add_variable(name, lb, ub, integer=False)

    # ------------------------------------------------------------------
    # Constraints and objective
    # ------------------------------------------------------------------
    def add_constraint(
        self,
        coeffs: Dict[int, float],
        lb: float = -INF,
        ub: float = INF,
        name: str = "",
    ) -> None:
        """Add ``lb <= coeffs . x <= ub``; zero-coefficient terms are dropped."""
        cleaned = {int(i): float(c) for i, c in coeffs.items() if c != 0.0}
        for i in cleaned:
            if not (0 <= i < self.num_variables):
                raise IndexError(f"constraint {name!r} references unknown variable {i}")
        self.constraints.append(Constraint(cleaned, float(lb), float(ub), name))

    def add_le(self, coeffs: Dict[int, float], rhs: float, name: str = "") -> None:
        """Add ``coeffs . x <= rhs``."""
        self.add_constraint(coeffs, -INF, rhs, name)

    def add_ge(self, coeffs: Dict[int, float], rhs: float, name: str = "") -> None:
        """Add ``coeffs . x >= rhs``."""
        self.add_constraint(coeffs, rhs, INF, name)

    def add_eq(self, coeffs: Dict[int, float], rhs: float, name: str = "") -> None:
        """Add ``coeffs . x == rhs``."""
        self.add_constraint(coeffs, rhs, rhs, name)

    def set_objective(self, coeffs: Dict[int, float], constant: float = 0.0) -> None:
        """Set the minimization objective ``coeffs . x + constant``."""
        self.objective = {int(i): float(c) for i, c in coeffs.items() if c != 0.0}
        self.objective_constant = float(constant)

    def add_objective_term(self, var: int, coeff: float) -> None:
        """Accumulate a term into the objective."""
        if coeff == 0.0:
            return
        self.objective[var] = self.objective.get(var, 0.0) + float(coeff)

    # ------------------------------------------------------------------
    # Compilation to array form (used by the solver backends)
    # ------------------------------------------------------------------
    def to_arrays(self):
        """Return ``(c, A, c_lb, c_ub, bounds_lb, bounds_ub, integrality)``.

        ``A`` is a dense ``(m, n)`` matrix when small and a
        ``scipy.sparse.csr_matrix`` otherwise; both are accepted by
        ``scipy.optimize.milp``.
        """
        import scipy.sparse as sp

        n = self.num_variables
        m = self.num_constraints
        c = np.zeros(n, dtype=np.float64)
        for i, coeff in self.objective.items():
            c[i] = coeff
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        c_lb = np.full(m, -np.inf)
        c_ub = np.full(m, np.inf)
        for r, cons in enumerate(self.constraints):
            c_lb[r] = cons.lb
            c_ub[r] = cons.ub
            for i, coeff in cons.coeffs.items():
                rows.append(r)
                cols.append(i)
                data.append(coeff)
        A = sp.csr_matrix((data, (rows, cols)), shape=(m, n))
        bounds_lb = np.array(self.var_lb, dtype=np.float64)
        bounds_ub = np.array(self.var_ub, dtype=np.float64)
        integrality = np.array([1 if b else 0 for b in self.var_integer], dtype=np.int64)
        return c, A, c_lb, c_ub, bounds_lb, bounds_ub, integrality

    def constraint_violations(self, x: Sequence[float], tol: float = 1e-6) -> List[str]:
        """List of constraints violated by an assignment (for tests/debugging)."""
        x = np.asarray(x, dtype=np.float64)
        violations: List[str] = []
        for cons in self.constraints:
            value = sum(coeff * x[i] for i, coeff in cons.coeffs.items())
            if value < cons.lb - tol or value > cons.ub + tol:
                violations.append(
                    f"{cons.name or 'constraint'}: value {value} outside [{cons.lb}, {cons.ub}]"
                )
        return violations

    def objective_value(self, x: Sequence[float]) -> float:
        """Objective value of an assignment (including the constant term)."""
        x = np.asarray(x, dtype=np.float64)
        return float(sum(coeff * x[i] for i, coeff in self.objective.items()) + self.objective_constant)
