"""ILPcs: ILP for the communication scheduling subproblem (paper 4.4).

With the node assignment (pi, tau) fixed, the remaining freedom is the
superstep in which each required cross-processor transfer is performed.
Each transfer of a value ``u`` to a processor ``q`` may happen in any
communication phase between ``tau(u)`` and one phase before its first
consumer on ``q``; the ILP chooses the phases so that the sum of h-relation
costs is minimized.  Like the paper's formulation (and HCcs), values are
always sent directly from the processor that computed them.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..model.comm import CommSchedule
from ..model.schedule import BspSchedule
from .model import IlpModel
from .solver import solve

__all__ = ["solve_comm_schedule_ilp", "CommScheduleIlpImprover"]


def solve_comm_schedule_ilp(
    schedule: BspSchedule,
    *,
    time_limit: Optional[float] = None,
    backend: str = "highs",
) -> Optional[BspSchedule]:
    """Optimize Gamma for a fixed (pi, tau); returns ``None`` if no solution.

    The returned schedule carries an explicit, optimized communication
    schedule; its (pi, tau) assignment is unchanged.
    """
    machine = schedule.machine
    dag = schedule.dag
    P = machine.P
    g = float(machine.g)
    numa = machine.numa
    S = schedule.num_supersteps

    transfers = schedule.required_transfers()
    if not transfers:
        # Nothing to optimize: attach an (empty) explicit schedule.
        out = schedule.copy()
        out.comm = CommSchedule()
        return out

    model = IlpModel(name="ILPcs")
    x: Dict[Tuple[int, int, int], int] = {}
    windows: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for (u, q), first_need in transfers.items():
        lo = int(schedule.step[u])
        hi = first_need - 1
        windows[(u, q)] = (lo, hi)
        for s in range(lo, hi + 1):
            x[(u, q, s)] = model.add_binary(f"x[{u},{q},{s}]")

    h_var = {s: model.add_continuous(f"H[{s}]") for s in range(S)}

    # Every transfer happens exactly once inside its window.
    for (u, q), (lo, hi) in windows.items():
        model.add_eq({x[(u, q, s)]: 1.0 for s in range(lo, hi + 1)}, 1.0, name=f"once[{u},{q}]")

    # h-relation bounds per superstep and processor (send and receive).
    for s in range(S):
        send: Dict[int, Dict[int, float]] = {p: {} for p in range(P)}
        recv: Dict[int, Dict[int, float]] = {p: {} for p in range(P)}
        for (u, q), (lo, hi) in windows.items():
            if not (lo <= s <= hi):
                continue
            p_from = int(schedule.proc[u])
            vol = float(dag.comm[u]) * float(numa[p_from, q])
            send[p_from][x[(u, q, s)]] = send[p_from].get(x[(u, q, s)], 0.0) + vol
            recv[q][x[(u, q, s)]] = recv[q].get(x[(u, q, s)], 0.0) + vol
        for p in range(P):
            if send[p]:
                coeffs = dict(send[p])
                coeffs[h_var[s]] = -1.0
                model.add_le(coeffs, 0.0, name=f"send[{s},{p}]")
            if recv[p]:
                coeffs = dict(recv[p])
                coeffs[h_var[s]] = -1.0
                model.add_le(coeffs, 0.0, name=f"recv[{s},{p}]")

    for s in range(S):
        model.add_objective_term(h_var[s], g)

    result = solve(model, time_limit=time_limit, backend=backend)
    if not result.has_solution:
        return None

    comm = CommSchedule()
    for (u, q, s), idx in x.items():
        if result.binary_value(idx):
            comm.add(u, int(schedule.proc[u]), q, s)
    out = schedule.copy()
    out.comm = comm
    return out


class CommScheduleIlpImprover:
    """Improver wrapper: returns the input schedule if the ILP does not help."""

    name = "ILPcs"

    def __init__(self, time_limit: Optional[float] = 30.0, backend: str = "highs") -> None:
        self.time_limit = time_limit
        self.backend = backend

    def improve(self, schedule: BspSchedule) -> BspSchedule:
        improved = solve_comm_schedule_ilp(
            schedule, time_limit=self.time_limit, backend=self.backend
        )
        if improved is None:
            return schedule
        if improved.cost() <= schedule.cost():
            return improved
        return schedule
