"""ILP-based scheduling methods (paper Section 4.4) and the MILP layer."""

from .bnb import solve_branch_and_bound
from .commsched import CommScheduleIlpImprover, solve_comm_schedule_ilp
from .formulation import BspIlpFormulation, build_bsp_ilp, estimate_variable_count
from .full import IlpFullScheduler, solve_full_ilp
from .init import IlpInitScheduler, topological_batches
from .model import INF, Constraint, IlpModel
from .partial import PartialIlpImprover, superstep_windows
from .solver import SolverResult, SolverStatus, solve, solve_with_highs

__all__ = [
    "IlpModel",
    "Constraint",
    "INF",
    "solve",
    "solve_with_highs",
    "solve_branch_and_bound",
    "SolverResult",
    "SolverStatus",
    "BspIlpFormulation",
    "build_bsp_ilp",
    "estimate_variable_count",
    "IlpFullScheduler",
    "solve_full_ilp",
    "CommScheduleIlpImprover",
    "solve_comm_schedule_ilp",
    "PartialIlpImprover",
    "superstep_windows",
    "IlpInitScheduler",
    "topological_batches",
]
