"""ILPinit: ILP-based construction of an initial schedule (paper 4.2 / A.4).

The DAG is cut into batches along a topological order; every batch is given
a small window of fresh supersteps and optimized with the shared window ILP
(:mod:`repro.ilp.formulation`), with all previously placed batches fixed and
the not-yet-placed successors disregarded.  The batch size grows until the
estimated ILP size ``|B| * |S0| * P^2`` reaches a threshold (2 000 in the
paper).

Compared to the paper's description this reproduction assigns each batch a
*fresh* window of ``supersteps_per_batch`` supersteps instead of overlapping
the tail of the existing schedule; the subsequent hill-climbing stage of the
pipeline compacts any superfluous supersteps.  The resulting schedule is
valid by construction (batch windows are disjoint and ordered).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..graphs.dag import ComputationalDAG
from ..model.machine import BspMachine
from ..model.schedule import BspSchedule
from ..scheduler import Scheduler, SchedulingError
from .formulation import build_bsp_ilp, estimate_variable_count
from .solver import solve

__all__ = ["IlpInitScheduler", "topological_batches"]


def topological_batches(
    dag: ComputationalDAG, P: int, max_variables: int = 2000, supersteps_per_batch: int = 3
) -> List[List[int]]:
    """Cut a topological order into batches sized for the window ILP."""
    order = dag.topological_order()
    batches: List[List[int]] = []
    current: List[int] = []
    for v in order:
        current.append(v)
        if estimate_variable_count(len(current) + 1, supersteps_per_batch, P) > max_variables:
            batches.append(current)
            current = []
    if current:
        batches.append(current)
    return batches


class IlpInitScheduler(Scheduler):
    """Batch-by-batch ILP construction of an initial BSP schedule."""

    name = "ILPinit"

    def __init__(
        self,
        *,
        max_variables: int = 2000,
        supersteps_per_batch: int = 3,
        time_limit_per_batch: Optional[float] = 15.0,
        backend: str = "highs",
    ) -> None:
        if supersteps_per_batch < 1:
            raise ValueError("supersteps_per_batch must be at least 1")
        self.max_variables = max_variables
        self.supersteps_per_batch = supersteps_per_batch
        self.time_limit_per_batch = time_limit_per_batch
        self.backend = backend

    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        n = dag.n
        P = machine.P
        proc = np.zeros(n, dtype=np.int64)
        step = np.zeros(n, dtype=np.int64)
        if n == 0:
            return BspSchedule(dag, machine, proc, step)

        placed = np.zeros(n, dtype=bool)
        batches = topological_batches(dag, P, self.max_variables, self.supersteps_per_batch)
        base = 0
        for batch in batches:
            s_first = base
            s_last = base + self.supersteps_per_batch - 1
            form = build_bsp_ilp(
                dag,
                machine,
                free_nodes=batch,
                s_first=s_first,
                s_last=s_last,
                base_proc=proc,
                base_step=step,
                background_consumers=False,
                name=f"ILPinit[{s_first},{s_last}]",
            )
            result = solve(form.model, time_limit=self.time_limit_per_batch, backend=self.backend)
            if result.has_solution:
                try:
                    new_proc, new_step = form.extract_assignment(result)
                    for v in batch:
                        proc[v] = new_proc[v]
                        step[v] = new_step[v]
                        placed[v] = True
                except ValueError:
                    result = None  # fall through to the greedy fallback below
            if not result or not result.has_solution:
                # Fallback: place the whole batch sequentially on the least
                # used processor of the window (always valid).
                for v in batch:
                    proc[v] = 0
                    step[v] = s_first
                    placed[v] = True
            base = s_last + 1

        if not placed.all():
            raise SchedulingError("ILPinit failed to place every node")
        schedule = BspSchedule(dag, machine, proc, step)
        return schedule.normalized()
