"""Simulated annealing on top of the hill-climbing move set.

The paper notes (Section 8) that its HC method is a deliberately simple
prototype and names "more complex local search techniques that also attempt
to escape local minima" as a natural extension.  This module provides that
extension: the same single-node move neighbourhood as HC, explored with the
Metropolis acceptance rule and a geometric cooling schedule, always tracking
the best schedule seen.

The result is never worse than the starting schedule (the best-seen schedule
is returned), and every intermediate state is a valid BSP schedule because
only validity-preserving moves are ever applied.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..model.schedule import BspSchedule
from ..obs import trace as _trace
from .state import LocalSearchState

__all__ = ["SimulatedAnnealingResult", "simulated_annealing", "SimulatedAnnealingImprover"]


@dataclass
class SimulatedAnnealingResult:
    """Outcome of a simulated annealing run."""

    schedule: BspSchedule
    initial_cost: float
    final_cost: float
    moves_evaluated: int
    moves_accepted: int

    @property
    def improvement(self) -> float:
        if self.initial_cost <= 0:
            return 0.0
        return 1.0 - self.final_cost / self.initial_cost


def simulated_annealing(
    schedule: BspSchedule,
    *,
    initial_temperature: Optional[float] = None,
    cooling: float = 0.995,
    steps: int = 2000,
    time_limit: Optional[float] = None,
    seed: Optional[int] = 0,
) -> SimulatedAnnealingResult:
    """Anneal a schedule using the HC move neighbourhood.

    Parameters
    ----------
    initial_temperature:
        Starting temperature; defaults to 2% of the initial cost, so that
        early on, moves that worsen the schedule by a few percent are still
        accepted with reasonable probability.
    cooling:
        Geometric cooling factor applied after every step.
    steps:
        Number of proposed moves.
    """
    if not (0.0 < cooling <= 1.0):
        raise ValueError("cooling must be in (0, 1]")
    if steps < 0:
        raise ValueError("steps must be non-negative")
    with _trace.span(
        "simulated_annealing", nodes=schedule.dag.n, steps=steps, cooling=cooling
    ) as tspan:
        return _simulated_annealing(
            schedule,
            initial_temperature=initial_temperature,
            cooling=cooling,
            steps=steps,
            time_limit=time_limit,
            seed=seed,
            tspan=tspan,
        )


def _simulated_annealing(
    schedule: BspSchedule,
    *,
    initial_temperature: Optional[float],
    cooling: float,
    steps: int,
    time_limit: Optional[float],
    seed: Optional[int],
    tspan: "_trace.SpanLike",
) -> SimulatedAnnealingResult:
    state = LocalSearchState(schedule)
    rng = np.random.default_rng(seed)
    initial_cost = float(state.total_cost)
    best_proc = state.proc.copy()
    best_step = state.step.copy()
    best_cost = initial_cost

    temperature = initial_temperature if initial_temperature is not None else max(initial_cost * 0.02, 1.0)
    start = time.monotonic()
    evaluated = 0
    accepted = 0
    n = state.dag.n

    for step_index in range(steps if n > 0 else 0):
        if time_limit is not None and time.monotonic() - start > time_limit:
            break
        v = int(rng.integers(n))
        moves = state.candidate_moves(v)
        if not moves:
            continue
        _, p, s = moves[int(rng.integers(len(moves)))]
        delta = state.move_delta(v, p, s)
        evaluated += 1
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
            new_cost = state.apply_move(v, p, s)
            accepted += 1
            if new_cost < best_cost - 1e-12:
                best_cost = float(new_cost)
                best_proc = state.proc.copy()
                best_step = state.step.copy()
                if _trace.enabled():
                    # Convergence telemetry: sample the best-seen curve at
                    # each improvement.  Never touches the RNG stream.
                    tspan.event(
                        "improvement",
                        step=step_index,
                        cost=best_cost,
                        evaluated=evaluated,
                        accepted=accepted,
                    )
        temperature *= cooling

    best = BspSchedule(schedule.dag, schedule.machine, best_proc, best_step).normalized()
    result = SimulatedAnnealingResult(
        schedule=best,
        initial_cost=initial_cost,
        final_cost=float(best.cost()),
        moves_evaluated=evaluated,
        moves_accepted=accepted,
    )
    if _trace.enabled():
        tspan.annotate(
            initial_cost=result.initial_cost,
            final_cost=result.final_cost,
            evaluated=evaluated,
            accepted=accepted,
            engine_transactions=state.engine.transactions,
        )
    return result


class SimulatedAnnealingImprover:
    """Improver wrapper so annealing can replace HC in custom pipelines."""

    name = "SA"

    def __init__(
        self,
        steps: int = 2000,
        cooling: float = 0.995,
        initial_temperature: Optional[float] = None,
        time_limit: Optional[float] = None,
        seed: Optional[int] = 0,
    ) -> None:
        self.steps = steps
        self.cooling = cooling
        self.initial_temperature = initial_temperature
        self.time_limit = time_limit
        self.seed = seed

    def improve(self, schedule: BspSchedule) -> BspSchedule:
        """Return the annealed schedule (never worse than the input)."""
        result = simulated_annealing(
            schedule,
            steps=self.steps,
            cooling=self.cooling,
            initial_temperature=self.initial_temperature,
            time_limit=self.time_limit,
            seed=self.seed,
        )
        if result.final_cost <= schedule.cost():
            return result.schedule
        return schedule
