"""Local search methods: hill climbing (paper Section 4.3) and simulated annealing."""

from .annealing import (
    SimulatedAnnealingImprover,
    SimulatedAnnealingResult,
    simulated_annealing,
)
from .comm_hill_climbing import (
    CommHillClimbingResult,
    CommScheduleImprover,
    CommScheduleState,
    comm_hill_climb,
)
from .hill_climbing import HillClimbingImprover, HillClimbingResult, hill_climb
from .schedulers import (
    CommHillClimbingScheduler,
    HillClimbingScheduler,
    SimulatedAnnealingScheduler,
)
from .state import LocalSearchState, Move

__all__ = [
    "HillClimbingScheduler",
    "SimulatedAnnealingScheduler",
    "CommHillClimbingScheduler",
    "simulated_annealing",
    "SimulatedAnnealingResult",
    "SimulatedAnnealingImprover",
    "LocalSearchState",
    "Move",
    "hill_climb",
    "HillClimbingResult",
    "HillClimbingImprover",
    "comm_hill_climb",
    "CommHillClimbingResult",
    "CommScheduleImprover",
    "CommScheduleState",
]
