"""HCcs: hill climbing on the communication schedule (paper Section 4.3).

With the node assignment (pi, tau) fixed, the only remaining freedom is
*when* each required cross-processor value transfer happens.  Every required
transfer of a value ``u`` to a processor ``q`` may be scheduled in any
communication phase between ``tau(u)`` (the superstep in which the value is
produced) and ``first_need - 1`` (the last phase before the first consumer
on ``q`` runs); HCcs moves one transfer at a time to a different phase in
that window whenever this lowers the total h-relation cost.

Like the paper's implementation, transfers are always sent directly from the
producing processor (no relaying through third processors).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..model.comm import CommSchedule
from ..model.schedule import BspSchedule

__all__ = ["CommScheduleState", "CommHillClimbingResult", "comm_hill_climb", "CommScheduleImprover"]

_EPS = 1e-9


class CommScheduleState:
    """Incremental h-relation cost state for the communication subproblem.

    Like :class:`~repro.localsearch.state.LocalSearchState`, the state lives
    in flat numpy ``(S, P)`` send / receive matrices with a per-superstep
    cost vector on top; construction and refresh are vectorized.
    """

    def __init__(self, schedule: BspSchedule) -> None:
        self.schedule = schedule
        self.dag = schedule.dag
        self.machine = schedule.machine
        self.P = self.machine.P
        self.g = float(self.machine.g)
        self.numa = self.machine.numa
        self._numa_list = np.asarray(self.numa, dtype=np.float64).tolist()
        self._comm_list = np.asarray(self.dag.comm, dtype=np.float64).tolist()
        self._proc_list = np.asarray(schedule.proc, dtype=np.int64).tolist()
        self.S = schedule.num_supersteps

        # Required transfers with their allowed window [tau(u), first_need - 1].
        self.transfers: List[Tuple[int, int]] = []  # (node u, target processor q)
        self.window: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for (u, q), first_need in schedule.required_transfers().items():
            lo = int(schedule.step[u])
            hi = first_need - 1
            self.transfers.append((u, q))
            self.window[(u, q)] = (lo, hi)

        # Current phase of every transfer: start from the schedule's explicit
        # Gamma when available (keeping only direct sends), otherwise lazy.
        self.current: Dict[Tuple[int, int], int] = {}
        explicit = schedule.comm
        if explicit is not None:
            direct: Dict[Tuple[int, int], int] = {}
            for (v, p1, p2, s) in explicit:
                if p1 == self._proc_list[v] and p2 != p1:
                    key = (v, p2)
                    if key in self.window and self.window[key][0] <= s <= self.window[key][1]:
                        direct[key] = min(s, direct.get(key, s))
            for key in self.transfers:
                lo, hi = self.window[key]
                self.current[key] = direct.get(key, hi)
        else:
            for key in self.transfers:
                self.current[key] = self.window[key][1]

        self.send = np.zeros((max(self.S, 1), self.P), dtype=np.float64)
        self.recv = np.zeros((max(self.S, 1), self.P), dtype=np.float64)
        if self.current:
            u_arr = np.fromiter((k[0] for k in self.current), dtype=np.int64, count=len(self.current))
            q_arr = np.fromiter((k[1] for k in self.current), dtype=np.int64, count=len(self.current))
            s_arr = np.fromiter(self.current.values(), dtype=np.int64, count=len(self.current))
            p_from = np.asarray(schedule.proc)[u_arr]
            volumes = self.dag.comm[u_arr].astype(np.float64) * self.numa[p_from, q_arr]
            np.add.at(self.send, (s_arr, p_from), volumes)
            np.add.at(self.recv, (s_arr, q_arr), volumes)
        self.step_comm = np.maximum(self.send, self.recv).max(axis=1)
        self.comm_total = float(self.step_comm.sum())

    # ------------------------------------------------------------------
    def _add(self, u: int, q: int, s: int, sign: float) -> None:
        p_from = self._proc_list[u]
        volume = self._comm_list[u] * self._numa_list[p_from][q] * sign
        self.send[s, p_from] += volume
        self.recv[s, q] += volume

    def _step_cost(self, s: int) -> float:
        return max(float(self.send[s].max()), float(self.recv[s].max()))

    def _refresh(self, steps) -> None:
        rows = np.unique(np.fromiter(steps, dtype=np.int64))
        new = np.maximum(self.send[rows], self.recv[rows]).max(axis=1)
        self.comm_total += float(new.sum() - self.step_comm[rows].sum())
        self.step_comm[rows] = new

    def move(self, u: int, q: int, new_step: int) -> float:
        """Reschedule the transfer ``u -> q`` to ``new_step``; return new h-cost sum."""
        old = self.current[(u, q)]
        if new_step == old:
            return self.comm_total
        self._add(u, q, old, -1.0)
        self._add(u, q, new_step, +1.0)
        self.current[(u, q)] = new_step
        self._refresh((old, new_step))
        return self.comm_total

    def total_comm_cost(self) -> float:
        """Sum over supersteps of the h-relation cost (not yet times ``g``)."""
        return self.comm_total

    def to_comm_schedule(self) -> CommSchedule:
        comm = CommSchedule()
        for (u, q), s in self.current.items():
            comm.add(u, int(self.schedule.proc[u]), q, s)
        return comm


@dataclass
class CommHillClimbingResult:
    """Outcome of a communication-schedule hill-climbing run."""

    schedule: BspSchedule
    initial_cost: float
    final_cost: float
    moves_applied: int
    reached_local_optimum: bool


def comm_hill_climb(
    schedule: BspSchedule,
    *,
    max_moves: Optional[int] = None,
    time_limit: Optional[float] = None,
) -> CommHillClimbingResult:
    """Optimize the communication schedule of a fixed (pi, tau) assignment."""
    initial_cost = float(schedule.cost())
    state = CommScheduleState(schedule)
    start = time.monotonic()
    moves_applied = 0

    def out_of_budget() -> bool:
        if max_moves is not None and moves_applied >= max_moves:
            return True
        if time_limit is not None and time.monotonic() - start > time_limit:
            return True
        return False

    improved_any = True
    while improved_any and not out_of_budget():
        improved_any = False
        for (u, q) in state.transfers:
            if out_of_budget():
                break
            lo, hi = state.window[(u, q)]
            if lo >= hi:
                continue
            current_step = state.current[(u, q)]
            current_cost = state.comm_total
            for s in range(lo, hi + 1):
                if s == current_step:
                    continue
                new_cost = state.move(u, q, s)
                if new_cost < current_cost - _EPS:
                    moves_applied += 1
                    improved_any = True
                    break
                state.move(u, q, current_step)

    out = schedule.copy()
    out.comm = state.to_comm_schedule()
    return CommHillClimbingResult(
        schedule=out,
        initial_cost=initial_cost,
        final_cost=float(out.cost()),
        moves_applied=moves_applied,
        reached_local_optimum=not improved_any,
    )


class CommScheduleImprover:
    """Object-style wrapper so HCcs can be plugged into the pipeline config."""

    name = "HCcs"

    def __init__(self, max_moves: Optional[int] = None, time_limit: Optional[float] = None) -> None:
        self.max_moves = max_moves
        self.time_limit = time_limit

    def improve(self, schedule: BspSchedule) -> BspSchedule:
        """Return the schedule with an optimized explicit communication schedule."""
        return comm_hill_climb(
            schedule, max_moves=self.max_moves, time_limit=self.time_limit
        ).schedule
