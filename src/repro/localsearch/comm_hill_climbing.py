"""HCcs: hill climbing on the communication schedule (paper Section 4.3).

With the node assignment (pi, tau) fixed, the only remaining freedom is
*when* each required cross-processor value transfer happens.  Every required
transfer of a value ``u`` to a processor ``q`` may be scheduled in any
communication phase between ``tau(u)`` (the superstep in which the value is
produced) and ``first_need - 1`` (the last phase before the first consumer
on ``q`` runs); HCcs moves one transfer at a time to a different phase in
that window whenever this lowers the total h-relation cost.

Like the paper's implementation, transfers are always sent directly from the
producing processor (no relaying through third processors).

The h-relation state sits on the shared
:class:`~repro.localsearch.engine.IncrementalCostEngine` (with ``g = 1`` and
``l = 0`` the engine's per-superstep cost *is* the h-relation of that
superstep, bit for bit), and the whole window of a transfer is probed in one
vectorized shot (:meth:`CommScheduleState.probe_window`): a transfer adds
volume to exactly one send and one receive cell, so the h-relation of a
candidate phase is ``max(h(s), send[s, p] + vol, recv[s, q] + vol)`` —
no matrix mutation, no apply/revert round trip.  Earlier revisions moved
each trial onto the matrices and reverted on failure, which both paid two
row refreshes per trial and accumulated ``(a + v) - v`` float residue in the
cells; probing against the pristine state is faster and exact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..model.comm import CommSchedule
from ..model.schedule import BspSchedule
from ..obs import trace as _trace
from .engine import RECV, SEND, IncrementalCostEngine

__all__ = ["CommScheduleState", "CommHillClimbingResult", "comm_hill_climb", "CommScheduleImprover"]

_EPS = 1e-9

#: Budget checks between ``time.monotonic()`` reads (see hill_climbing).
_CLOCK_STRIDE = 64


class CommScheduleState:
    """Incremental h-relation cost state for the communication subproblem.

    Like :class:`~repro.localsearch.state.LocalSearchState`, the state lives
    in flat numpy ``(S, P)`` send / receive matrices with a per-superstep
    cost vector on top — all owned by a shared
    :class:`~repro.localsearch.engine.IncrementalCostEngine` whose ``g = 1``
    / ``l = 0`` parameters make its per-row cost exactly the h-relation.
    """

    def __init__(self, schedule: BspSchedule) -> None:
        self.schedule = schedule
        self.dag = schedule.dag
        self.machine = schedule.machine
        self.P = self.machine.P
        self.g = float(self.machine.g)
        self.numa = self.machine.numa
        self._numa_list = np.asarray(self.numa, dtype=np.float64).tolist()
        self._comm_list = np.asarray(self.dag.comm, dtype=np.float64).tolist()
        self._proc_list = np.asarray(schedule.proc, dtype=np.int64).tolist()
        self.S = schedule.num_supersteps

        # Required transfers with their allowed window [tau(u), first_need - 1].
        self.transfers: List[Tuple[int, int]] = []  # (node u, target processor q)
        self.window: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for (u, q), first_need in schedule.required_transfers().items():
            lo = int(schedule.step[u])
            hi = first_need - 1
            self.transfers.append((u, q))
            self.window[(u, q)] = (lo, hi)

        # Current phase of every transfer: start from the schedule's explicit
        # Gamma when available (keeping only direct sends), otherwise lazy.
        self.current: Dict[Tuple[int, int], int] = {}
        explicit = schedule.comm
        if explicit is not None:
            direct: Dict[Tuple[int, int], int] = {}
            for (v, p1, p2, s) in explicit:
                if p1 == self._proc_list[v] and p2 != p1:
                    key = (v, p2)
                    if key in self.window and self.window[key][0] <= s <= self.window[key][1]:
                        direct[key] = min(s, direct.get(key, s))
            for key in self.transfers:
                lo, hi = self.window[key]
                self.current[key] = direct.get(key, hi)
        else:
            for key in self.transfers:
                self.current[key] = self.window[key][1]

        rows = max(self.S, 1)
        send = np.zeros((rows, self.P), dtype=np.float64)
        recv = np.zeros((rows, self.P), dtype=np.float64)
        if self.current:
            u_arr = np.fromiter((k[0] for k in self.current), dtype=np.int64, count=len(self.current))
            q_arr = np.fromiter((k[1] for k in self.current), dtype=np.int64, count=len(self.current))
            s_arr = np.fromiter(self.current.values(), dtype=np.int64, count=len(self.current))
            p_from = np.asarray(schedule.proc)[u_arr]
            volumes = self.dag.comm[u_arr].astype(np.float64) * self.numa[p_from, q_arr]
            np.add.at(send, (s_arr, p_from), volumes)
            np.add.at(recv, (s_arr, q_arr), volumes)
        self.engine = IncrementalCostEngine(
            np.zeros((rows, self.P), dtype=np.float64), send, recv, 1.0, 0.0
        )

    # ------------------------------------------------------------------
    @property
    def send(self) -> np.ndarray:
        return self.engine.send

    @property
    def recv(self) -> np.ndarray:
        return self.engine.recv

    @property
    def step_comm(self) -> np.ndarray:
        """Per-superstep h-relation (the engine's cost rows, ``g=1, l=0``)."""
        return self.engine.step_cost

    @property
    def comm_total(self) -> float:
        return self.engine.total_cost

    def _volume(self, u: int, q: int) -> float:
        p_from = self._proc_list[u]
        return self._comm_list[u] * self._numa_list[p_from][q]

    def move(self, u: int, q: int, new_step: int) -> float:
        """Reschedule the transfer ``u -> q`` to ``new_step``; return new h-cost sum."""
        old = self.current[(u, q)]
        if new_step == old:
            return self.engine.total_cost
        p_from = self._proc_list[u]
        volume = self._volume(u, q)
        self.current[(u, q)] = new_step
        return self.engine.apply_cells(
            [
                (SEND, old, p_from, -volume),
                (RECV, old, q, -volume),
                (SEND, new_step, p_from, volume),
                (RECV, new_step, q, volume),
            ]
        )

    def probe_window(self, u: int, q: int) -> np.ndarray:
        """Total h-cost if ``u -> q`` moved to each phase of its window.

        Returns the cost vector aligned with ``range(lo, hi + 1)``; the
        entry of the transfer's current phase equals the current total.  The
        state is not touched: removing the transfer affects one superstep
        row (re-scanned once), and adding it to a candidate phase raises
        that phase's h-relation to at most
        ``max(h(s), send[s, p_from] + vol, recv[s, q] + vol)`` — exact,
        because a single cell changes per matrix.
        """
        lo, hi = self.window[(u, q)]
        c = self.current[(u, q)]
        p_from = self._proc_list[u]
        volume = self._volume(u, q)
        engine = self.engine
        send, recv = engine.send, engine.recv
        sc = engine.step_cost

        srow = send[c].copy()
        srow[p_from] -= volume
        rrow = recv[c].copy()
        rrow[q] -= volume
        h_removed = max(float(srow.max()), float(rrow.max()))

        block = slice(lo, hi + 1)
        h_new = np.maximum(
            sc[block], np.maximum(send[block, p_from] + volume, recv[block, q] + volume)
        )
        costs = (engine.total_cost - float(sc[c]) + h_removed) + (h_new - sc[block])
        costs[c - lo] = engine.total_cost
        return costs

    def total_comm_cost(self) -> float:
        """Sum over supersteps of the h-relation cost (not yet times ``g``)."""
        return self.engine.total_cost

    def to_comm_schedule(self) -> CommSchedule:
        comm = CommSchedule()
        for (u, q), s in self.current.items():
            comm.add(u, int(self.schedule.proc[u]), q, s)
        return comm


@dataclass
class CommHillClimbingResult:
    """Outcome of a communication-schedule hill-climbing run."""

    schedule: BspSchedule
    initial_cost: float
    final_cost: float
    moves_applied: int
    reached_local_optimum: bool


def comm_hill_climb(
    schedule: BspSchedule,
    *,
    max_moves: Optional[int] = None,
    time_limit: Optional[float] = None,
) -> CommHillClimbingResult:
    """Optimize the communication schedule of a fixed (pi, tau) assignment."""
    with _trace.span("comm_hill_climb", nodes=schedule.dag.n) as tspan:
        return _comm_hill_climb(
            schedule, max_moves=max_moves, time_limit=time_limit, tspan=tspan
        )


def _comm_hill_climb(
    schedule: BspSchedule,
    *,
    max_moves: Optional[int],
    time_limit: Optional[float],
    tspan: "_trace.SpanLike",
) -> CommHillClimbingResult:
    initial_cost = float(schedule.cost())
    state = CommScheduleState(schedule)
    start = time.monotonic()
    moves_applied = 0
    budget_calls = 0
    timed_out = False

    def out_of_budget() -> bool:
        nonlocal budget_calls, timed_out
        if max_moves is not None and moves_applied >= max_moves:
            return True
        if time_limit is not None:
            if timed_out:
                return True
            budget_calls += 1
            if budget_calls % _CLOCK_STRIDE == 1:
                timed_out = time.monotonic() - start > time_limit
                return timed_out
        return False

    improved_any = True
    passes = 0
    while improved_any and not out_of_budget():
        improved_any = False
        passes += 1
        for (u, q) in state.transfers:
            if out_of_budget():
                break
            lo, hi = state.window[(u, q)]
            if lo >= hi:
                continue
            current_step = state.current[(u, q)]
            current_cost = state.comm_total
            costs = state.probe_window(u, q)
            for i in range(hi - lo + 1):
                s = lo + i
                if s == current_step:
                    continue
                if costs[i] < current_cost - _EPS:
                    state.move(u, q, s)
                    moves_applied += 1
                    improved_any = True
                    break
        if _trace.enabled():
            # Convergence telemetry: the per-pass h-relation sum (g=1, l=0
            # engine total) and the applied-move tally.  Read-only.
            tspan.event(
                "pass", index=passes, h_cost=float(state.comm_total), moves=moves_applied
            )

    out = schedule.copy()
    out.comm = state.to_comm_schedule()
    result = CommHillClimbingResult(
        schedule=out,
        initial_cost=initial_cost,
        final_cost=float(out.cost()),
        moves_applied=moves_applied,
        reached_local_optimum=not improved_any,
    )
    if _trace.enabled():
        tspan.annotate(
            initial_cost=result.initial_cost,
            final_cost=result.final_cost,
            moves=moves_applied,
            passes=passes,
            engine_transactions=state.engine.transactions,
        )
    return result


class CommScheduleImprover:
    """Object-style wrapper so HCcs can be plugged into the pipeline config."""

    name = "HCcs"

    def __init__(self, max_moves: Optional[int] = None, time_limit: Optional[float] = None) -> None:
        self.max_moves = max_moves
        self.time_limit = time_limit

    def improve(self, schedule: BspSchedule) -> BspSchedule:
        """Return the schedule with an optimized explicit communication schedule."""
        return comm_hill_climb(
            schedule, max_moves=self.max_moves, time_limit=self.time_limit
        ).schedule
