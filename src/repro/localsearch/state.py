"""Incremental cost state for the hill-climbing local search.

The paper's HC algorithm (Section 4.3, Appendix A.3) relies on data
structures that allow the cost change of a candidate move to be evaluated
without recomputing the whole schedule cost.  This module provides that
state for schedules with a *lazy* communication schedule:

* per-superstep, per-processor work / send / receive matrices,
* for every node ``u`` and processor ``p``, the multiset of supersteps of
  ``u``'s successors assigned to ``p`` — whose minimum determines the
  (lazy) communication step of the transfer ``u -> p``,
* the per-superstep cost contributions and their running total.

Moves are applied with :meth:`LocalSearchState.apply_move`, which updates
only the affected rows and returns the new total cost; a rejected move is
reverted by applying the inverse move.  This "apply, inspect, maybe revert"
protocol keeps the implementation simple while still touching only the
supersteps affected by the move.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..graphs.dag import ComputationalDAG
from ..model.machine import BspMachine
from ..model.schedule import BspSchedule

__all__ = ["LocalSearchState", "Move"]

Move = Tuple[int, int, int]
"""A candidate move ``(node, new_processor, new_superstep)``."""


class LocalSearchState:
    """Mutable scheduling state with incremental BSP+NUMA cost maintenance."""

    #: Number of spare superstep rows kept at the end of the matrices so that
    #: moves into a brand new superstep never need an immediate reallocation.
    _SLACK = 4

    def __init__(self, schedule: BspSchedule) -> None:
        self.dag: ComputationalDAG = schedule.dag
        self.machine: BspMachine = schedule.machine
        self.proc = schedule.proc.copy()
        self.step = schedule.step.copy()
        n = self.dag.n
        self.P = self.machine.P
        self.g = float(self.machine.g)
        self.l = float(self.machine.l)
        self.numa = self.machine.numa

        max_step = int(self.step.max()) if n else 0
        self.S = max_step + 1 + self._SLACK
        self.work = np.zeros((self.S, self.P), dtype=np.float64)
        self.send = np.zeros((self.S, self.P), dtype=np.float64)
        self.recv = np.zeros((self.S, self.P), dtype=np.float64)

        # succ_steps[u][p] is a Counter mapping superstep -> how many
        # successors of u are assigned to processor p in that superstep.
        self.succ_steps: List[List[Counter]] = [
            [Counter() for _ in range(self.P)] for _ in range(n)
        ]

        for v in range(n):
            self.work[self.step[v], self.proc[v]] += float(self.dag.work[v])
        for (u, v) in self.dag.edges:
            self.succ_steps[u][self.proc[v]][int(self.step[v])] += 1

        for u in range(n):
            for p in range(self.P):
                if p == self.proc[u]:
                    continue
                needed = self._needed_step(u, p)
                if needed is not None:
                    self._add_comm(u, int(self.proc[u]), p, needed - 1, +1.0)

        self.step_cost = np.zeros(self.S, dtype=np.float64)
        for s in range(self.S):
            self.step_cost[s] = self._compute_step_cost(s)
        self.total_cost = float(self.step_cost.sum())

    # ------------------------------------------------------------------
    # Low-level helpers
    # ------------------------------------------------------------------
    def _needed_step(self, u: int, p: int) -> Optional[int]:
        """Earliest superstep in which a successor of ``u`` on ``p`` runs."""
        counter = self.succ_steps[u][p]
        if not counter:
            return None
        return min(counter)

    def _add_comm(self, u: int, p_from: int, p_to: int, s: int, sign: float) -> None:
        """Add/remove the lazy transfer of ``u`` from ``p_from`` to ``p_to`` at step ``s``."""
        if p_from == p_to:
            return
        volume = float(self.dag.comm[u]) * float(self.numa[p_from, p_to]) * sign
        self.send[s, p_from] += volume
        self.recv[s, p_to] += volume

    def _compute_step_cost(self, s: int) -> float:
        work_row = self.work[s]
        send_row = self.send[s]
        recv_row = self.recv[s]
        w = float(work_row.max()) if self.P else 0.0
        h = max(float(send_row.max()), float(recv_row.max())) if self.P else 0.0
        occurs = (work_row.sum() > 1e-12) or (send_row.sum() > 1e-12) or (recv_row.sum() > 1e-12)
        return w + self.g * h + (self.l if occurs else 0.0)

    def _refresh_steps(self, steps: Iterable[int]) -> None:
        for s in set(steps):
            if 0 <= s < self.S:
                new = self._compute_step_cost(s)
                self.total_cost += new - self.step_cost[s]
                self.step_cost[s] = new

    def _ensure_capacity(self, s: int) -> None:
        if s < self.S:
            return
        extra = s - self.S + 1 + self._SLACK
        self.work = np.vstack([self.work, np.zeros((extra, self.P))])
        self.send = np.vstack([self.send, np.zeros((extra, self.P))])
        self.recv = np.vstack([self.recv, np.zeros((extra, self.P))])
        self.step_cost = np.concatenate([self.step_cost, np.zeros(extra)])
        self.S += extra

    # ------------------------------------------------------------------
    # Move validity
    # ------------------------------------------------------------------
    def is_move_valid(self, v: int, new_proc: int, new_step: int) -> bool:
        """Check whether moving ``v`` keeps the (lazy-comm) schedule valid.

        Assignments of all other nodes are unchanged, so the conditions are
        local: every predecessor must still be able to deliver its value and
        every successor must still receive ``v``'s value in time.
        """
        if new_step < 0 or not (0 <= new_proc < self.P):
            return False
        if new_proc == self.proc[v] and new_step == self.step[v]:
            return False
        for u in self.dag.parents(v):
            if int(self.proc[u]) == new_proc:
                if int(self.step[u]) > new_step:
                    return False
            else:
                if int(self.step[u]) >= new_step:
                    return False
        for w in self.dag.children(v):
            if int(self.proc[w]) == new_proc:
                if new_step > int(self.step[w]):
                    return False
            else:
                if new_step >= int(self.step[w]):
                    return False
        return True

    def candidate_moves(self, v: int) -> List[Move]:
        """All valid moves of ``v`` to any processor in supersteps s-1, s, s+1."""
        s = int(self.step[v])
        moves: List[Move] = []
        for target_step in (s - 1, s, s + 1):
            for p in range(self.P):
                if self.is_move_valid(v, p, target_step):
                    moves.append((v, p, target_step))
        return moves

    # ------------------------------------------------------------------
    # Applying moves
    # ------------------------------------------------------------------
    def apply_move(self, v: int, new_proc: int, new_step: int) -> float:
        """Apply the move and return the new total cost.

        The caller is responsible for only applying valid moves (see
        :meth:`is_move_valid`); to revert, apply the inverse move with the
        node's previous processor and superstep.
        """
        old_proc = int(self.proc[v])
        old_step = int(self.step[v])
        self._ensure_capacity(new_step)
        touched: Set[int] = {old_step, new_step}

        # --- work matrix -------------------------------------------------
        w_v = float(self.dag.work[v])
        self.work[old_step, old_proc] -= w_v
        self.work[new_step, new_proc] += w_v

        # --- outgoing transfers of v (v as the producer) -------------------
        # The set of target processors and their needed steps do not change,
        # but the source processor (and hence the NUMA weight and the sending
        # processor's load) does, and targets equal to the old/new processor
        # appear/disappear.
        for p in range(self.P):
            needed = self._needed_step(v, p)
            if needed is None:
                continue
            if p != old_proc:
                self._add_comm(v, old_proc, p, needed - 1, -1.0)
                touched.add(needed - 1)
            if p != new_proc:
                self._add_comm(v, new_proc, p, needed - 1, +1.0)
                touched.add(needed - 1)

        # --- incoming transfers (v as a consumer of its predecessors) ------
        for u in self.dag.parents(v):
            pu = int(self.proc[u])
            # The only target processors whose "first needed" superstep can
            # change are v's old and new processor (a single set entry when
            # the move only changes the superstep).
            affected_targets = {old_proc, new_proc}
            old_needed = {q: self._needed_step(u, q) for q in affected_targets}
            self.succ_steps[u][old_proc][old_step] -= 1
            if self.succ_steps[u][old_proc][old_step] == 0:
                del self.succ_steps[u][old_proc][old_step]
            self.succ_steps[u][new_proc][new_step] += 1
            for q in affected_targets:
                if q == pu:
                    continue
                new_needed = self._needed_step(u, q)
                if old_needed[q] == new_needed:
                    continue
                if old_needed[q] is not None:
                    self._add_comm(u, pu, q, old_needed[q] - 1, -1.0)
                    touched.add(old_needed[q] - 1)
                if new_needed is not None:
                    self._add_comm(u, pu, q, new_needed - 1, +1.0)
                    touched.add(new_needed - 1)

        self.proc[v] = new_proc
        self.step[v] = new_step
        self._refresh_steps(touched)
        return self.total_cost

    def evaluate_move(self, v: int, new_proc: int, new_step: int) -> float:
        """Cost after the move, computed by apply + revert (state unchanged)."""
        old_proc, old_step = int(self.proc[v]), int(self.step[v])
        new_cost = self.apply_move(v, new_proc, new_step)
        self.apply_move(v, old_proc, old_step)
        return new_cost

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_schedule(self) -> BspSchedule:
        """Materialize the current state as a (lazy-comm) BSP schedule with
        compacted superstep indices.

        Compaction removes empty supersteps, so the returned schedule's cost
        is less than or equal to :attr:`total_cost` (which prices the
        schedule exactly as currently laid out).
        """
        sched = BspSchedule(self.dag, self.machine, self.proc.copy(), self.step.copy())
        return sched.normalized()

    def current_schedule(self) -> BspSchedule:
        """The schedule exactly as laid out (no superstep compaction)."""
        return BspSchedule(self.dag, self.machine, self.proc.copy(), self.step.copy())

    def recompute_cost(self) -> float:
        """Recompute the total cost of the current layout from scratch.

        Testing / debugging aid: must always equal :attr:`total_cost`.
        """
        return float(self.current_schedule().cost())
