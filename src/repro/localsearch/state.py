"""Incremental cost state for the hill-climbing local search.

The paper's HC algorithm (Section 4.3, Appendix A.3) relies on data
structures that allow the cost change of a candidate move to be evaluated
without recomputing the whole schedule cost.  This module provides that
state for schedules with a *lazy* communication schedule, kept entirely in
flat numpy arrays (the Dask-scheduler idiom: redundant, constant-time
structures owned by one kernel layer):

* per-superstep, per-processor work / send / receive matrices (the same
  matrices :mod:`repro.model.cost` evaluates — both layers go through
  :func:`repro.model.cost.superstep_matrices` and
  :func:`repro.model.cost.superstep_row_costs`, so the cost formula has a
  single source of truth),
* dense ``(n, P)`` tables ``succ_min`` / ``succ_min_cnt`` / ``succ_cnt``
  holding, for every node ``u`` and processor ``p``, the earliest superstep
  of a successor of ``u`` on ``p``, how many successors sit at that earliest
  step and how many successors are on ``p`` in total — which is exactly the
  information needed to maintain the (lazy) communication step of every
  transfer ``u -> p`` in O(1) per move (with an occasional CSR rescan when
  the minimum disappears),
* the per-superstep cost contributions and their running total.

Moves are applied with :meth:`LocalSearchState.apply_move`; candidate moves
are probed with :meth:`LocalSearchState.move_delta`, which computes the cost
change and leaves the state unchanged.  Both the hill-climbing variants and
simulated annealing share these two entry points.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.dag import ComputationalDAG
from ..model.cost import superstep_matrices, superstep_row_costs
from ..model.machine import MEMORY_EPS, BspMachine
from ..model.schedule import BspSchedule

__all__ = ["LocalSearchState", "Move"]

Move = Tuple[int, int, int]
"""A candidate move ``(node, new_processor, new_superstep)``."""

#: Sentinel for "no successor of u on p" in the ``succ_min`` table.  Large
#: enough to never be a real superstep, small enough that ``_INF - 1`` does
#: not overflow int64 arithmetic.
_NO_STEP = np.iinfo(np.int64).max // 4


class LocalSearchState:
    """Mutable scheduling state with incremental BSP+NUMA cost maintenance."""

    #: Number of spare superstep rows kept at the end of the matrices so that
    #: moves into a brand new superstep never need an immediate reallocation.
    _SLACK = 4

    def __init__(self, schedule: BspSchedule) -> None:
        self.dag: ComputationalDAG = schedule.dag
        self.machine: BspMachine = schedule.machine
        self.proc = np.asarray(schedule.proc, dtype=np.int64).copy()
        self.step = np.asarray(schedule.step, dtype=np.int64).copy()
        n = self.dag.n
        self.P = self.machine.P
        self.g = float(self.machine.g)
        self.l = float(self.machine.l)
        self.numa = np.asarray(self.machine.numa, dtype=np.float64)

        # CSR adjacency views and float weight arrays used on the hot path.
        self._succ_indptr = self.dag.succ_indptr
        self._succ_indices = self.dag.succ_indices
        self._pred_indptr = self.dag.pred_indptr
        self._pred_indices = self.dag.pred_indices
        self._work_of = np.asarray(self.dag.work, dtype=np.float64)
        self._comm_of = np.asarray(self.dag.comm, dtype=np.float64)
        # Plain-python mirrors for scalar hot-loop lookups (a numpy scalar
        # index costs ~10x a list index).
        self._work_list = self._work_of.tolist()
        self._comm_list = self._comm_of.tolist()
        self._numa_list = self.numa.tolist()

        # Memory-constrained model variant: per-node memory weights and the
        # running per-processor usage, maintained only when the machine
        # carries bounds (the unconstrained hot path pays nothing).
        bounds = self.machine.memory_bounds
        if bounds is None:
            self._mem_bounds: Optional[List[float]] = None
            self._mem_list: List[float] = []
            self.mem_used: List[float] = []
        else:
            self._mem_bounds = bounds.tolist()
            mem = np.asarray(self.dag.memory, dtype=np.float64)
            self._mem_list = mem.tolist()
            self.mem_used = (
                np.bincount(self.proc, weights=mem, minlength=self.P).tolist()
                if n
                else [0.0] * self.P
            )

        max_step = int(self.step.max()) if n else 0
        self.S = max_step + 1 + self._SLACK

        # The (S, P) matrices come from the same code path as model.cost:
        # the lazy-communication matrices of the current assignment.
        lazy = BspSchedule(self.dag, self.machine, self.proc, self.step)
        work, send, recv = superstep_matrices(lazy)
        pad = self.S - work.shape[0]
        self.work = np.vstack([work, np.zeros((pad, self.P))])
        self.send = np.vstack([send, np.zeros((pad, self.P))])
        self.recv = np.vstack([recv, np.zeros((pad, self.P))])

        # Dense successor-step tables replacing the per-(node, processor)
        # Counter multisets of earlier revisions.  They are built vectorized
        # but kept as plain nested python lists afterwards: every hot-path
        # access is a scalar read/write, which python lists serve ~10x
        # faster than numpy fancy scalar indexing.
        succ_min = np.full((n, self.P), _NO_STEP, dtype=np.int64)
        succ_min_cnt = np.zeros((n, self.P), dtype=np.int64)
        succ_cnt = np.zeros((n, self.P), dtype=np.int64)
        if self.dag.num_edges:
            eu = self.dag.edge_sources
            pv = self.proc[self.dag.edge_targets]
            sv = self.step[self.dag.edge_targets]
            np.add.at(succ_cnt, (eu, pv), 1)
            np.minimum.at(succ_min, (eu, pv), sv)
            at_min = sv == succ_min[eu, pv]
            np.add.at(succ_min_cnt, (eu[at_min], pv[at_min]), 1)
        self.succ_min: List[List[int]] = succ_min.tolist()
        self.succ_min_cnt: List[List[int]] = succ_min_cnt.tolist()
        self.succ_cnt: List[List[int]] = succ_cnt.tolist()

        self.step_cost = superstep_row_costs(self.work, self.send, self.recv, self.g, self.l)
        self.total_cost = float(self.step_cost.sum())

    # ------------------------------------------------------------------
    # Low-level helpers
    # ------------------------------------------------------------------
    def _needed_step(self, u: int, p: int) -> Optional[int]:
        """Earliest superstep in which a successor of ``u`` on ``p`` runs."""
        m = self.succ_min[u][p]
        return None if m >= _NO_STEP else m

    def _succ_inc(self, u: int, p: int, s: int) -> None:
        """Record one more successor of ``u`` on processor ``p`` at step ``s``."""
        self.succ_cnt[u][p] += 1
        m = self.succ_min[u][p]
        if s < m:
            self.succ_min[u][p] = s
            self.succ_min_cnt[u][p] = 1
        elif s == m:
            self.succ_min_cnt[u][p] += 1

    def _succ_dec(self, u: int, p: int, s: int) -> None:
        """Remove one successor of ``u`` on processor ``p`` at step ``s``.

        When the last successor at the current minimum disappears the new
        minimum is recovered by a CSR rescan of ``u``'s successor list; that
        scan must therefore run *after* ``proc``/``step`` reflect the move.
        """
        self.succ_cnt[u][p] -= 1
        if s != self.succ_min[u][p]:
            return
        cnt = self.succ_min_cnt[u][p] - 1
        if cnt > 0:
            self.succ_min_cnt[u][p] = cnt
        elif self.succ_cnt[u][p] == 0:
            self.succ_min[u][p] = _NO_STEP
            self.succ_min_cnt[u][p] = 0
        else:
            children = self._succ_indices[self._succ_indptr[u]:self._succ_indptr[u + 1]]
            steps = self.step[children[self.proc[children] == p]]
            new_min = int(steps.min())
            self.succ_min[u][p] = new_min
            self.succ_min_cnt[u][p] = int((steps == new_min).sum())

    def _refresh_steps(self, steps: Iterable[int]) -> None:
        rows = np.unique(np.fromiter(steps, dtype=np.int64))
        rows = rows[(rows >= 0) & (rows < self.S)]
        if rows.size == 0:
            return
        new = superstep_row_costs(
            self.work[rows], self.send[rows], self.recv[rows], self.g, self.l
        )
        self.total_cost += float(new.sum() - self.step_cost[rows].sum())
        self.step_cost[rows] = new

    def _ensure_capacity(self, s: int) -> None:
        if s < self.S:
            return
        extra = s - self.S + 1 + self._SLACK
        self.work = np.vstack([self.work, np.zeros((extra, self.P))])
        self.send = np.vstack([self.send, np.zeros((extra, self.P))])
        self.recv = np.vstack([self.recv, np.zeros((extra, self.P))])
        self.step_cost = np.concatenate([self.step_cost, np.zeros(extra)])
        self.S += extra

    # ------------------------------------------------------------------
    # Move validity
    # ------------------------------------------------------------------
    def _step_bounds(self, v: int) -> Tuple[List[int], List[int]]:
        """Per-processor bounds ``lo[p] <= new_step <= hi[p]`` for moving ``v``.

        A predecessor on the target processor allows equality, any other
        predecessor forces strict inequality; symmetrically for successors.
        """
        P = self.P
        lo = [0] * P
        hi = [_NO_STEP] * P
        for u in self._pred_indices[self._pred_indptr[v]:self._pred_indptr[v + 1]].tolist():
            su = int(self.step[u])
            pu = int(self.proc[u])
            strict = su + 1
            for p in range(P):
                bound = su if p == pu else strict
                if bound > lo[p]:
                    lo[p] = bound
        for w in self._succ_indices[self._succ_indptr[v]:self._succ_indptr[v + 1]].tolist():
            sw = int(self.step[w])
            pw = int(self.proc[w])
            strict = sw - 1
            for p in range(P):
                bound = sw if p == pw else strict
                if bound < hi[p]:
                    hi[p] = bound
        return lo, hi

    def _memory_ok(self, v: int, new_proc: int) -> bool:
        """Whether moving ``v`` onto ``new_proc`` respects its memory bound.

        This is the memory mask of the move neighbourhood: together with
        :meth:`is_move_valid` / :meth:`candidate_moves` it keeps every move
        probed by :meth:`move_deltas` (whose precondition is a valid move)
        within the per-processor bounds, so the local searches never leave
        the memory-feasible region once they start inside it.
        """
        if self._mem_bounds is None or new_proc == self.proc[v]:
            return True
        return (
            self.mem_used[new_proc] + self._mem_list[v]
            <= self._mem_bounds[new_proc] + MEMORY_EPS
        )

    def is_move_valid(self, v: int, new_proc: int, new_step: int) -> bool:
        """Check whether moving ``v`` keeps the (lazy-comm) schedule valid.

        Assignments of all other nodes are unchanged, so the conditions are
        local: every predecessor must still be able to deliver its value,
        every successor must still receive ``v``'s value in time, and the
        target processor must have memory capacity left for ``v`` when the
        machine is memory-bounded.
        """
        if new_step < 0 or not (0 <= new_proc < self.P):
            return False
        if new_proc == self.proc[v] and new_step == self.step[v]:
            return False
        if not self._memory_ok(v, new_proc):
            return False
        lo, hi = self._step_bounds(v)
        return lo[new_proc] <= new_step <= hi[new_proc]

    def candidate_moves(self, v: int) -> List[Move]:
        """All valid moves of ``v`` to any processor in supersteps s-1, s, s+1.

        Moves whose target processor lacks memory capacity for ``v`` are
        masked out, so downstream :meth:`move_deltas` probes only see
        memory-feasible candidates.
        """
        s = int(self.step[v])
        p0 = int(self.proc[v])
        lo, hi = self._step_bounds(v)
        moves: List[Move] = []
        for target_step in (s - 1, s, s + 1):
            if target_step < 0:
                continue
            for p in range(self.P):
                if (
                    lo[p] <= target_step <= hi[p]
                    and not (target_step == s and p == p0)
                    and self._memory_ok(v, p)
                ):
                    moves.append((v, p, target_step))
        return moves

    # ------------------------------------------------------------------
    # Applying moves
    # ------------------------------------------------------------------
    def _apply_raw(self, v: int, new_proc: int, new_step: int, touched: List[int]) -> None:
        """Update all matrices and tables for the move, without refreshing
        the per-step costs; affected superstep rows are appended to
        ``touched``."""
        old_proc = int(self.proc[v])
        old_step = int(self.step[v])
        touched.append(old_step)
        touched.append(new_step)

        # --- work matrix -------------------------------------------------
        w_v = self._work_list[v]
        self.work[old_step, old_proc] -= w_v
        self.work[new_step, new_proc] += w_v

        # --- outgoing transfers of v (v as the producer) -------------------
        # The set of target processors and their needed steps do not change,
        # but the source processor (and hence the NUMA weight and the sending
        # processor's load) does, and targets equal to the old/new processor
        # appear/disappear.
        c_v = self._comm_list[v]
        numa = self._numa_list
        needed_row = self.succ_min[v]
        for q in range(self.P):
            nd = needed_row[q]
            if nd >= _NO_STEP:
                continue
            row = nd - 1
            if q != old_proc:
                volume = c_v * numa[old_proc][q]
                self.send[row, old_proc] -= volume
                self.recv[row, q] -= volume
                touched.append(row)
            if q != new_proc:
                volume = c_v * numa[new_proc][q]
                self.send[row, new_proc] += volume
                self.recv[row, q] += volume
                touched.append(row)

        # Commit v's new position before touching the successor tables of its
        # parents: the rescan inside _succ_dec reads proc/step and must see
        # the post-move assignment.
        self.proc[v] = new_proc
        self.step[v] = new_step
        if self._mem_bounds is not None and new_proc != old_proc:
            m_v = self._mem_list[v]
            self.mem_used[old_proc] -= m_v
            self.mem_used[new_proc] += m_v

        # --- incoming transfers (v as a consumer of its predecessors) ------
        # The only target processors whose "first needed" superstep can
        # change are v's old and new processor.
        targets = (old_proc,) if new_proc == old_proc else (old_proc, new_proc)
        for u in self._pred_indices[self._pred_indptr[v]:self._pred_indptr[v + 1]].tolist():
            pu = int(self.proc[u])
            min_row = self.succ_min[u]
            old_needed = [min_row[q] for q in targets]
            if new_proc == old_proc:
                # Same-processor step change: add before remove so that a
                # rescan triggered by the removal sees the final multiset.
                self._succ_inc(u, new_proc, new_step)
                self._succ_dec(u, old_proc, old_step)
            else:
                self._succ_dec(u, old_proc, old_step)
                self._succ_inc(u, new_proc, new_step)
            for q, was_needed in zip(targets, old_needed):
                if q == pu:
                    continue
                now_needed = min_row[q]
                if was_needed == now_needed:
                    continue
                volume = self._comm_list[u] * numa[pu][q]
                if was_needed < _NO_STEP:
                    self.send[was_needed - 1, pu] -= volume
                    self.recv[was_needed - 1, q] -= volume
                    touched.append(was_needed - 1)
                if now_needed < _NO_STEP:
                    self.send[now_needed - 1, pu] += volume
                    self.recv[now_needed - 1, q] += volume
                    touched.append(now_needed - 1)

    def apply_move(self, v: int, new_proc: int, new_step: int) -> float:
        """Apply the move and return the new total cost.

        The caller is responsible for only applying valid moves (see
        :meth:`is_move_valid`); to revert, apply the inverse move with the
        node's previous processor and superstep.
        """
        self._ensure_capacity(new_step)
        touched: List[int] = []
        self._apply_raw(v, new_proc, new_step, touched)
        self._refresh_steps(touched)
        return self.total_cost

    def move_deltas(self, v: int, moves: Sequence[Move]) -> np.ndarray:
        """Cost changes of several candidate moves of ``v``, state unchanged.

        This is the vectorized probe at the heart of the local searches: the
        contribution of ``v`` at its current position is removed once (it is
        shared by every candidate), each candidate's additions are written
        into a ``(K, rows, P)`` tensor of the affected superstep rows, and
        all row costs are then evaluated in a single vectorized pass.  All
        ``moves`` must be valid moves of the same node ``v`` (e.g. the output
        of :meth:`candidate_moves`).
        """
        if not moves:
            return np.zeros(0, dtype=np.float64)
        p0 = int(self.proc[v])
        s0 = int(self.step[v])
        self._ensure_capacity(max(m[2] for m in moves))
        parents = self._pred_indices[self._pred_indptr[v]:self._pred_indptr[v + 1]].tolist()
        proc_of = {u: int(self.proc[u]) for u in parents}
        numa = self._numa_list
        w_v = self._work_list[v]
        c_v = self._comm_list[v]

        # Targets of v's own outgoing transfers (independent of v's position).
        needed_row = self.succ_min[v]
        P = self.P
        out_q = [q for q in range(P) if needed_row[q] < _NO_STEP]
        out_rows = [needed_row[q] - 1 for q in out_q]

        # --- phase 1: virtually remove v from the successor tables --------
        # The sentinel step keeps a _succ_dec rescan from seeing v at s0.
        # Phases 2-3 run under try/finally so that even a probe of an
        # invalid move (a precondition violation) cannot leave the tables
        # in the "v removed" state.
        old_nd_p0 = {}
        self.step[v] = _NO_STEP
        for u in parents:
            old_nd_p0[u] = self.succ_min[u][p0]
            self._succ_dec(u, p0, s0)
        try:
            return self._move_deltas_removed(
                v, moves, p0, s0, parents, proc_of, numa, w_v, c_v, out_q, out_rows,
                old_nd_p0,
            )
        finally:
            # --- phase 4: restore the successor tables ---------------------
            for u in parents:
                self._succ_inc(u, p0, s0)
            self.step[v] = s0

    def _move_deltas_removed(
        self, v, moves, p0, s0, parents, proc_of, numa, w_v, c_v, out_q, out_rows,
        old_nd_p0,
    ) -> np.ndarray:
        """Phases 2-5 of :meth:`move_deltas`, with v's contribution removed."""
        P = self.P
        # --- collect every superstep row any candidate can touch ----------
        cand_procs = {m[1] for m in moves}
        cand_procs.add(p0)
        rows = {s0}
        rows.update(out_rows)
        for (_, _, s) in moves:
            rows.add(s)
            rows.add(s - 1)
        base_nd: dict = {}
        for u in parents:
            if old_nd_p0[u] < _NO_STEP:
                rows.add(old_nd_p0[u] - 1)
            min_row = self.succ_min[u]
            for p in cand_procs:
                nd = min_row[p]
                base_nd[(u, p)] = nd
                if nd < _NO_STEP:
                    rows.add(nd - 1)
        rows_sorted = sorted(r for r in rows if 0 <= r < self.S)
        nR = len(rows_sorted)
        R = np.fromiter(rows_sorted, dtype=np.int64, count=nR)
        ridx = dict(zip(rows_sorted, range(nR)))

        # Fancy indexing already copies the selected rows.
        base_work = self.work[R]
        base_send = self.send[R]
        base_recv = self.recv[R]

        # --- phase 2: shared removal deltas --------------------------------
        base_work[ridx[s0], p0] -= w_v
        for q, row in zip(out_q, out_rows):
            if q == p0:
                continue
            volume = c_v * numa[p0][q]
            base_send[ridx[row], p0] -= volume
            base_recv[ridx[row], q] -= volume
        for u in parents:
            pu = proc_of[u]
            if pu == p0:
                continue
            nd_old, nd_new = old_nd_p0[u], base_nd[(u, p0)]
            if nd_old == nd_new:
                continue
            volume = self._comm_list[u] * numa[pu][p0]
            if nd_old < _NO_STEP:
                base_send[ridx[nd_old - 1], pu] -= volume
                base_recv[ridx[nd_old - 1], p0] -= volume
            if nd_new < _NO_STEP:
                base_send[ridx[nd_new - 1], pu] += volume
                base_recv[ridx[nd_new - 1], p0] += volume

        # --- phase 3: per-candidate addition deltas ------------------------
        # Deltas are gathered as flat (k, row, proc) coordinates and applied
        # with one scatter-add per matrix: python list appends are an order
        # of magnitude cheaper than scalar writes into a 3-d numpy tensor,
        # and at typical candidate counts (K <= 3P) this beats a fully
        # numpy-side formulation whose per-call overhead dominates.
        K = len(moves)
        work_t = np.repeat(base_work[None], K, axis=0)
        send_t = np.repeat(base_send[None], K, axis=0)
        recv_t = np.repeat(base_recv[None], K, axis=0)
        w_idx: List[int] = []
        s_idx: List[int] = []
        s_val: List[float] = []
        r_idx: List[int] = []
        r_val: List[float] = []
        stride = nR * P
        for k, (_, p, s) in enumerate(moves):
            flat = k * stride
            w_idx.append(flat + ridx[s] * P + p)
            for q, row in zip(out_q, out_rows):
                if q == p:
                    continue
                volume = c_v * numa[p][q]
                cell = flat + ridx[row] * P
                s_idx.append(cell + p)
                s_val.append(volume)
                r_idx.append(cell + q)
                r_val.append(volume)
            for u in parents:
                pu = proc_of[u]
                if p == pu:
                    continue
                nd = base_nd[(u, p)]
                if s < nd:
                    # v becomes the earliest consumer of u on p: the (lazy)
                    # transfer u -> p moves from phase nd-1 to phase s-1.
                    volume = self._comm_list[u] * numa[pu][p]
                    if nd < _NO_STEP:
                        cell = flat + ridx[nd - 1] * P
                        s_idx.append(cell + pu)
                        s_val.append(-volume)
                        r_idx.append(cell + p)
                        r_val.append(-volume)
                    cell = flat + ridx[s - 1] * P
                    s_idx.append(cell + pu)
                    s_val.append(volume)
                    r_idx.append(cell + p)
                    r_val.append(volume)
        work_t.ravel()[w_idx] += w_v
        if s_idx:
            np.add.at(send_t.ravel(), s_idx, s_val)
            np.add.at(recv_t.ravel(), r_idx, r_val)

        # --- phase 5: one vectorized cost pass over all candidates ---------
        # (phase 4, restoring the successor tables, runs in the caller's
        # finally block.)  The row blocks go through the shared kernel so the
        # cost formula keeps its single source of truth in model.cost.
        new_rows = superstep_row_costs(
            work_t.reshape(-1, P),
            send_t.reshape(-1, P),
            recv_t.reshape(-1, P),
            self.g,
            self.l,
        ).reshape(K, nR)
        return new_rows.sum(axis=1) - float(self.step_cost[R].sum())

    def move_delta(self, v: int, new_proc: int, new_step: int) -> float:
        """Cost change the move would cause, leaving the state unchanged."""
        return float(self.move_deltas(v, [(v, new_proc, new_step)])[0])

    def evaluate_move(self, v: int, new_proc: int, new_step: int) -> float:
        """Cost after the move, computed without changing the state."""
        return self.total_cost + self.move_delta(v, new_proc, new_step)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_schedule(self) -> BspSchedule:
        """Materialize the current state as a (lazy-comm) BSP schedule with
        compacted superstep indices.

        Compaction removes empty supersteps, so the returned schedule's cost
        is less than or equal to :attr:`total_cost` (which prices the
        schedule exactly as currently laid out).
        """
        sched = BspSchedule(self.dag, self.machine, self.proc.copy(), self.step.copy())
        return sched.normalized()

    def current_schedule(self) -> BspSchedule:
        """The schedule exactly as laid out (no superstep compaction)."""
        return BspSchedule(self.dag, self.machine, self.proc.copy(), self.step.copy())

    def recompute_cost(self) -> float:
        """Recompute the total cost of the current layout from scratch.

        Testing / debugging aid: must always equal :attr:`total_cost`.
        """
        return float(self.current_schedule().cost())
