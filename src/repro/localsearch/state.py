"""Incremental cost state for the hill-climbing local search.

The paper's HC algorithm (Section 4.3, Appendix A.3) relies on data
structures that allow the cost change of a candidate move to be evaluated
without recomputing the whole schedule cost.  This module provides that
state for schedules with a *lazy* communication schedule, kept entirely in
flat numpy arrays (the Dask-scheduler idiom: redundant, constant-time
structures owned by one kernel layer):

* the ``(S, P)`` work / send / receive matrices and their per-superstep
  costs, owned by the shared
  :class:`~repro.localsearch.engine.IncrementalCostEngine` (both layers go
  through :func:`repro.model.cost.superstep_matrices` and
  :func:`repro.model.cost.superstep_row_costs`, so the cost formula has a
  single source of truth),
* dense ``(n, P)`` tables ``succ_min`` / ``succ_min_cnt`` / ``succ_cnt``
  holding, for every node ``u`` and processor ``p``, the earliest superstep
  of a successor of ``u`` on ``p``, how many successors sit at that earliest
  step and how many successors are on ``p`` in total — which is exactly the
  information needed to maintain the (lazy) communication step of every
  transfer ``u -> p`` in O(1) per move (with an occasional CSR rescan when
  the minimum disappears),
* dense ``(n, P)`` step-bound tables ``lo`` / ``hi`` giving, for every node
  and target processor, the window of supersteps the node may legally move
  to.  They are built in one vectorized pass over the CSR edge arrays and
  patched lazily for the few nodes whose neighbourhood an applied move
  touched, so per-node candidate generation never rescans adjacency in
  Python.

Moves are applied with :meth:`LocalSearchState.apply_move`; candidate moves
are probed with :meth:`LocalSearchState.move_delta`, which computes the cost
change and leaves the state unchanged.  Both the hill-climbing variants and
simulated annealing share these two entry points.  For pass-level searches,
:meth:`LocalSearchState.candidate_mask` exposes the whole move neighbourhood
(step bounds and memory feasibility included) as one dense boolean array,
and :meth:`LocalSearchState.probe_dependents` names the nodes whose probe
results an applied move can invalidate — which is what lets
:func:`~repro.localsearch.hill_climbing.hill_climb` skip re-probing nodes
whose neighbourhood provably did not change.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.dag import ComputationalDAG
from ..model.cost import superstep_matrices
from ..model.machine import MEMORY_EPS, BspMachine
from ..model.schedule import BspSchedule
from .engine import IncrementalCostEngine

__all__ = ["LocalSearchState", "Move"]

Move = Tuple[int, int, int]
"""A candidate move ``(node, new_processor, new_superstep)``."""

#: Sentinel for "no successor of u on p" in the ``succ_min`` table.  Large
#: enough to never be a real superstep, small enough that ``_NO_STEP - 1`` does
#: not overflow int64 arithmetic.
_NO_STEP = np.iinfo(np.int64).max // 4

_EMPTY_ROWS = np.zeros(0, dtype=np.int64)


class LocalSearchState:
    """Mutable scheduling state with incremental BSP+NUMA cost maintenance."""

    #: Number of spare superstep rows kept at the end of the matrices so that
    #: moves into a brand new superstep never need an immediate reallocation.
    _SLACK = 4

    def __init__(self, schedule: BspSchedule) -> None:
        self.dag: ComputationalDAG = schedule.dag
        self.machine: BspMachine = schedule.machine
        self.proc = np.asarray(schedule.proc, dtype=np.int64).copy()
        self.step = np.asarray(schedule.step, dtype=np.int64).copy()
        n = self.dag.n
        self.P = self.machine.P
        self.g = float(self.machine.g)
        self.l = float(self.machine.l)
        self.numa = np.asarray(self.machine.numa, dtype=np.float64)

        # CSR adjacency views and float weight arrays used on the hot path.
        self._succ_indptr = self.dag.succ_indptr
        self._succ_indices = self.dag.succ_indices
        self._pred_indptr = self.dag.pred_indptr
        self._pred_indices = self.dag.pred_indices
        self._work_of = np.asarray(self.dag.work, dtype=np.float64)
        self._comm_of = np.asarray(self.dag.comm, dtype=np.float64)
        # Plain-python mirrors for scalar hot-loop lookups (a numpy scalar
        # index costs ~10x a list index).
        self._work_list = self._work_of.tolist()
        self._comm_list = self._comm_of.tolist()
        self._numa_list = self.numa.tolist()

        # Memory-constrained model variant: per-node memory weights and the
        # running per-processor usage, maintained only when the machine
        # carries bounds (the unconstrained hot path pays nothing).
        bounds = self.machine.memory_bounds
        if bounds is None:
            self._mem_bounds: Optional[List[float]] = None
            self._mem_list: List[float] = []
            self.mem_used: List[float] = []
        else:
            self._mem_bounds = bounds.tolist()
            mem = np.asarray(self.dag.memory, dtype=np.float64)
            self._mem_list = mem.tolist()
            self.mem_used = (
                np.bincount(self.proc, weights=mem, minlength=self.P).tolist()
                if n
                else [0.0] * self.P
            )

        # The (S, P) matrices come from the same code path as model.cost:
        # the lazy-communication matrices of the current assignment.  The
        # engine owns them together with the per-row costs and the total.
        lazy = BspSchedule(self.dag, self.machine, self.proc, self.step)
        work, send, recv = superstep_matrices(lazy)
        max_step = int(self.step.max()) if n else 0
        slack = max_step + 1 + self._SLACK - work.shape[0]
        self.engine = IncrementalCostEngine(work, send, recv, self.g, self.l, slack=slack)

        # Dense successor-step tables replacing the per-(node, processor)
        # Counter multisets of earlier revisions.  They are built vectorized
        # but kept as plain nested python lists afterwards: every hot-path
        # access is a scalar read/write, which python lists serve ~10x
        # faster than numpy fancy scalar indexing.
        succ_min = np.full((n, self.P), _NO_STEP, dtype=np.int64)
        succ_min_cnt = np.zeros((n, self.P), dtype=np.int64)
        succ_cnt = np.zeros((n, self.P), dtype=np.int64)
        if self.dag.num_edges:
            eu = self.dag.edge_sources
            pv = self.proc[self.dag.edge_targets]
            sv = self.step[self.dag.edge_targets]
            np.add.at(succ_cnt, (eu, pv), 1)
            np.minimum.at(succ_min, (eu, pv), sv)
            at_min = sv == succ_min[eu, pv]
            np.add.at(succ_min_cnt, (eu[at_min], pv[at_min]), 1)
        self.succ_min: List[List[int]] = succ_min.tolist()
        self.succ_min_cnt: List[List[int]] = succ_min_cnt.tolist()
        self.succ_cnt: List[List[int]] = succ_cnt.tolist()

        # Dense per-(node, processor) step-bound tables; built vectorized on
        # first use (pass-level searches need all rows, probe-only users
        # like simulated annealing never pay for the full build).
        self._lo: Optional[np.ndarray] = None
        self._hi: Optional[np.ndarray] = None
        self._bounds_dirty = np.zeros(n, dtype=bool)

        #: Superstep rows read by the most recent :meth:`move_deltas` probe
        #: (the probe's delta is a pure function of these rows plus the
        #: probed node's 2-hop neighbourhood assignments).
        self.last_probe_rows: np.ndarray = _EMPTY_ROWS
        #: Superstep rows whose matrices the most recent :meth:`apply_move`
        #: changed (unique, within range).
        self.last_touched_rows: np.ndarray = _EMPTY_ROWS

    # ------------------------------------------------------------------
    # Engine delegation (the matrices live on the shared engine)
    # ------------------------------------------------------------------
    @property
    def work(self) -> np.ndarray:
        return self.engine.work

    @property
    def send(self) -> np.ndarray:
        return self.engine.send

    @property
    def recv(self) -> np.ndarray:
        return self.engine.recv

    @property
    def step_cost(self) -> np.ndarray:
        return self.engine.step_cost

    @property
    def total_cost(self) -> float:
        return self.engine.total_cost

    @property
    def S(self) -> int:
        return self.engine.S

    @property
    def memory_bounded(self) -> bool:
        """Whether the machine carries per-processor memory bounds."""
        return self._mem_bounds is not None

    def _ensure_capacity(self, s: int) -> None:
        self.engine.ensure_capacity(s)

    # ------------------------------------------------------------------
    # Low-level helpers
    # ------------------------------------------------------------------
    def _needed_step(self, u: int, p: int) -> Optional[int]:
        """Earliest superstep in which a successor of ``u`` on ``p`` runs."""
        m = self.succ_min[u][p]
        return None if m >= _NO_STEP else m

    def _succ_inc(self, u: int, p: int, s: int) -> None:
        """Record one more successor of ``u`` on processor ``p`` at step ``s``."""
        self.succ_cnt[u][p] += 1
        m = self.succ_min[u][p]
        if s < m:
            self.succ_min[u][p] = s
            self.succ_min_cnt[u][p] = 1
        elif s == m:
            self.succ_min_cnt[u][p] += 1

    def _succ_dec(self, u: int, p: int, s: int) -> None:
        """Remove one successor of ``u`` on processor ``p`` at step ``s``.

        When the last successor at the current minimum disappears the new
        minimum is recovered by a CSR rescan of ``u``'s successor list; that
        scan must therefore run *after* ``proc``/``step`` reflect the move.
        """
        self.succ_cnt[u][p] -= 1
        if s != self.succ_min[u][p]:
            return
        cnt = self.succ_min_cnt[u][p] - 1
        if cnt > 0:
            self.succ_min_cnt[u][p] = cnt
        elif self.succ_cnt[u][p] == 0:
            self.succ_min[u][p] = _NO_STEP
            self.succ_min_cnt[u][p] = 0
        else:
            children = self._succ_indices[self._succ_indptr[u]:self._succ_indptr[u + 1]]
            steps = self.step[children[self.proc[children] == p]]
            new_min = int(steps.min())
            self.succ_min[u][p] = new_min
            self.succ_min_cnt[u][p] = int((steps == new_min).sum())

    # ------------------------------------------------------------------
    # Move validity
    # ------------------------------------------------------------------
    def _step_bounds(self, v: int) -> Tuple[List[int], List[int]]:
        """Per-processor bounds ``lo[p] <= new_step <= hi[p]`` for moving ``v``.

        A predecessor on the target processor allows equality, any other
        predecessor forces strict inequality; symmetrically for successors.
        This is the scalar reference used to patch single rows of the dense
        bound tables; the tables themselves are built by the vectorized
        :meth:`_build_bounds`.
        """
        P = self.P
        lo = [0] * P
        hi = [_NO_STEP] * P
        for u in self._pred_indices[self._pred_indptr[v]:self._pred_indptr[v + 1]].tolist():
            su = int(self.step[u])
            pu = int(self.proc[u])
            strict = su + 1
            for p in range(P):
                bound = su if p == pu else strict
                if bound > lo[p]:
                    lo[p] = bound
        for w in self._succ_indices[self._succ_indptr[v]:self._succ_indptr[v + 1]].tolist():
            sw = int(self.step[w])
            pw = int(self.proc[w])
            strict = sw - 1
            for p in range(P):
                bound = sw if p == pw else strict
                if bound < hi[p]:
                    hi[p] = bound
        return lo, hi

    def _build_bounds(self) -> None:
        """Vectorized construction of the dense ``(n, P)`` lo / hi tables.

        ``lo[v, p] = max over preds u of (step[u] + (proc[u] != p))`` and
        ``hi[v, p] = min over succs w of (step[w] - (proc[w] != p))`` are
        computed for *all* nodes in one pass over the CSR edge arrays using
        the column-excluded-extremum trick: per-(node, processor) extrema of
        the neighbour steps plus the top-2 extrema across processors.
        """
        n, P = self.dag.n, self.P
        lo = np.zeros((n, P), dtype=np.int64)
        hi = np.full((n, P), _NO_STEP, dtype=np.int64)
        if self.dag.num_edges:
            eu = self.dag.edge_sources
            ev = self.dag.edge_targets
            rows = np.arange(n)
            cols = np.arange(P)[None, :]

            # Predecessor side: per-(v, p) max step of preds on p ...
            on = np.full((n, P), -1, dtype=np.int64)
            np.maximum.at(on, (ev, self.proc[eu]), self.step[eu])
            # ... and the max over the *other* processors, via top-2 maxima.
            m1 = on.max(axis=1)
            a1 = on.argmax(axis=1)
            masked = on.copy()
            masked[rows, a1] = -1
            m2 = masked.max(axis=1)
            excl = np.where(cols == a1[:, None], m2[:, None], m1[:, None])
            lo = np.maximum(np.maximum(excl + 1, on), 0)

            # Successor side, symmetric with minima.
            on_s = np.full((n, P), _NO_STEP, dtype=np.int64)
            np.minimum.at(on_s, (eu, self.proc[ev]), self.step[ev])
            m1s = on_s.min(axis=1)
            a1s = on_s.argmin(axis=1)
            masked_s = on_s.copy()
            masked_s[rows, a1s] = _NO_STEP
            m2s = masked_s.min(axis=1)
            excl_s = np.where(cols == a1s[:, None], m2s[:, None], m1s[:, None])
            # "No successor off p" must stay at the sentinel, not sentinel-1.
            excl_s = np.where(excl_s >= _NO_STEP, _NO_STEP, excl_s - 1)
            hi = np.minimum(excl_s, on_s)
        self._lo = lo
        self._hi = hi
        self._bounds_dirty = np.zeros(n, dtype=bool)

    def _bounds_row(self, v: int) -> Tuple[List[int], List[int]]:
        """Fresh lo / hi bounds of ``v`` as python lists, patching if dirty."""
        if self._lo is None:
            return self._step_bounds(v)
        if self._bounds_dirty[v]:
            lo, hi = self._step_bounds(v)
            self._lo[v] = lo
            self._hi[v] = hi
            self._bounds_dirty[v] = False
            return lo, hi
        return self._lo[v].tolist(), self._hi[v].tolist()

    def _refresh_bounds(self) -> None:
        """Materialize the dense bound tables / patch every dirty row."""
        if self._lo is None:
            self._build_bounds()
            return
        if not self._bounds_dirty.any():
            return
        for v in np.nonzero(self._bounds_dirty)[0].tolist():
            lo, hi = self._step_bounds(v)
            self._lo[v] = lo
            self._hi[v] = hi
        self._bounds_dirty[:] = False

    def _memory_ok(self, v: int, new_proc: int) -> bool:
        """Whether moving ``v`` onto ``new_proc`` respects its memory bound.

        This is the memory mask of the move neighbourhood: together with
        :meth:`is_move_valid` / :meth:`candidate_moves` it keeps every move
        probed by :meth:`move_deltas` (whose precondition is a valid move)
        within the per-processor bounds, so the local searches never leave
        the memory-feasible region once they start inside it.
        """
        if self._mem_bounds is None or new_proc == self.proc[v]:
            return True
        return (
            self.mem_used[new_proc] + self._mem_list[v]
            <= self._mem_bounds[new_proc] + MEMORY_EPS
        )

    def is_move_valid(self, v: int, new_proc: int, new_step: int) -> bool:
        """Check whether moving ``v`` keeps the (lazy-comm) schedule valid.

        Assignments of all other nodes are unchanged, so the conditions are
        local: every predecessor must still be able to deliver its value,
        every successor must still receive ``v``'s value in time, and the
        target processor must have memory capacity left for ``v`` when the
        machine is memory-bounded.
        """
        if new_step < 0 or not (0 <= new_proc < self.P):
            return False
        if new_proc == self.proc[v] and new_step == self.step[v]:
            return False
        if not self._memory_ok(v, new_proc):
            return False
        lo, hi = self._bounds_row(v)
        return lo[new_proc] <= new_step <= hi[new_proc]

    def candidate_moves(self, v: int) -> List[Move]:
        """All valid moves of ``v`` to any processor in supersteps s-1, s, s+1.

        Moves whose target processor lacks memory capacity for ``v`` are
        masked out, so downstream :meth:`move_deltas` probes only see
        memory-feasible candidates.
        """
        s = int(self.step[v])
        p0 = int(self.proc[v])
        lo, hi = self._bounds_row(v)
        moves: List[Move] = []
        for target_step in (s - 1, s, s + 1):
            if target_step < 0:
                continue
            for p in range(self.P):
                if (
                    lo[p] <= target_step <= hi[p]
                    and not (target_step == s and p == p0)
                    and self._memory_ok(v, p)
                ):
                    moves.append((v, p, target_step))
        return moves

    def candidate_mask(self) -> np.ndarray:
        """Dense ``(n, 3, P)`` mask of the whole move neighbourhood.

        ``mask[v, j, p]`` is True iff moving ``v`` to processor ``p`` in
        superstep ``step[v] + j - 1`` is valid (step bounds, non-identity
        and memory feasibility included); axis 1 enumerates the target steps
        ``s-1, s, s+1`` in :meth:`candidate_moves` order, so
        ``np.nonzero(mask[v])`` reproduces that method's move ordering.
        """
        n = self.dag.n
        mask = np.zeros((n, 3, self.P), dtype=bool)
        if n == 0:
            return mask
        self._refresh_bounds()
        t = self.step[:, None] + np.array([-1, 0, 1], dtype=np.int64)[None, :]
        t3 = t[:, :, None]
        mask = (self._lo[:, None, :] <= t3) & (t3 <= self._hi[:, None, :]) & (t3 >= 0)
        mask[np.arange(n), 1, self.proc] = False
        if self._mem_bounds is not None:
            used = np.asarray(self.mem_used)
            bounds = np.asarray(self._mem_bounds)
            mem = np.asarray(self._mem_list)
            fits = mem[:, None] + used[None, :] <= bounds[None, :] + MEMORY_EPS
            fits[np.arange(n), self.proc] = True
            mask &= fits[:, None, :]
        return mask

    def moves_from_mask(self, v: int, mask_row: np.ndarray) -> List[Move]:
        """Decode one row of :meth:`candidate_mask` into a move list."""
        s = int(self.step[v])
        steps, procs = np.nonzero(mask_row)
        return [(v, int(p), s + int(j) - 1) for j, p in zip(steps, procs)]

    def probe_dependents(self, v: int) -> np.ndarray:
        """Nodes whose cached probe results a move of ``v`` can invalidate.

        A :meth:`move_deltas` probe of ``x`` reads the assignments of ``x``,
        its predecessors and successors, and — through the successor-step
        tables of its predecessors — of the other successors of those
        predecessors.  Moving ``v`` therefore only affects probes of ``v``
        itself, its neighbours, and its siblings-through-a-shared-parent;
        all other probe results stay valid as long as the superstep rows
        they read (:attr:`last_probe_rows`) are untouched.
        """
        preds = self._pred_indices[self._pred_indptr[v]:self._pred_indptr[v + 1]]
        parts = [
            np.array([v], dtype=np.int64),
            preds,
            self._succ_indices[self._succ_indptr[v]:self._succ_indptr[v + 1]],
        ]
        si, sx = self._succ_indptr, self._succ_indices
        parts.extend(sx[si[u]:si[u + 1]] for u in preds.tolist())
        return np.unique(np.concatenate(parts))

    # ------------------------------------------------------------------
    # Applying moves
    # ------------------------------------------------------------------
    def _apply_raw(self, v: int, new_proc: int, new_step: int, touched: List[int]) -> None:
        """Update all matrices and tables for the move, without refreshing
        the per-step costs; affected superstep rows are appended to
        ``touched``."""
        old_proc = int(self.proc[v])
        old_step = int(self.step[v])
        touched.append(old_step)
        touched.append(new_step)
        engine = self.engine
        send = engine.send
        recv = engine.recv

        # --- work matrix -------------------------------------------------
        w_v = self._work_list[v]
        engine.work[old_step, old_proc] -= w_v
        engine.work[new_step, new_proc] += w_v

        # --- outgoing transfers of v (v as the producer) -------------------
        # The set of target processors and their needed steps do not change,
        # but the source processor (and hence the NUMA weight and the sending
        # processor's load) does, and targets equal to the old/new processor
        # appear/disappear.  One vectorized scatter per matrix replaces the
        # per-processor python loop (np.add.at keeps duplicate target rows
        # accumulating in the same ascending-q order as the loop did).
        c_v = self._comm_list[v]
        nd = np.fromiter(self.succ_min[v], dtype=np.int64, count=self.P)
        targets_q = np.nonzero(nd < _NO_STEP)[0]
        if targets_q.size:
            rows = nd[targets_q] - 1
            old_mask = targets_q != old_proc
            if old_mask.any():
                volumes = c_v * self.numa[old_proc, targets_q[old_mask]]
                np.subtract.at(send, (rows[old_mask], old_proc), volumes)
                np.subtract.at(recv, (rows[old_mask], targets_q[old_mask]), volumes)
                touched.extend(rows[old_mask].tolist())
            new_mask = targets_q != new_proc
            if new_mask.any():
                volumes = c_v * self.numa[new_proc, targets_q[new_mask]]
                np.add.at(send, (rows[new_mask], new_proc), volumes)
                np.add.at(recv, (rows[new_mask], targets_q[new_mask]), volumes)
                touched.extend(rows[new_mask].tolist())

        # Commit v's new position before touching the successor tables of its
        # parents: the rescan inside _succ_dec reads proc/step and must see
        # the post-move assignment.
        self.proc[v] = new_proc
        self.step[v] = new_step
        if self._mem_bounds is not None and new_proc != old_proc:
            m_v = self._mem_list[v]
            self.mem_used[old_proc] -= m_v
            self.mem_used[new_proc] += m_v

        # --- incoming transfers (v as a consumer of its predecessors) ------
        # The only target processors whose "first needed" superstep can
        # change are v's old and new processor.
        numa = self._numa_list
        targets = (old_proc,) if new_proc == old_proc else (old_proc, new_proc)
        for u in self._pred_indices[self._pred_indptr[v]:self._pred_indptr[v + 1]].tolist():
            pu = int(self.proc[u])
            min_row = self.succ_min[u]
            old_needed = [min_row[q] for q in targets]
            if new_proc == old_proc:
                # Same-processor step change: add before remove so that a
                # rescan triggered by the removal sees the final multiset.
                self._succ_inc(u, new_proc, new_step)
                self._succ_dec(u, old_proc, old_step)
            else:
                self._succ_dec(u, old_proc, old_step)
                self._succ_inc(u, new_proc, new_step)
            for q, was_needed in zip(targets, old_needed):
                if q == pu:
                    continue
                now_needed = min_row[q]
                if was_needed == now_needed:
                    continue
                volume = self._comm_list[u] * numa[pu][q]
                if was_needed < _NO_STEP:
                    send[was_needed - 1, pu] -= volume
                    recv[was_needed - 1, q] -= volume
                    touched.append(was_needed - 1)
                if now_needed < _NO_STEP:
                    send[now_needed - 1, pu] += volume
                    recv[now_needed - 1, q] += volume
                    touched.append(now_needed - 1)

        # The step bounds of v's neighbours depend on v's assignment; patch
        # their dense rows lazily on next access.
        self._bounds_dirty[
            self._pred_indices[self._pred_indptr[v]:self._pred_indptr[v + 1]]
        ] = True
        self._bounds_dirty[
            self._succ_indices[self._succ_indptr[v]:self._succ_indptr[v + 1]]
        ] = True

    def apply_move(self, v: int, new_proc: int, new_step: int) -> float:
        """Apply the move and return the new total cost.

        The caller is responsible for only applying valid moves (see
        :meth:`is_move_valid`); to revert, apply the inverse move with the
        node's previous processor and superstep.
        """
        engine = self.engine
        engine.ensure_capacity(new_step)
        touched: List[int] = []
        self._apply_raw(v, new_proc, new_step, touched)
        rows = np.unique(np.fromiter(touched, dtype=np.int64))
        rows = rows[(rows >= 0) & (rows < engine.S)]
        self.last_touched_rows = rows
        engine.refresh_rows(rows)
        return engine.total_cost

    def move_deltas_many(
        self, items: Sequence[Tuple[int, Sequence[Move]]]
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Cost changes for candidate moves of *many* nodes, state unchanged.

        This is the batched probe at the heart of the local searches.  For
        each ``(v, moves)`` item, ``v``'s contribution at its current
        position is removed once (shared by all its candidates) and each
        candidate's additions are scattered into its own copy of the
        affected superstep rows; the copies of *all items* live in one
        ``(3, sum_i K_i * nR_i, P)`` tensor, so the whole batch costs one
        gather, two scatter-adds and a single fused cost-kernel pass instead
        of a dozen numpy calls per node.  All moves of an item must be valid
        moves of that item's node (e.g. :meth:`candidate_moves` output); all
        probes are evaluated against the same (current) state.

        Returns ``(deltas, rows)``: per item, the per-candidate cost deltas
        and the sorted superstep rows the probe read (the probe result is a
        pure function of those rows plus the node's 2-hop neighbourhood
        assignments — see :meth:`probe_dependents`).
        """
        engine = self.engine
        P = self.P
        numa = self._numa_list
        sc = engine.step_cost_list
        max_s = -1
        for _, moves in items:
            for mm in moves:
                if mm[2] > max_s:
                    max_s = mm[2]
        if max_s >= 0:
            engine.ensure_capacity(max_s)
        S = engine.S

        all_rows: List[int] = []      #: concatenated per-item sorted row sets
        src: List[int] = []           #: base-row index for each expanded row
        rm_m: List[int] = []          #: removal scatter (matrix, row, col, val)
        rm_r: List[int] = []
        rm_c: List[int] = []
        rm_v: List[float] = []
        ad_m: List[int] = []          #: per-candidate addition scatter
        ad_r: List[int] = []
        ad_c: List[int] = []
        ad_v: List[float] = []
        seg_starts: List[int] = []    #: first expanded row of every candidate
        base_costs: List[float] = []  #: current cost of each item's rows, per candidate
        shape: List[Tuple[int, int]] = []
        rows_out: List[np.ndarray] = []
        n_off = 0   # rows gathered so far
        m_off = 0   # expanded (candidate-replicated) rows so far

        for v, moves in items:
            if not moves:
                shape.append((0, 0))
                rows_out.append(_EMPTY_ROWS)
                continue
            p0 = int(self.proc[v])
            s0 = int(self.step[v])
            parents = self._pred_indices[self._pred_indptr[v]:self._pred_indptr[v + 1]].tolist()
            proc_of = {u: int(self.proc[u]) for u in parents}
            w_v = self._work_list[v]
            c_v = self._comm_list[v]

            # Targets of v's outgoing transfers (independent of v's position).
            needed_row = self.succ_min[v]
            out_q = [q for q in range(P) if needed_row[q] < _NO_STEP]
            out_rows = [needed_row[q] - 1 for q in out_q]

            # --- phase 1: virtually remove v from the successor tables -----
            # The sentinel step keeps a _succ_dec rescan from seeing v at s0.
            # Collection runs under try/finally so that even a probe of an
            # invalid move (a precondition violation) cannot leave the
            # tables in the "v removed" state.
            old_nd_p0 = {}
            self.step[v] = _NO_STEP
            for u in parents:
                old_nd_p0[u] = self.succ_min[u][p0]
                self._succ_dec(u, p0, s0)
            try:
                # --- collect every superstep row a candidate can touch -----
                cand_procs = {m[1] for m in moves}
                cand_procs.add(p0)
                rows = {s0}
                rows.update(out_rows)
                for (_, _, s) in moves:
                    rows.add(s)
                    rows.add(s - 1)
                base_nd: dict = {}
                for u in parents:
                    if old_nd_p0[u] < _NO_STEP:
                        rows.add(old_nd_p0[u] - 1)
                    min_row = self.succ_min[u]
                    for p in cand_procs:
                        nd = min_row[p]
                        base_nd[(u, p)] = nd
                        if nd < _NO_STEP:
                            rows.add(nd - 1)
                rows_sorted = sorted(r for r in rows if 0 <= r < S)
                nR = len(rows_sorted)
                ridx = dict(zip(rows_sorted, range(nR)))

                # --- phase 2: shared removal deltas (item's base rows) -----
                rm_m.append(0)
                rm_r.append(n_off + ridx[s0])
                rm_c.append(p0)
                rm_v.append(-w_v)
                for q, row in zip(out_q, out_rows):
                    if q == p0:
                        continue
                    volume = c_v * numa[p0][q]
                    i = n_off + ridx[row]
                    rm_m += (1, 2)
                    rm_r += (i, i)
                    rm_c += (p0, q)
                    rm_v += (-volume, -volume)
                for u in parents:
                    pu = proc_of[u]
                    if pu == p0:
                        continue
                    nd_old, nd_new = old_nd_p0[u], base_nd[(u, p0)]
                    if nd_old == nd_new:
                        continue
                    volume = self._comm_list[u] * numa[pu][p0]
                    if nd_old < _NO_STEP:
                        i = n_off + ridx[nd_old - 1]
                        rm_m += (1, 2)
                        rm_r += (i, i)
                        rm_c += (pu, p0)
                        rm_v += (-volume, -volume)
                    if nd_new < _NO_STEP:
                        i = n_off + ridx[nd_new - 1]
                        rm_m += (1, 2)
                        rm_r += (i, i)
                        rm_c += (pu, p0)
                        rm_v += (volume, volume)

                # --- phase 3: per-candidate addition deltas ----------------
                K = len(moves)
                for k, (_, p, s) in enumerate(moves):
                    fo = m_off + k * nR
                    seg_starts.append(fo)
                    ad_m.append(0)
                    ad_r.append(fo + ridx[s])
                    ad_c.append(p)
                    ad_v.append(w_v)
                    for q, row in zip(out_q, out_rows):
                        if q == p:
                            continue
                        volume = c_v * numa[p][q]
                        i = fo + ridx[row]
                        ad_m += (1, 2)
                        ad_r += (i, i)
                        ad_c += (p, q)
                        ad_v += (volume, volume)
                    for u in parents:
                        pu = proc_of[u]
                        if p == pu:
                            continue
                        nd = base_nd[(u, p)]
                        if s < nd:
                            # v becomes the earliest consumer of u on p: the
                            # (lazy) transfer u -> p moves from superstep
                            # nd-1 to superstep s-1.
                            volume = self._comm_list[u] * numa[pu][p]
                            if nd < _NO_STEP:
                                i = fo + ridx[nd - 1]
                                ad_m += (1, 2)
                                ad_r += (i, i)
                                ad_c += (pu, p)
                                ad_v += (-volume, -volume)
                            i = fo + ridx[s - 1]
                            ad_m += (1, 2)
                            ad_r += (i, i)
                            ad_c += (pu, p)
                            ad_v += (volume, volume)
            finally:
                # --- phase 4: restore the successor tables -----------------
                for u in parents:
                    self._succ_inc(u, p0, s0)
                self.step[v] = s0

            bc = 0.0
            for r in rows_sorted:
                bc += sc[r]
            base_costs.extend([bc] * K)
            rr = list(range(n_off, n_off + nR))
            for _ in range(K):
                src += rr
            all_rows += rows_sorted
            rows_out.append(np.fromiter(rows_sorted, dtype=np.int64, count=nR))
            shape.append((K, nR))
            n_off += nR
            m_off += K * nR

        if m_off == 0:
            return [np.zeros(0, dtype=np.float64) for _ in items], rows_out

        # --- phase 5: one gather + scatter + fused cost pass for the batch -
        # Every item owns its own copies of its rows, so duplicate rows
        # across items are independent; the additions scatter must be a
        # buffered np.add.at because one candidate can hit a cell twice.
        R_all = np.fromiter(all_rows, dtype=np.int64, count=n_off)
        base_big = engine.mats[:, R_all]
        np.add.at(base_big, (rm_m, rm_r, rm_c), rm_v)
        T = base_big[:, np.fromiter(src, dtype=np.int64, count=m_off)]
        np.add.at(T, (ad_m, ad_r, ad_c), ad_v)

        from ..model.cost import superstep_block_costs

        costs = superstep_block_costs(T, self.g, self.l)
        sums = np.add.reduceat(costs, np.fromiter(seg_starts, dtype=np.int64, count=len(seg_starts)))
        diff = sums - np.array(base_costs)
        deltas: List[np.ndarray] = []
        k_off = 0
        for K, _ in shape:
            deltas.append(diff[k_off:k_off + K])
            k_off += K
        return deltas, rows_out

    def move_deltas(self, v: int, moves: Sequence[Move]) -> np.ndarray:
        """Cost changes of several candidate moves of ``v``, state unchanged.

        Single-item convenience wrapper around :meth:`move_deltas_many`.
        All ``moves`` must be valid moves of the same node ``v`` (e.g. the
        output of :meth:`candidate_moves`).
        """
        if not moves:
            return np.zeros(0, dtype=np.float64)
        deltas, rows = self.move_deltas_many([(v, moves)])
        self.last_probe_rows = rows[0]
        return deltas[0]

    def move_delta(self, v: int, new_proc: int, new_step: int) -> float:
        """Cost change the move would cause, leaving the state unchanged."""
        return float(self.move_deltas(v, [(v, new_proc, new_step)])[0])

    def evaluate_move(self, v: int, new_proc: int, new_step: int) -> float:
        """Cost after the move, computed without changing the state."""
        return self.total_cost + self.move_delta(v, new_proc, new_step)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_schedule(self) -> BspSchedule:
        """Materialize the current state as a (lazy-comm) BSP schedule with
        compacted superstep indices.

        Compaction removes empty supersteps, so the returned schedule's cost
        is less than or equal to :attr:`total_cost` (which prices the
        schedule exactly as currently laid out).
        """
        sched = BspSchedule(self.dag, self.machine, self.proc.copy(), self.step.copy())
        return sched.normalized()

    def current_schedule(self) -> BspSchedule:
        """The schedule exactly as laid out (no superstep compaction)."""
        return BspSchedule(self.dag, self.machine, self.proc.copy(), self.step.copy())

    def recompute_cost(self) -> float:
        """Recompute the total cost of the current layout from scratch.

        Testing / debugging aid: must always equal :attr:`total_cost`.
        """
        return float(self.current_schedule().cost())
