"""HC: hill-climbing local search over node moves (paper Section 4.3).

Starting from a valid BSP schedule, HC repeatedly applies single-node moves
that strictly decrease the total cost: a node currently at (processor ``p``,
superstep ``s``) may be moved to any processor in supersteps ``s-1``, ``s``
or ``s+1``, with all other assignments unchanged, as long as the result is
still a valid schedule (under the lazy communication schedule).

The paper's preliminary experiments found the greedy first-improvement
variant to match the steepest-descent variant in quality at a fraction of
the run time; both are available here (``variant="first"`` /
``variant="best"``), the greedy one being the default used by the combined
pipeline.

The scan itself is pass-vectorized: each pass starts from the dense
candidate mask of :meth:`LocalSearchState.candidate_mask` (one numpy pass
over all nodes instead of n python neighbourhood scans), and between applied
moves the state is static, so a node whose last probe found no improving
move — and whose probe dependencies (its 2-hop neighbourhood via
:meth:`LocalSearchState.probe_dependents` and the superstep rows the probe
read) have not changed since — is provably still non-improving and is
skipped without re-probing.  The applied move sequence is byte-identical to
the naive probe-every-node scan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..model.schedule import BspSchedule
from ..obs import trace as _trace
from .state import LocalSearchState

__all__ = ["HillClimbingResult", "hill_climb", "HillClimbingImprover"]

_EPS = 1e-9

#: Budget checks between ``time.monotonic()`` reads.  Clock reads are ~100ns
#: each but called once per node in the scan loop, which dominates on small
#: instances; striding keeps time limits responsive to within a few dozen
#: probes while making the common (no-limit or large-instance) case free.
_CLOCK_STRIDE = 64

#: Nodes probed per :meth:`LocalSearchState.move_deltas_many` batch.  Large
#: enough to amortize the batch's fixed numpy overhead, small enough that an
#: applied move (which invalidates prefetched results through its touched
#: superstep rows) wastes at most the tail of one chunk.
_BATCH = 16


@dataclass
class HillClimbingResult:
    """Outcome of a hill-climbing run."""

    schedule: BspSchedule
    initial_cost: float
    final_cost: float
    moves_applied: int
    passes: int
    reached_local_optimum: bool

    @property
    def improvement(self) -> float:
        """Relative cost reduction achieved (0 if the start was already optimal)."""
        if self.initial_cost <= 0:
            return 0.0
        return 1.0 - self.final_cost / self.initial_cost


def hill_climb(
    schedule: BspSchedule,
    *,
    variant: str = "first",
    max_moves: Optional[int] = None,
    max_passes: Optional[int] = None,
    time_limit: Optional[float] = None,
) -> HillClimbingResult:
    """Run hill climbing on a schedule; returns the improved schedule.

    Parameters
    ----------
    variant:
        ``"first"`` applies the first improving move found (greedy, the
        paper's default); ``"best"`` scans all moves of a node and applies
        the one with the largest improvement.
    max_moves / max_passes / time_limit:
        Optional stopping criteria (any one of them ends the search early).
    """
    if variant not in ("first", "best"):
        raise ValueError("variant must be 'first' or 'best'")
    with _trace.span("hill_climb", variant=variant, nodes=schedule.dag.n) as tspan:
        return _hill_climb(
            schedule,
            variant=variant,
            max_moves=max_moves,
            max_passes=max_passes,
            time_limit=time_limit,
            tspan=tspan,
        )


def _hill_climb(
    schedule: BspSchedule,
    *,
    variant: str,
    max_moves: Optional[int],
    max_passes: Optional[int],
    time_limit: Optional[float],
    tspan: "_trace.SpanLike",
) -> HillClimbingResult:
    state = LocalSearchState(schedule)
    n = state.dag.n
    initial_cost = state.total_cost
    start_time = time.monotonic()
    moves_applied = 0
    passes = 0
    budget_calls = 0
    timed_out = False

    def out_of_budget() -> bool:
        nonlocal budget_calls, timed_out
        if max_moves is not None and moves_applied >= max_moves:
            return True
        if max_passes is not None and passes >= max_passes:
            return True
        if time_limit is not None:
            if timed_out:
                return True
            budget_calls += 1
            if budget_calls % _CLOCK_STRIDE == 1:
                timed_out = time.monotonic() - start_time > time_limit
                return timed_out
        return False

    # Probe-cache bookkeeping.  clean[v]: v's last probe found no improving
    # move and its 2-hop probe dependencies are unchanged since; it is still
    # non-improving iff the superstep rows that probe read (probe_rows[v])
    # are also untouched, which the monotone move-counter stamps check in
    # O(|rows|).  fresh[v]: v's row of the pass-level candidate mask still
    # matches candidate_moves(v).  dirty_stamp[v]: the move counter when an
    # applied move last invalidated v's probe dependencies — prefetched
    # batch results are consumed only if both their rows and their node
    # survived every move applied since the batch was probed.
    clean = np.zeros(n, dtype=bool)
    fresh = np.zeros(n, dtype=bool)
    probe_stamp = np.zeros(n, dtype=np.int64)
    dirty_stamp = np.zeros(n, dtype=np.int64)
    probe_rows: List[Optional[np.ndarray]] = [None] * n
    row_stamp = np.zeros(state.S, dtype=np.int64)
    move_counter = 0

    def stamp_rows(rows: np.ndarray) -> None:
        nonlocal row_stamp
        if rows.size:
            if int(rows[-1]) >= row_stamp.size:  # rows are sorted unique
                row_stamp = np.concatenate(
                    [row_stamp, np.zeros(int(rows[-1]) + 1 - row_stamp.size, dtype=np.int64)]
                )
            row_stamp[rows] = move_counter

    def rows_unchanged_since(rows: np.ndarray, stamp: int) -> bool:
        nonlocal row_stamp
        if rows.size == 0:
            return True
        if int(rows[-1]) >= row_stamp.size:
            row_stamp = np.concatenate(
                [row_stamp, np.zeros(int(rows[-1]) + 1 - row_stamp.size, dtype=np.int64)]
            )
        return int(row_stamp[rows].max()) <= stamp

    def probe_still_clean(v: int) -> bool:
        rows = probe_rows[v]
        return rows is not None and rows_unchanged_since(rows, int(probe_stamp[v]))

    # Prefetched probes: v -> (moves, deltas, rows, stamp).  Valid at v's
    # turn iff no applied move since `stamp` invalidated v's dependencies or
    # touched `rows` — in which case the cached deltas equal a fresh probe.
    cache: dict = {}

    def skippable(w: int) -> bool:
        if fresh[w] and not has_cands[w]:
            return True
        return bool(clean[w]) and probe_still_clean(w)

    improved_any = True
    while improved_any and not out_of_budget():
        improved_any = False
        passes += 1
        # One vectorized pass builds every node's candidate neighbourhood.
        mask = state.candidate_mask()
        has_cands = mask.any(axis=(1, 2))
        fresh[:] = True
        cache.clear()
        for v in range(n):
            if skippable(v):
                continue
            ent = cache.get(v)
            if ent is not None:
                moves, deltas, rows, stamp = ent
                if int(dirty_stamp[v]) > stamp or not rows_unchanged_since(rows, stamp):
                    del cache[v]
                    ent = None
            if ent is None:
                # Refill: probe v plus the next eligible nodes in one batch.
                batch = []
                w = v
                while w < n and len(batch) < _BATCH:
                    if not skippable(w):
                        entw = cache.get(w)
                        if entw is not None and (
                            int(dirty_stamp[w]) > entw[3]
                            or not rows_unchanged_since(entw[2], entw[3])
                        ):
                            # Invalidated prefetch: reclaim the slot so the
                            # node rides along in this batch.
                            del cache[w]
                            entw = None
                        if entw is None:
                            mv = (
                                state.moves_from_mask(w, mask[w])
                                if fresh[w]
                                else state.candidate_moves(w)
                            )
                            if mv:
                                batch.append((w, mv))
                    w += 1
                if batch:
                    deltas_many, rows_many = state.move_deltas_many(batch)
                    for (w, mv), dl, rw in zip(batch, deltas_many, rows_many):
                        cache[w] = (mv, dl, rw, move_counter)
                ent = cache.pop(v, None)
                if ent is None:
                    continue
                moves, deltas, rows, stamp = ent
            else:
                del cache[v]
            if out_of_budget():
                break
            if variant == "first":
                improving = np.nonzero(deltas < -_EPS)[0]
                chosen = int(improving[0]) if improving.size else None
            else:
                chosen = int(np.argmin(deltas))
                if deltas[chosen] >= -_EPS:
                    chosen = None
            if chosen is None:
                clean[v] = True
                probe_stamp[v] = stamp
                probe_rows[v] = rows
                continue
            _, p, s = moves[chosen]
            cross_proc = p != int(state.proc[v])
            state.apply_move(v, p, s)
            moves_applied += 1
            move_counter += 1
            improved_any = True
            stamp_rows(state.last_touched_rows)
            if state.memory_bounded and cross_proc:
                # Memory headroom changed on two processors; any node's
                # candidate set may have gained/lost targets.
                clean[:] = False
                fresh[:] = False
                dirty_stamp[:] = move_counter
            else:
                deps = state.probe_dependents(v)
                clean[deps] = False
                fresh[deps] = False
                dirty_stamp[deps] = move_counter
        if _trace.enabled():
            # Convergence telemetry: one cost-vs-pass sample per scan.  The
            # hook reads state, never steers the search.
            tspan.event(
                "pass", index=passes, cost=float(state.total_cost), moves=moves_applied
            )
    reached_local_optimum = not improved_any

    final = state.to_schedule()
    result = HillClimbingResult(
        schedule=final,
        initial_cost=float(initial_cost),
        final_cost=float(final.cost()),
        moves_applied=moves_applied,
        passes=passes,
        reached_local_optimum=reached_local_optimum,
    )
    if _trace.enabled():
        tspan.annotate(
            initial_cost=result.initial_cost,
            final_cost=result.final_cost,
            moves=moves_applied,
            passes=passes,
            engine_transactions=state.engine.transactions,
        )
    return result


class HillClimbingImprover:
    """Object-style wrapper so HC can be plugged into the pipeline config."""

    name = "HC"

    def __init__(
        self,
        variant: str = "first",
        max_moves: Optional[int] = None,
        max_passes: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> None:
        self.variant = variant
        self.max_moves = max_moves
        self.max_passes = max_passes
        self.time_limit = time_limit

    def improve(self, schedule: BspSchedule) -> BspSchedule:
        """Return the hill-climbed schedule (never worse than the input)."""
        result = hill_climb(
            schedule,
            variant=self.variant,
            max_moves=self.max_moves,
            max_passes=self.max_passes,
            time_limit=self.time_limit,
        )
        return result.schedule
