"""HC: hill-climbing local search over node moves (paper Section 4.3).

Starting from a valid BSP schedule, HC repeatedly applies single-node moves
that strictly decrease the total cost: a node currently at (processor ``p``,
superstep ``s``) may be moved to any processor in supersteps ``s-1``, ``s``
or ``s+1``, with all other assignments unchanged, as long as the result is
still a valid schedule (under the lazy communication schedule).

The paper's preliminary experiments found the greedy first-improvement
variant to match the steepest-descent variant in quality at a fraction of
the run time; both are available here (``variant="first"`` /
``variant="best"``), the greedy one being the default used by the combined
pipeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..model.schedule import BspSchedule
from .state import LocalSearchState

__all__ = ["HillClimbingResult", "hill_climb", "HillClimbingImprover"]

_EPS = 1e-9


@dataclass
class HillClimbingResult:
    """Outcome of a hill-climbing run."""

    schedule: BspSchedule
    initial_cost: float
    final_cost: float
    moves_applied: int
    passes: int
    reached_local_optimum: bool

    @property
    def improvement(self) -> float:
        """Relative cost reduction achieved (0 if the start was already optimal)."""
        if self.initial_cost <= 0:
            return 0.0
        return 1.0 - self.final_cost / self.initial_cost


def hill_climb(
    schedule: BspSchedule,
    *,
    variant: str = "first",
    max_moves: Optional[int] = None,
    max_passes: Optional[int] = None,
    time_limit: Optional[float] = None,
) -> HillClimbingResult:
    """Run hill climbing on a schedule; returns the improved schedule.

    Parameters
    ----------
    variant:
        ``"first"`` applies the first improving move found (greedy, the
        paper's default); ``"best"`` scans all moves of a node and applies
        the one with the largest improvement.
    max_moves / max_passes / time_limit:
        Optional stopping criteria (any one of them ends the search early).
    """
    if variant not in ("first", "best"):
        raise ValueError("variant must be 'first' or 'best'")
    state = LocalSearchState(schedule)
    initial_cost = state.total_cost
    start_time = time.monotonic()
    moves_applied = 0
    passes = 0
    reached_local_optimum = False

    def out_of_budget() -> bool:
        if max_moves is not None and moves_applied >= max_moves:
            return True
        if max_passes is not None and passes >= max_passes:
            return True
        if time_limit is not None and time.monotonic() - start_time > time_limit:
            return True
        return False

    improved_any = True
    while improved_any and not out_of_budget():
        improved_any = False
        passes += 1
        for v in range(state.dag.n):
            if out_of_budget():
                break
            moves = state.candidate_moves(v)
            if not moves:
                continue
            deltas = state.move_deltas(v, moves)
            if variant == "first":
                improving = np.nonzero(deltas < -_EPS)[0]
                chosen = int(improving[0]) if improving.size else None
            else:
                chosen = int(np.argmin(deltas))
                if deltas[chosen] >= -_EPS:
                    chosen = None
            if chosen is not None:
                _, p, s = moves[chosen]
                state.apply_move(v, p, s)
                moves_applied += 1
                improved_any = True
    reached_local_optimum = not improved_any

    final = state.to_schedule()
    return HillClimbingResult(
        schedule=final,
        initial_cost=float(initial_cost),
        final_cost=float(final.cost()),
        moves_applied=moves_applied,
        passes=passes,
        reached_local_optimum=reached_local_optimum,
    )


class HillClimbingImprover:
    """Object-style wrapper so HC can be plugged into the pipeline config."""

    name = "HC"

    def __init__(
        self,
        variant: str = "first",
        max_moves: Optional[int] = None,
        max_passes: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> None:
        self.variant = variant
        self.max_moves = max_moves
        self.max_passes = max_passes
        self.time_limit = time_limit

    def improve(self, schedule: BspSchedule) -> BspSchedule:
        """Return the hill-climbed schedule (never worse than the input)."""
        result = hill_climb(
            schedule,
            variant=self.variant,
            max_moves=self.max_moves,
            max_passes=self.max_passes,
            time_limit=self.time_limit,
        )
        return result.schedule
