"""Reusable incremental superstep-matrix cost engine.

Every local search in this package maintains the same redundant state: the
``(S, P)`` per-superstep work / send / receive matrices, the per-superstep
cost vector derived from them through
:func:`repro.model.cost.superstep_row_costs`, and the running total.  This
module owns that state once, so that applying a move is a constant-size
delta (a handful of matrix cells plus a refresh of the touched rows) instead
of a superstep-matrix rebuild, and so that a delta can be *reported* without
being applied at all (:meth:`IncrementalCostEngine.probe_cells`).

The three matrices are stored stacked in one ``(3, S, P)`` tensor
(:attr:`IncrementalCostEngine.mats`), so that the probe hot path reads the
affected rows of all three with a single fancy index and re-costs them with
the fused kernel :func:`repro.model.cost.superstep_block_costs` — bitwise
the same result as three separate reads plus
:func:`~repro.model.cost.superstep_row_costs`, at a third of the numpy
call overhead.

:class:`~repro.localsearch.state.LocalSearchState` (used by hill climbing
and simulated annealing) and
:class:`~repro.localsearch.comm_hill_climbing.CommScheduleState` both sit on
this engine; the cost formula itself stays in :mod:`repro.model.cost`, the
single source of truth.  Applied transactions are journaled, so a caller can
roll back the most recent ones (:meth:`IncrementalCostEngine.undo`) — the
building block for annealing rejections, schedule repair and future online
(re-)scheduling modes.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..model.cost import superstep_block_costs

__all__ = ["IncrementalCostEngine", "WORK", "SEND", "RECV"]

#: Matrix selectors for cell deltas: ``(matrix, row, col, value)`` tuples.
WORK, SEND, RECV = 0, 1, 2

Cell = Tuple[int, int, int, float]


class IncrementalCostEngine:
    """Incremental BSP cost bookkeeping over ``(S, P)`` superstep matrices.

    Parameters
    ----------
    work / send / recv:
        Initial ``(S, P)`` matrices (copied into the stacked tensor).
    g / l:
        BSP machine parameters of the cost formula
        ``C(s) = max_p work + g * h + l * occurs``.
    slack:
        Spare all-zero superstep rows appended up front so that growth into
        a new superstep does not immediately reallocate.
    """

    _SLACK = 4

    def __init__(
        self,
        work: np.ndarray,
        send: np.ndarray,
        recv: np.ndarray,
        g: float,
        l: float,
        *,
        slack: Optional[int] = None,
    ) -> None:
        if slack is None:
            slack = self._SLACK
        rows, P = work.shape
        self.P = int(P)
        self.S = rows + slack
        self.g = float(g)
        self.l = float(l)
        self.mats = np.zeros((3, self.S, self.P))
        self.mats[WORK, :rows] = work
        self.mats[SEND, :rows] = send
        self.mats[RECV, :rows] = recv
        self.step_cost = superstep_block_costs(self.mats, self.g, self.l)
        #: Python-list mirror of :attr:`step_cost`, kept in sync by
        #: :meth:`refresh_rows` — scalar reads on the probe path are ~10x
        #: cheaper on a list than on the array.
        self.step_cost_list: List[float] = self.step_cost.tolist()
        self.total_cost = float(self.step_cost.sum())
        #: Journal of applied transactions (lists of cells), newest last.
        self._journal: List[List[Cell]] = []
        #: Monotone count of applied transactions (never decremented by
        #: :meth:`undo`) — the "engine transaction" figure of convergence
        #: telemetry spans.
        self.transactions: int = 0

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def work(self) -> np.ndarray:
        """The ``(S, P)`` work matrix (a view into :attr:`mats`)."""
        return self.mats[WORK]

    @property
    def send(self) -> np.ndarray:
        """The ``(S, P)`` send matrix (a view into :attr:`mats`)."""
        return self.mats[SEND]

    @property
    def recv(self) -> np.ndarray:
        """The ``(S, P)`` receive matrix (a view into :attr:`mats`)."""
        return self.mats[RECV]

    # ------------------------------------------------------------------
    # Capacity and refresh
    # ------------------------------------------------------------------
    def ensure_capacity(self, step: int) -> None:
        """Grow the matrices so that superstep row ``step`` exists."""
        if step < self.S:
            return
        extra = step - self.S + 1 + self._SLACK
        self.mats = np.concatenate(
            [self.mats, np.zeros((3, extra, self.P))], axis=1
        )
        self.step_cost = np.concatenate([self.step_cost, np.zeros(extra)])
        self.step_cost_list.extend([0.0] * extra)
        self.S += extra

    def refresh_rows(self, rows: Iterable[int]) -> None:
        """Recompute the cost of the given superstep rows and the total.

        Out-of-range rows are ignored so callers can pass raw ``step - 1`` /
        ``step + 1`` candidates without clamping.
        """
        idx = np.unique(np.fromiter(rows, dtype=np.int64))
        idx = idx[(idx >= 0) & (idx < self.S)]
        if idx.size == 0:
            return
        new = superstep_block_costs(self.mats[:, idx], self.g, self.l)
        self.total_cost += float(new.sum() - self.step_cost[idx].sum())
        self.step_cost[idx] = new
        mirror = self.step_cost_list
        for r, c in zip(idx.tolist(), new.tolist()):
            mirror[r] = c

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    @staticmethod
    def _check_rows(cells: Sequence[Cell]) -> None:
        """Reject negative superstep rows before any matrix is touched.

        A negative row would silently wrap the numpy cell write to the last
        superstep while :meth:`refresh_rows` filters the same row out —
        desynchronizing ``total_cost`` from the matrices with no error.
        """
        for cell in cells:
            if cell[1] < 0:
                raise ValueError(
                    f"negative superstep row {cell[1]} in cell delta {cell!r}; "
                    "rows must be >= 0"
                )

    def apply_cells(self, cells: Sequence[Cell]) -> float:
        """Apply one transaction of cell deltas; return the new total cost.

        Each cell is ``(matrix, row, col, value)`` with ``matrix`` one of
        :data:`WORK` / :data:`SEND` / :data:`RECV`; ``value`` is added to the
        cell.  The transaction is journaled for :meth:`undo`.  A cell with a
        negative ``row`` raises :class:`ValueError` and leaves the engine
        untouched.
        """
        if cells:
            self._check_rows(cells)
            self.ensure_capacity(max(cell[1] for cell in cells))
        mats = self.mats
        for mat, row, col, val in cells:
            mats[mat, row, col] += val
        self._journal.append(list(cells))
        self.transactions += 1
        self.refresh_rows(cell[1] for cell in cells)
        return self.total_cost

    def undo(self) -> float:
        """Roll back the most recent :meth:`apply_cells` transaction."""
        if not self._journal:
            raise IndexError("no transaction to undo")
        cells = self._journal.pop()
        mats = self.mats
        for mat, row, col, val in cells:
            mats[mat, row, col] -= val
        self.refresh_rows(cell[1] for cell in cells)
        return self.total_cost

    @property
    def journal_depth(self) -> int:
        """Number of undoable transactions currently journaled."""
        return len(self._journal)

    # ------------------------------------------------------------------
    # Probing (delta without mutation)
    # ------------------------------------------------------------------
    def probe_cells(self, cells: Sequence[Cell]) -> float:
        """Cost delta :meth:`apply_cells` would cause, without applying it.

        The affected rows are copied, the deltas scattered into the copies,
        and only those rows re-costed — the superstep matrices are never
        rebuilt and the engine state is unchanged.  A cell with a negative
        ``row`` raises :class:`ValueError` (the same contract as
        :meth:`apply_cells`, instead of an incidental ``KeyError``).
        """
        if not cells:
            return 0.0
        self._check_rows(cells)
        self.ensure_capacity(max(cell[1] for cell in cells))
        rows = np.unique(np.fromiter((cell[1] for cell in cells), dtype=np.int64))
        rows = rows[(rows >= 0) & (rows < self.S)]
        ridx = {int(r): i for i, r in enumerate(rows)}
        blocks = self.mats[:, rows]
        for mat, row, col, val in cells:
            blocks[mat, ridx[row], col] += val
        new = superstep_block_costs(blocks, self.g, self.l)
        return float(new.sum() - self.step_cost[rows].sum())

    # ------------------------------------------------------------------
    # Introspection / verification
    # ------------------------------------------------------------------
    def recompute_total(self) -> float:
        """Total cost recomputed from the matrices (testing / debugging aid)."""
        return float(superstep_block_costs(self.mats, self.g, self.l).sum())
