"""Local-search improvers packaged as standalone :class:`Scheduler`\\ s.

The paper uses HC / HCcs (and this reproduction additionally simulated
annealing) as *improvement* stages inside the combined pipeline.  For
experimentation it is just as useful to run an improver on its own: start
from a cheap initialization heuristic and climb from there.  These wrappers
make each improver a first-class scheduler, selectable from the registry via
spec strings such as ``"hc(max_moves=200, init=source)"`` or
``"sa(steps=500, seed=7)"``.

The ``init`` parameter is itself a scheduler spec string (resolved through
:mod:`repro.registry`), so improvers can be stacked onto any registered
scheduler — including each other.
"""

from __future__ import annotations

from typing import Optional, Union

from ..graphs.dag import ComputationalDAG
from ..model.machine import BspMachine
from ..model.schedule import BspSchedule
from ..scheduler import Scheduler
from .annealing import simulated_annealing
from .comm_hill_climbing import comm_hill_climb
from .hill_climbing import hill_climb

__all__ = [
    "HillClimbingScheduler",
    "SimulatedAnnealingScheduler",
    "CommHillClimbingScheduler",
]


class _ImproverScheduler(Scheduler):
    """Base class: produce an initial schedule, then improve it."""

    def __init__(self, init: Union[str, Scheduler] = "bspg") -> None:
        self.init = init

    def _initial_schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        if isinstance(self.init, Scheduler):
            base = self.init
        else:
            # Resolved lazily: the registry imports this module at load time.
            from ..registry import make_scheduler

            base = make_scheduler(str(self.init))
        return base.schedule(dag, machine)


class HillClimbingScheduler(_ImproverScheduler):
    """HC (paper Section 4.3) on top of an initialization scheduler."""

    name = "HC"

    def __init__(
        self,
        variant: str = "first",
        max_moves: Optional[int] = None,
        max_passes: Optional[int] = None,
        time_limit: Optional[float] = None,
        init: Union[str, Scheduler] = "bspg",
    ) -> None:
        super().__init__(init)
        self.variant = variant
        self.max_moves = max_moves
        self.max_passes = max_passes
        self.time_limit = time_limit

    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        initial = self._initial_schedule(dag, machine)
        return hill_climb(
            initial,
            variant=self.variant,
            max_moves=self.max_moves,
            max_passes=self.max_passes,
            time_limit=self.time_limit,
        ).schedule


class SimulatedAnnealingScheduler(_ImproverScheduler):
    """Seeded simulated annealing on the HC move neighbourhood."""

    name = "SA"

    def __init__(
        self,
        steps: int = 2000,
        cooling: float = 0.995,
        initial_temperature: Optional[float] = None,
        time_limit: Optional[float] = None,
        seed: Optional[int] = 0,
        init: Union[str, Scheduler] = "bspg",
    ) -> None:
        super().__init__(init)
        self.steps = steps
        self.cooling = cooling
        self.initial_temperature = initial_temperature
        self.time_limit = time_limit
        self.seed = seed

    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        initial = self._initial_schedule(dag, machine)
        result = simulated_annealing(
            initial,
            steps=self.steps,
            cooling=self.cooling,
            initial_temperature=self.initial_temperature,
            time_limit=self.time_limit,
            seed=self.seed,
        )
        return result.schedule if result.final_cost <= initial.cost() else initial


class CommHillClimbingScheduler(_ImproverScheduler):
    """HCcs: optimize the communication schedule of an initial assignment."""

    name = "HCcs"

    def __init__(
        self,
        max_moves: Optional[int] = None,
        time_limit: Optional[float] = None,
        init: Union[str, Scheduler] = "bspg",
    ) -> None:
        super().__init__(init)
        self.max_moves = max_moves
        self.time_limit = time_limit

    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        initial = self._initial_schedule(dag, machine)
        return comm_hill_climb(
            initial, max_moves=self.max_moves, time_limit=self.time_limit
        ).schedule
