"""Local-search improvers packaged as standalone :class:`Scheduler`\\ s.

The paper uses HC / HCcs (and this reproduction additionally simulated
annealing) as *improvement* stages inside the combined pipeline.  For
experimentation it is just as useful to run an improver on its own: start
from a cheap initialization heuristic and climb from there.  These wrappers
make each improver a first-class scheduler, selectable from the registry via
spec strings such as ``"hc(max_moves=200, init=source)"`` or
``"sa(steps=500, seed=7)"``.

The ``init`` parameter is itself a scheduler spec string (resolved through
:mod:`repro.registry`), so improvers can be stacked onto any registered
scheduler — including each other.

All improvers are memory-aware: with a ``memory_bound`` parameter (or a
bound already on the machine) the initial schedule is repaired into the
memory-feasible region if needed (see :func:`repro.baselines.memory.repair_memory`)
and the local search's move filter keeps it there, so e.g.
``hc(memory_bound=32, init=greedy-mem)`` always returns a feasible schedule.
"""

from __future__ import annotations

from typing import Optional, Union

from ..graphs.dag import ComputationalDAG
from ..model.machine import BspMachine
from ..model.schedule import BspSchedule
from ..scheduler import Scheduler
from .annealing import simulated_annealing
from .comm_hill_climbing import comm_hill_climb
from .hill_climbing import hill_climb

__all__ = [
    "HillClimbingScheduler",
    "SimulatedAnnealingScheduler",
    "CommHillClimbingScheduler",
]


class _ImproverScheduler(Scheduler):
    """Base class: produce a (memory-feasible) initial schedule, then improve it."""

    def __init__(
        self,
        init: Union[str, Scheduler] = "bspg",
        memory_bound: Optional[object] = None,
    ) -> None:
        self.init = init
        self.memory_bound = memory_bound

    def _machine(self, machine: BspMachine) -> BspMachine:
        """The machine the improver actually works on (bound merged in)."""
        if self.memory_bound is not None:
            return machine.with_memory_bound(self.memory_bound)
        return machine

    def _initial_schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        if isinstance(self.init, Scheduler):
            base = self.init
        else:
            # Resolved lazily: the registry imports this module at load time.
            from ..registry import make_scheduler

            base = make_scheduler(str(self.init))
        initial = base.schedule(dag, machine)
        if machine.has_memory_bounds:
            # Non-memory-aware initializers may start outside the feasible
            # region; repair so the bound-respecting move filter applies.
            # Repair is a heuristic — when it gives up, restart from the
            # memory-aware greedy instead of failing a feasible instance.
            from ..baselines.memory import MemoryAwareGreedyScheduler, repair_memory
            from ..scheduler import SchedulingError

            try:
                initial = repair_memory(initial)
            except SchedulingError:
                initial = MemoryAwareGreedyScheduler().schedule(dag, machine)
        return initial


class HillClimbingScheduler(_ImproverScheduler):
    """HC (paper Section 4.3) on top of an initialization scheduler."""

    name = "HC"

    def __init__(
        self,
        variant: str = "first",
        max_moves: Optional[int] = None,
        max_passes: Optional[int] = None,
        time_limit: Optional[float] = None,
        init: Union[str, Scheduler] = "bspg",
        memory_bound: Optional[object] = None,
    ) -> None:
        super().__init__(init, memory_bound)
        self.variant = variant
        self.max_moves = max_moves
        self.max_passes = max_passes
        self.time_limit = time_limit

    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        machine = self._machine(machine)
        initial = self._initial_schedule(dag, machine)
        return hill_climb(
            initial,
            variant=self.variant,
            max_moves=self.max_moves,
            max_passes=self.max_passes,
            time_limit=self.time_limit,
        ).schedule


class SimulatedAnnealingScheduler(_ImproverScheduler):
    """Seeded simulated annealing on the HC move neighbourhood."""

    name = "SA"

    def __init__(
        self,
        steps: int = 2000,
        cooling: float = 0.995,
        initial_temperature: Optional[float] = None,
        time_limit: Optional[float] = None,
        seed: Optional[int] = 0,
        init: Union[str, Scheduler] = "bspg",
        memory_bound: Optional[object] = None,
    ) -> None:
        super().__init__(init, memory_bound)
        self.steps = steps
        self.cooling = cooling
        self.initial_temperature = initial_temperature
        self.time_limit = time_limit
        self.seed = seed

    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        machine = self._machine(machine)
        initial = self._initial_schedule(dag, machine)
        result = simulated_annealing(
            initial,
            steps=self.steps,
            cooling=self.cooling,
            initial_temperature=self.initial_temperature,
            time_limit=self.time_limit,
            seed=self.seed,
        )
        return result.schedule if result.final_cost <= initial.cost() else initial


class CommHillClimbingScheduler(_ImproverScheduler):
    """HCcs: optimize the communication schedule of an initial assignment."""

    name = "HCcs"

    def __init__(
        self,
        max_moves: Optional[int] = None,
        time_limit: Optional[float] = None,
        init: Union[str, Scheduler] = "bspg",
        memory_bound: Optional[object] = None,
    ) -> None:
        super().__init__(init, memory_bound)
        self.max_moves = max_moves
        self.time_limit = time_limit

    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        machine = self._machine(machine)
        initial = self._initial_schedule(dag, machine)
        return comm_hill_climb(
            initial, max_moves=self.max_moves, time_limit=self.time_limit
        ).schedule
